"""Ablation benches for the design choices DESIGN.md calls out.

These go beyond the paper's own figures to quantify each mechanism:

* allocator policy: CNTK's greedy-by-size vs first-fit vs no sharing;
* CSR narrow-value optimisation on/off (paper claims breakeven sparsity
  falls from 50% to 20%);
* Binarize without the pool argmax-map rewrite (pool must stash X and Y);
* SSDC sparse format choice: narrow CSR vs bitmap;
* DPR rounding mode: round-to-nearest vs truncation (accuracy effect).
"""

import numpy as np

from repro.analysis import format_table
from repro.core import GistConfig, build_gist_plan
from repro.encodings import bitmap_bytes, csr_bytes
from repro.memory import (
    POLICY_FIRST_FIT,
    POLICY_GREEDY_SIZE,
    POLICY_NO_SHARING,
    StaticAllocator,
    build_memory_plan,
)
from repro.models import scaled_vgg
from repro.train import GistPolicy, SGD, Trainer, make_synthetic

from conftest import print_header


def test_ablation_allocator_policy(benchmark, suite):
    def run():
        rows = []
        for name, graph in suite.items():
            plan = build_memory_plan(graph)
            sizes = {
                policy: StaticAllocator(policy).allocate(plan.tensors).total_bytes
                for policy in (POLICY_GREEDY_SIZE, POLICY_FIRST_FIT,
                               POLICY_NO_SHARING)
            }
            rows.append(
                [
                    name,
                    sizes[POLICY_GREEDY_SIZE] / 1024**3,
                    sizes[POLICY_FIRST_FIT] / sizes[POLICY_GREEDY_SIZE],
                    sizes[POLICY_NO_SHARING] / sizes[POLICY_GREEDY_SIZE],
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("Ablation — allocator policy (relative to greedy-by-size)")
    print(format_table(
        ["network", "greedy GiB", "first-fit x", "no-sharing x"], rows
    ))
    for name, _, first_fit, none in rows:
        assert first_fit >= 0.999, name   # greedy never loses to first-fit
        assert none > 1.5, name           # sharing is the whole ballgame


def test_ablation_narrow_csr(benchmark):
    def run():
        n = 1 << 22
        rows = []
        for sparsity in (0.1, 0.2, 0.3, 0.5, 0.7, 0.9):
            narrow = csr_bytes(n, sparsity, cols=256)
            wide = csr_bytes(n, sparsity, cols=1 << 20)
            bitmap = bitmap_bytes(n, sparsity)
            rows.append(
                [sparsity, 4 * n / narrow, 4 * n / wide, 4 * n / bitmap]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("Ablation — sparse format compression vs sparsity "
                 "(ratio over dense FP32)")
    print(format_table(
        ["sparsity", "narrow CSR x", "wide CSR x", "bitmap x"], rows
    ))
    by_s = {r[0]: r for r in rows}
    # Paper claim: narrow indices move breakeven from ~50% to ~20%.
    assert by_s[0.3][1] > 1.0 > by_s[0.3][2]
    assert by_s[0.1][1] < 1.0  # below 20% not even narrow CSR wins
    assert by_s[0.7][1] > 2.0


def test_ablation_pool_argmax_rewrite(benchmark, suite):
    def run():
        graph = suite["vgg16"]
        alloc = StaticAllocator()
        with_rewrite = alloc.allocate(
            build_gist_plan(graph, GistConfig.lossless()).plan.tensors
        ).total_bytes
        # Disabling binarize also disables the pool rewrite: the pool
        # stashes X and Y and ReLU-Pool maps stay FP32.
        without = alloc.allocate(
            build_gist_plan(graph, GistConfig.lossless(binarize=False)).plan.tensors
        ).total_bytes
        return with_rewrite, without

    with_rewrite, without = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("Ablation — Binarize + pool argmax rewrite (VGG16)")
    print(f"lossless with rewrite:    {with_rewrite / 1024**3:.2f} GiB")
    print(f"lossless without rewrite: {without / 1024**3:.2f} GiB "
          f"({without / with_rewrite:.2f}x larger)")
    assert without > with_rewrite * 1.1


def test_ablation_dpr_rounding(benchmark):
    def run():
        train, test = make_synthetic(num_samples=512, num_classes=8,
                                     image_size=16, noise=1.2, seed=3)
        accs = {}
        for rounding in ("nearest", "truncate"):
            graph = scaled_vgg(batch_size=32, num_classes=8, image_size=16,
                               width=8)
            policy = GistPolicy(
                graph, GistConfig(dpr_format="fp8", rounding=rounding)
            )
            trainer = Trainer(graph, policy, SGD(lr=0.01, momentum=0.9),
                              seed=0)
            accs[rounding] = trainer.train(train, test, epochs=5).final_accuracy
        return accs

    accs = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("Ablation — DPR FP8 rounding mode (final accuracy)")
    print(format_table(
        ["rounding", "accuracy"],
        [[k, v] for k, v in accs.items()],
    ))
    # Round-to-nearest (the paper's choice) must not lose to truncation.
    assert accs["nearest"] >= accs["truncate"] - 0.05
    assert accs["nearest"] > 0.7
