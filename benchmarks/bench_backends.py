"""Per-arm step-time benchmark + conformance gate for the kernel
backend registry.

Trains the scaled VGG for a handful of SGD steps once per registered
conv/pool backend arm (forced via the same ``REPRO_KERNEL_BACKEND``
mechanism users have), plus the plans-off reference loops and the
measured ``auto`` chooser, and reports each arm's median
forward+backward step time.  Three gates ride on top of the timings:

* **speedup** — the best arm must beat the reference loops by
  ``required_speedup``.  The requirement is core-aware via
  :func:`repro.orchestrate.usable_cores`: 3.0x where the threaded arm
  has >= 2 usable cores to work with, and the 1.5x single-core floor
  (matching ``bench_step_time``) elsewhere — a 1-core box cannot
  extract thread- or core-level parallelism, only better scheduling.
* **bit-identity** — the ``auto`` arm (what users get by default) must
  reproduce the reference loops' losses and every parameter gradient
  bit-for-bit.  Tolerance arms (e.g. ``blas-chunk``) are timed and
  recorded but never gated on exactness; the autotuner refuses to
  promote them, which is exactly what this gate double-checks.
* **golden digests** — the default dispatch path must still reproduce
  the checked-in scaled VGG golden traces
  (``tests/diagnostics/goldens/``), pinning the end-to-end bits, not
  just one batch stream.

Writes machine-readable results to ``BENCH_backends.json`` at the repo
root (or the path given as argv[1]) and prints a human-readable table.

Run directly::

    PYTHONPATH=src python benchmarks/bench_backends.py
"""

from __future__ import annotations

import json
import statistics
import sys
import time
from pathlib import Path

import numpy as np

from repro.diagnostics import golden_filename, run_traced
from repro.kernels import (
    autotune_report,
    backend_override,
    backends_for,
    clear_plan_cache,
    clear_selection_cache,
)
from repro.models import scaled_vgg
from repro.orchestrate import usable_cores
from repro.train import BaselinePolicy, GraphExecutor, SGD

BATCH = 32
WARMUP_STEPS = 2
TIMED_STEPS = 10

#: Gate on the best arm vs the reference loops.  3x needs real
#: parallelism; on a single usable core only scheduling wins are
#: physically available, so the floor matches bench_step_time's 1.5x.
REQUIRED_SPEEDUP_MULTICORE = 3.0
REQUIRED_SPEEDUP_SINGLE_CORE = 1.5

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "tests" / \
    "diagnostics" / "goldens"

#: Arms that exist for conv2d and/or maxpool2d; each is forced globally
#: (a bare name only applies to ops that registered it, so e.g.
#: ``blas-fat`` accelerates conv while pools keep their default arm).
LAYER_ARMS = ("reference", "numpy-plan", "blas-fat", "blas-chunk",
              "threaded")


def _timed_steps(images, labels, *, use_plans=True, force=None):
    """Train scaled VGG; return (per-step seconds, (loss, grads) trace)."""
    graph = scaled_vgg(batch_size=BATCH)
    ex = GraphExecutor(graph, policy=BaselinePolicy(), seed=0,
                       use_kernel_plans=use_plans, kernel_backend=force)
    opt = SGD(lr=0.01, momentum=0.9)
    times, trace = [], []
    for step in range(WARMUP_STEPS + TIMED_STEPS):
        t0 = time.perf_counter()
        loss = ex.forward(images, labels)
        grads = ex.backward()
        elapsed = time.perf_counter() - t0
        opt.step(ex.parameters(), grads)
        if step >= WARMUP_STEPS:
            times.append(elapsed)
        trace.append((loss, {k: v.copy() for k, v in grads.items()}))
    return times, trace


def _bit_identical(trace_a, trace_b) -> bool:
    for (loss_a, grads_a), (loss_b, grads_b) in zip(trace_a, trace_b):
        if loss_a != loss_b or grads_a.keys() != grads_b.keys():
            return False
        if any(not np.array_equal(grads_a[k], grads_b[k]) for k in grads_a):
            return False
    return True


def _tolerance_arm(name: str) -> bool:
    return any(b.name == name and not b.exact
               for op in ("conv2d", "maxpool2d")
               for b in backends_for(op))


def _check_goldens() -> dict:
    """Default-dispatch runs must still match the checked-in goldens."""
    out = {}
    for policy in ("baseline", "gist-lossless"):
        path = GOLDEN_DIR / golden_filename("scaled_vgg", policy)
        if not path.exists():
            out[policy] = {"ok": False, "detail": f"missing golden {path}"}
            continue
        comparison = run_traced("scaled_vgg", policy, steps=3) \
            .compare_golden(path)
        out[policy] = {
            "ok": bool(comparison),
            "detail": "; ".join(comparison.mismatches) or "match",
        }
    return out


def main(out_path: str = "BENCH_backends.json") -> dict:
    rng = np.random.default_rng(0)
    images = rng.normal(0, 1, (BATCH, 3, 32, 32)).astype(np.float32)
    labels = rng.integers(0, 10, BATCH)

    cores = usable_cores()
    required = (REQUIRED_SPEEDUP_MULTICORE if cores >= 2
                else REQUIRED_SPEEDUP_SINGLE_CORE)

    clear_plan_cache()
    clear_selection_cache()

    # The yardstick every arm is measured against: the original
    # per-call reference loops with the plan layer disabled.
    ref_times, ref_trace = _timed_steps(images, labels, use_plans=False)
    median_ref = statistics.median(ref_times)

    arms = {}
    for name in LAYER_ARMS:
        with backend_override(name):
            times, trace = _timed_steps(images, labels)
        arms[name] = {
            "step_ms": [t * 1000 for t in times],
            "median_ms": statistics.median(times) * 1000,
            "speedup": median_ref / statistics.median(times),
            "bit_identical": _bit_identical(ref_trace, trace),
            "exact_contract": not _tolerance_arm(name),
        }

    auto_times, auto_trace = _timed_steps(images, labels)
    arms["auto"] = {
        "step_ms": [t * 1000 for t in auto_times],
        "median_ms": statistics.median(auto_times) * 1000,
        "speedup": median_ref / statistics.median(auto_times),
        "bit_identical": _bit_identical(ref_trace, auto_trace),
        "exact_contract": True,
    }

    best_name = min(arms, key=lambda n: arms[n]["median_ms"])
    best_speedup = arms[best_name]["speedup"]
    goldens = _check_goldens()

    exact_ok = all(r["bit_identical"] for r in arms.values()
                   if r["exact_contract"])
    golden_ok = all(g["ok"] for g in goldens.values())
    speedup_ok = best_speedup >= required

    report = {
        "benchmark": "backends",
        "network": "scaled_vgg",
        "batch_size": BATCH,
        "warmup_steps": WARMUP_STEPS,
        "timed_steps": TIMED_STEPS,
        "usable_cores": cores,
        "required_speedup": required,
        "reference_loops_median_ms": median_ref * 1000,
        "arms": arms,
        "best_arm": best_name,
        "best_speedup": best_speedup,
        "autotune_report": autotune_report(),
        "golden_digests": goldens,
        "gates": {
            "speedup": speedup_ok,
            "default_bit_identical": exact_ok,
            "golden_digests": golden_ok,
        },
        "gates_passed": speedup_ok and exact_ok and golden_ok,
    }
    Path(out_path).write_text(json.dumps(report, indent=2) + "\n")

    print(f"reference loops (plans off): {median_ref * 1000:8.1f} ms/step"
          f"  [{cores} usable core(s), gate >= {required}x]")
    print(f"{'arm':<12} {'median':>10} {'speedup':>8} "
          f"{'bit-identical':>14} {'contract':>10}")
    for name, r in arms.items():
        contract = "exact" if r["exact_contract"] else "tolerance"
        print(f"{name:<12} {r['median_ms']:>8.1f}ms {r['speedup']:>7.2f}x "
              f"{str(r['bit_identical']):>14} {contract:>10}")
    print(f"best arm: {best_name} ({best_speedup:.2f}x); "
          f"goldens: {golden_ok}; gates passed: {report['gates_passed']}")
    print(f"wrote {out_path}")
    return report


if __name__ == "__main__":
    result = main(sys.argv[1] if len(sys.argv) > 1
                  else "BENCH_backends.json")
    sys.exit(0 if result["gates_passed"] else 1)
