"""Benchmark + gates for the simulated data-parallel layer.

Two gates:

* **bit-identity** (always applies) — ``train_distributed`` with four
  worker replicas must produce the same SHA-256 run digest as the same
  config on one replica, and both must match the pinned golden digest.
  The digest covers every per-step loss and every final parameter byte,
  so this is the replicas-N ≡ serial guarantee end to end through the
  real process pool.
* **wire reduction** — encoding real backward-pass gradients with the
  ``dpr-fp8`` wire codec must move >= ``MIN_REDUCTION`` x fewer bytes
  than the fp32 wire on at least half the model registry.  The sweep
  runs one shard-sized forward/backward per model in-process and prices
  the actual wire messages (``auto`` and ``dpr-fp8``) against fp32.

Writes machine-readable results to ``BENCH_distributed.json`` at the
repo root (or the path given as argv[1]) and prints a summary.

Run directly::

    PYTHONPATH=src python benchmarks/bench_distributed.py
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

import numpy as np

from repro.distributed import DistConfig, train_distributed, wire_codec
from repro.ioutil import atomic_write_json
from repro.models.registry import available_models, build_model
from repro.train.executor import GraphExecutor

MIN_REDUCTION = 2.0
PARALLEL_REPLICAS = 4

#: Pinned digest of GOLDEN_CONFIG; any drift in sharding, wire codecs,
#: tree merge order, RNG derivation or the optimiser changes it.
GOLDEN_DIGEST = (
    "8c9a33b41493feb5911787c18c66e27e3024d6508734da5e2f85b46876dfbdf7"
)

GOLDEN_CONFIG = dict(
    model="tiny_cnn",
    batch_size=16,
    num_shards=4,
    steps=3,
    wire_codec="auto",
    policy="baseline",
    seed=0,
)

#: Per-model probe resolution: big enough to be the real graph, small
#: enough that one shard-sized backward pass per model stays cheap.
PROBE_IMAGE_SIZE = {
    "tiny_cnn": 8,
    "alexnet": 96,
    "nin": 96,
    "overfeat": 96,
    "inception": 224,
    "densenet": 16,
}
DEFAULT_IMAGE_SIZE = 32
#: Sequence models take sequence geometry instead of an image size.
PROBE_SEQUENCE_KWARGS = {"seq_len": 8, "input_size": 16, "hidden_size": 16}
SEQUENCE_MODELS = ("lstm", "rnn")
SWEEP_CODECS = ("auto", "dpr-fp8")


def _probe_kwargs(model: str) -> dict:
    if model in SEQUENCE_MODELS:
        return dict(PROBE_SEQUENCE_KWARGS)
    return {"image_size": PROBE_IMAGE_SIZE.get(model, DEFAULT_IMAGE_SIZE)}


def _bit_identity() -> dict:
    start = time.perf_counter()
    parallel = train_distributed(
        DistConfig(replicas=PARALLEL_REPLICAS, **GOLDEN_CONFIG)
    )
    serial = train_distributed(DistConfig(replicas=1, **GOLDEN_CONFIG))
    return {
        "config": GOLDEN_CONFIG,
        "replicas": PARALLEL_REPLICAS,
        "digest_parallel": parallel.digest(),
        "digest_serial": serial.digest(),
        "digest_golden": GOLDEN_DIGEST,
        "losses": parallel.losses,
        "elapsed_s": time.perf_counter() - start,
        "ok": (parallel.digest() == serial.digest()
               and parallel.digest() == GOLDEN_DIGEST),
    }


def _shard_gradients(model: str, seed: int = 0) -> dict:
    """One shard-sized backward pass -> real parameter gradients."""
    graph = build_model(model, batch_size=2, num_classes=8,
                        **_probe_kwargs(model))
    executor = GraphExecutor(graph, seed=seed)
    # Drawing over the graph's own input shape keeps the byte stream of
    # every pre-existing rank-4 probe identical to before rank dispatch.
    shape = graph.node(graph.input_id).output_shape
    rng = np.random.default_rng(seed)
    x = rng.normal(0, 1, shape).astype(np.float32)
    y = rng.integers(0, 8, 2).astype(np.int64)
    executor.forward(x, y, train=True)
    return executor.backward()


def _wire_sweep() -> list:
    rows = []
    for model in available_models():
        start = time.perf_counter()
        grads = _shard_gradients(model)
        fp32_bytes = sum(
            np.ascontiguousarray(g, dtype=np.float32).nbytes
            for g in grads.values()
        )
        row = {
            "model": model,
            "probe": _probe_kwargs(model),
            "fp32_bytes": int(fp32_bytes),
        }
        for name in SWEEP_CODECS:
            codec = wire_codec(name)
            wire = sum(
                codec.encode(g)["wire_bytes"] for g in grads.values()
            )
            row[f"{name}_bytes"] = int(wire)
            row[f"{name}_reduction"] = fp32_bytes / wire
        row["elapsed_s"] = time.perf_counter() - start
        rows.append(row)
    return rows


def main(out_path: str = "BENCH_distributed.json") -> dict:
    identity = _bit_identity()
    sweep = _wire_sweep()

    passing = [r for r in sweep
               if r["dpr-fp8_reduction"] >= MIN_REDUCTION]
    need = (len(sweep) + 1) // 2
    reduction_ok = len(passing) >= need

    report = {
        "benchmark": "distributed",
        "bit_identity": identity,
        "wire_sweep": sweep,
        "min_reduction": MIN_REDUCTION,
        "models_at_min_reduction": len(passing),
        "models_needed": need,
        "reduction_gate": reduction_ok,
        "gates_passed": identity["ok"] and reduction_ok,
    }
    atomic_write_json(Path(out_path), report, sort_keys=False)

    print(f"bit identity ({PARALLEL_REPLICAS} replicas vs serial vs golden):"
          f" {'ok' if identity['ok'] else 'FAIL'}")
    print(f"  parallel {identity['digest_parallel']}")
    print(f"  serial   {identity['digest_serial']}")
    print(f"  golden   {identity['digest_golden']}")
    print()
    for row in sweep:
        print(f"{row['model']:>16}: fp32 {row['fp32_bytes']:>11,} B"
              f"  auto {row['auto_reduction']:.2f}x"
              f"  dpr-fp8 {row['dpr-fp8_reduction']:.2f}x")
    print(f"\n>= {MIN_REDUCTION}x on {len(passing)}/{len(sweep)} models"
          f" (need {need})")
    print(f"gates passed: {report['gates_passed']}")
    print(f"wrote {out_path}")
    return report


if __name__ == "__main__":
    result = main(sys.argv[1] if len(sys.argv) > 1
                  else "BENCH_distributed.json")
    sys.exit(0 if result["gates_passed"] else 1)
