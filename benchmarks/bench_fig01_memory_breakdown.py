"""Figure 1: memory footprint breakdown across data-structure classes.

Paper observations reproduced:
* deeper networks consume GBs even at minibatch 64 (VGG16 nears the 12 GB
  card limit);
* stashed feature maps + immediately consumed data dominate (83% for
  VGG16, 97% for Inception), in stark contrast to inference, where
  weights dominate.
"""

from repro.analysis import format_table
from repro.memory import (
    CLASS_GRADIENT,
    CLASS_IMMEDIATE,
    CLASS_SAVED_STATE,
    CLASS_STASHED,
    CLASS_WEIGHT,
    CLASS_WEIGHT_GRAD,
    CLASS_WORKSPACE,
    GiB,
    build_memory_plan,
)

from conftest import print_header


def full_breakdown(suite):
    rows = []
    for name, graph in suite.items():
        plan = build_memory_plan(graph, include_weights=True,
                                 include_workspace=True)
        by_class = plan.bytes_by_class()
        total = sum(by_class.values())
        activations = (
            by_class[CLASS_STASHED]
            + by_class[CLASS_IMMEDIATE]
            + by_class[CLASS_GRADIENT]
            + by_class[CLASS_SAVED_STATE]
        )
        rows.append(
            [
                name,
                total / GiB,
                by_class[CLASS_WEIGHT] / GiB,
                by_class[CLASS_WEIGHT_GRAD] / GiB,
                by_class[CLASS_STASHED] / GiB,
                by_class[CLASS_IMMEDIATE] / GiB,
                by_class[CLASS_GRADIENT] / GiB,
                by_class[CLASS_WORKSPACE] / GiB,
                activations / total,
            ]
        )
    return rows


def test_fig01_memory_breakdown(benchmark, suite):
    rows = benchmark.pedantic(full_breakdown, args=(suite,), rounds=1,
                              iterations=1)
    print_header("Figure 1 — memory breakdown by data structure "
                 "(GiB, minibatch 64)")
    print(
        format_table(
            ["network", "total", "weights", "w_grads", "stashed_fm",
             "immediate_fm", "grad_maps", "workspace", "fm_fraction"],
            rows,
        )
    )
    by_name = {r[0]: r for r in rows}
    # VGG16 approaches the 12 GB limit at minibatch 64.
    assert by_name["vgg16"][1] > 8.0
    # Feature maps + gradient maps dominate every network; the paper
    # reports 83% for VGG16 and 97% for Inception.  AlexNet/Overfeat's
    # huge dense heads make weights visible but still minority players.
    for name, row in by_name.items():
        assert row[8] > 0.4, f"{name}: activations are not dominant"
    assert by_name["vgg16"][8] > 0.8
    assert by_name["inception"][8] > 0.9
