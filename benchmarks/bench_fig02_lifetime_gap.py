"""Figure 2: the two temporally distant uses of a stashed feature map.

Reproduces the paper's motivating timeline on VGG16: the baseline keeps
each stashed ReLU output live (in FP32) for most of the training step,
while Gist shrinks the FP32 interval to the forward neighbourhood and
spans the gap with the encoded form.
"""

from repro.analysis import format_table
from repro.core import GistConfig, build_gist_plan
from repro.graph import ROLE_ENCODED, ROLE_FEATURE_MAP
from repro.memory import build_memory_plan

from conftest import print_header


def lifetime_gap_rows(graph):
    baseline = build_memory_plan(graph)
    gist = build_gist_plan(graph, GistConfig.for_network(graph.name))
    steps = baseline.schedule.num_steps
    base_fm = {t.node_id: t for t in baseline.tensors
               if t.role == ROLE_FEATURE_MAP}
    gist_fm = {t.node_id: t for t in gist.plan.tensors
               if t.role == ROLE_FEATURE_MAP and not
               t.spec.name.endswith(".dec")}
    gist_enc = {t.node_id: t for t in gist.plan.tensors
                if t.role == ROLE_ENCODED}
    rows = []
    for node_id, decision in sorted(gist.decisions.items()):
        if decision.node_name.startswith("relu") is False:
            continue
        base = base_fm[node_id]
        fp32 = gist_fm.get(node_id)
        enc = gist_enc.get(node_id)
        if fp32 is None or enc is None:
            continue
        rows.append(
            [
                decision.node_name,
                decision.encoding,
                (base.death - base.birth + 1) / steps,
                (fp32.death - fp32.birth + 1) / steps,
                (enc.death - enc.birth + 1) / steps,
            ]
        )
    return rows


def test_fig02_lifetime_gap(benchmark, suite):
    rows = benchmark.pedantic(lifetime_gap_rows, args=(suite["vgg16"],),
                              rounds=1, iterations=1)
    print_header("Figure 2 — stashed-map lifetime fractions of one "
                 "training step (VGG16)")
    print(
        format_table(
            ["relu map", "encoding", "baseline FP32 live",
             "gist FP32 live", "gist encoded live"],
            rows,
        )
    )
    # Gist never extends an FP32 interval, the encoded tensor carries the
    # gap, and for the early (long-gap) maps the FP32 interval collapses
    # to a small fraction of the baseline's.
    ratios = []
    for name, _, base_live, fp32_live, enc_live in rows:
        assert fp32_live <= base_live, name
        assert enc_live > base_live * 0.6, name
        ratios.append(fp32_live / base_live)
        if base_live > 0.5:
            assert fp32_live < 0.2 * base_live, name
    assert sum(ratios) / len(ratios) < 0.3
