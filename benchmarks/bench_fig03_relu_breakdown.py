"""Figure 3: breakdown of stashed feature maps by layer-pair class.

Paper observation reproduced: ReLU outputs dominate stashed memory —
VGG16 has ~40% ReLU-Pool and ~49% ReLU-Conv (89% total ReLU).
"""

from repro.analysis import format_table
from repro.core import (
    STASH_OTHER,
    STASH_RELU_CONV,
    STASH_RELU_POOL,
    stash_bytes_by_class,
)

from conftest import print_header


def breakdown_rows(suite):
    rows = []
    for name, graph in suite.items():
        bb = stash_bytes_by_class(graph)
        total = sum(bb.values())
        rows.append(
            [
                name,
                bb[STASH_RELU_POOL] / total,
                bb[STASH_RELU_CONV] / total,
                bb[STASH_OTHER] / total,
                total / 1024**3,
            ]
        )
    return rows


def test_fig03_stash_class_breakdown(benchmark, suite):
    rows = benchmark.pedantic(breakdown_rows, args=(suite,), rounds=1,
                              iterations=1)
    print_header("Figure 3 — stashed feature maps by class "
                 "(fraction of stashed bytes)")
    print(format_table(
        ["network", "relu_pool", "relu_conv", "other", "stashed GiB"], rows
    ))
    by_name = {r[0]: r for r in rows}
    # VGG16: paper reports 40% / 49% / remainder.
    vgg = by_name["vgg16"]
    assert 0.35 < vgg[1] < 0.45
    assert 0.45 < vgg[2] < 0.65
    # ReLU outputs are the majority of stashed bytes for the classic
    # conv-pool stacks.
    for name in ("alexnet", "nin", "overfeat", "vgg16"):
        relu_share = by_name[name][1] + by_name[name][2]
        assert relu_share > 0.6, name
