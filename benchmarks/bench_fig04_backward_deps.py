"""Figure 4: backward-pass data dependences per layer type.

Regenerates the paper's dependence table — which of the stashed input X /
output Y each layer's backward pass reads — directly from the layer
metadata that drives the whole Schedule Builder.
"""

from repro.analysis import format_table
from repro.layers import (
    AvgPool2D,
    BatchNorm2D,
    Conv2D,
    Dense,
    LocalResponseNorm,
    MaxPool2D,
    ReLU,
)

from conftest import print_header

EXPECTED = {
    # kind: (needs X, needs Y, note)
    "relu": (False, True, "dX = dY * (Y > 0) — 1 bit of Y suffices"),
    "conv": (True, False, "dW needs X; dX needs only W and dY"),
    "dense": (True, False, "dW needs X"),
    "maxpool": (True, True, "baseline re-derives argmax; Gist stores Y->X map"),
    "avgpool": (False, False, "dX is a uniform scatter of dY"),
    "batchnorm": (True, False, "needs X and saved batch statistics"),
    "lrn": (True, True, "needs X, Y and the saved scale"),
}


def build_rows():
    layers = [
        ReLU(),
        Conv2D(4, 3),
        Dense(4),
        MaxPool2D(2),
        AvgPool2D(2),
        BatchNorm2D(),
        LocalResponseNorm(),
    ]
    rows = []
    for layer in layers:
        rows.append(
            [
                layer.kind,
                "yes" if layer.backward_needs_input else "no",
                "yes" if layer.backward_needs_output else "no",
                EXPECTED[layer.kind][2],
            ]
        )
    return rows


def test_fig04_backward_dependences(benchmark):
    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    print_header("Figure 4 — backward-pass dependences by layer type")
    print(format_table(["layer", "needs X", "needs Y", "why"], rows))
    for kind, needs_x, needs_y, _ in rows:
        exp_x, exp_y, _ = EXPECTED[kind]
        assert (needs_x == "yes") == exp_x, kind
        assert (needs_y == "yes") == exp_y, kind
