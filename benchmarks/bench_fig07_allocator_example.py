"""Figure 7: the memory-sharing worked example (18 MB -> 12 MB).

Replays the paper's illustration of how an encoding interacts with the
CNTK allocator: SSDC converts the 10 MB stashed X into immediately
consumed data plus a 2 MB encoded stash, and the allocator's grouping
drops the total from 18 MB to 12 MB.
"""

from repro.analysis import format_table
from repro.graph.liveness import LiveTensor, ROLE_ENCODED, ROLE_FEATURE_MAP
from repro.memory import StaticAllocator
from repro.tensor import TensorSpec

from conftest import print_header

MB_ELEMS = 1024 * 1024 // 4


def lt(name, mb, birth, death, role=ROLE_FEATURE_MAP):
    return LiveTensor(TensorSpec(name, (mb * MB_ELEMS,)), birth, death, 0, role)


def run_example():
    baseline = [
        lt("X", 10, 0, 9),
        lt("A", 8, 2, 3),
        lt("B", 6, 4, 5),
        lt("C", 8, 6, 7),
        lt("D", 2, 8, 8),
    ]
    encoded = [
        lt("X_fp32", 10, 0, 1),
        lt("X_enc", 2, 1, 9, ROLE_ENCODED),
        lt("X_dec", 10, 9, 9),
        lt("A", 8, 2, 3),
        lt("B", 6, 4, 5),
        lt("C", 8, 6, 7),
        lt("D", 2, 8, 8),
    ]
    alloc = StaticAllocator()
    return alloc.allocate(baseline), alloc.allocate(encoded)


def test_fig07_allocator_worked_example(benchmark):
    base, enc = benchmark.pedantic(run_example, rounds=1, iterations=1)
    print_header("Figure 7 — allocator worked example")
    rows = []
    for label, result in (("baseline", base), ("with SSDC", enc)):
        for i, group in enumerate(result.groups):
            rows.append([
                label,
                f"group{i}",
                group.size_bytes // 1024**2,
                " ".join(t.spec.name for t in group.members),
            ])
        rows.append([label, "TOTAL", result.total_bytes // 1024**2, ""])
    print(format_table(["case", "group", "MB", "members"], rows))
    assert base.total_bytes == 18 * 1024**2
    assert enc.total_bytes == 12 * 1024**2
