"""Figure 8: end-to-end Memory Footprint Ratio vs the CNTK baseline.

Paper results reproduced in shape:
* lossless (Binarize + SSDC + inplace): >1.5x on AlexNet, ~1.4x average;
* lossless + DPR (per-network smallest safe width): up to 2x, 1.8x average.
"""

import statistics

from repro.analysis import format_table
from repro.core import Gist, GistConfig

from conftest import print_header


def mfr_rows(suite):
    rows = []
    for name, graph in suite.items():
        lossless = Gist(GistConfig.lossless()).measure_mfr(graph)
        full = Gist(GistConfig.for_network(name)).measure_mfr(graph)
        rows.append(
            [
                name,
                GistConfig.for_network(name).dpr_format,
                lossless.baseline_bytes / 1024**3,
                lossless.mfr,
                full.mfr,
            ]
        )
    return rows


def test_fig08_total_mfr(benchmark, suite):
    rows = benchmark.pedantic(mfr_rows, args=(suite,), rounds=1, iterations=1)
    print_header("Figure 8 — total MFR vs CNTK baseline (minibatch 64)")
    print(format_table(
        ["network", "dpr fmt", "baseline GiB", "lossless MFR",
         "lossless+lossy MFR"],
        rows,
    ))
    lossless = [r[3] for r in rows]
    full = [r[4] for r in rows]
    print(f"\naverage lossless MFR = {statistics.mean(lossless):.2f}x "
          f"(paper: 1.4x)")
    print(f"average full MFR     = {statistics.mean(full):.2f}x "
          f"(paper: 1.8x, max 2x)")
    # Shape assertions: averages in the paper's neighbourhood, lossy
    # strictly stronger than lossless, everything > 1.
    assert 1.25 < statistics.mean(lossless) < 1.6
    assert 1.6 < statistics.mean(full) < 2.2
    for _, _, _, l, f in rows:
        assert f > l > 1.0
    # AlexNet and VGG16 clear 1.4x lossless (paper: "more than 1.5x" —
    # our AlexNet variant lands slightly lower but in the same band).
    by_name = {r[0]: r for r in rows}
    assert by_name["alexnet"][3] > 1.35
    assert by_name["vgg16"][3] > 1.3
