"""Figure 9: Gist's performance overhead (analytical cost model).

Paper results reproduced in shape: ~3% average for lossless, ~4% for
lossless+lossy, 7% worst case.
"""

import statistics

from repro.analysis import format_table
from repro.core import GistConfig
from repro.perf import measure_overhead

from conftest import print_header


def overhead_rows(suite):
    rows = []
    for name, graph in suite.items():
        lossless = measure_overhead(graph, GistConfig.lossless())
        full = measure_overhead(graph, GistConfig.for_network(name))
        rows.append(
            [
                name,
                lossless.baseline_s * 1000,
                lossless.overhead_frac * 100,
                full.overhead_frac * 100,
            ]
        )
    return rows


def test_fig09_performance_overhead(benchmark, suite):
    rows = benchmark.pedantic(overhead_rows, args=(suite,), rounds=1,
                              iterations=1)
    print_header("Figure 9 — Gist performance overhead "
                 "(% slowdown vs baseline step time)")
    print(format_table(
        ["network", "baseline ms/step", "lossless %", "lossless+lossy %"],
        rows,
    ))
    lossless = [r[2] for r in rows]
    full = [r[3] for r in rows]
    print(f"\naverage lossless = {statistics.mean(lossless):.1f}% "
          f"(paper: 3%)")
    print(f"average full     = {statistics.mean(full):.1f}% (paper: 4%)")
    assert statistics.mean(lossless) < 6.0
    assert statistics.mean(full) < 7.0
    for row in rows:
        assert row[2] < 12.0 and row[3] < 13.0, row[0]
