"""Figure 10: each lossless encoding in isolation (investigation baseline).

The investigation baseline excludes stashed feature maps from memory
sharing so an encoding's effect can be read directly.  Each bar breaks the
footprint into four regions: SSDC-eligible stashes, Binarize-eligible
stashes, other stashes, and immediately consumed data.  Applying an
encoding moves its region's bytes into "immediate" (the FP32 copy) plus a
small encoded stash — the paper's AlexNet SSDC-only bar lands at 1.06x.
"""

from repro.analysis import format_table
from repro.core import GistConfig, build_gist_plan
from repro.memory import StaticAllocator, build_memory_plan

from conftest import print_header

ARMS = [
    ("baseline", None),
    ("ssdc", GistConfig.ssdc_only()),
    ("binarize", GistConfig.binarize_only()),
    ("both", GistConfig.lossless(inplace=False)),
    ("both+inplace", GistConfig.lossless()),
]


def isolation_rows(suite):
    alloc = StaticAllocator()
    rows = []
    for name, graph in suite.items():
        base_plan = build_memory_plan(graph, investigation=True)
        base_bytes = alloc.allocate(base_plan.tensors).total_bytes
        for arm, config in ARMS:
            if config is None:
                gist = build_gist_plan(graph, GistConfig.disabled(),
                                       investigation=True)
            else:
                gist = build_gist_plan(graph, config, investigation=True)
            regions = gist.raw_region_bytes()
            total = alloc.allocate(gist.plan.tensors).total_bytes
            rows.append(
                [
                    name,
                    arm,
                    regions["ssdc"] / 1024**2,
                    regions["binarize"] / 1024**2,
                    regions["other_stashed"] / 1024**2,
                    regions["immediate"] / 1024**2,
                    base_bytes / total,
                ]
            )
    return rows


def test_fig10_lossless_isolation(benchmark, suite):
    rows = benchmark.pedantic(isolation_rows, args=(suite,), rounds=1,
                              iterations=1)
    print_header("Figure 10 — lossless encodings in isolation "
                 "(investigation baseline; region MiB + total MFR)")
    print(format_table(
        ["network", "arm", "ssdc MiB", "binarize MiB", "other MiB",
         "immediate MiB", "MFR"],
        rows,
    ))
    table = {(r[0], r[1]): r for r in rows}
    for name in suite:
        base = table[(name, "baseline")]
        ssdc = table[(name, "ssdc")]
        binz = table[(name, "binarize")]
        both = table[(name, "both")]
        inp = table[(name, "both+inplace")]
        # SSDC shrinks its region and grows "immediate" (the FP32 copy
        # becomes immediately consumed).
        assert ssdc[2] < base[2], name
        assert ssdc[5] >= base[5], name
        # Binarize collapses its region by ~16x or more.
        if base[3] > 1.0:
            assert binz[3] < base[3] / 4, name
        # Progressive arms never hurt, inplace helps the immediate region.
        assert base[6] <= ssdc[6] + 1e-9 or base[6] <= binz[6] + 1e-9
        assert both[6] >= max(ssdc[6], binz[6]) * 0.98, name
        assert inp[6] >= both[6] * 0.98, name
