"""Figure 11: performance effect of the lossless encodings alone.

Binarize slightly *improves* ReLU/pool backward time (smaller reads on a
bandwidth-bound kernel); SSDC pays dense<->CSR conversion passes.  The
combined lossless overhead averages ~3% in the paper.
"""

import statistics

from repro.analysis import format_table
from repro.core import GistConfig
from repro.perf import CostModel, encoding_time_delta, measure_overhead
from repro.core.schedule_builder import build_gist_plan

from conftest import print_header


def lossless_perf_rows(suite):
    cost = CostModel()
    rows = []
    for name, graph in suite.items():
        base_s = cost.step_time(graph).total_s
        plan = build_gist_plan(graph, GistConfig.lossless())
        deltas = encoding_time_delta(plan, cost)
        total = measure_overhead(graph, GistConfig.lossless())
        rows.append(
            [
                name,
                deltas["binarize"] / base_s * 100,
                deltas["ssdc"] / base_s * 100,
                total.overhead_frac * 100,
            ]
        )
    return rows


def test_fig11_lossless_performance(benchmark, suite):
    rows = benchmark.pedantic(lossless_perf_rows, args=(suite,), rounds=1,
                              iterations=1)
    print_header("Figure 11 — lossless encoding performance deltas "
                 "(% of baseline step)")
    print(format_table(
        ["network", "binarize %", "ssdc %", "lossless total %"], rows
    ))
    for name, binarize_pct, ssdc_pct, total_pct in rows:
        # Binarize never slows training down (paper: small improvements).
        assert binarize_pct <= 0.5, name
        # SSDC conversion cost is the dominant lossless overhead.
        assert ssdc_pct >= 0.0, name
    assert statistics.mean(r[3] for r in rows) < 6.0
