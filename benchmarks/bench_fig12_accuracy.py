"""Figure 12: training accuracy under reduced-precision policies.

Substitution (DESIGN.md §2): the paper trains the ImageNet suite; we train
a scaled VGG-shaped network on the synthetic classification task.  The
figure's claim is a *pairwise* one at matched bit width — quantising in
the forward pass (prior work) destroys training where Gist's delayed
reduction does not — and that is exactly what reproduces:

* All-FP8 collapses to chance after one epoch (weight updates vanish on
  the 3-mantissa-bit grid: "the network stops training");
* Gist DPR-FP8 tracks the FP32 baseline at the very same width;
* DPR-FP16/FP10 are indistinguishable from baseline.

At this small scale uniform FP16 still trains (its 10 mantissa bits cover
the whole dynamic range of an 8-class toy problem); the paper's All-FP16
failures need ImageNet-scale depth.  The matched-width FP8 pair is the
load-bearing comparison.
"""

from repro.analysis import format_series
from repro.core import GistConfig
from repro.dtypes import FP8, FP10, FP16
from repro.models import scaled_vgg
from repro.train import (
    GistPolicy,
    GradientOnlyReductionPolicy,
    SGD,
    Trainer,
    UniformReductionPolicy,
    make_synthetic,
)

from conftest import print_header

EPOCHS = 6
NUM_CLASSES = 8


def run_policies():
    train, test = make_synthetic(num_samples=640, num_classes=NUM_CLASSES,
                                 image_size=16, noise=1.2, seed=3)
    arms = [
        ("baseline-fp32", lambda g: None),
        ("all-fp16", lambda g: UniformReductionPolicy(FP16)),
        ("all-fp10", lambda g: UniformReductionPolicy(FP10)),
        ("all-fp8", lambda g: UniformReductionPolicy(FP8)),
        ("grad-only-fp16", lambda g: GradientOnlyReductionPolicy(FP16)),
        ("gist-dpr-fp16", lambda g: GistPolicy(g, GistConfig(dpr_format="fp16"))),
        ("gist-dpr-fp10", lambda g: GistPolicy(g, GistConfig(dpr_format="fp10"))),
        ("gist-dpr-fp8", lambda g: GistPolicy(g, GistConfig(dpr_format="fp8"))),
    ]
    results = {}
    for label, make_policy in arms:
        graph = scaled_vgg(batch_size=32, num_classes=NUM_CLASSES,
                           image_size=16, width=8)
        trainer = Trainer(graph, make_policy(graph),
                          SGD(lr=0.01, momentum=0.9), seed=0)
        results[label] = trainer.train(train, test, epochs=EPOCHS,
                                       label=label)
    return results


def test_fig12_training_accuracy(benchmark):
    results = benchmark.pedantic(run_policies, rounds=1, iterations=1)
    print_header("Figure 12 — accuracy-loss curves (1 - test accuracy) "
                 "per epoch")
    for label, result in results.items():
        print(format_series(f"{label:>15s}", result.accuracy_loss_curve))

    base = results["baseline-fp32"].final_accuracy
    chance = 1.0 / NUM_CLASSES

    # The baseline must learn for this figure to mean anything.
    assert base > 0.8

    # Uniform FP8 stops training (weight updates vanish under the
    # 3-mantissa-bit grid).
    assert results["all-fp8"].final_accuracy < chance + 0.1

    # Delayed FP8 tracks the baseline — the headline claim at equal width.
    assert results["gist-dpr-fp8"].final_accuracy > base - 0.15
    assert (results["gist-dpr-fp8"].final_accuracy
            - results["all-fp8"].final_accuracy) > 0.4

    # DPR never visibly deviates from baseline at any width.
    for label in ("gist-dpr-fp16", "gist-dpr-fp10"):
        assert results[label].final_accuracy > base - 0.15, label

    # Section III-B's stepping stone: gradient-map-only reduction is safe.
    assert results["grad-only-fp16"].final_accuracy > base - 0.15
