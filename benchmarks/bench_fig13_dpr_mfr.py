"""Figure 13: DPR's footprint reduction vs the investigation baseline.

For each network: DPR-FP16 and the smallest accuracy-safe format (FP8 or
FP10, per Section V-D1).  The stashed region compresses by the format
ratio (2x / ~3x / 4x) while "immediate" grows slightly (the FP32 copies),
e.g. the paper's AlexNet numbers: 1.18x with FP16, 1.48x with FP8.
"""

from repro.analysis import format_table
from repro.core import GistConfig, PAPER_DPR_FORMATS, build_gist_plan
from repro.memory import (
    CLASS_ENCODED,
    CLASS_STASHED,
    StaticAllocator,
    build_memory_plan,
)

from conftest import print_header


def _split(plan):
    stashed = immediate = 0
    for t in plan.tensors:
        cls = plan.classify(t)
        if cls in (CLASS_STASHED, CLASS_ENCODED):
            stashed += t.size_bytes
        else:
            immediate += t.size_bytes
    return stashed, immediate


def dpr_rows(suite):
    alloc = StaticAllocator()
    rows = []
    for name, graph in suite.items():
        base_plan = build_memory_plan(graph, investigation=True)
        base_bytes = alloc.allocate(base_plan.tensors).total_bytes
        base_stashed, base_imm = _split(base_plan)
        formats = ["fp16"]
        smallest = PAPER_DPR_FORMATS.get(name, "fp16")
        if smallest != "fp16":
            formats.append(smallest)
        for fmt in formats:
            gist = build_gist_plan(graph, GistConfig.dpr_only(fmt),
                                   investigation=True)
            stashed, imm = _split(gist.plan)
            total = alloc.allocate(gist.plan.tensors).total_bytes
            rows.append(
                [
                    name,
                    fmt,
                    base_stashed / stashed,
                    imm / base_imm,
                    base_bytes / total,
                ]
            )
    return rows


def test_fig13_dpr_footprint(benchmark, suite):
    rows = benchmark.pedantic(dpr_rows, args=(suite,), rounds=1, iterations=1)
    print_header("Figure 13 — DPR MFR vs investigation baseline")
    print(format_table(
        ["network", "format", "stashed compression", "immediate growth",
         "total MFR"],
        rows,
    ))
    for name, fmt, stash_ratio, imm_growth, mfr in rows:
        # Stashed-region compression tracks the format width.
        expected = {"fp16": 2.0, "fp10": 3.0, "fp8": 4.0}[fmt]
        assert expected * 0.85 < stash_ratio <= expected * 1.01, (name, fmt)
        # The FP32 copies grow the immediate region, but boundedly.
        assert 1.0 <= imm_growth < 2.2, (name, fmt)
        assert mfr > 1.05, (name, fmt)
    # Smaller formats must give strictly more total MFR per network.
    by_net = {}
    for name, fmt, _, _, mfr in rows:
        by_net.setdefault(name, {})[fmt] = mfr
    for name, fmts in by_net.items():
        if len(fmts) == 2:
            small = [f for f in fmts if f != "fp16"][0]
            assert fmts[small] > fmts["fp16"], name
