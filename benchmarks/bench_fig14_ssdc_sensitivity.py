"""Figure 14: SSDC compression ratio per layer over training time.

Substitution (DESIGN.md §2): a scaled VGG on the synthetic task, sampling
per-layer ReLU sparsity every few minibatches exactly as the paper samples
every 1000th ImageNet minibatch.  Reproduced shape: compression starts
near 1x (random init produces ~50% sparsity, near CSR's breakeven), rises
within the first minibatches, varies across layers, and stays well above
1x for the rest of training.
"""

from repro.analysis import format_series, format_table
from repro.core import GistConfig, STASH_RELU_CONV, classify_all_stashes
from repro.models import scaled_vgg
from repro.train import (
    GistPolicy,
    SGD,
    Trainer,
    feature_map_elements,
    make_synthetic,
)

from conftest import print_header

EPOCHS = 5
SAMPLE_EVERY = 4


def run_sensitivity():
    graph = scaled_vgg(batch_size=32, num_classes=8, image_size=16, width=8)
    train, test = make_synthetic(num_samples=640, num_classes=8,
                                 image_size=16, noise=1.2, seed=3)
    policy = GistPolicy(graph, GistConfig.lossless())
    trainer = Trainer(graph, policy, SGD(lr=0.05, momentum=0.9), seed=0)
    result = trainer.train(train, test, epochs=EPOCHS,
                           sparsity_every=SAMPLE_EVERY)
    ssdc_layers = [
        graph.node(nid).name
        for nid, info in classify_all_stashes(graph).items()
        if info.stash_class == STASH_RELU_CONV
        and graph.node(nid).kind == "relu"
    ]
    elements = feature_map_elements(graph)
    series = {name: [] for name in ssdc_layers}
    steps = []
    for sample in result.sparsity_samples:
        steps.append(sample.minibatch_index)
        ratios = sample.compression_ratios(elements)
        for name in ssdc_layers:
            series[name].append(ratios[name])
    return steps, series


def test_fig14_ssdc_sensitivity(benchmark):
    steps, series = benchmark.pedantic(run_sensitivity, rounds=1,
                                       iterations=1)
    print_header("Figure 14 — SSDC compression ratio per layer over "
                 "training (sampled minibatches)")
    print(f"sampled minibatch indices: {steps}")
    for name, values in series.items():
        print(format_series(f"{name:>10s}", values, precision=2))
    print(format_table(
        ["layer", "first sample", "last sample", "max"],
        [[n, v[0], v[-1], max(v)] for n, v in series.items()],
    ))
    for name, values in series.items():
        # After warm-up, every SSDC layer compresses.
        late = values[len(values) // 2 :]
        assert min(late) > 1.0, name
        # Sparsity (and hence compression) grows from initialisation.
        assert max(late) > values[0], name
    # Ratios vary across layers (the figure's per-layer spread).
    finals = [v[-1] for v in series.values()]
    assert max(finals) / min(finals) > 1.05
