"""Figure 15: Gist vs CPU-GPU swapping (naive and vDNN).

Paper results reproduced in shape: naive swapping averages ~30% slowdown,
vDNN's prefetch-overlapped swapping ~15% (worst on Inception-class
graphs), and Gist — which never leaves the GPU — ~4%.
"""

import statistics

from repro.analysis import format_table
from repro.core import GistConfig
from repro.perf import measure_overhead, simulate_cdma, simulate_swapping

from conftest import print_header


def comparison_rows(suite):
    rows = []
    for name, graph in suite.items():
        swap = simulate_swapping(graph)
        cdma = simulate_cdma(graph)
        gist = measure_overhead(graph, GistConfig.for_network(name))
        rows.append(
            [
                name,
                swap.naive_overhead * 100,
                swap.vdnn_overhead * 100,
                cdma.vdnn_overhead * 100,
                gist.overhead_frac * 100,
            ]
        )
    return rows


def test_fig15_swapping_comparison(benchmark, suite):
    rows = benchmark.pedantic(comparison_rows, args=(suite,), rounds=1,
                              iterations=1)
    print_header("Figure 15 — slowdown vs baseline (%): naive swap, "
                 "vDNN, Gist")
    print(format_table(["network", "naive %", "vdnn %", "cdma %", "gist %"],
                       rows))
    naive = [r[1] for r in rows]
    vdnn = [r[2] for r in rows]
    cdma = [r[3] for r in rows]
    gist = [r[4] for r in rows]
    print(f"\naverages: naive={statistics.mean(naive):.1f}% (paper 30%), "
          f"vdnn={statistics.mean(vdnn):.1f}% (paper 15%), "
          f"gist={statistics.mean(gist):.1f}% (paper 4%)")
    # The ordering that motivates Gist must hold per network and on
    # average: naive >> vDNN >= CDMA >> Gist-ish.
    for name, n, v, c, g in rows:
        assert n >= v >= c >= 0.0, name
        assert n > g, name
    assert statistics.mean(naive) > 2 * statistics.mean(vdnn)
    assert statistics.mean(cdma) <= statistics.mean(vdnn)
    assert statistics.mean(vdnn) > statistics.mean(gist)
    assert statistics.mean(naive) > 15.0
    assert statistics.mean(gist) < 7.0


def test_fig15_energy_argument(benchmark, suite):
    """Section VI's energy claim, quantified: swapping moves every stashed
    byte across PCIe + two DRAMs; Gist's codecs make on-device passes."""
    from repro.perf import measure_transfer_energy

    def rows():
        out = []
        for name, graph in suite.items():
            r = measure_transfer_energy(graph, GistConfig.for_network(name))
            out.append([name, r.gist_j, r.vdnn_j, r.ratio])
        return out

    data = benchmark.pedantic(rows, rounds=1, iterations=1)
    print_header("Figure 15 companion — data-movement energy per step (J)")
    print(format_table(["network", "gist J", "vdnn J", "vdnn/gist"], data))
    for name, gist_j, vdnn_j, ratio in data:
        assert ratio > 2.0, name
