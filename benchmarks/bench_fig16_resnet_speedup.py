"""Figure 16: training speedup from Gist-enabled larger minibatches on
very deep ResNets (509 / 851 / 1202 layers, the paper's depth sweep).

Gist's footprint reduction lets each depth fit a larger minibatch in the
12 GB card; throughput improves because per-kernel launch overhead (~2400
kernels per step at depth 1202) amortises and occupancy rises.  The paper
reports 22% for ResNet-1202 with speedup growing with depth.
"""

from repro.analysis import format_table
from repro.core import GistConfig
from repro.models import resnet_cifar
from repro.perf import larger_minibatch_speedup

from conftest import print_header

DEPTHS = [509, 851, 1202]


def speedup_rows():
    rows = []
    config = GistConfig.full("fp10")
    for depth in DEPTHS:
        report = larger_minibatch_speedup(
            lambda b, d=depth: resnet_cifar(d, batch_size=b),
            config,
            name=f"resnet-{depth}",
        )
        rows.append(
            [
                report.model,
                report.baseline_batch,
                report.gist_batch,
                report.baseline_throughput,
                report.gist_throughput,
                (report.speedup - 1.0) * 100,
            ]
        )
    return rows


def test_fig16_deep_resnet_speedup(benchmark):
    rows = benchmark.pedantic(speedup_rows, rounds=1, iterations=1)
    print_header("Figure 16 — speedup from largest fitting minibatch "
                 "(12 GB Titan X)")
    print(format_table(
        ["network", "baseline batch", "gist batch", "baseline img/s",
         "gist img/s", "speedup %"],
        rows,
    ))
    speedups = [r[5] for r in rows]
    batch_ratios = [r[2] / r[1] for r in rows]
    # Gist roughly doubles the fitting minibatch at every depth.
    for ratio, row in zip(batch_ratios, rows):
        assert ratio > 1.5, row[0]
    # Speedup is positive everywhere and grows with depth (paper's trend;
    # 22% at depth 1202).
    assert all(s > 0 for s in speedups)
    assert speedups[-1] >= speedups[0]
    # Magnitude note (EXPERIMENTS.md): our simulated baseline already fits
    # minibatch ~137 at depth 1202 and so sits closer to GPU saturation
    # than the paper's testbed; the speedup trend survives, the 22%
    # magnitude does not.
    assert 2.0 < speedups[-1] < 45.0
