"""Figure 17: MFR under dynamic memory allocation (paper Section V-H).

Arms, all measured against the *static* CNTK baseline:
* dynamic allocation alone (paper: ~1.2x average, >1.5x on Overfeat);
* Gist lossless under dynamic allocation (paper: ~1.7x);
* Gist lossless+lossy under dynamic allocation (paper: ~2.6x);
* "optimized software" — no decoded-FP32 staging buffer, as if cuDNN
  consumed encoded data directly (paper: up to 4.1x on AlexNet, ~2.9x
  average).
"""

import statistics

from repro.analysis import format_table
from repro.core import GistConfig, footprint_bytes

from conftest import print_header


def dynamic_rows(suite):
    rows = []
    for name, graph in suite.items():
        static_baseline = footprint_bytes(graph, None)
        dyn_baseline = footprint_bytes(graph, None, dynamic=True)
        lossless = footprint_bytes(graph, GistConfig.lossless(), dynamic=True)
        full_cfg = GistConfig.for_network(name)
        lossy = footprint_bytes(graph, full_cfg, dynamic=True)
        optimized = footprint_bytes(
            graph, full_cfg.with_(optimized_software=True), dynamic=True
        )
        rows.append(
            [
                name,
                static_baseline / dyn_baseline,
                static_baseline / lossless,
                static_baseline / lossy,
                static_baseline / optimized,
            ]
        )
    return rows


def test_fig17_dynamic_allocation(benchmark, suite):
    rows = benchmark.pedantic(dynamic_rows, args=(suite,), rounds=1,
                              iterations=1)
    print_header("Figure 17 — MFR vs static CNTK baseline under dynamic "
                 "allocation")
    print(format_table(
        ["network", "dynamic alone", "dyn+lossless", "dyn+lossless+lossy",
         "dyn+optimized sw"],
        rows,
    ))
    cols = list(zip(*rows))
    means = [statistics.mean(c) for c in cols[1:]]
    print(f"\naverages: dynamic={means[0]:.2f}x (paper 1.2x), "
          f"lossless={means[1]:.2f}x (paper 1.7x), "
          f"lossy={means[2]:.2f}x (paper 2.6x), "
          f"optimized={means[3]:.2f}x (paper 2.9x, max 4.1x)")
    # Arms are strictly ordered for every network.
    for name, dyn, lossless, lossy, opt in rows:
        assert 1.0 <= dyn < lossless < lossy <= opt, name
    # Averages sit in the paper's neighbourhood.
    assert 1.05 < means[0] < 1.6
    assert 1.4 < means[1] < 2.3
    assert 2.0 < means[2] < 3.4
    assert means[3] > means[2]
    assert max(r[4] for r in rows) > 3.0  # the "up to 4.1x" headline
