"""Throughput benchmark for the differential fuzzing battery.

The fuzz smoke batch sits in tier-1, so its cost per seed is a budget
the verify layer must hold: one seed is a full oracle battery (graph
generation, three-policy allocation, three Gist plans, decision-byte
measurement and the codec round-trip sweep).  This benchmark measures

* **graph generation rate** — ``GraphFuzzer`` alone, and
* **verification rate** — ``verify_seed`` end to end,

then gates on the end-to-end rate staying above ``MIN_SEEDS_PER_S``
(set ~5x below the observed ~40/s so only a real structural slowdown,
not machine noise, trips it).  A correctness sanity check rides along:
every benchmarked seed must verify clean.

Writes machine-readable results to ``BENCH_fuzz_throughput.json`` at the
repo root (or the path given as argv[1]) and prints a summary.

Run directly::

    PYTHONPATH=src python benchmarks/bench_fuzz_throughput.py
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.verify import GraphFuzzer, verify_seed

NUM_SEEDS = 60
WARMUP_SEEDS = 5
MIN_SEEDS_PER_S = 8.0


def _time_generation(seeds) -> float:
    t0 = time.perf_counter()
    total_nodes = 0
    for seed in seeds:
        total_nodes += len(GraphFuzzer(seed).graph().nodes)
    elapsed = time.perf_counter() - t0
    return elapsed, total_nodes


def _time_verification(seeds) -> float:
    t0 = time.perf_counter()
    violations = 0
    for seed in seeds:
        violations += len(verify_seed(seed))
    return time.perf_counter() - t0, violations


def main(out_path: str = "BENCH_fuzz_throughput.json") -> dict:
    seeds = range(NUM_SEEDS)
    for seed in range(WARMUP_SEEDS):
        verify_seed(seed)

    gen_s, total_nodes = _time_generation(seeds)
    verify_s, violations = _time_verification(seeds)

    report = {
        "benchmark": "fuzz_throughput",
        "num_seeds": NUM_SEEDS,
        "total_nodes": total_nodes,
        "generation_s": gen_s,
        "verification_s": verify_s,
        "graphs_per_s": NUM_SEEDS / gen_s,
        "seeds_verified_per_s": NUM_SEEDS / verify_s,
        "min_seeds_per_s": MIN_SEEDS_PER_S,
        "violations": violations,
        "gates_passed": (NUM_SEEDS / verify_s >= MIN_SEEDS_PER_S
                         and violations == 0),
    }
    Path(out_path).write_text(json.dumps(report, indent=2) + "\n")

    print(f"graph generation:  {report['graphs_per_s']:8.1f} graphs/s "
          f"({total_nodes / NUM_SEEDS:.1f} nodes/graph)")
    print(f"full battery:      {report['seeds_verified_per_s']:8.1f} seeds/s "
          f"(gate >= {MIN_SEEDS_PER_S:.0f}/s)")
    print(f"violations:        {violations}")
    print(f"gates passed:      {report['gates_passed']}")
    print(f"wrote {out_path}")
    return report


if __name__ == "__main__":
    report = main(
        sys.argv[1] if len(sys.argv) > 1 else "BENCH_fuzz_throughput.json"
    )
    sys.exit(0 if report["gates_passed"] else 1)
