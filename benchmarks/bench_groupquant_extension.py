"""Extension bench: how far can the stash width drop? (follow-on work)

Gist's smallest format is FP8; follow-on research (ActNN) reached 2 bits
with per-group affine quantisation.  This bench trains the scaled VGG
under group-quantised stashes at 8/4/2/1 bits — forward pass exact, error
confined to the backward copies, exactly Gist's delayed-reduction recipe —
and reports accuracy against the stash compression achieved.

Expected shape: INT8/INT4 match the baseline (beating DPR-FP8's 4x
compression), INT2 still trains with some loss, INT1 degrades — the
delayed-error budget is generous but not unlimited.
"""

from repro.analysis import format_table
from repro.encodings import GroupQuantEncoding, GroupQuantPolicy
from repro.models import scaled_vgg
from repro.train import SGD, Trainer, make_synthetic

from conftest import print_header

EPOCHS = 5
BITS = [8, 4, 2, 1]


def run_sweep():
    train_set, test_set = make_synthetic(num_samples=640, num_classes=8,
                                         image_size=16, noise=1.2, seed=3)

    def run(label, policy):
        graph = scaled_vgg(batch_size=32, num_classes=8, image_size=16,
                           width=8)
        trainer = Trainer(graph, policy, SGD(lr=0.01, momentum=0.9), seed=0)
        return trainer.train(train_set, test_set, epochs=EPOCHS, label=label)

    results = {"baseline": run("baseline", None)}
    for bits in BITS:
        results[f"int{bits}"] = run(f"int{bits}",
                                    GroupQuantPolicy(bits, group_size=256))
    return results


def test_groupquant_width_sweep(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print_header("Extension — group-quantised stashes: accuracy vs width")
    rows = []
    n = 1 << 20
    for label, result in results.items():
        if label == "baseline":
            compression = 1.0
        else:
            bits = int(label[3:])
            enc = GroupQuantEncoding(bits, group_size=256)
            compression = 4 * n / enc.encoded_bytes(n)
        rows.append([label, f"{compression:.1f}x", result.final_accuracy])
    print(format_table(["stash format", "compression", "final accuracy"],
                       rows))
    base = results["baseline"].final_accuracy
    assert base > 0.8
    # INT8 and INT4 track the baseline; INT4 compresses ~8x (2x DPR-FP8).
    assert results["int8"].final_accuracy > base - 0.1
    assert results["int4"].final_accuracy > base - 0.1
    # INT1 must do visibly worse than INT4 — the budget runs out.
    assert results["int1"].final_accuracy < results["int4"].final_accuracy
