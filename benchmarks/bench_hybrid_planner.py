"""Benchmark + dominance gate for the hybrid memory planner.

For every model in the registry, builds the five planner arms (pure
gist / pure recompute / pure swap / pure shared-concat / hybrid) under
the same cost budget and gates on two properties per model:

* **dominance** — the hybrid plan's allocated footprint must be <= the
  best pure strategy's.  The planner's argmin fallback makes this
  structural, so a failure means the fallback (or the arm construction
  it compares) broke.
* **budget** — every arm's selected cost must fit the step-time budget,
  and the hybrid plan-safety oracle (chains, liveness, lossy-ancestor
  guard) must report no violations.

Writes machine-readable results to ``BENCH_hybrid_planner.json`` at the
repo root (or the path given as argv[1]) and prints a summary table.

Run directly::

    PYTHONPATH=src python benchmarks/bench_hybrid_planner.py
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.core.policy import (
    HybridPolicy,
    STRATEGY_GIST,
    STRATEGY_HYBRID,
    STRATEGY_RECOMPUTE,
    STRATEGY_SHARED_CONCAT,
    STRATEGY_SWAP,
)
from repro.ioutil import atomic_write_json
from repro.memory.hybrid import build_hybrid_plan
from repro.models import available_models, build_model
from repro.verify import check_hybrid_plan, check_shared_concat

#: Keep the planner input tractable on the largest registry models.
BATCH_SIZE = 32
BUDGET_FRAC = 0.15

PURE_STRATEGIES = (STRATEGY_GIST, STRATEGY_RECOMPUTE, STRATEGY_SWAP,
                   STRATEGY_SHARED_CONCAT)


def bench_model(name: str) -> dict:
    graph = build_model(name, batch_size=BATCH_SIZE)
    hybrid = build_hybrid_plan(
        graph, HybridPolicy(strategy=STRATEGY_HYBRID,
                            cost_budget_frac=BUDGET_FRAC)
    )
    violations = check_hybrid_plan(hybrid) + check_shared_concat(hybrid)
    best_pure = min(hybrid.pure_footprints.values())
    row = {
        "model": name,
        "baseline_bytes": hybrid.baseline_allocated_bytes,
        "hybrid_bytes": hybrid.allocated_bytes,
        "pure_bytes": dict(sorted(hybrid.pure_footprints.items())),
        "fallback_strategy": hybrid.fallback_strategy,
        "decisions": len(hybrid.decisions),
        "overhead_frac": hybrid.overhead_frac,
        "budget_frac": BUDGET_FRAC,
        "footprint_ratio": hybrid.footprint_ratio,
        "oracle_violations": [str(v) for v in violations],
        "dominance_ok": hybrid.allocated_bytes <= best_pure,
        "budget_ok": hybrid.total_cost_s
        <= hybrid.budget_s * (1 + 1e-9) + 1e-12,
    }
    row["ok"] = (row["dominance_ok"] and row["budget_ok"]
                 and not row["oracle_violations"])
    return row


def main(out_path: str = "BENCH_hybrid_planner.json") -> dict:
    rows = [bench_model(name) for name in available_models()]
    report = {
        "benchmark": "hybrid_planner",
        "batch_size": BATCH_SIZE,
        "budget_frac": BUDGET_FRAC,
        "models": rows,
        "gates_passed": all(row["ok"] for row in rows),
    }
    atomic_write_json(Path(out_path), report, sort_keys=False)

    mib = 1024 * 1024
    print(f"{'model':<12} {'baseline':>10} {'hybrid':>10} {'best pure':>10} "
          f"{'ratio':>6} {'ovh':>6}  adopted")
    for row in rows:
        best = min(row["pure_bytes"].values())
        print(f"{row['model']:<12} {row['baseline_bytes'] / mib:9.1f}M "
              f"{row['hybrid_bytes'] / mib:9.1f}M {best / mib:9.1f}M "
              f"{row['footprint_ratio']:5.2f}x {row['overhead_frac']:5.1%}  "
              f"{row['fallback_strategy'] or 'mixed'}"
              f"{'' if row['ok'] else '  <-- GATE FAILED'}")
        for violation in row["oracle_violations"]:
            print(f"    {violation}")
    print(f"gates passed: {report['gates_passed']}")
    print(f"wrote {out_path}")
    return report


if __name__ == "__main__":
    result = main(sys.argv[1] if len(sys.argv) > 1
                  else "BENCH_hybrid_planner.json")
    sys.exit(0 if result["gates_passed"] else 1)
