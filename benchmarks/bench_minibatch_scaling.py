"""Extension bench: how MFR scales with minibatch size.

The paper evaluates at minibatch 64.  Since every feature map scales
linearly with the batch while weights do not, Gist's MFR on the
CNTK-baseline tensor set (which excludes weights) should be essentially
batch-invariant — confirming that the headline 1.8x is not an artifact of
one batch size.  Also reports SSDC sensitivity to the *assumed* sparsity,
bridging the static model to Figure 14's measured values.
"""

from repro.analysis import ConstantSparsity, format_table
from repro.core import Gist, GistConfig
from repro.models import build_model

from conftest import print_header

BATCHES = [16, 32, 64, 128]
SPARSITIES = [0.0, 0.25, 0.5, 0.75, 0.9]


def batch_scaling_rows():
    rows = []
    for batch in BATCHES:
        graph = build_model("vgg16", batch_size=batch)
        mfr = Gist(GistConfig.for_network("vgg16")).measure_mfr(graph).mfr
        rows.append([batch, mfr])
    return rows


def sparsity_sweep_rows():
    graph = build_model("vgg16", batch_size=32)
    rows = []
    for sparsity in SPARSITIES:
        gist = Gist(GistConfig.lossless(), ConstantSparsity(sparsity))
        rows.append([sparsity, gist.measure_mfr(graph).mfr])
    return rows


def test_mfr_batch_invariance(benchmark):
    rows = benchmark.pedantic(batch_scaling_rows, rounds=1, iterations=1)
    print_header("Extension — VGG16 full-Gist MFR vs minibatch size")
    print(format_table(["minibatch", "MFR"], rows))
    mfrs = [r[1] for r in rows]
    # Batch-invariant to within a few percent.
    assert max(mfrs) / min(mfrs) < 1.08
    assert all(m > 1.4 for m in mfrs)


def test_mfr_vs_assumed_sparsity(benchmark):
    rows = benchmark.pedantic(sparsity_sweep_rows, rounds=1, iterations=1)
    print_header("Extension — VGG16 lossless MFR vs assumed ReLU sparsity")
    print(format_table(["sparsity", "MFR"], rows))
    by_s = dict(rows)
    # The interesting structure: at 0% sparsity the Schedule Builder
    # *declines* to apply CSR (it would expand), so only Binarize/inplace
    # contribute; at 25% CSR technically compresses (barely) but its
    # decode staging buffer makes the net footprint WORSE than not
    # applying it — the regime the paper's ~20% effectiveness threshold
    # guards against.  From 50% up, compression wins and grows.
    assert by_s[0.0] > by_s[0.25]
    assert by_s[0.5] < by_s[0.75] < by_s[0.9]
    assert by_s[0.9] > 1.5
