"""Benchmark + determinism gate for the orchestration layer.

Runs the 100-seed fuzz battery serially and through the process pool
and gates on two properties:

* **determinism** — the aggregated ``FuzzReport`` must serialise to
  byte-identical JSON for ``--workers 1`` and ``--workers N``; this is
  the contract that makes parallel verification trustworthy, and it is
  gated unconditionally.
* **speedup** — the parallel run must be >= ``MIN_SPEEDUP`` x faster
  wall-clock.  Sharding 100 independent seeds over N cores is
  embarrassingly parallel, so anything less means the pool is
  serialising somewhere.  The gate only applies when the process may
  actually use ``PARALLEL_WORKERS`` cores — measured via
  :func:`repro.orchestrate.usable_cores`, i.e. the scheduler affinity
  mask *and* the cgroup CPU quota, not ``os.cpu_count()`` — on smaller
  hosts the speedup is recorded but reported as not applicable (a 1-core
  box cannot run 4 workers faster than 1).

Writes machine-readable results to ``BENCH_orchestrate.json`` at the
repo root (or the path given as argv[1]) and prints a summary.

Run directly::

    PYTHONPATH=src python benchmarks/bench_orchestrate.py
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.ioutil import atomic_write_json
from repro.orchestrate import cgroup_cpu_quota, usable_cores
from repro.verify import run_fuzz

NUM_SEEDS = 100
PARALLEL_WORKERS = 4
MIN_SPEEDUP = 2.5
WARMUP_SEEDS = 3


def _timed_fuzz(workers: int):
    start = time.perf_counter()
    report = run_fuzz(NUM_SEEDS, stop_on_first=False, workers=workers)
    return time.perf_counter() - start, report


def main(out_path: str = "BENCH_orchestrate.json") -> dict:
    run_fuzz(WARMUP_SEEDS, stop_on_first=False)  # JIT-ish warmup

    serial_s, serial_report = _timed_fuzz(workers=1)
    parallel_s, parallel_report = _timed_fuzz(workers=PARALLEL_WORKERS)

    serial_bytes = json.dumps(serial_report.to_json(), sort_keys=True)
    parallel_bytes = json.dumps(parallel_report.to_json(), sort_keys=True)
    byte_identical = serial_bytes == parallel_bytes

    cores = usable_cores()
    speedup = serial_s / parallel_s
    speedup_gate_applicable = cores >= PARALLEL_WORKERS
    speedup_ok = (speedup >= MIN_SPEEDUP) if speedup_gate_applicable else True

    report = {
        "benchmark": "orchestrate",
        "num_seeds": NUM_SEEDS,
        "workers": PARALLEL_WORKERS,
        "usable_cores": cores,
        "cgroup_cpu_quota": cgroup_cpu_quota(),
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": speedup,
        "min_speedup": MIN_SPEEDUP,
        "speedup_gate_applicable": speedup_gate_applicable,
        "byte_identical": byte_identical,
        "violations": len(serial_report.violations),
        "failed_units": len(serial_report.failed_units)
        + len(parallel_report.failed_units),
        "gates_passed": (byte_identical and speedup_ok
                         and serial_report.ok and parallel_report.ok),
    }
    atomic_write_json(Path(out_path), report, sort_keys=False)

    print(f"serial ({NUM_SEEDS} seeds):    {serial_s:8.2f} s")
    print(f"parallel ({PARALLEL_WORKERS} workers): {parallel_s:8.2f} s"
          f"  ({speedup:.2f}x, gate >= {MIN_SPEEDUP}x"
          f"{'' if speedup_gate_applicable else f' n/a on {cores} core(s)'})")
    print(f"byte-identical:       {byte_identical}")
    print(f"gates passed:         {report['gates_passed']}")
    print(f"wrote {out_path}")
    return report


if __name__ == "__main__":
    result = main(sys.argv[1] if len(sys.argv) > 1
                  else "BENCH_orchestrate.json")
    sys.exit(0 if result["gates_passed"] else 1)
