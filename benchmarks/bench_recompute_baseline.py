"""Recompute (checkpointing) baseline vs Gist — paper Section II-B.

The paper dismisses recomputation as a general alternative because "the
largest layers are usually the ones that also take the longest to
recompute".  This bench quantifies that: sqrt(N) segment checkpointing on
the chain networks reaches MFRs comparable to Gist-lossless, but at
20-35% step-time overhead versus Gist's low single digits.
"""

from repro.analysis import format_table
from repro.core import Gist, GistConfig
from repro.memory import StaticAllocator, build_memory_plan, build_recompute_plan
from repro.perf import measure_overhead

from conftest import print_header

CHAIN_NETWORKS = ["alexnet", "overfeat", "vgg16"]


def comparison_rows(suite):
    alloc = StaticAllocator()
    rows = []
    for name in CHAIN_NETWORKS:
        graph = suite[name]
        base = alloc.allocate(build_memory_plan(graph).tensors).total_bytes
        recompute = build_recompute_plan(graph)
        rec_bytes = alloc.allocate(recompute.plan.tensors).total_bytes
        gist = Gist(GistConfig.for_network(name)).measure_mfr(graph)
        gist_ov = measure_overhead(graph, GistConfig.for_network(name))
        rows.append(
            [
                name,
                base / rec_bytes,
                recompute.overhead_frac(graph) * 100,
                gist.mfr,
                gist_ov.overhead_frac * 100,
            ]
        )
    return rows


def test_recompute_vs_gist(benchmark, suite):
    rows = benchmark.pedantic(comparison_rows, args=(suite,), rounds=1,
                              iterations=1)
    print_header("Recompute baseline (sqrt(N) checkpointing) vs Gist")
    print(format_table(
        ["network", "recompute MFR", "recompute ov %", "gist MFR",
         "gist ov %"],
        rows,
    ))
    for name, rec_mfr, rec_ov, gist_mfr, gist_ov in rows:
        # Both reduce memory...
        assert rec_mfr > 1.2, name
        assert gist_mfr > 1.2, name
        # ...but recompute pays an order of magnitude more time.
        assert rec_ov > 15.0, name
        assert gist_ov < 10.0, name
        assert rec_ov > 5 * gist_ov, name
