"""Benchmark + gate for the graph-rewrite passes.

For every model in the registry, applies the default rewrite pipeline
(fusion, pool-argmax, CSE, dead-stash elimination, inplace) and measures
the *pre-plan stash liveness* — the raw FP32 bytes of stashed feature
maps the training schedule would keep live before any encoding/planning
runs.  Gates on two properties:

* **reduction** — the rewritten graph's stashed bytes must be *strictly*
  lower than the original's on at least half the registry models.  The
  fused Conv+ReLU nodes drop the separately-stashed activation output,
  and pool-argmax drops the pool's X/Y pair, so a miss means a pass
  regressed.
* **equivalence** — on the cheap scaled models the rewrite-equivalence
  oracle must report a byte-identical two-step training run (losses and
  gradients) between the original and rewritten graphs.

Writes machine-readable results to ``BENCH_rewrite.json`` at the repo
root (or the path given as argv[1]) and prints a summary table.

Run directly::

    PYTHONPATH=src python benchmarks/bench_rewrite.py
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.core.analysis import classify_all_stashes, stash_bytes_by_class
from repro.ioutil import atomic_write_json
from repro.models import available_models, build_model
from repro.rewrite import apply_passes, check_rewrite_equivalence

#: Static analysis is cheap; keep the batch the trace goldens use.
BATCH_SIZE = 32

#: Models small enough to actually train two steps for the runtime gate.
RUNTIME_MODELS = ("tiny_cnn", "scaled_vgg", "scaled_alexnet")


def bench_model(name: str) -> dict:
    graph = build_model(name, batch_size=BATCH_SIZE)
    before_bytes = sum(stash_bytes_by_class(graph).values())
    before_count = len(classify_all_stashes(graph))

    result = apply_passes(graph)
    rewritten = result.graph
    after_bytes = sum(stash_bytes_by_class(rewritten).values())
    after_count = len(classify_all_stashes(rewritten))

    row = {
        "model": name,
        "stash_bytes_before": before_bytes,
        "stash_bytes_after": after_bytes,
        "stash_count_before": before_count,
        "stash_count_after": after_count,
        "pass_changes": {s.name: s.changes for s in result.stats},
        "rounds": result.rounds,
        "reduced": after_bytes < before_bytes,
        "equivalence_violations": [],
    }
    if name in RUNTIME_MODELS:
        violations = check_rewrite_equivalence(graph, seed=0,
                                               rewrite_result=result)
        row["equivalence_violations"] = [str(v) for v in violations]
    return row


def main(out_path: str = "BENCH_rewrite.json") -> dict:
    rows = [bench_model(name) for name in available_models()]
    reduced = sum(1 for row in rows if row["reduced"])
    equivalence_ok = not any(row["equivalence_violations"] for row in rows)
    report = {
        "benchmark": "rewrite_passes",
        "batch_size": BATCH_SIZE,
        "models": rows,
        "models_reduced": reduced,
        "reduction_gate": reduced * 2 >= len(rows),
        "equivalence_gate": equivalence_ok,
        "gates_passed": reduced * 2 >= len(rows) and equivalence_ok,
    }
    atomic_write_json(Path(out_path), report, sort_keys=False)

    mib = 1024 * 1024
    print(f"{'model':<14} {'stash before':>12} {'stash after':>12} "
          f"{'maps':>9} {'changes':>8}")
    for row in rows:
        changes = sum(row["pass_changes"].values())
        maps = f"{row['stash_count_before']}->{row['stash_count_after']}"
        flag = "" if row["reduced"] else "  (no reduction)"
        print(f"{row['model']:<14} {row['stash_bytes_before'] / mib:11.1f}M "
              f"{row['stash_bytes_after'] / mib:11.1f}M {maps:>9} "
              f"{changes:>8}{flag}")
        for violation in row["equivalence_violations"]:
            print(f"    {violation}")
    print(f"models with strict stash reduction: {reduced}/{len(rows)}")
    print(f"gates passed: {report['gates_passed']}")
    print(f"wrote {out_path}")
    return report


if __name__ == "__main__":
    result = main(sys.argv[1] if len(sys.argv) > 1 else "BENCH_rewrite.json")
    sys.exit(0 if result["gates_passed"] else 1)
