"""Benchmark + gate for the training-service content-addressed cache.

Measures the serve layer's warm-path win: a batch of job specs is run
cold (cache empty — every job is planned/fuzzed on the pool), then the
*identical* batch is resubmitted warm (every job answered from the
content-addressed result cache).  Gates on two properties:

* **speedup** — the warm pass must be >= ``MIN_SPEEDUP`` x faster than
  the cold pass.  The warm path is pure fingerprint hashing plus one
  small JSON read per job, so anything less means cache lookups are
  doing real work.
* **bit-identity** — every warm result digest must equal its cold
  digest, and the warm pass must schedule zero pool work.  A cache that
  changes answers (or silently recomputes) is worse than no cache.

Writes machine-readable results to ``BENCH_serve.json`` at the repo
root (or the path given as argv[1]) and prints a summary.

Run directly::

    PYTHONPATH=src python benchmarks/bench_serve.py
"""

from __future__ import annotations

import sys
import tempfile
import time
from pathlib import Path

from repro.ioutil import atomic_write_json
from repro.serve import JobService

MIN_SPEEDUP = 5.0

#: The benchmark batch: planner jobs across models/budgets plus a fuzz
#: battery — heavy enough that the cold pass measures real work.
JOBS = [
    {"kind": "plan", "model": "tiny_cnn", "batch_size": 8, "name": "p-tiny"},
    {"kind": "plan", "model": "tiny_cnn", "batch_size": 8, "budget": 0.3,
     "name": "p-tiny-b30"},
    {"kind": "plan", "model": "scaled_vgg", "batch_size": 8,
     "name": "p-vgg"},
    {"kind": "plan", "model": "scaled_vgg", "batch_size": 8,
     "strategy": "recompute", "budget": 0.3, "name": "p-vgg-rec"},
    {"kind": "fuzz", "seeds": 10, "name": "fuzz-10"},
    {"kind": "train", "model": "tiny_cnn", "batch_size": 8, "steps": 2,
     "num_samples": 16, "name": "train-tiny"},
]


def _timed_pass(service: JobService):
    for job in JOBS:
        service.submit(job)
    start = time.perf_counter()
    report = service.run_pending()
    return time.perf_counter() - start, report


def main(out_path: str = "BENCH_serve.json") -> dict:
    with tempfile.TemporaryDirectory() as state_dir:
        service = JobService(state_dir)

        cold_s, cold = _timed_pass(service)
        warm_s, warm = _timed_pass(service)

        assert cold.ok, f"cold pass failed: {cold.to_json()}"
        assert warm.ok, f"warm pass failed: {warm.to_json()}"

        cold_digests = {job.fingerprint: job.digest for job in cold.jobs}
        warm_digests = {job.fingerprint: job.digest for job in warm.jobs}
        bit_identical = cold_digests == warm_digests
        speedup = cold_s / warm_s if warm_s > 0 else float("inf")

        result = {
            "benchmark": "serve_cache_warm_path",
            "jobs": len(JOBS),
            "cold_s": round(cold_s, 4),
            "warm_s": round(warm_s, 4),
            "speedup": round(speedup, 2),
            "min_speedup": MIN_SPEEDUP,
            "cold_scheduled": cold.scheduled,
            "warm_scheduled": warm.scheduled,
            "warm_result_cache_hits": warm.result_cache_hits,
            "bit_identical": bit_identical,
            "cache": service.cache.stats(),
            "digests": cold_digests,
        }

    out = Path(out_path)
    atomic_write_json(out, result)

    print(f"serve cache warm path: {len(JOBS)} jobs")
    print(f"  cold pass: {cold_s:.3f}s ({cold.scheduled} scheduled)")
    print(f"  warm pass: {warm_s:.3f}s ({warm.scheduled} scheduled, "
          f"{warm.result_cache_hits} result-cache hits)")
    print(f"  speedup: {speedup:.1f}x (gate: >= {MIN_SPEEDUP}x)")
    print(f"  bit-identical digests: {bit_identical}")
    print(f"wrote {out}")

    assert bit_identical, "warm digests diverged from cold digests"
    assert warm.scheduled == 0, "warm pass scheduled pool work"
    assert warm.result_cache_hits == len(JOBS), "not every job hit"
    assert speedup >= MIN_SPEEDUP, (
        f"warm-path speedup {speedup:.1f}x below the {MIN_SPEEDUP}x gate")
    return result


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "BENCH_serve.json")
