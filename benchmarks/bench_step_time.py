"""Step-time A/B benchmark for the shape-static kernel plan layer.

Trains the scaled VGG for a handful of SGD steps twice per stash policy —
once with the kernel plan cache + workspace arena enabled, once with the
original per-call kernels — and reports the median forward+backward step
time of each mode.  Before timing is trusted, the two modes are checked
for *bit-identical* training: every step's loss and every parameter
gradient must match exactly, so the speedup is a pure scheduling win with
zero numerical drift.

Writes machine-readable results to ``BENCH_step_time.json`` at the repo
root (or the path given as argv[1]) and prints a human-readable table.

Run directly::

    PYTHONPATH=src python benchmarks/bench_step_time.py
"""

from __future__ import annotations

import json
import statistics
import sys
import time
from pathlib import Path

import numpy as np

from repro.kernels.plan import clear_plan_cache, plan_cache_stats
from repro.models import scaled_vgg
from repro.train import BaselinePolicy, GistPolicy, GraphExecutor, SGD

BATCH = 32
WARMUP_STEPS = 2
TIMED_STEPS = 10
REQUIRED_SPEEDUP = 1.5


def _run_mode(policy_name: str, use_plans: bool, images, labels):
    """Train for WARMUP + TIMED steps; return (step times, per-step trace)."""
    graph = scaled_vgg(batch_size=BATCH)
    policy = (GistPolicy(graph) if policy_name == "gist"
              else BaselinePolicy())
    # Pin the plan-cache arm explicitly: this benchmark isolates the
    # plan layer, so the measured-autotuner dispatch (whose arms are
    # timed per-arm by bench_backends.py) must not float the A side.
    ex = GraphExecutor(graph, policy=policy, seed=0,
                       use_kernel_plans=use_plans,
                       kernel_backend="numpy-plan" if use_plans else None)
    opt = SGD(lr=0.01, momentum=0.9)
    times, trace = [], []
    for step in range(WARMUP_STEPS + TIMED_STEPS):
        t0 = time.perf_counter()
        loss = ex.forward(images, labels)
        grads = ex.backward()
        elapsed = time.perf_counter() - t0
        opt.step(ex.parameters(), grads)
        if step >= WARMUP_STEPS:
            times.append(elapsed)
        trace.append((loss, {k: v.copy() for k, v in grads.items()}))
    return times, trace


def _bit_identical(trace_a, trace_b) -> bool:
    for (loss_a, grads_a), (loss_b, grads_b) in zip(trace_a, trace_b):
        if loss_a != loss_b or grads_a.keys() != grads_b.keys():
            return False
        if any(not np.array_equal(grads_a[k], grads_b[k]) for k in grads_a):
            return False
    return True


def main(out_path: str = "BENCH_step_time.json") -> dict:
    rng = np.random.default_rng(0)
    images = rng.normal(0, 1, (BATCH, 3, 32, 32)).astype(np.float32)
    labels = rng.integers(0, 10, BATCH)

    clear_plan_cache()
    results = {}
    for policy_name in ("baseline", "gist"):
        on_times, on_trace = _run_mode(policy_name, True, images, labels)
        off_times, off_trace = _run_mode(policy_name, False, images, labels)
        median_on = statistics.median(on_times)
        median_off = statistics.median(off_times)
        results[policy_name] = {
            "cache_on_step_ms": [t * 1000 for t in on_times],
            "cache_off_step_ms": [t * 1000 for t in off_times],
            "median_on_ms": median_on * 1000,
            "median_off_ms": median_off * 1000,
            "speedup": median_off / median_on,
            "bit_identical": _bit_identical(on_trace, off_trace),
        }

    report = {
        "benchmark": "step_time",
        "network": "scaled_vgg",
        "batch_size": BATCH,
        "warmup_steps": WARMUP_STEPS,
        "timed_steps": TIMED_STEPS,
        "required_speedup": REQUIRED_SPEEDUP,
        "results": results,
        "plan_cache": plan_cache_stats(),
    }
    Path(out_path).write_text(json.dumps(report, indent=2) + "\n")

    print(f"{'policy':<10} {'cache on':>10} {'cache off':>10} "
          f"{'speedup':>8} {'bit-identical':>14}")
    for name, r in results.items():
        print(f"{name:<10} {r['median_on_ms']:>8.1f}ms "
              f"{r['median_off_ms']:>8.1f}ms {r['speedup']:>7.2f}x "
              f"{str(r['bit_identical']):>14}")
    print(f"wrote {out_path}")
    return report


if __name__ == "__main__":
    report = main(sys.argv[1] if len(sys.argv) > 1 else "BENCH_step_time.json")
    ok = all(
        r["bit_identical"] and r["speedup"] >= REQUIRED_SPEEDUP
        for r in report["results"].values()
    )
    sys.exit(0 if ok else 1)
