"""Table I: which technique targets which data structure.

Regenerates the paper's technique table from the Schedule Builder's actual
decisions across the whole suite: every ReLU-Pool map gets Binarize, every
ReLU-Conv map gets SSDC, remaining stashed maps get DPR, and inplace
computation removes immediately consumed conv outputs.
"""

from collections import Counter

from repro.analysis import format_table
from repro.core import (
    ENC_BINARIZE,
    ENC_DPR,
    ENC_SSDC,
    GistConfig,
    STASH_OTHER,
    STASH_RELU_CONV,
    STASH_RELU_POOL,
    build_gist_plan,
)
from repro.encodings import inplace_eligible_edges

from conftest import print_header


def decision_matrix(suite):
    counts = Counter()
    inplace_edges = 0
    for name, graph in suite.items():
        plan = build_gist_plan(graph, GistConfig.for_network(name))
        for d in plan.decisions.values():
            counts[(d.stash_class, d.encoding)] += 1
        inplace_edges += len(inplace_eligible_edges(graph))
    return counts, inplace_edges


def test_table1_technique_mapping(benchmark, suite):
    counts, inplace_edges = benchmark.pedantic(
        decision_matrix, args=(suite,), rounds=1, iterations=1
    )
    print_header("Table I — technique <-> target data structure "
                 "(decision counts across the six-network suite)")
    rows = [
        ["ReLU-Pool feature map", "Binarize (lossless)",
         counts[(STASH_RELU_POOL, ENC_BINARIZE)]],
        ["ReLU-Conv feature map", "SSDC (lossless)",
         counts[(STASH_RELU_CONV, ENC_SSDC)]],
        ["ReLU-Conv below breakeven", "DPR fallback",
         counts[(STASH_RELU_CONV, ENC_DPR)]],
        ["Other stashed feature map", "DPR (lossy)",
         counts[(STASH_OTHER, ENC_DPR)]],
        ["Immediately consumed", "Inplace computation", inplace_edges],
    ]
    print(format_table(["target data structure", "technique", "count"], rows))
    # Table I's mapping must be exclusive: no cross-class assignments.
    assert counts[(STASH_RELU_POOL, ENC_SSDC)] == 0
    assert counts[(STASH_RELU_POOL, ENC_DPR)] == 0
    assert counts[(STASH_OTHER, ENC_BINARIZE)] == 0
    assert counts[(STASH_OTHER, ENC_SSDC)] == 0
    # And every technique fires somewhere in the suite.
    assert counts[(STASH_RELU_POOL, ENC_BINARIZE)] > 0
    assert counts[(STASH_RELU_CONV, ENC_SSDC)] > 0
    assert counts[(STASH_OTHER, ENC_DPR)] > 0
    assert inplace_edges > 0
