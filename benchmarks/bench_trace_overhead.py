"""Observer-cost benchmark and gate for the step-trace diagnostics layer.

Measures the two costs the diagnostics layer promises to keep small:

* **Detached is free** (< 1%): the ``tracer is not None`` guards on the
  executor's hot path must not add measurable cost.
* **Attached is cheap** (< 10%): full per-node/per-codec tracing must stay
  a small fraction of step time.

Methodology.  One executor runs the tiny CNN with the FP32 baseline
policy (stationary step cost — Gist's SSDC encode time drifts with
activation sparsity as parameters train, which would contaminate the
floor).  The tracer is attached on odd steps and detached on even steps,
so every comparison is within a single instance — separate executors
differ by 1-3% from memory layout alone — and adjacent in time, so
machine drift cancels in per-pair deltas.  The detached-cost figure is
the median paired delta between interleaved halves of the detached
steps, i.e. two samplings of *identical* code; it measures the guard
cost plus the machine's noise floor.  Because shared-machine noise can
exceed 1% in any single measurement, the gate retries the measurement a
few times and passes if any attempt meets both bounds: a genuine
regression fails every attempt, noise does not.

Tracing must also never perturb the numbers: a traced and an untraced
training run are checked for bit-identical losses and gradients, which
is exact, not statistical.

Writes machine-readable results to ``BENCH_trace_overhead.json`` at the
repo root (or the path given as argv[1]) and prints a summary.

Run directly::

    PYTHONPATH=src python benchmarks/bench_trace_overhead.py
"""

from __future__ import annotations

import json
import statistics
import sys
import time
from pathlib import Path

import numpy as np

from repro.diagnostics import StepTracer
from repro.models import tiny_cnn
from repro.train import BaselinePolicy, GistPolicy, GraphExecutor, SGD

BATCH = 16
WARMUP_STEPS = 20
TIMED_STEPS = 600  # alternating detached/attached
MAX_OFF_OVERHEAD = 0.01
MAX_ON_OVERHEAD = 0.10
MAX_ATTEMPTS = 5


def _batch(rng):
    images = rng.normal(0, 1, (BATCH, 3, 8, 8)).astype(np.float32)
    labels = rng.integers(0, 4, BATCH)
    return images, labels


def _measure(images, labels) -> dict:
    """One alternating-steps measurement; returns the overhead figures."""
    graph = tiny_cnn(batch_size=BATCH, num_classes=4, image_size=8)
    executor = GraphExecutor(graph, BaselinePolicy(), seed=0)
    optimizer = SGD(lr=0.01, momentum=0.9)
    tracer = StepTracer(keep_events=False)
    off, on = [], []
    for step in range(WARMUP_STEPS + TIMED_STEPS):
        executor.tracer = tracer if step % 2 else None
        t0 = time.perf_counter()
        executor.forward(images, labels)
        grads = executor.backward()
        elapsed = time.perf_counter() - t0
        optimizer.step(executor.parameters(), grads)
        if step >= WARMUP_STEPS:
            (on if step % 2 else off).append(elapsed)
    # Interleaved halves of the detached steps run identical code; their
    # paired deltas measure guard cost + noise floor.
    off_even, off_odd = off[0::2], off[1::2]
    pairs = min(len(off_even), len(off_odd))
    off_overhead = abs(statistics.median(
        (b - a) / a for a, b in zip(off_even[:pairs], off_odd[:pairs])
    ))
    on_overhead = statistics.median(
        (b - a) / a for a, b in zip(off, on)
    )
    return {
        "median_off_ms": statistics.median(off) * 1000,
        "median_on_ms": statistics.median(on) * 1000,
        "tracer_off_overhead": off_overhead,
        "tracer_on_overhead": on_overhead,
    }


def _bit_identical(images, labels, steps: int = 3) -> bool:
    """Train traced and untraced executors; require identical numbers."""
    traces = []
    for tracer in (None, StepTracer()):
        graph = tiny_cnn(batch_size=BATCH, num_classes=4, image_size=8)
        executor = GraphExecutor(graph, GistPolicy(graph), seed=0,
                                 tracer=tracer)
        optimizer = SGD(lr=0.01, momentum=0.9)
        trace = []
        for _ in range(steps):
            loss = executor.forward(images, labels)
            grads = executor.backward()
            optimizer.step(executor.parameters(), grads)
            trace.append((loss, {k: v.copy() for k, v in grads.items()}))
        traces.append(trace)
    for (loss_a, grads_a), (loss_b, grads_b) in zip(*traces):
        if loss_a != loss_b or grads_a.keys() != grads_b.keys():
            return False
        if any(not np.array_equal(grads_a[k], grads_b[k]) for k in grads_a):
            return False
    return True


def main(out_path: str = "BENCH_trace_overhead.json") -> dict:
    rng = np.random.default_rng(0)
    images, labels = _batch(rng)

    attempts = []
    passed = False
    for _ in range(MAX_ATTEMPTS):
        figures = _measure(images, labels)
        attempts.append(figures)
        passed = (
            figures["tracer_off_overhead"] < MAX_OFF_OVERHEAD
            and figures["tracer_on_overhead"] < MAX_ON_OVERHEAD
        )
        if passed:
            break
    best = min(attempts, key=lambda f: f["tracer_off_overhead"])
    bit_identical = _bit_identical(images, labels)

    report = {
        "benchmark": "trace_overhead",
        "network": "tiny_cnn",
        "batch_size": BATCH,
        "warmup_steps": WARMUP_STEPS,
        "timed_steps": TIMED_STEPS,
        "max_off_overhead": MAX_OFF_OVERHEAD,
        "max_on_overhead": MAX_ON_OVERHEAD,
        "attempts": attempts,
        "gates_passed": passed,
        "bit_identical": bit_identical,
        **best,
    }
    Path(out_path).write_text(json.dumps(report, indent=2) + "\n")

    print(f"step time:      {best['median_off_ms']:.3f} ms detached / "
          f"{best['median_on_ms']:.3f} ms attached")
    print(f"tracer off:     {best['tracer_off_overhead']:+.2%} "
          f"(gate < {MAX_OFF_OVERHEAD:.0%})")
    print(f"tracer on:      {best['tracer_on_overhead']:+.2%} "
          f"(gate < {MAX_ON_OVERHEAD:.0%})")
    print(f"attempts:       {len(attempts)} (pass: {passed})")
    print(f"bit-identical:  {bit_identical}")
    print(f"wrote {out_path}")
    return report


if __name__ == "__main__":
    report = main(
        sys.argv[1] if len(sys.argv) > 1 else "BENCH_trace_overhead.json"
    )
    sys.exit(0 if report["gates_passed"] and report["bit_identical"] else 1)
