"""Shared fixtures for the paper-reproduction benchmark harness.

Every ``bench_fig*`` file regenerates one table or figure from the paper's
evaluation section and prints the same rows/series the figure shows, so
``pytest benchmarks/ --benchmark-only`` doubles as the reproduction log.
"""

from __future__ import annotations

import pytest

from repro.models import PAPER_SUITE, build_model

#: Minibatch used throughout the paper's memory studies (Section II).
PAPER_MINIBATCH = 64


@pytest.fixture(scope="session")
def suite():
    """The paper's six networks at minibatch 64, built once."""
    return {name: build_model(name, batch_size=PAPER_MINIBATCH)
            for name in PAPER_SUITE}


def print_header(title: str) -> None:
    """Banner separating each figure's output in the bench log."""
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}")
