#!/usr/bin/env python
"""Extending the library: plug in your own stashed-map encoding.

Implements **Top-K sparsification** — keep only the k% largest-magnitude
values of a stashed map (a lossy cousin of SSDC used by gradient
compression literature) — then evaluates it exactly like a built-in
encoding: accuracy impact via the training runtime, and bytes via the
same measurement hooks.

This is the template for downstream experimentation: one Encoding
subclass + one StashPolicy gives a full paper-style evaluation.

Run:  python examples/custom_encoding.py
Set REPRO_FAST=1 for a seconds-long smoke run (fewer sweeps/epochs).
"""

import os
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.analysis import format_table
from repro.encodings import Encoding, IdentityEncoding
from repro.models import scaled_vgg
from repro.train import SGD, StashPolicy, Trainer, make_synthetic

FAST = bool(os.environ.get("REPRO_FAST"))
KEEP_SWEEP = (1.0, 0.25) if FAST else (1.0, 0.5, 0.25, 0.10)
EPOCHS = 1 if FAST else 4
NUM_SAMPLES = 128 if FAST else 640


@dataclass(frozen=True)
class TopKTensor:
    """Indices and values of the kept entries, plus the original shape."""

    indices: np.ndarray   # int32
    values: np.ndarray    # float32
    shape: Tuple[int, ...]

    @property
    def nbytes(self) -> int:
        return self.indices.nbytes + self.values.nbytes


class TopKEncoding(Encoding):
    """Keep the top ``keep_fraction`` of values by magnitude; zero the rest."""

    lossless = False

    def __init__(self, keep_fraction: float = 0.25):
        if not 0.0 < keep_fraction <= 1.0:
            raise ValueError(f"keep_fraction must be in (0, 1], got {keep_fraction}")
        self.keep_fraction = keep_fraction
        self.name = f"topk-{keep_fraction:.2f}"

    def encoded_bytes(self, num_elements: int, **ctx) -> int:
        kept = max(1, int(num_elements * self.keep_fraction))
        return kept * 8  # 4-byte index + 4-byte value

    def encode(self, x: np.ndarray) -> TopKTensor:
        flat = np.asarray(x, dtype=np.float32).ravel()
        kept = max(1, int(flat.size * self.keep_fraction))
        idx = np.argpartition(np.abs(flat), -kept)[-kept:].astype(np.int32)
        return TopKTensor(idx, flat[idx], tuple(x.shape))

    def decode(self, encoded: TopKTensor) -> np.ndarray:
        flat = np.zeros(int(np.prod(encoded.shape)), dtype=np.float32)
        flat[encoded.indices] = encoded.values
        return flat.reshape(encoded.shape)

    def measure_bytes(self, encoded: TopKTensor) -> int:
        return encoded.nbytes


class TopKPolicy(StashPolicy):
    """Apply Top-K to every stashed feature map."""

    def __init__(self, keep_fraction: float):
        self._encoding = TopKEncoding(keep_fraction)
        self._identity = IdentityEncoding()

    def encoding_for(self, graph, node_id):
        if node_id == graph.input_id:
            return self._identity  # keep the raw images exact
        return self._encoding


def main() -> None:
    train_set, test_set = make_synthetic(
        num_samples=NUM_SAMPLES, num_classes=8, image_size=16, noise=1.2,
        seed=3,
    )
    rows = []
    for keep in KEEP_SWEEP:
        graph = scaled_vgg(batch_size=32, num_classes=8, image_size=16,
                           width=8)
        policy = None if keep == 1.0 else TopKPolicy(keep)
        trainer = Trainer(graph, policy, SGD(lr=0.01, momentum=0.9), seed=0)
        result = trainer.train(train_set, test_set, epochs=EPOCHS,
                               label=f"top-{keep:.0%}")
        compression = 4.0 / (8.0 * keep)  # FP32 bytes / topk bytes
        rows.append([f"{keep:.0%}", f"{compression:.1f}x",
                     f"{result.final_accuracy:.1%}"])
    print(format_table(
        ["kept values", "stash compression", "final accuracy"],
        rows,
        title=f"Top-K stash sparsification on scaled VGG ({EPOCHS} epochs):",
    ))
    print("\nTakeaway: backward-only Top-K tolerates aggressive dropping —"
          "\nthe same delayed-error principle that makes DPR work.")


if __name__ == "__main__":
    main()
