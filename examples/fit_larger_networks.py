#!/usr/bin/env python
"""Fit deeper networks / larger minibatches into a fixed memory budget.

The paper's Section V-G use case: on a 12 GB Titan X, Gist's footprint
reduction buys either a larger minibatch (higher GPU utilisation and
throughput) or a deeper network at the same minibatch.

Run:  python examples/fit_larger_networks.py
Set REPRO_FAST=1 for a seconds-long smoke run (shallow depths only).
"""

import os

from repro.analysis import format_table
from repro.core import GistConfig
from repro.models import resnet_cifar
from repro.perf import (
    TITAN_X_MAXWELL,
    deepest_trainable,
    larger_minibatch_speedup,
)

FAST = bool(os.environ.get("REPRO_FAST"))
#: ResNet depths must be 6n+2 (three stages of n residual blocks).
DEPTHS = (14, 20) if FAST else (110, 509, 1202)
DEEPEST_START = 8 if FAST else 104
DEEPEST_STRIDE = 30 if FAST else 96


def main() -> None:
    config = GistConfig.full("fp10")

    print("Largest minibatch fitting a 12 GB Titan X, baseline vs Gist:\n")
    rows = []
    for depth in DEPTHS:
        report = larger_minibatch_speedup(
            lambda b, d=depth: resnet_cifar(d, batch_size=b),
            config,
            name=f"resnet-{depth}",
        )
        rows.append(
            [
                report.model,
                report.baseline_batch,
                report.gist_batch,
                f"{report.gist_batch / report.baseline_batch:.1f}x",
                f"{(report.speedup - 1) * 100:.1f}%",
            ]
        )
    print(format_table(
        ["network", "baseline batch", "gist batch", "batch ratio",
         "throughput gain"],
        rows,
    ))

    print("\nOr go deeper at a fixed minibatch of 256:")
    factory = lambda depth: resnet_cifar(depth, batch_size=256)
    base_depth = deepest_trainable(factory, None, device=TITAN_X_MAXWELL,
                                   start=DEEPEST_START,
                                   stride=DEEPEST_STRIDE)
    gist_depth = deepest_trainable(factory, config, device=TITAN_X_MAXWELL,
                                   start=DEEPEST_START,
                                   stride=DEEPEST_STRIDE)
    print(f"  baseline deepest trainable ResNet: ~{base_depth} layers")
    print(f"  with Gist:                         ~{gist_depth} layers "
          f"({gist_depth / base_depth:.1f}x deeper)")


if __name__ == "__main__":
    main()
