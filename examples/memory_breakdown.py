#!/usr/bin/env python
"""Where does training memory actually go?  (Paper Figures 1 and 3.)

Walks the six-network suite at minibatch 64 and prints, per network, the
data-structure breakdown and the stashed-feature-map classes that make
Gist's layer-specific encodings possible.

Run:  python examples/memory_breakdown.py
"""

from repro.analysis import format_breakdown
from repro.core import (
    STASH_OTHER,
    STASH_RELU_CONV,
    STASH_RELU_POOL,
    stash_bytes_by_class,
)
from repro.memory import GiB, build_memory_plan
from repro.models import PAPER_SUITE, build_model


def main() -> None:
    for name in PAPER_SUITE:
        graph = build_model(name, batch_size=64)
        plan = build_memory_plan(graph, include_weights=True,
                                 include_workspace=True)
        by_class = {
            cls: nbytes // 1024**2
            for cls, nbytes in plan.bytes_by_class().items()
            if nbytes
        }
        print(format_breakdown(f"{name} (MiB)", by_class))

        stash = stash_bytes_by_class(graph)
        total = sum(stash.values())
        print(
            f"    stashed-map classes: "
            f"ReLU-Pool {stash[STASH_RELU_POOL] / total:.0%} (Binarize), "
            f"ReLU-Conv {stash[STASH_RELU_CONV] / total:.0%} (SSDC), "
            f"Other {stash[STASH_OTHER] / total:.0%} (DPR)\n"
        )

    vgg = build_model("vgg16", batch_size=64)
    plan = build_memory_plan(vgg)
    stashed = sum(t.size_bytes for t in plan.stashed_feature_maps())
    print(f"VGG16 alone stashes {stashed / GiB:.1f} GiB of feature maps "
          f"per minibatch — the target of every Gist encoding.")


if __name__ == "__main__":
    main()
