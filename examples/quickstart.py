#!/usr/bin/env python
"""Quickstart: apply Gist to VGG16 and measure the footprint reduction.

Builds the paper's flagship workload (VGG16, minibatch 64, ImageNet
shapes), runs the Schedule Builder, and prints what each technique did —
the 30-second version of the whole system.

Run:  python examples/quickstart.py
"""

from repro.analysis import format_table
from repro.core import Gist, GistConfig
from repro.memory import GiB
from repro.models import vgg16


def main() -> None:
    graph = vgg16(batch_size=64)
    print(f"built {graph.name}: {len(graph)} ops, "
          f"{graph.num_parameters() / 1e6:.0f}M parameters, "
          f"{graph.total_forward_flops() / 1e9:.0f} GFLOP/forward pass\n")

    # The per-network config picks the smallest DPR format that trains
    # without accuracy loss (FP16 for VGG16 — Section V-D1 of the paper).
    gist = Gist(GistConfig.for_network("vgg16"))

    # One line: baseline vs Gist footprint under the CNTK-style
    # memory-sharing allocator.
    report = gist.measure_mfr(graph)
    print(f"baseline footprint: {report.baseline_bytes / GiB:.2f} GiB")
    print(f"gist footprint:     {report.gist_bytes / GiB:.2f} GiB")
    print(f"memory footprint ratio (MFR): {report.mfr:.2f}x\n")

    # Where did the savings come from?  Inspect the Schedule Builder's
    # per-feature-map decisions.
    plan = gist.apply(graph)
    rows = []
    for decision in list(plan.decisions.values())[:10]:
        rows.append(
            [
                decision.node_name,
                decision.stash_class,
                decision.encoding,
                decision.fp32_bytes // 1024**2,
                decision.encoded_bytes // 1024**2,
                f"{decision.fp32_bytes / decision.encoded_bytes:.1f}x",
            ]
        )
    print(format_table(
        ["feature map", "class", "encoding", "FP32 MiB", "encoded MiB",
         "ratio"],
        rows,
        title="first 10 encoding decisions:",
    ))
    total_enc = sum(d.encoded_bytes for d in plan.decisions.values())
    total_fp32 = sum(d.fp32_bytes for d in plan.decisions.values())
    print(f"\nacross all {len(plan.decisions)} stashed maps: "
          f"{total_fp32 / GiB:.2f} GiB stashed in FP32 -> "
          f"{total_enc / GiB:.2f} GiB encoded "
          f"({total_fp32 / total_enc:.1f}x raw compression)")


if __name__ == "__main__":
    main()
