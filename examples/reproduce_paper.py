#!/usr/bin/env python
"""Regenerate the paper's headline (non-training) results in one shot.

Writes ``results/headline.json`` with per-network data for Figures 1, 3,
8, 9, 15 and 17 and prints the summary table.  For the training figures
(12, 14) and everything else, run the full harness:

    pytest benchmarks/ --benchmark-only -s

Run:  python examples/reproduce_paper.py [--batch-size 64]
"""

import argparse
import statistics
from pathlib import Path

from repro.analysis import collect_headline_results, export_json, format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--batch-size", type=int, default=64)
    parser.add_argument("--out", default="results/headline.json")
    args = parser.parse_args()

    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    path = export_json(out, batch_size=args.batch_size)
    data = collect_headline_results(batch_size=args.batch_size)

    rows = []
    for name, r in data.items():
        rows.append(
            [
                name,
                r["dpr_format"],
                r["mfr_lossless"],
                r["mfr_full"],
                f"{r['gist_overhead_frac'] * 100:+.1f}%",
                f"{r['vdnn_overhead_frac'] * 100:+.1f}%",
                r["dynamic_mfr_full"],
            ]
        )
    print(format_table(
        ["network", "dpr", "lossless MFR", "full MFR", "gist ov",
         "vdnn ov", "dyn MFR"],
        rows,
        title=f"Gist reproduction @ minibatch {args.batch_size}",
    ))
    print(f"\naverages: lossless "
          f"{statistics.mean(r['mfr_lossless'] for r in data.values()):.2f}x "
          f"(paper 1.4x), full "
          f"{statistics.mean(r['mfr_full'] for r in data.values()):.2f}x "
          f"(paper 1.8x)")
    print(f"raw data written to {path}")


if __name__ == "__main__":
    main()
