#!/usr/bin/env python
"""Train with lossy stashes: delayed vs uniform precision reduction.

Reproduces the paper's central accuracy claim (Figure 12) on a scaled
network you can train on a laptop in ~1 minute: at the *same* 8-bit
width, quantising in the forward pass (prior work) halts training, while
Gist's delayed reduction — error confined to the stashed backward copies
— matches the FP32 baseline.

Run:  python examples/train_with_dpr.py
Set REPRO_FAST=1 for a seconds-long smoke run (fewer samples/epochs).
"""

import os

from repro.analysis import format_series
from repro.core import GistConfig
from repro.dtypes import FP8
from repro.models import scaled_vgg
from repro.train import (
    GistPolicy,
    SGD,
    Trainer,
    UniformReductionPolicy,
    make_synthetic,
)

FAST = bool(os.environ.get("REPRO_FAST"))
EPOCHS = 1 if FAST else 5
NUM_SAMPLES = 128 if FAST else 640


def run(label, make_policy, train_set, test_set):
    graph = scaled_vgg(batch_size=32, num_classes=8, image_size=16, width=8)
    trainer = Trainer(graph, make_policy(graph),
                      SGD(lr=0.01, momentum=0.9), seed=0)
    result = trainer.train(train_set, test_set, epochs=EPOCHS, label=label)
    print(format_series(f"{label:>16s} accuracy", result.test_accuracy))
    return result


def main() -> None:
    train_set, test_set = make_synthetic(
        num_samples=NUM_SAMPLES, num_classes=8, image_size=16, noise=1.2,
        seed=3,
    )
    print(f"synthetic task: {train_set.num_samples} train / "
          f"{test_set.num_samples} test images, 8 classes\n")

    base = run("baseline-fp32", lambda g: None, train_set, test_set)
    uniform = run("uniform-fp8", lambda g: UniformReductionPolicy(FP8),
                  train_set, test_set)
    delayed = run(
        "gist-dpr-fp8",
        lambda g: GistPolicy(g, GistConfig(dpr_format="fp8")),
        train_set, test_set,
    )

    print("\nsame 8-bit budget, opposite outcomes:")
    print(f"  uniform (forward-pass) FP8: {uniform.final_accuracy:.0%} "
          f"final accuracy — training collapsed")
    print(f"  delayed (backward-only) FP8: {delayed.final_accuracy:.0%} "
          f"vs FP32 baseline {base.final_accuracy:.0%}")


if __name__ == "__main__":
    main()
