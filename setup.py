"""Legacy setup shim: enables `pip install -e . --no-build-isolation` on
environments without the `wheel` package (editable install falls back to
setup.py develop)."""

from setuptools import setup

setup()
