"""repro — a full reproduction of *Gist: Efficient Data Encoding for Deep
Neural Network Training* (Jain et al., ISCA 2018).

Gist shrinks DNN-training memory by re-encoding stashed feature maps
between their forward and backward uses: 1-bit **Binarize** for ReLU-Pool
maps, sparse-storage/dense-compute (**SSDC**) CSR for ReLU-Conv maps, and
delayed precision reduction (**DPR**, FP16/FP10/FP8) for the rest — then
lets a CNTK-style memory-sharing allocator convert the shortened FP32
lifetimes into footprint.

Quick start::

    from repro import Gist, GistConfig, build_model

    graph = build_model("vgg16", batch_size=64)
    report = Gist(GistConfig.for_network("vgg16")).measure_mfr(graph)
    print(report)   # vgg16: baseline 5.17 GiB -> gist 3.21 GiB (MFR 1.61x)

Package map (one subpackage per subsystem — see DESIGN.md):

- :mod:`repro.graph` — execution-graph IR, training schedule, liveness;
- :mod:`repro.layers` — NumPy layer kernels with backward-dependence
  metadata (the cuDNN substitute);
- :mod:`repro.models` — the paper's six-network suite + scaled variants;
- :mod:`repro.memory` — static memory-sharing allocator and dynamic
  allocation simulator;
- :mod:`repro.encodings` — bit-exact Binarize / CSR / minifloat codecs;
- :mod:`repro.core` — the Gist Schedule Builder and facade;
- :mod:`repro.perf` — analytical Titan X performance model, vDNN/naive
  swapping baselines, utilisation modelling;
- :mod:`repro.train` — training runtime with pluggable stash policies;
- :mod:`repro.analysis` — sparsity models and report rendering.
"""

from repro.core import Gist, GistConfig, MFRReport, build_gist_plan
from repro.graph import Graph, GraphBuilder, TrainingSchedule
from repro.models import PAPER_SUITE, available_models, build_model
from repro.memory import build_memory_plan, memory_footprint_ratio

__version__ = "1.0.0"

__all__ = [
    "Gist",
    "GistConfig",
    "Graph",
    "GraphBuilder",
    "MFRReport",
    "PAPER_SUITE",
    "TrainingSchedule",
    "__version__",
    "available_models",
    "build_gist_plan",
    "build_memory_plan",
    "build_model",
    "memory_footprint_ratio",
]
