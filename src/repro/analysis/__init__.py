"""Analysis utilities: sparsity models and report rendering."""

from repro.analysis.export import collect_headline_results, export_json
from repro.analysis.sparsity import (
    ConstantSparsity,
    DEFAULT_SPARSITY_MODEL,
    DepthSparsityModel,
    MeasuredSparsity,
    SparsityModel,
)
from repro.analysis.tables import format_breakdown, format_series, format_table
from repro.analysis.timeline import memory_timeline, sparkline

__all__ = [
    "ConstantSparsity",
    "collect_headline_results",
    "export_json",
    "DEFAULT_SPARSITY_MODEL",
    "DepthSparsityModel",
    "MeasuredSparsity",
    "SparsityModel",
    "format_breakdown",
    "format_series",
    "format_table",
    "memory_timeline",
    "sparkline",
]
