"""Machine-readable export of the reproduction's headline results.

``collect_headline_results`` gathers the cheap (non-training) figure data
for the whole suite into plain dictionaries, and ``export_json`` writes
them to disk — the raw material for external plotting or regression
tracking of the reproduction itself.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional

from repro.ioutil import atomic_write_json

def collect_headline_results(
    batch_size: int = 64,
    models: Optional[list] = None,
) -> Dict[str, dict]:
    """Figure 1/3/8/9/15/17 data for every suite network.

    Returns a JSON-serialisable mapping ``model -> results``.
    """
    # Local imports: repro.core imports repro.analysis.sparsity, so this
    # module must not pull repro.core in at package-import time.
    from repro.core import Gist, GistConfig, stash_bytes_by_class
    from repro.memory import build_memory_plan
    from repro.models import PAPER_SUITE, build_model
    from repro.perf import measure_overhead, simulate_swapping

    results: Dict[str, dict] = {}
    for name in models or PAPER_SUITE:
        graph = build_model(name, batch_size=batch_size)
        full_plan = build_memory_plan(graph, include_weights=True,
                                      include_workspace=True)
        lossless = Gist(GistConfig.lossless())
        network_cfg = GistConfig.for_network(name)
        full = Gist(network_cfg)
        swap = simulate_swapping(graph)
        overhead = measure_overhead(graph, network_cfg)
        dyn = full.measure_mfr(graph, dynamic=True)
        results[name] = {
            "batch_size": batch_size,
            "dpr_format": network_cfg.dpr_format,
            "memory_breakdown_bytes": full_plan.bytes_by_class(),
            "stashed_class_bytes": stash_bytes_by_class(graph),
            "mfr_lossless": lossless.measure_mfr(graph).mfr,
            "mfr_full": full.measure_mfr(graph).mfr,
            "gist_overhead_frac": overhead.overhead_frac,
            "naive_swap_overhead_frac": swap.naive_overhead,
            "vdnn_overhead_frac": swap.vdnn_overhead,
            "dynamic_mfr_full": dyn.baseline_bytes / dyn.gist_bytes,
        }
    return results


def export_json(path, batch_size: int = 64,
                models: Optional[list] = None) -> Path:
    """Write :func:`collect_headline_results` to ``path`` as JSON."""
    data = collect_headline_results(batch_size=batch_size, models=models)
    return atomic_write_json(Path(path), data)
