"""Sparsity models for SSDC's static size accounting.

SSDC's compression ratio depends on the data — the fraction of zeros that
ReLU produced.  The paper *measures* this on a live ImageNet run (Figure 14
shows per-layer ratios over 15 epochs of VGG16, with >80% sparsity common).
We cannot train ImageNet-scale networks in NumPy, so the full-size static
accounting uses a model calibrated to the paper's observations (and to our
own scaled-model measurements); the runtime experiments use
:class:`MeasuredSparsity` filled from an actual training run.

Substitution record (see DESIGN.md §2): paper = measured ImageNet
activations; ours = depth-calibrated model + scaled-run measurements.  The
quantity both feed into is identical: a per-layer zero fraction handed to
:func:`repro.encodings.ssdc.csr_bytes`.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional

from repro.graph.graph import Graph


class SparsityModel(abc.ABC):
    """Maps a graph node to the expected zero-fraction of its output."""

    @abc.abstractmethod
    def sparsity(self, graph: Graph, node_id: int) -> float:
        """Expected fraction of zeros in the node's output feature map."""

    def _validate(self, value: float) -> float:
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"sparsity must be in [0, 1], got {value}")
        return value


class ConstantSparsity(SparsityModel):
    """Every eligible map has the same sparsity (sensitivity sweeps)."""

    def __init__(self, value: float):
        self.value = self._validate(value)

    def sparsity(self, graph: Graph, node_id: int) -> float:
        return self.value


class DepthSparsityModel(SparsityModel):
    """Depth-increasing ReLU sparsity, the paper's observed regime.

    ReLU outputs start around ``base`` sparsity in early layers and rise
    toward ``base + gain`` in the deepest layers (VGG16's deep ReLUs exceed
    80% in Figure 14).  A max-pool output of window ``k`` elements over a
    map with sparsity ``s`` is zero only when the whole window is zero
    (non-negative inputs), modelled as ``s ** k``.

    Args:
        base: Sparsity of the shallowest ReLU.
        gain: Additional sparsity at the deepest ReLU.
    """

    def __init__(self, base: float = 0.5, gain: float = 0.35):
        self.base = self._validate(base)
        self._validate(base + gain)
        self.gain = gain

    def sparsity(self, graph: Graph, node_id: int) -> float:
        node = graph.node(node_id)
        order = graph.topological_ids()
        depth_frac = order.index(node_id) / max(len(order) - 1, 1)
        if node.kind == "relu":
            return self.base + self.gain * depth_frac
        if node.kind == "maxpool":
            # Sparsity survives pooling only where the entire window is zero.
            producer = graph.node(node.inputs[0])
            if producer.kind == "relu":
                s = self.sparsity(graph, producer.node_id)
                window = node.layer.kh * node.layer.kw
                return s**window
            return 0.0
        return 0.0


class MeasuredSparsity(SparsityModel):
    """Sparsity recorded from a real training run, keyed by node name.

    Args:
        values: node name → zero fraction.
        fallback: Model consulted for nodes missing from ``values``.
    """

    def __init__(self, values: Dict[str, float],
                 fallback: Optional[SparsityModel] = None):
        self.values = {k: self._validate(v) for k, v in values.items()}
        self.fallback = fallback or ConstantSparsity(0.0)

    def sparsity(self, graph: Graph, node_id: int) -> float:
        name = graph.node(node_id).name
        if name in self.values:
            return self.values[name]
        return self.fallback.sparsity(graph, node_id)


#: Default used by the full-size static accounting; calibrated so VGG16's
#: deep ReLUs land in the >80% band the paper reports.
DEFAULT_SPARSITY_MODEL = DepthSparsityModel(base=0.5, gain=0.38)
