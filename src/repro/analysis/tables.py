"""ASCII table / series rendering shared by the benchmark harness.

Every bench prints the same rows or series its paper figure shows; these
helpers keep the formatting uniform and the bench code small.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Union

Number = Union[int, float]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render rows as a fixed-width ASCII table."""
    str_rows: List[List[str]] = [
        [_fmt(cell) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, values: Sequence[Number], precision: int = 3) -> str:
    """Render a named numeric series on one line (figure curves)."""
    body = ", ".join(f"{v:.{precision}f}" for v in values)
    return f"{name}: [{body}]"


def format_breakdown(label: str, parts: Dict[str, Number], total_label: str = "total") -> str:
    """Render a stacked-bar style breakdown (Figure 1/3/10 bars)."""
    total = sum(parts.values())
    segs = ", ".join(
        f"{k}={v:,.0f} ({v / total:.1%})" if total else f"{k}={v:,.0f}"
        for k, v in parts.items()
    )
    return f"{label}: {segs}; {total_label}={total:,.0f}"


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)
