"""ASCII rendering of live-memory timelines.

Turns the dynamic-allocation simulator's per-step live-byte series into a
terminal sparkline, so the Figure 2 story — Gist deflating the long
forward-backward plateau — is visible at a glance in the CLI and
examples.
"""

from __future__ import annotations

from typing import Sequence

_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 72) -> str:
    """Render a numeric series as one line of block characters.

    Args:
        values: Non-negative series (live bytes per time step).
        width: Maximum output characters; longer series are bucketed by
            max within each bucket (peaks must stay visible).
    """
    if not values:
        return ""
    values = list(values)
    if len(values) > width:
        bucket = -(-len(values) // width)
        values = [
            max(values[i : i + bucket]) for i in range(0, len(values), bucket)
        ]
    peak = max(values)
    if peak <= 0:
        return _BLOCKS[0] * len(values)
    out = []
    for v in values:
        level = round(v / peak * (len(_BLOCKS) - 1))
        out.append(_BLOCKS[level])
    return "".join(out)


def memory_timeline(tensors, horizon: int = 0, width: int = 72) -> str:
    """Sparkline of live bytes for a liveness table."""
    from repro.memory.dynamic import simulate_dynamic

    result = simulate_dynamic(tensors, horizon)
    gib = result.peak_bytes / 1024**3
    return f"{sparkline(result.timeline, width)}  peak {gib:.2f} GiB"
