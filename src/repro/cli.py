"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``models`` — list available model names.
* ``summary MODEL`` — ops/params/FLOPs and the graph's layer listing.
* ``mfr MODEL`` — baseline vs Gist footprint (the paper's headline metric).
* ``breakdown MODEL`` — Figure 1/3-style memory breakdown.
* ``overhead MODEL`` — Gist and swapping performance overheads.
* ``train`` — a one-minute scaled training demo across stash policies.
* ``trace`` — traced golden-recipe run: per-step timing/compression
  table, optional invariant checking, golden save/compare.
* ``fuzz`` — differential fuzzing: random graphs through the
  allocator/plan/encoding oracles; exit 1 with a minimized repro on the
  first violation.
* ``plan`` — hybrid memory planner: per-tensor encode/recompute/swap
  decision table plus footprints of every strategy arm.
* ``sweep`` — figure drivers across the model suite as parallel units.
* ``bench`` — per-arm kernel-backend microbenchmark on this machine,
  plus the autotuner's measured selections.
* ``disttrain`` — simulated data-parallel SGD over the process pool:
  compressed all-reduce, journal resume, and a replicas-N ≡ serial
  bit-identity check via ``--compare-serial``.
* ``submit`` — validate YAML/JSON job specs and enqueue them on a
  service state directory; prints each job's content fingerprint.
* ``serve`` — the training-service daemon: drains the queue onto the
  pool behind a content-addressed plan/result cache; with ``--jobs``
  runs one-shot (submit + drain + report).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis import format_table
from repro.core import Gist, GistConfig, stash_bytes_by_class
from repro.memory import GiB, MiB, build_memory_plan
from repro.models import available_models, build_model


def _add_model_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("model", choices=available_models(),
                        help="network to analyse")
    parser.add_argument("--batch-size", type=int, default=64,
                        help="minibatch size (default: 64, the paper's)")


def _add_orchestration_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes; seeds/units are sharded "
                             "deterministically, so any count produces "
                             "byte-identical output (default: 1)")
    parser.add_argument("--journal", metavar="PATH", default=None,
                        help="JSONL run journal; finished units stream to "
                             "it and a re-invocation resumes from it, "
                             "re-running only incomplete units")
    parser.add_argument("--timeout", type=float, default=None, metavar="S",
                        help="per-unit timeout in seconds (needs "
                             "--workers >= 2; a timed-out unit is retried "
                             "then recorded as failed)")


def _config_from_args(args: argparse.Namespace) -> GistConfig:
    if args.config == "lossless":
        return GistConfig.lossless()
    if args.config == "network":
        return GistConfig.for_network(args.model)
    return GistConfig.full(args.config)


def cmd_models(args: argparse.Namespace) -> int:
    for name in available_models():
        print(name)
    return 0


def cmd_summary(args: argparse.Namespace) -> int:
    graph = build_model(args.model, batch_size=args.batch_size)
    print(graph.summary())
    print(f"\nforward FLOPs: {graph.total_forward_flops() / 1e9:.1f} G")
    return 0


def cmd_mfr(args: argparse.Namespace) -> int:
    graph = build_model(args.model, batch_size=args.batch_size)
    gist = Gist(_config_from_args(args))
    report = gist.measure_mfr(graph, dynamic=args.dynamic)
    print(report)
    plan = gist.apply(graph)
    if args.timeline:
        from repro.analysis import memory_timeline

        baseline_plan = build_memory_plan(graph)
        print(f"\nbaseline: {memory_timeline(baseline_plan.tensors)}")
        print(f"gist:     {memory_timeline(plan.plan.tensors)}\n")
    rows = [
        [d.node_name, d.stash_class, d.encoding,
         d.fp32_bytes / MiB, d.encoded_bytes / MiB]
        for d in plan.decisions.values()
    ]
    print(format_table(
        ["feature map", "class", "encoding", "FP32 MiB", "encoded MiB"],
        rows,
    ))
    return 0


def cmd_breakdown(args: argparse.Namespace) -> int:
    graph = build_model(args.model, batch_size=args.batch_size)
    plan = build_memory_plan(graph, include_weights=True,
                             include_workspace=True)
    rows = [
        [cls, nbytes / GiB]
        for cls, nbytes in plan.bytes_by_class().items()
        if nbytes
    ]
    print(format_table(["data structure", "GiB"], rows,
                       title=f"{args.model} @ minibatch {args.batch_size}"))
    stash = stash_bytes_by_class(graph)
    total = sum(stash.values())
    print("\nstashed feature maps by class:")
    for cls, nbytes in stash.items():
        print(f"  {cls:<10} {nbytes / GiB:6.2f} GiB ({nbytes / total:5.1%})")
    return 0


def cmd_overhead(args: argparse.Namespace) -> int:
    from repro.perf import measure_overhead, simulate_swapping

    graph = build_model(args.model, batch_size=args.batch_size)
    gist = measure_overhead(graph, _config_from_args(args))
    swap = simulate_swapping(graph)
    print(f"baseline step:  {gist.baseline_s * 1000:8.1f} ms")
    print(f"gist overhead:  {gist.overhead_frac:+8.1%}")
    print(f"vdnn overhead:  {swap.vdnn_overhead:+8.1%}")
    print(f"naive swapping: {swap.naive_overhead:+8.1%}")
    return 0


def cmd_train(args: argparse.Namespace) -> int:
    from repro.models import scaled_vgg
    from repro.train import (
        GistPolicy,
        SGD,
        Trainer,
        UniformReductionPolicy,
        make_synthetic,
    )
    from repro.dtypes import DPR_FORMATS

    train_set, test_set = make_synthetic(
        num_samples=640, num_classes=8, image_size=16, noise=1.2, seed=3
    )
    graph = scaled_vgg(batch_size=32, num_classes=8, image_size=16, width=8)
    if args.policy == "baseline":
        policy = None
    elif args.policy.startswith("uniform-"):
        policy = UniformReductionPolicy(DPR_FORMATS[args.policy[8:]])
    else:
        policy = GistPolicy(graph, GistConfig(dpr_format=args.policy[4:]))
    trainer = Trainer(graph, policy, SGD(lr=0.01, momentum=0.9), seed=0)
    result = trainer.train(train_set, test_set, epochs=args.epochs,
                           label=args.policy)
    for epoch, (loss, acc) in enumerate(
        zip(result.epoch_losses, result.test_accuracy), start=1
    ):
        print(f"epoch {epoch}: loss={loss:.3f} accuracy={acc:.1%}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.diagnostics import StepTracer, run_traced

    tracer = StepTracer()
    digest = run_traced(
        args.model,
        args.policy,
        steps=args.steps,
        seed=args.seed,
        tracer=tracer,
        check_invariants=args.check_invariants,
        rewrite=args.rewrite,
    )
    print(tracer.summary())
    if args.check_invariants:
        print("\ninvariants: round-trip, liveness and aliasing checks clean")
    if args.save_golden:
        digest.save_golden(args.save_golden)
        print(f"\ngolden saved to {args.save_golden}")
    if args.compare_golden:
        comparison = digest.compare_golden(args.compare_golden)
        if comparison:
            print(f"\ngolden match: {args.compare_golden}")
        else:
            print(f"\ngolden MISMATCH vs {args.compare_golden}:")
            for line in comparison.mismatches:
                print(f"  {line}")
            return 1
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.verify import run_fuzz

    report = run_fuzz(
        args.seeds,
        start_seed=args.start_seed,
        max_ops=args.max_ops,
        stop_on_first=not args.keep_going,
        strict=args.strict,
        workers=args.workers,
        journal=args.journal,
        timeout_s=args.timeout,
        rewrite_shapes=args.rewrite_shapes,
        recurrent_shapes=args.recurrent_shapes,
    )
    print(f"seeds run:       {report.seeds_run}")
    print(f"graphs verified: {report.graphs_verified}")
    for failure in report.failed_units:
        error = failure["error"]
        print(f"  FAILED {failure['key']} ({error['type']}: "
              f"{error['message']}) payload={failure['payload']}")
    if report.ok:
        print("violations:      none")
        return 0
    print(f"violations:      {len(report.violations)}")
    for v in report.violations:
        subject = f" [{v.subject}]" if v.subject else ""
        print(f"  {v.oracle} (seed {v.seed}){subject}: {v.detail}")
    if report.minimized is not None:
        seed = report.violations[0].seed
        replay = f"repro fuzz --seeds 1 --start-seed {seed}"
        if args.strict:
            replay += " --strict"
        if args.rewrite_shapes:
            replay += " --rewrite-shapes"
        if args.recurrent_shapes:
            replay += " --recurrent-shapes"
        print(f"\nminimized repro ({len(report.minimized.nodes)} nodes, "
              f"replay with: {replay}):")
        print(report.minimized.summary())
    return 1


def cmd_disttrain(args: argparse.Namespace) -> int:
    from repro.distributed import DistConfig, train_distributed

    model_kwargs = {}
    if args.num_classes is not None:
        model_kwargs["num_classes"] = args.num_classes
    if args.image_size is not None:
        model_kwargs["image_size"] = args.image_size
    config = DistConfig(
        model=args.model,
        batch_size=args.batch_size,
        num_shards=args.shards if args.shards else args.replicas,
        replicas=args.replicas,
        steps=args.steps,
        wire_codec=args.wire_codec,
        policy=args.policy,
        seed=args.seed,
        model_kwargs=model_kwargs,
        num_samples=args.num_samples,
        timeout_s=args.timeout,
    )
    result = train_distributed(config, journal=args.journal)
    print(format_table(
        ["step", "loss", "wire KiB", "fp32 KiB", "reduction", "comm us"],
        [[r.step, f"{r.loss:.4f}", f"{r.wire_bytes / 1024:.1f}",
          f"{r.fp32_bytes / 1024:.1f}",
          f"{r.fp32_bytes / r.wire_bytes:.2f}x",
          f"{r.comm_s * 1e6:.1f}"]
         for r in result.records],
        title=(f"{config.model}: {config.num_shards} shards on "
               f"{config.replicas} replica(s), {config.wire_codec} wire"),
    ))
    print(f"\nbytes on wire: {result.total_wire_bytes} "
          f"({result.wire_reduction:.2f}x under fp32)")
    print(f"run digest:    {result.digest()}")
    if args.compare_serial:
        serial = train_distributed(DistConfig(
            **{**config.__dict__, "replicas": 1}
        ))
        if serial.digest() != result.digest():
            print(f"serial digest: {serial.digest()}  MISMATCH")
            return 1
        print(f"serial digest: {serial.digest()}  (bit-identical)")
    return 0


def cmd_plan(args: argparse.Namespace) -> int:
    from repro.core.policy import HybridPolicy, STRATEGY_HYBRID
    from repro.memory.hybrid import build_hybrid_plan

    graph = build_model(args.model, batch_size=args.batch_size)
    if args.rewrite:
        from repro.rewrite import apply_passes

        result = apply_passes(graph)
        graph = result.graph
        print(result.report())
        print()
    gist = (GistConfig.lossless() if args.config == "lossless"
            else GistConfig.for_network(args.model) if args.config == "network"
            else GistConfig.full(args.config))
    policy = HybridPolicy(strategy=args.strategy,
                          cost_budget_frac=args.budget, gist=gist)
    hybrid = build_hybrid_plan(graph, policy)

    rows = []
    for d in hybrid.decisions.values():
        what = d.choice if d.encoding is None else f"{d.choice}:{d.encoding}"
        if d.choice == "recompute":
            src = graph.node(d.source_id).name
            what += f" <- {src} ({len(d.chain)} op(s))"
        rows.append([
            d.node_name, d.stash_class, what,
            d.fp32_bytes / MiB, d.resident_bytes / MiB,
            d.cost_s * 1e6, "yes" if d.lossless else "NO",
        ])
    print(format_table(
        ["feature map", "class", "decision", "FP32 MiB", "resident MiB",
         "cost us", "lossless"],
        rows,
        title=f"{args.model} @ minibatch {args.batch_size} — "
              f"{policy.describe()}, budget {policy.cost_budget_frac:.0%} "
              f"of step",
    ))
    print(f"\nbaseline allocated: {hybrid.baseline_allocated_bytes / MiB:8.2f}"
          f" MiB")
    print(f"plan allocated:     {hybrid.allocated_bytes / MiB:8.2f} MiB "
          f"({hybrid.footprint_ratio:.2f}x reduction)")
    print(f"modeled overhead:   {hybrid.overhead_frac:8.1%} of baseline step")
    if args.strategy == STRATEGY_HYBRID:
        for strategy, footprint in sorted(hybrid.pure_footprints.items()):
            marker = (" <- adopted" if strategy == hybrid.fallback_strategy
                      else "")
            print(f"  pure {strategy:<9} {footprint / MiB:8.2f} MiB{marker}")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments import SWEEP_DRIVERS, run_sweep
    from repro.ioutil import atomic_write_json

    drivers = (sorted(SWEEP_DRIVERS) if args.drivers == "all"
               else [d for d in args.drivers.split(",") if d])
    models = args.models.split(",") if args.models else None
    data = run_sweep(
        drivers,
        models=models,
        batch_size=args.batch_size,
        workers=args.workers,
        journal=args.journal,
        timeout_s=args.timeout,
    )
    out = atomic_write_json(args.out, data)
    for name in data["drivers"]:
        merged = data["figures"][name]
        count = len(merged) if hasattr(merged, "__len__") else int(
            merged is not None)
        print(f"{name:<28} {count:3d} result(s)")
    for failure in data["failed_units"]:
        error = failure["error"] or {"type": "Unscheduled", "message": ""}
        print(f"  FAILED {failure['key']} ({error['type']}: "
              f"{error['message']}) payload={failure['payload']}")
    print(f"wrote {out}")
    return 0 if data["ok"] else 1


def cmd_bench(args: argparse.Namespace) -> int:
    import statistics
    import time

    import numpy as np

    from repro.kernels import autotune_report, backends_for
    from repro.kernels.backends import op_families

    wanted = set(args.ops.split(",")) if args.ops else None
    rng = np.random.default_rng(args.seed)
    rows: List[dict] = []
    for family in op_families():
        if wanted is not None and family.op not in wanted:
            continue
        inputs = family.make_inputs(rng)
        timings = {}
        for backend in backends_for(family.op):
            reps = []
            for _ in range(max(1, args.repeats)):
                t0 = time.perf_counter()
                family.run(backend, inputs)
                reps.append(time.perf_counter() - t0)
            timings[backend.name] = (statistics.median(reps), backend)
        fastest = min(timings, key=lambda n: timings[n][0])
        for name, (median_s, backend) in timings.items():
            rows.append({
                "op": family.op,
                "backend": name,
                "median_ms": median_s * 1000,
                "contract": ("exact" if backend.exact
                             else f"tolerance={backend.tolerance:g}"),
                "fastest": name == fastest,
            })
    if wanted is not None and not rows:
        print(f"no registered ops match {sorted(wanted)}", file=sys.stderr)
        return 2
    print(format_table(
        ["op", "backend", "median", "contract", ""],
        [[r["op"], r["backend"], f"{r['median_ms']:.3f} ms",
          r["contract"], "<- fastest" if r["fastest"] else ""]
         for r in rows],
    ))
    selections = autotune_report()
    if selections:
        print("\nautotuned selections (this process):")
        for record in selections:
            print(f"  {record['op']} {record['signature']}: "
                  f"{record['backend']} [{record['source']}]")
    if args.out:
        from repro.ioutil import atomic_write_json

        out = atomic_write_json(args.out, {
            "benchmark": "kernel_backends_micro",
            "seed": args.seed,
            "repeats": args.repeats,
            "rows": rows,
            "autotune": selections,
        })
        print(f"wrote {out}")
    return 0


def _load_spec_files(paths):
    """Validated specs from every file, or raises JobSpecError."""
    from repro.serve import load_job_specs

    specs = []
    for path in paths:
        specs.extend(load_job_specs(path))
    return specs


def cmd_submit(args: argparse.Namespace) -> int:
    from repro.serve import JobService, JobSpecError

    try:
        specs = _load_spec_files(args.files)
    except JobSpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    service = JobService(args.state)
    for spec in specs:
        fingerprint = service.submit(spec)
        label = f" name={spec.name}" if spec.name else ""
        print(f"submitted {fingerprint} kind={spec.kind}{label}")
    print(f"queued: {len(service.queued())} entr(y/ies) in "
          f"{service.queue_path}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import JobService, JobSpecError

    service = JobService(args.state, workers=args.workers,
                         timeout_s=args.timeout)
    if args.jobs:
        # One-shot batch mode: submit the specs, drain once, report.
        try:
            specs = _load_spec_files(args.jobs)
        except JobSpecError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        for spec in specs:
            service.submit(spec)
        report = service.run_pending()
        print(report.summary())
        return 0 if report.ok else 1

    def on_report(report):
        print(report.summary())
        sys.stdout.flush()

    failures = service.serve_forever(poll_s=args.poll,
                                     max_polls=args.max_polls,
                                     on_report=on_report)
    return 0 if failures == 0 else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Gist (ISCA 2018) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list model names").set_defaults(
        func=cmd_models
    )

    p = sub.add_parser("summary", help="graph summary")
    _add_model_argument(p)
    p.set_defaults(func=cmd_summary)

    p = sub.add_parser("mfr", help="memory footprint ratio")
    _add_model_argument(p)
    p.add_argument("--config", default="network",
                   choices=["network", "lossless", "fp16", "fp10", "fp8"],
                   help="gist configuration (default: paper per-network)")
    p.add_argument("--dynamic", action="store_true",
                   help="use the dynamic-allocation simulator")
    p.add_argument("--timeline", action="store_true",
                   help="show live-memory sparklines (baseline vs gist)")
    p.set_defaults(func=cmd_mfr)

    p = sub.add_parser("breakdown", help="memory breakdown (Figures 1/3)")
    _add_model_argument(p)
    p.set_defaults(func=cmd_breakdown)

    p = sub.add_parser("overhead", help="performance overheads (Figures 9/15)")
    _add_model_argument(p)
    p.add_argument("--config", default="network",
                   choices=["network", "lossless", "fp16", "fp10", "fp8"])
    p.set_defaults(func=cmd_overhead)

    p = sub.add_parser("train", help="scaled training demo (Figure 12)")
    p.add_argument("--policy", default="dpr-fp8",
                   choices=["baseline", "uniform-fp16", "uniform-fp10",
                            "uniform-fp8", "dpr-fp16", "dpr-fp10", "dpr-fp8"])
    p.add_argument("--epochs", type=int, default=4)
    p.set_defaults(func=cmd_train)

    from repro.diagnostics.golden import GOLDEN_MODELS, TRACE_POLICIES

    p = sub.add_parser("trace", help="traced run with golden conformance")
    p.add_argument("--model", default="tiny_cnn",
                   choices=sorted(GOLDEN_MODELS),
                   help="golden-recipe model (default: tiny_cnn)")
    p.add_argument("--policy", default="gist-lossless",
                   choices=list(TRACE_POLICIES),
                   help="stash policy arm (default: gist-lossless)")
    p.add_argument("--steps", type=int, default=3,
                   help="SGD steps to trace (goldens pin 3)")
    p.add_argument("--seed", type=int, default=0,
                   help="master seed for parameters and batches")
    p.add_argument("--check-invariants", action="store_true",
                   help="enable the runtime invariant suite during the run")
    p.add_argument("--save-golden", metavar="PATH",
                   help="write this run's digest as a golden trace")
    p.add_argument("--compare-golden", metavar="PATH",
                   help="compare against a saved golden; exit 1 on mismatch")
    p.add_argument("--rewrite", action="store_true",
                   help="apply the graph-rewrite passes before tracing "
                        "(byte-identical digest on the golden models)")
    p.set_defaults(func=cmd_trace)

    from repro.verify.fuzzer import DEFAULT_MAX_OPS

    p = sub.add_parser("fuzz", help="differential fuzzing of plans, "
                                    "allocators and encodings")
    p.add_argument("--seeds", type=int, default=100,
                   help="number of consecutive seeds to verify (default: 100)")
    p.add_argument("--start-seed", type=int, default=0,
                   help="first seed (use with --seeds 1 to replay a failure)")
    p.add_argument("--max-ops", type=int, default=DEFAULT_MAX_OPS,
                   help=f"op budget per fuzzed graph (default: "
                        f"{DEFAULT_MAX_OPS})")
    p.add_argument("--keep-going", action="store_true",
                   help="collect every violation instead of stopping and "
                        "minimizing the first one")
    p.add_argument("--strict", action="store_true",
                   help="also enforce the heuristic greedy-size <= first-fit "
                        "ordering (known to fail on some fan-out graphs)")
    p.add_argument("--rewrite-shapes", action="store_true",
                   help="bias generation towards rewrite-pass trigger "
                        "motifs and verify each rewritten graph too")
    p.add_argument("--recurrent-shapes", action="store_true",
                   help="generate unrolled LSTM/RNN sequence graphs and "
                        "run the recurrent-unroll oracle on each")
    _add_orchestration_arguments(p)
    p.set_defaults(func=cmd_fuzz)

    from repro.core.policy import HYBRID_STRATEGIES

    p = sub.add_parser("plan", help="hybrid memory planner "
                                    "(encode x recompute x swap)")
    _add_model_argument(p)
    p.add_argument("--strategy", default="hybrid", choices=HYBRID_STRATEGIES,
                   help="planner arm: a single lever, or 'hybrid' to mix "
                        "them per tensor (default: hybrid)")
    p.add_argument("--budget", type=float, default=0.15, metavar="FRAC",
                   help="step-time overhead budget as a fraction of the "
                        "baseline step (default: 0.15)")
    p.add_argument("--config", default="lossless",
                   choices=["lossless", "network", "fp16", "fp10", "fp8"],
                   help="gist switches for the encode lever (default: "
                        "lossless, so every decision is bit-exact)")
    rewrite = p.add_mutually_exclusive_group()
    rewrite.add_argument("--rewrite", action="store_true", default=False,
                         help="run the graph-rewrite passes (fusion, "
                              "pool-argmax, CSE, dead-stash, inplace) "
                              "before planning and print the per-pass "
                              "report")
    rewrite.add_argument("--no-rewrite", dest="rewrite",
                         action="store_false",
                         help="plan the graph exactly as built (default)")
    p.set_defaults(func=cmd_plan)

    from repro.experiments import DEFAULT_SWEEP_DRIVERS, SWEEP_DRIVERS

    p = sub.add_parser("sweep", help="run figure drivers across the model "
                                     "suite as parallel work units")
    p.add_argument("--drivers", default=",".join(DEFAULT_SWEEP_DRIVERS),
                   metavar="A,B,...",
                   help="comma-separated driver names, or 'all' "
                        f"(default: the static analyses; known: "
                        f"{','.join(sorted(SWEEP_DRIVERS))})")
    p.add_argument("--models", default=None, metavar="M,N,...",
                   help="comma-separated model names "
                        "(default: the paper suite)")
    p.add_argument("--batch-size", type=int, default=64,
                   help="minibatch for the static analyses (default: 64)")
    p.add_argument("--out", default="results/sweep.json", metavar="PATH",
                   help="merged-output JSON path (written atomically; "
                        "default: results/sweep.json)")
    _add_orchestration_arguments(p)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("bench", help="time every kernel-backend arm per "
                                     "op on this machine")
    p.add_argument("--ops", default=None, metavar="A,B,...",
                   help="comma-separated op filter (default: every "
                        "registered op family)")
    p.add_argument("--repeats", type=int, default=5,
                   help="timed repetitions per arm (default: 5)")
    p.add_argument("--seed", type=int, default=0,
                   help="seed for the shared random inputs (default: 0)")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="also write machine-readable JSON here")
    p.set_defaults(func=cmd_bench)

    from repro.distributed.wire import WIRE_CODECS

    p = sub.add_parser("disttrain", help="simulated data-parallel training "
                                         "with compressed all-reduce")
    p.add_argument("model", nargs="?", default="tiny_cnn",
                   choices=available_models(),
                   help="network to train (default: tiny_cnn)")
    p.add_argument("--batch-size", type=int, default=16,
                   help="global minibatch size, split across shards "
                        "(default: 16)")
    p.add_argument("--replicas", type=int, default=4,
                   help="worker processes; the result is byte-identical "
                        "for any count (default: 4)")
    p.add_argument("--shards", type=int, default=None,
                   help="gradient shards per step; this is what defines "
                        "the semantics (default: --replicas)")
    p.add_argument("--steps", type=int, default=4,
                   help="SGD steps to run (default: 4)")
    p.add_argument("--wire-codec", default="auto", choices=WIRE_CODECS,
                   help="gradient wire encoding (default: auto)")
    p.add_argument("--policy", default="baseline",
                   choices=["baseline", "gist"],
                   help="activation stash policy inside each replica "
                        "(default: baseline)")
    p.add_argument("--seed", type=int, default=0,
                   help="run seed (default: 0)")
    p.add_argument("--num-samples", type=int, default=64,
                   help="synthetic dataset size (default: 64)")
    p.add_argument("--num-classes", type=int, default=None,
                   help="override the model's class count")
    p.add_argument("--image-size", type=int, default=None,
                   help="override the model's input resolution")
    p.add_argument("--journal", metavar="PATH", default=None,
                   help="JSONL run journal; a re-invocation resumes "
                        "completed shard steps from it")
    p.add_argument("--timeout", type=float, default=None, metavar="S",
                   help="per-unit timeout in seconds")
    p.add_argument("--compare-serial", action="store_true",
                   help="also run with --replicas 1 and exit 1 unless "
                        "the digests are bit-identical")
    p.set_defaults(func=cmd_disttrain)

    p = sub.add_parser("submit", help="validate job specs and enqueue "
                                      "them on a service state dir")
    p.add_argument("files", nargs="+", metavar="SPEC",
                   help="YAML/JSON job-spec files (a mapping, a list, "
                        "or {'jobs': [...]})")
    p.add_argument("--state", default="serve-state", metavar="DIR",
                   help="service state directory (default: serve-state)")
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser("serve", help="training-service daemon: durable "
                                     "queue + content-addressed cache "
                                     "over the pool")
    p.add_argument("--state", default="serve-state", metavar="DIR",
                   help="service state directory holding queue.jsonl, "
                        "journal.jsonl and cache/ (default: serve-state)")
    p.add_argument("--jobs", nargs="+", metavar="SPEC", default=None,
                   help="one-shot mode: submit these spec files, drain "
                        "the queue once, print the report and exit")
    p.add_argument("--workers", type=int, default=1,
                   help="pool worker processes per pass (default: 1; "
                        "results are byte-identical for any count)")
    p.add_argument("--timeout", type=float, default=None, metavar="S",
                   help="per-job timeout in seconds (needs --workers "
                        ">= 2)")
    p.add_argument("--poll", type=float, default=1.0, metavar="S",
                   help="daemon queue poll interval (default: 1.0)")
    p.add_argument("--max-polls", type=int, default=None, metavar="N",
                   help="stop the daemon after N polls (default: run "
                        "until killed)")
    p.set_defaults(func=cmd_serve)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:  # e.g. `repro fuzz | head` closing early
        # The command did NOT finish: exit non-zero (the conventional
        # 128+SIGPIPE) so a truncated verification can't read as a pass.
        return 141


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
