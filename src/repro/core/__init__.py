"""Gist core: policy, stash classification, Schedule Builder, facade."""

from repro.core.analysis import (
    STASH_CLASSES,
    STASH_OTHER,
    STASH_RELU_CONV,
    STASH_RELU_POOL,
    StashInfo,
    classify_all_stashes,
    classify_stash,
    stash_bytes_by_class,
)
from repro.core.gist import Gist, MFRReport, class_mfr_breakdown, footprint_bytes
from repro.core.policy import (
    GistConfig,
    HYBRID_STRATEGIES,
    HybridPolicy,
    PAPER_DPR_FORMATS,
    STRATEGY_GIST,
    STRATEGY_HYBRID,
    STRATEGY_RECOMPUTE,
    STRATEGY_SWAP,
)
from repro.core.schedule_builder import (
    ENC_BINARIZE,
    ENC_DPR,
    ENC_SSDC,
    EncodingDecision,
    GistPlan,
    build_gist_plan,
)

__all__ = [
    "ENC_BINARIZE",
    "ENC_DPR",
    "ENC_SSDC",
    "EncodingDecision",
    "Gist",
    "GistConfig",
    "GistPlan",
    "HYBRID_STRATEGIES",
    "HybridPolicy",
    "MFRReport",
    "PAPER_DPR_FORMATS",
    "STASH_CLASSES",
    "STRATEGY_GIST",
    "STRATEGY_HYBRID",
    "STRATEGY_RECOMPUTE",
    "STRATEGY_SWAP",
    "STASH_OTHER",
    "STASH_RELU_CONV",
    "STASH_RELU_POOL",
    "StashInfo",
    "build_gist_plan",
    "class_mfr_breakdown",
    "classify_all_stashes",
    "classify_stash",
    "footprint_bytes",
    "stash_bytes_by_class",
]
