"""Stashed-feature-map classification (paper Figure 3 / Section III).

Every stashed feature map is assigned to one of three classes, which
determine the applicable encoding:

* ``relu_pool`` — a ReLU output none of whose backward users need actual
  values: ReLU's own backward needs only the positivity mask, and any
  consumer that stashes its input is an argmax-rewritable max-pool.
  Eligible for **Binarize**.
* ``relu_conv`` — a ReLU output (or the output of a max-pool directly fed
  by a ReLU, which inherits its sparsity) whose value-needing backward
  users are convolution/dense layers.  Eligible for **SSDC**.
* ``other`` — every remaining stashed feature map.  Eligible for **DPR**.

The classification is purely structural — it reads the layer metadata of
Figure 4, not data — which is what makes Gist a static graph pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.graph.graph import Graph
from repro.graph.node import OpNode
from repro.graph.schedule import TrainingSchedule

STASH_RELU_POOL = "relu_pool"
STASH_RELU_CONV = "relu_conv"
STASH_OTHER = "other"

STASH_CLASSES = (STASH_RELU_POOL, STASH_RELU_CONV, STASH_OTHER)

#: Consumer kinds whose backward pass multiplies against exact stashed
#: input values and therefore admit SSDC's exact CSR round-trip.
_VALUE_CONSUMERS_SSDC = {"conv", "dense"}


@dataclass(frozen=True)
class StashInfo:
    """Classification result for one stashed feature map."""

    node_id: int
    stash_class: str
    #: Consumers whose backward pass reads this map as their input.
    value_consumers: tuple
    #: Whether the producer's own backward pass reads this map.
    producer_needs: bool


def _is_argmax_pool(node: OpNode) -> bool:
    return getattr(node.layer, "supports_argmax_map", False)


def _produces_relu_map(node: OpNode) -> bool:
    """Whether the node's output is a rectified (sparse, sign-maskable) map.

    Keyed on the ``relu_output`` layer attribute rather than the kind so
    that fused conv+relu nodes classify exactly like the relu they absorbed.
    """
    return getattr(node.layer, "relu_output", False)


def backward_users(graph: Graph, schedule: TrainingSchedule, node_id: int):
    """(producer_needs_output, consumers_needing_input) for a feature map."""
    node = graph.node(node_id)
    producer_needs = bool(
        node.layer.backward_needs_output and schedule.has_backward(node_id)
    )
    consumers = [
        c
        for c in graph.consumers(node_id)
        if c.layer.backward_needs_input and schedule.has_backward(c.node_id)
    ]
    return producer_needs, consumers


def classify_stash(
    graph: Graph, schedule: TrainingSchedule, node_id: int
) -> Optional[StashInfo]:
    """Classify one node's output feature map; ``None`` if not stashed."""
    node = graph.node(node_id)
    producer_needs, consumers = backward_users(graph, schedule, node_id)
    if not producer_needs and not consumers:
        return None

    # Binarize: the producer is a ReLU (mask suffices for its backward) and
    # every input-stashing consumer is a pool that Gist rewrites to use the
    # argmax map instead.
    if node.kind == "relu" and all(_is_argmax_pool(c) for c in consumers):
        return StashInfo(node_id, STASH_RELU_POOL, tuple(consumers),
                         producer_needs)
    # Fused conv+relu outputs are rectified maps too, but their producer
    # backward needs X (the conv side), so only the pure pool case applies.
    if (
        _produces_relu_map(node)
        and not producer_needs
        and all(_is_argmax_pool(c) for c in consumers)
    ):
        return StashInfo(node_id, STASH_RELU_POOL, tuple(consumers),
                         producer_needs)

    # SSDC: sparse producer (ReLU, or pool-of-ReLU) with conv/dense
    # value consumers.  The producer's own backward (if any) also works on
    # the exactly-reconstructed values.
    sparse_producer = _produces_relu_map(node) or (
        node.kind == "maxpool"
        and _produces_relu_map(graph.node(node.inputs[0]))
    )
    if (
        sparse_producer
        and consumers
        and all(
            c.kind in _VALUE_CONSUMERS_SSDC or _is_argmax_pool(c)
            for c in consumers
        )
    ):
        return StashInfo(node_id, STASH_RELU_CONV, tuple(consumers),
                         producer_needs)

    return StashInfo(node_id, STASH_OTHER, tuple(consumers), producer_needs)


def classify_all_stashes(
    graph: Graph, schedule: Optional[TrainingSchedule] = None
) -> Dict[int, StashInfo]:
    """Classify every stashed feature map in the graph, keyed by node id."""
    if schedule is None:
        schedule = TrainingSchedule(graph)
    result: Dict[int, StashInfo] = {}
    for node in graph.nodes:
        info = classify_stash(graph, schedule, node.node_id)
        if info is not None:
            result[node.node_id] = info
    return result


def stash_bytes_by_class(graph: Graph,
                         schedule: Optional[TrainingSchedule] = None
                         ) -> Dict[str, int]:
    """Raw FP32 bytes of stashed feature maps per class (Figure 3 bars).

    Max-pool X/Y stashing is attributed to the feature maps themselves
    (the pool's input and output maps), matching how Figure 3 accounts
    "ReLU-Pool" bytes as the ReLU output's footprint.
    """
    if schedule is None:
        schedule = TrainingSchedule(graph)
    result = {c: 0 for c in STASH_CLASSES}
    for node_id, info in classify_all_stashes(graph, schedule).items():
        node = graph.node(node_id)
        elements = 1
        for d in node.output_shape:
            elements *= d
        result[info.stash_class] += 4 * elements
    return result
