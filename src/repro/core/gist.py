"""Gist facade: one-call memory-footprint evaluation.

Ties the Schedule Builder to the allocator and the MFR metric so examples
and benches can express each paper experiment in a few lines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.sparsity import DEFAULT_SPARSITY_MODEL, SparsityModel
from repro.core.policy import GistConfig
from repro.core.schedule_builder import GistPlan, build_gist_plan
from repro.graph.graph import Graph
from repro.graph.schedule import TrainingSchedule
from repro.memory.allocator import POLICY_GREEDY_SIZE, StaticAllocator
from repro.memory.dynamic import simulate_dynamic
from repro.memory.footprint import memory_footprint_ratio
from repro.memory.planner import build_memory_plan


@dataclass(frozen=True)
class MFRReport:
    """Baseline-vs-Gist footprint comparison for one network."""

    model: str
    baseline_bytes: int
    gist_bytes: int

    @property
    def mfr(self) -> float:
        """Memory Footprint Ratio — paper Section V-A."""
        return memory_footprint_ratio(self.baseline_bytes, self.gist_bytes)

    def __str__(self) -> str:
        gib = 1024.0**3
        return (
            f"{self.model}: baseline {self.baseline_bytes / gib:.2f} GiB -> "
            f"gist {self.gist_bytes / gib:.2f} GiB (MFR {self.mfr:.2f}x)"
        )


class Gist:
    """The Gist system: configure once, apply to any training graph.

    Args:
        config: Technique switches; defaults to everything on with FP16
            DPR (the always-safe lossy width).
        sparsity_model: Per-layer sparsity source for SSDC sizing.
    """

    def __init__(
        self,
        config: Optional[GistConfig] = None,
        sparsity_model: Optional[SparsityModel] = None,
    ):
        self.config = config or GistConfig()
        self.sparsity_model = sparsity_model or DEFAULT_SPARSITY_MODEL

    def apply(
        self,
        graph: Graph,
        schedule: Optional[TrainingSchedule] = None,
        investigation: bool = False,
    ) -> GistPlan:
        """Run the Schedule Builder on ``graph``."""
        return build_gist_plan(
            graph,
            self.config,
            self.sparsity_model,
            schedule=schedule,
            investigation=investigation,
        )

    # ------------------------------------------------------------------
    def measure_mfr(
        self,
        graph: Graph,
        investigation: bool = False,
        dynamic: bool = False,
        allocator_policy: str = POLICY_GREEDY_SIZE,
    ) -> MFRReport:
        """Footprint of baseline vs Gist under one allocation discipline.

        Args:
            graph: Training execution graph.
            investigation: Use the investigation baseline (stashed maps
                unshared) on both sides.
            dynamic: Use the dynamic-allocation simulator instead of the
                static allocator (Figure 17).
            allocator_policy: Static allocator policy (ablations).
        """
        schedule = TrainingSchedule(graph)
        baseline = build_memory_plan(graph, schedule,
                                     investigation=investigation)
        gist_plan = self.apply(graph, schedule, investigation=investigation)
        if dynamic:
            base_bytes = simulate_dynamic(baseline.tensors,
                                          schedule.num_steps).peak_bytes
            gist_bytes = simulate_dynamic(gist_plan.plan.tensors,
                                          schedule.num_steps).peak_bytes
        else:
            allocator = StaticAllocator(allocator_policy)
            base_bytes = allocator.allocate(baseline.tensors).total_bytes
            gist_bytes = allocator.allocate(gist_plan.plan.tensors).total_bytes
        return MFRReport(graph.name, base_bytes, gist_bytes)


def footprint_bytes(
    graph: Graph,
    config: Optional[GistConfig] = None,
    sparsity_model: Optional[SparsityModel] = None,
    investigation: bool = False,
    dynamic: bool = False,
) -> int:
    """Footprint of ``graph`` under ``config`` (None/disabled = baseline)."""
    schedule = TrainingSchedule(graph)
    if config is None or not (config.any_encoding or config.inplace):
        plan = build_memory_plan(graph, schedule, investigation=investigation)
        tensors = plan.tensors
    else:
        gist_plan = build_gist_plan(
            graph, config, sparsity_model, schedule=schedule,
            investigation=investigation,
        )
        tensors = gist_plan.plan.tensors
    if dynamic:
        return simulate_dynamic(tensors, schedule.num_steps).peak_bytes
    return StaticAllocator().allocate(tensors).total_bytes


def class_mfr_breakdown(gist_plan: GistPlan) -> Dict[str, float]:
    """Per-stash-class raw compression achieved by the decisions."""
    totals: Dict[str, Dict[str, int]] = {}
    for decision in gist_plan.decisions.values():
        entry = totals.setdefault(decision.stash_class,
                                  {"fp32": 0, "encoded": 0})
        entry["fp32"] += decision.fp32_bytes
        entry["encoded"] += decision.encoded_bytes
    return {
        cls: (v["fp32"] / v["encoded"]) if v["encoded"] else float("inf")
        for cls, v in totals.items()
    }
