"""Gist configuration: which encodings to apply and how.

Mirrors Table I of the paper.  Presets cover the paper's experiment arms:

* :meth:`GistConfig.lossless` — Binarize + SSDC + inplace (Figure 8's
  "Lossless" bar, Figure 10's isolation studies).
* :meth:`GistConfig.full` — lossless plus DPR (Figure 8's "Lossless +
  Lossy" bar; the DPR format is per-network, chosen as the smallest that
  trains without accuracy loss — Section V-D1).
* :meth:`GistConfig.dpr_only` — DPR on every stashed map (Figure 13).

:class:`HybridPolicy` extends the per-class encoding choice into a
per-tensor *strategy* choice — Gist encoding, recompute-from-ancestor or
host swap — priced by the cost model (see
:mod:`repro.memory.hybrid`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.dtypes import DPR_FORMATS

# Planner strategies accepted by `repro plan --strategy` and
# :func:`repro.memory.hybrid.build_hybrid_plan`.
STRATEGY_GIST = "gist"
STRATEGY_RECOMPUTE = "recompute"
STRATEGY_SWAP = "swap"
STRATEGY_SHARED_CONCAT = "shared_concat"
STRATEGY_HYBRID = "hybrid"
HYBRID_STRATEGIES = (
    STRATEGY_GIST,
    STRATEGY_RECOMPUTE,
    STRATEGY_SWAP,
    STRATEGY_SHARED_CONCAT,
    STRATEGY_HYBRID,
)

#: Smallest DPR format per network with no accuracy loss (paper §V-D1):
#: AlexNet and Overfeat train at FP8; Inception needs FP10; VGG16 needs
#: FP16.  Networks the paper does not call out keep the safe FP16 default.
PAPER_DPR_FORMATS = {
    "alexnet": "fp8",
    "overfeat": "fp8",
    "nin": "fp10",
    "inception": "fp10",
    "vgg16": "fp16",
    "resnet50": "fp10",
}


@dataclass(frozen=True)
class GistConfig:
    """Switches for each Gist technique.

    Attributes:
        binarize: 1-bit ReLU-Pool encoding (+ pool argmax-map rewrite).
        ssdc: CSR encoding for ReLU-Conv / sparse Pool-Conv maps.
        dpr: Delayed precision reduction on remaining stashed maps.
        inplace: Inplace computation for read-once/write-once layers.
        dpr_format: ``"fp16"`` / ``"fp10"`` / ``"fp8"``.
        dpr_over_ssdc: Also compress the CSR values array with DPR
            (never the meta arrays — paper Section IV-A).
        ssdc_cols: CSR row width; 256 enables the narrow-value
            optimisation, larger values model stock cuSPARSE (ablation).
        rounding: Minifloat rounding, ``"nearest"`` or ``"truncate"``.
        optimized_software: Drop the decoded-FP32 staging buffer, as if
            cuDNN consumed encoded data directly (Figure 17's rightmost
            bars).
    """

    binarize: bool = True
    ssdc: bool = True
    dpr: bool = True
    inplace: bool = True
    dpr_format: str = "fp16"
    dpr_over_ssdc: bool = True
    ssdc_cols: int = 256
    rounding: str = "nearest"
    optimized_software: bool = False

    def __post_init__(self) -> None:
        if self.dpr_format not in DPR_FORMATS:
            raise ValueError(
                f"dpr_format must be one of {sorted(DPR_FORMATS)}, "
                f"got {self.dpr_format!r}"
            )
        if self.ssdc_cols <= 0:
            raise ValueError(f"ssdc_cols must be positive, got {self.ssdc_cols}")
        if self.rounding not in ("nearest", "truncate"):
            raise ValueError(f"unknown rounding mode {self.rounding!r}")

    # ------------------------------------------------------------------
    @classmethod
    def lossless(cls, **overrides) -> "GistConfig":
        """Binarize + SSDC + inplace, no DPR."""
        return cls(dpr=False, **overrides)

    @classmethod
    def full(cls, dpr_format: str = "fp16", **overrides) -> "GistConfig":
        """All techniques; ``dpr_format`` selects the lossy width."""
        return cls(dpr_format=dpr_format, **overrides)

    @classmethod
    def for_network(cls, model_name: str, **overrides) -> "GistConfig":
        """All techniques with the paper's per-network DPR format."""
        fmt = PAPER_DPR_FORMATS.get(model_name, "fp16")
        return cls(dpr_format=fmt, **overrides)

    @classmethod
    def binarize_only(cls) -> "GistConfig":
        """Binarize in isolation (Figure 10)."""
        return cls(ssdc=False, dpr=False, inplace=False)

    @classmethod
    def ssdc_only(cls) -> "GistConfig":
        """SSDC in isolation (Figure 10)."""
        return cls(binarize=False, dpr=False, inplace=False)

    @classmethod
    def dpr_only(cls, dpr_format: str = "fp16") -> "GistConfig":
        """DPR on every stashed map, no lossless encodings (Figure 13)."""
        return cls(binarize=False, ssdc=False, inplace=False,
                   dpr_format=dpr_format)

    @classmethod
    def disabled(cls) -> "GistConfig":
        """No techniques at all — identical to the baseline plan."""
        return cls(binarize=False, ssdc=False, dpr=False, inplace=False)

    def with_(self, **overrides) -> "GistConfig":
        """Functional update."""
        return replace(self, **overrides)

    @property
    def any_encoding(self) -> bool:
        """Whether any stash-rewriting technique is enabled."""
        return self.binarize or self.ssdc or self.dpr


@dataclass(frozen=True)
class HybridPolicy:
    """Configuration of the hybrid memory planner.

    The planner prices three footprint levers per stashed feature map —
    Gist encoding, recompute-from-cheapest-ancestor and host swap — with
    the roofline cost model, then picks the cheapest mix that fits the
    overhead budget (:func:`repro.memory.hybrid.build_hybrid_plan`).

    Attributes:
        strategy: ``"hybrid"`` considers all levers per tensor;
            ``"gist"`` / ``"recompute"`` / ``"swap"`` /
            ``"shared_concat"`` restrict the planner to a single lever
            (the pure arms the hybrid must beat).
        cost_budget_frac: Step-time overhead budget as a fraction of the
            baseline step (all strategies select under the same budget,
            which is what makes their footprints comparable).
        gist: Encoding switches for the Gist lever.  The default is
            :meth:`GistConfig.lossless`, so every plan decision round-trips
            bit-exactly and hybrid execution matches the baseline's
            losses and gradients bit for bit.
    """

    strategy: str = STRATEGY_HYBRID
    cost_budget_frac: float = 0.15
    gist: GistConfig = GistConfig.lossless()

    def __post_init__(self) -> None:
        if self.strategy not in HYBRID_STRATEGIES:
            raise ValueError(
                f"strategy must be one of {HYBRID_STRATEGIES}, "
                f"got {self.strategy!r}"
            )
        if self.cost_budget_frac < 0.0:
            raise ValueError(
                f"cost_budget_frac must be >= 0, got {self.cost_budget_frac}"
            )

    def with_(self, **overrides) -> "HybridPolicy":
        """Functional update."""
        return replace(self, **overrides)

    def describe(self) -> str:
        """Label: ``"hybrid"`` or ``"hybrid-<pure strategy>"``."""
        if self.strategy == STRATEGY_HYBRID:
            return "hybrid"
        return f"hybrid-{self.strategy}"

    @property
    def lossless(self) -> bool:
        """Whether every decision the planner can emit is lossless."""
        return not self.gist.dpr
