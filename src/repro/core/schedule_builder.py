"""Gist's Schedule Builder (paper Section IV-B).

Given a training graph and a :class:`~repro.core.policy.GistConfig`, this
pass:

1. classifies every stashed feature map (ReLU-Pool / ReLU-Conv / Other);
2. selects the encoding Table I assigns to each class;
3. rewrites the liveness table — the FP32 feature map now dies at its last
   *forward* use, a compact encoded tensor spans the forward-backward gap,
   and (for SSDC/DPR) a decoded FP32 staging buffer lives only across the
   backward uses;
4. rewrites every max-pool to stash a 4-bit Y-to-X argmax map instead of
   its input and output maps (part of the Binarize technique);
5. merges inplace-eligible feature-map pairs.

The rewritten plan feeds the same CNTK-style allocator as the baseline —
which is the paper's central mechanism: encodings shorten FP32 lifetimes,
the allocator turns shortened lifetimes into shared memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.sparsity import DEFAULT_SPARSITY_MODEL, SparsityModel
from repro.core.analysis import (
    STASH_OTHER,
    STASH_RELU_CONV,
    STASH_RELU_POOL,
    StashInfo,
    classify_all_stashes,
)
from repro.core.policy import GistConfig
from repro.dtypes import BIT1, DPR_FORMATS, UINT8
from repro.encodings.inplace import inplace_eligible_edges
from repro.encodings.ssdc import csr_bytes
from repro.graph.graph import Graph
from repro.graph.liveness import (
    LiveTensor,
    ROLE_DECODED,
    ROLE_ENCODED,
    ROLE_FEATURE_MAP,
)
from repro.graph.node import OpNode
from repro.graph.schedule import TrainingSchedule
from repro.memory.planner import (
    CLASS_ENCODED,
    CLASS_STASHED,
    MemoryPlan,
    build_memory_plan,
)
from repro.tensor.categories import TensorCategory
from repro.tensor.spec import TensorSpec

ENC_BINARIZE = "binarize"
ENC_SSDC = "ssdc"
ENC_DPR = "dpr"


@dataclass(frozen=True)
class EncodingDecision:
    """What the Schedule Builder decided for one stashed feature map."""

    node_id: int
    node_name: str
    stash_class: str
    encoding: Optional[str]
    fp32_bytes: int
    encoded_bytes: int
    decoded_bytes: int
    sparsity: Optional[float] = None


@dataclass
class GistPlan:
    """A rewritten memory plan plus the decisions that produced it."""

    graph: Graph
    schedule: TrainingSchedule
    plan: MemoryPlan
    config: GistConfig
    decisions: Dict[int, EncodingDecision] = field(default_factory=dict)
    rewritten_pools: Tuple[int, ...] = ()

    def raw_region_bytes(self) -> Dict[str, int]:
        """Raw bytes per Figure 10 region after the rewrite.

        Regions: ``ssdc`` (ReLU/Pool-Conv stashes), ``binarize``
        (ReLU-Pool stashes + argmax maps), ``other_stashed`` and
        ``immediate`` (everything short-lived, incl. decoded buffers,
        gradient maps and converted FP32 maps).
        """
        # Regions follow the *structural* classification, so the baseline
        # (no decisions) and every encoding arm bucket identically.
        class_of_node = {
            nid: info.stash_class
            for nid, info in classify_all_stashes(self.graph,
                                                  self.schedule).items()
        }
        regions = {"ssdc": 0, "binarize": 0, "other_stashed": 0, "immediate": 0}
        pool_ids = set(self.rewritten_pools)
        for t in self.plan.tensors:
            cls = self.plan.classify(t)
            if t.role == ROLE_ENCODED:
                if t.node_id in pool_ids and t.spec.name.endswith(".argmax"):
                    regions["binarize"] += t.size_bytes
                else:
                    regions[_region_of(class_of_node.get(t.node_id))] += t.size_bytes
            elif cls == CLASS_STASHED:
                regions[_region_of(class_of_node.get(t.node_id))] += t.size_bytes
            else:
                regions["immediate"] += t.size_bytes
        return regions


def _region_of(stash_class: Optional[str]) -> str:
    if stash_class == STASH_RELU_POOL:
        return "binarize"
    if stash_class == STASH_RELU_CONV:
        return "ssdc"
    return "other_stashed"


def _encoding_for(stash_class: str, config: GistConfig) -> Optional[str]:
    """Table I: class → technique, honouring disabled switches."""
    if stash_class == STASH_RELU_POOL and config.binarize:
        return ENC_BINARIZE
    if stash_class == STASH_RELU_CONV and config.ssdc:
        return ENC_SSDC
    if config.dpr:
        return ENC_DPR
    return None


def _effective_needs(node: OpNode, pools_rewritten: bool) -> Tuple[bool, bool]:
    """(needs_input, needs_output) after the max-pool argmax rewrite."""
    needs_in = node.layer.backward_needs_input
    needs_out = node.layer.backward_needs_output
    if pools_rewritten and getattr(node.layer, "supports_argmax_map", False):
        return False, False
    return needs_in, needs_out


def _feature_map_uses(
    graph: Graph,
    schedule: TrainingSchedule,
    node_id: int,
    pools_rewritten: bool,
) -> Tuple[int, Optional[int], Optional[int]]:
    """(last forward use, first backward use, last backward use)."""
    node = graph.node(node_id)
    last_fwd = schedule.forward_time(node_id)
    for consumer in graph.consumers(node_id):
        last_fwd = max(last_fwd, schedule.forward_time(consumer.node_id))
    bwd: List[int] = []
    _, self_needs_out = _effective_needs(node, pools_rewritten)
    if self_needs_out and schedule.has_backward(node_id):
        bwd.append(schedule.backward_time(node_id))
    for consumer in graph.consumers(node_id):
        needs_in, _ = _effective_needs(consumer, pools_rewritten)
        if needs_in and schedule.has_backward(consumer.node_id):
            bwd.append(schedule.backward_time(consumer.node_id))
    if node_id == graph.output_id and schedule.has_backward(node_id):
        # The loss output seeds the backward pass.
        bwd.append(schedule.backward_time(node_id))
    if not bwd:
        return last_fwd, None, None
    return last_fwd, min(bwd), max(bwd)


def build_gist_plan(
    graph: Graph,
    config: Optional[GistConfig] = None,
    sparsity_model: Optional[SparsityModel] = None,
    schedule: Optional[TrainingSchedule] = None,
    investigation: bool = False,
    include_weights: bool = False,
    include_workspace: bool = False,
) -> GistPlan:
    """Run the Schedule Builder and return the rewritten memory plan.

    Args:
        graph: Training execution graph.
        config: Technique switches (defaults to everything on, FP16 DPR).
        sparsity_model: Supplies per-layer sparsity for SSDC sizing.
        schedule: Precomputed schedule (built if omitted).
        investigation: Exclude stashed/encoded tensors from memory sharing
            (the paper's investigation baseline discipline).
        include_weights: Carry weights/weight-grads in the plan.
        include_workspace: Carry per-op workspace in the plan.
    """
    config = config or GistConfig()
    sparsity_model = sparsity_model or DEFAULT_SPARSITY_MODEL
    if schedule is None:
        schedule = TrainingSchedule(graph)

    plan = build_memory_plan(
        graph,
        schedule,
        include_weights=include_weights,
        include_workspace=include_workspace,
    )
    pools_rewritten = config.binarize
    stash_infos = classify_all_stashes(graph, schedule)
    dpr_dtype = DPR_FORMATS[config.dpr_format]

    fm_by_node: Dict[int, LiveTensor] = {
        t.node_id: t for t in plan.tensors if t.role == ROLE_FEATURE_MAP
    }
    new_tensors: List[LiveTensor] = []
    decisions: Dict[int, EncodingDecision] = {}

    for node in graph.nodes:
        nid = node.node_id
        fm = fm_by_node[nid]
        last_fwd, first_bwd, last_bwd = _feature_map_uses(
            graph, schedule, nid, pools_rewritten
        )
        if first_bwd is None:
            # Not stashed under the effective needs (e.g. a pool's input
            # once the argmax rewrite removed the pool's X dependence).
            fm.death = last_fwd
            continue

        info: Optional[StashInfo] = stash_infos.get(nid)
        if info is None:
            # Stashed only through schedule artifacts (e.g. the loss output
            # seeding the backward pass) — no real value consumer, nothing
            # to encode.
            fm.death = max(last_fwd, last_bwd)
            continue
        stash_class = info.stash_class
        encoding = _encoding_for(stash_class, config)
        if encoding is None:
            fm.death = max(last_fwd, last_bwd)
            continue

        # The FP32 map is relinquished right after its last forward use.
        fm.death = last_fwd
        sparsity: Optional[float] = None
        if encoding == ENC_BINARIZE:
            enc_spec = TensorSpec(f"{node.name}.out.enc", node.output_shape,
                                  BIT1, TensorCategory.ENCODED)
            decoded_bytes = 0  # ReLU backward reads the mask directly.
        elif encoding == ENC_SSDC:
            sparsity = sparsity_model.sparsity(graph, nid)
            value_bits = (
                dpr_dtype.bits
                if (config.dpr and config.dpr_over_ssdc)
                else 32
            )
            nbytes = csr_bytes(fm.spec.num_elements, sparsity,
                               config.ssdc_cols, value_bits)
            if nbytes >= fm.spec.size_bytes:
                # Below the compression breakeven (paper: ~20% sparsity
                # with narrow indices) CSR would expand the stash; fall
                # back to DPR when lossy is on, else leave it untouched.
                if config.dpr:
                    encoding = ENC_DPR
                    sparsity = None
                else:
                    fm.death = max(last_fwd, last_bwd)
                    continue
        if encoding == ENC_SSDC:
            enc_spec = TensorSpec(f"{node.name}.out.enc", (nbytes,), UINT8,
                                  TensorCategory.ENCODED)
            decoded_bytes = fm.spec.size_bytes
        elif encoding == ENC_DPR:
            enc_spec = TensorSpec(f"{node.name}.out.enc", node.output_shape,
                                  dpr_dtype, TensorCategory.ENCODED)
            decoded_bytes = fm.spec.size_bytes

        new_tensors.append(
            LiveTensor(enc_spec, birth=last_fwd, death=last_bwd,
                       node_id=nid, role=ROLE_ENCODED)
        )
        if decoded_bytes and not config.optimized_software:
            new_tensors.append(
                LiveTensor(
                    TensorSpec(f"{node.name}.out.dec", node.output_shape,
                               fm.spec.dtype, TensorCategory.FEATURE_MAP),
                    birth=first_bwd,
                    death=last_bwd,
                    node_id=nid,
                    role=ROLE_DECODED,
                )
            )
        decisions[nid] = EncodingDecision(
            node_id=nid,
            node_name=node.name,
            stash_class=stash_class,
            encoding=encoding,
            fp32_bytes=fm.spec.size_bytes,
            encoded_bytes=enc_spec.size_bytes,
            decoded_bytes=0 if config.optimized_software else decoded_bytes,
            sparsity=sparsity,
        )

    # Argmax maps for rewritten pools.
    rewritten_pools: List[int] = []
    if pools_rewritten:
        for node in graph.nodes:
            if not getattr(node.layer, "supports_argmax_map", False):
                continue
            if not schedule.has_backward(node.node_id):
                continue
            rewritten_pools.append(node.node_id)
            if getattr(node.layer, "argmax_map_static", False):
                # The layer already declares the map in saved_state_specs
                # (pool-argmax graph rewrite); adding it again would
                # double-count and collide on the tensor name.
                continue
            map_spec = node.layer.argmax_map_spec(node.output_shape)
            new_tensors.append(
                LiveTensor(
                    TensorSpec(f"{node.name}.argmax", node.output_shape,
                               map_spec.dtype, TensorCategory.ENCODED),
                    birth=schedule.forward_time(node.node_id),
                    death=schedule.backward_time(node.node_id),
                    node_id=node.node_id,
                    role=ROLE_ENCODED,
                )
            )

    plan.tensors.extend(new_tensors)

    # Inplace merges: the consumer's buffer absorbs the producer's.
    if config.inplace:
        merged: List[LiveTensor] = []
        drop = set()
        for producer_id, consumer_id in inplace_eligible_edges(graph):
            producer_fm = fm_by_node[producer_id]
            consumer_fm = fm_by_node[consumer_id]
            if producer_fm.spec.name in drop:
                continue
            consumer_fm.birth = min(consumer_fm.birth, producer_fm.birth)
            drop.add(producer_fm.spec.name)
        plan.tensors = [t for t in plan.tensors if t.spec.name not in drop]
        del merged

    if investigation:
        for t in plan.tensors:
            if plan.classify(t) in (CLASS_STASHED, CLASS_ENCODED):
                t.shareable = False

    return GistPlan(graph, schedule, plan, config, decisions,
                    tuple(rewritten_pools))
