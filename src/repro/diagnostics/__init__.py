"""Step-trace observability, golden-trace conformance and invariants.

Three subsystems, all wired through the training executor:

* :class:`StepTracer` (:mod:`repro.diagnostics.tracer`) — structured
  per-step/per-node events: wall time, encode/decode byte counts and
  compression ratios per encoding, workspace-arena statistics.  Attached
  per executor; costs nothing when detached.
* :class:`TraceDigest` (:mod:`repro.diagnostics.digest`) — deterministic
  SHA-256 fingerprints of losses, parameter gradients and decoded stash
  tensors, with :meth:`~TraceDigest.save_golden` /
  :meth:`~TraceDigest.compare_golden` so any model+policy run can be
  pinned and re-verified in CI (recipes in
  :mod:`repro.diagnostics.golden`).
* :class:`InvariantSuite` (:mod:`repro.diagnostics.invariants`) — runtime
  checkers: lossless encodings round-trip bit-exactly, stashes are never
  read past their liveness death point, arena rents never alias live
  encoded stashes; plus :func:`verify_kernel_agreement` for the
  kernel-plan vs reference cross-check.

CLI surface: ``python -m repro trace`` runs a traced training demo and
saves/compares goldens.
"""

from repro.diagnostics.digest import (
    GoldenComparison,
    StepDigest,
    TraceDigest,
    array_digest,
    capture_digest,
    load_golden,
    mapping_digest,
    step_digest,
)
from repro.diagnostics.golden import (
    GOLDEN_MODELS,
    GOLDEN_POLICIES,
    TRACE_POLICIES,
    build_trace_policy,
    golden_batches,
    golden_filename,
    run_traced,
)
from repro.diagnostics.invariants import (
    InvariantSuite,
    InvariantViolation,
    verify_kernel_agreement,
)
from repro.diagnostics.tracer import StepRecord, StepTracer, TraceEvent

__all__ = [
    "GOLDEN_MODELS",
    "GOLDEN_POLICIES",
    "GoldenComparison",
    "InvariantSuite",
    "InvariantViolation",
    "StepDigest",
    "StepRecord",
    "StepTracer",
    "TRACE_POLICIES",
    "TraceDigest",
    "TraceEvent",
    "array_digest",
    "build_trace_policy",
    "capture_digest",
    "golden_batches",
    "golden_filename",
    "load_golden",
    "mapping_digest",
    "run_traced",
    "step_digest",
    "verify_kernel_agreement",
]
