"""Deterministic trace digests and golden-trace conformance.

A :class:`TraceDigest` pins the *numerical identity* of a training run:
per step it records stable SHA-256 hashes of the scalar loss, every
parameter gradient, and every decoded stash tensor.  Two runs with the
same digest computed the same bits everywhere the paper makes a claim —
losses, gradients, and what the backward pass actually read out of the
encoded stashes.

Digests serialise to JSON, so any model+policy combination can be saved
as a *golden trace* (:meth:`TraceDigest.save_golden`) and re-verified
later (:meth:`TraceDigest.compare_golden`), turning "Gist-lossless trains
bit-identically" from an ad-hoc benchmark assertion into a permanent,
machine-checkable conformance gate.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.ioutil import atomic_write_text

#: Format version stamped into golden files; bump on digest layout changes.
GOLDEN_FORMAT = 1


def array_digest(arr: np.ndarray) -> str:
    """Stable SHA-256 hex digest of an array's dtype, shape and bytes.

    The hash covers the exact bit pattern (C-contiguous byte order), so
    two arrays digest equal iff they are bit-for-bit the same tensor.
    """
    a = np.ascontiguousarray(arr)
    h = hashlib.sha256()
    h.update(a.dtype.str.encode())
    h.update(repr(tuple(a.shape)).encode())
    h.update(a.tobytes())
    return h.hexdigest()


def mapping_digest(arrays: Mapping[str, np.ndarray]) -> str:
    """Order-independent combined digest of a name -> array mapping."""
    h = hashlib.sha256()
    for name in sorted(arrays):
        h.update(name.encode())
        h.update(array_digest(arrays[name]).encode())
    return h.hexdigest()


@dataclass(frozen=True)
class StepDigest:
    """Numerical fingerprint of one training step.

    Attributes:
        loss: The scalar loss (stored for human-readable diffs).
        loss_hash: Digest of the loss's float64 bit pattern.
        grads_hash: Combined digest of every parameter gradient.
        stash_hash: Combined digest of every *decoded* stash tensor — what
            the backward pass actually read, post encode/decode.
    """

    loss: float
    loss_hash: str
    grads_hash: str
    stash_hash: str


@dataclass(frozen=True)
class GoldenComparison:
    """Outcome of comparing a digest against a golden trace.

    Attributes:
        matches: True iff every step (and the metadata) agrees.
        mismatches: Human-readable descriptions of each disagreement.
    """

    matches: bool
    mismatches: Tuple[str, ...]

    def __bool__(self) -> bool:
        return self.matches


@dataclass
class TraceDigest:
    """Stable per-step hashes of one training run.

    Attributes:
        model: Registry model name (or graph name) the run used.
        policy: Stash-policy label (:meth:`~repro.train.stash.StashPolicy.describe`).
        seed: Executor/parameter seed of the run.
        steps: One :class:`StepDigest` per training step, in order.
    """

    model: str
    policy: str
    seed: int
    steps: List[StepDigest]

    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        """JSON-serialisable representation (the golden file format)."""
        return {
            "format": GOLDEN_FORMAT,
            "model": self.model,
            "policy": self.policy,
            "seed": self.seed,
            "steps": [asdict(s) for s in self.steps],
        }

    @classmethod
    def from_json(cls, data: dict) -> "TraceDigest":
        """Inverse of :meth:`to_json`."""
        if data.get("format") != GOLDEN_FORMAT:
            raise ValueError(
                f"golden format {data.get('format')!r} != {GOLDEN_FORMAT}"
            )
        return cls(
            model=data["model"],
            policy=data["policy"],
            seed=int(data["seed"]),
            steps=[StepDigest(**s) for s in data["steps"]],
        )

    def save_golden(self, path) -> Path:
        """Write this digest as a golden-trace JSON file; returns the path."""
        return atomic_write_text(
            Path(path), json.dumps(self.to_json(), indent=2) + "\n"
        )

    def compare_golden(self, path) -> GoldenComparison:
        """Diff this digest against a saved golden trace.

        Returns a :class:`GoldenComparison`; truthiness signals a match, and
        ``mismatches`` names the first divergent field of every bad step.
        """
        golden = load_golden(path)
        problems: List[str] = []
        for attr in ("model", "policy", "seed"):
            mine, theirs = getattr(self, attr), getattr(golden, attr)
            if mine != theirs:
                problems.append(f"{attr}: run={mine!r} golden={theirs!r}")
        if len(self.steps) != len(golden.steps):
            problems.append(
                f"step count: run={len(self.steps)} golden={len(golden.steps)}"
            )
        for i, (mine, theirs) in enumerate(zip(self.steps, golden.steps)):
            for field in ("loss_hash", "grads_hash", "stash_hash"):
                if getattr(mine, field) != getattr(theirs, field):
                    problems.append(
                        f"step {i} {field}: run loss={mine.loss!r} "
                        f"golden loss={theirs.loss!r}"
                    )
                    break
        return GoldenComparison(not problems, tuple(problems))


def load_golden(path) -> TraceDigest:
    """Load a golden-trace JSON file written by :meth:`TraceDigest.save_golden`."""
    return TraceDigest.from_json(json.loads(Path(path).read_text()))


def step_digest(
    loss: float,
    grads: Mapping[str, np.ndarray],
    stashes: Mapping[str, np.ndarray],
) -> StepDigest:
    """Digest one step's loss, parameter gradients and decoded stashes."""
    return StepDigest(
        loss=float(loss),
        loss_hash=array_digest(np.float64(loss)),
        grads_hash=mapping_digest(grads),
        stash_hash=mapping_digest(stashes),
    )


def capture_digest(
    executor,
    batches: Sequence[Tuple[np.ndarray, np.ndarray]],
    optimizer=None,
    model: str = "",
    policy: Optional[str] = None,
    seed: int = 0,
) -> TraceDigest:
    """Run training steps through ``executor`` and digest each one.

    For every ``(images, labels)`` batch this runs a forward pass, digests
    every decoded stash tensor (forcing the same decodes the backward pass
    performs), runs the backward pass, digests the gradients, and — when an
    ``optimizer`` is given — applies the SGD update so successive steps
    exercise evolving parameters.

    Args:
        executor: A :class:`~repro.train.executor.GraphExecutor`.
        batches: One ``(images, labels)`` pair per step.
        optimizer: Optional optimiser stepped with each batch's gradients.
        model: Label recorded in the digest (defaults to the graph name).
        policy: Label recorded in the digest (defaults to the policy's
            :meth:`~repro.train.stash.StashPolicy.describe`).
        seed: Seed recorded in the digest metadata.
    """
    graph = executor.graph
    params = executor.parameters()
    steps: List[StepDigest] = []
    for images, labels in batches:
        loss = executor.forward(images, labels, train=True)
        stashes: Dict[str, np.ndarray] = {
            graph.node(nid).name: executor.stashed_value(nid)
            for nid in executor.stashed_node_ids()
        }
        grads = executor.backward()
        steps.append(step_digest(loss, grads, stashes))
        if optimizer is not None:
            optimizer.step(params, grads)
    return TraceDigest(
        model=model or graph.name,
        policy=policy if policy is not None else executor.policy.describe(),
        seed=seed,
        steps=steps,
    )
