"""Pinned golden-trace recipes for registry models.

A golden trace is only useful if the run that produced it is perfectly
reproducible, so this module fixes every degree of freedom: the model
configuration (small enough to train in milliseconds), the synthetic
batch stream, the executor seed and the optimiser.  The same recipe is
used by the ``repro trace`` CLI, the conformance test suite, and anyone
regenerating goldens after an intentional numerical change.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.policy import GistConfig
from repro.diagnostics.digest import TraceDigest, capture_digest
from repro.diagnostics.tracer import StepTracer
from repro.dtypes import DPR_FORMATS
from repro.encodings.groupquant import GroupQuantPolicy
from repro.graph.graph import Graph
from repro.models import build_model
from repro.train.executor import GraphExecutor
from repro.train.optimizer import SGD
from repro.train.stash import (
    BaselinePolicy,
    GistPolicy,
    StashPolicy,
    UniformReductionPolicy,
)

__all__ = [
    "GOLDEN_MODELS",
    "GOLDEN_POLICIES",
    "TRACE_POLICIES",
    "build_trace_policy",
    "golden_batches",
    "golden_filename",
    "run_traced",
]

#: Model name -> fixed build kwargs for golden runs (kept tiny on purpose).
GOLDEN_MODELS: Dict[str, Dict[str, int]] = {
    "tiny_cnn": {"batch_size": 8, "num_classes": 4, "image_size": 8},
    "scaled_vgg": {
        "batch_size": 8, "num_classes": 4, "image_size": 8, "width": 4,
    },
    "scaled_alexnet": {"batch_size": 8, "num_classes": 4, "image_size": 16},
    "lstm": {
        "batch_size": 8, "num_classes": 4, "seq_len": 6,
        "input_size": 8, "hidden_size": 12,
    },
    "densenet": {
        "batch_size": 8, "num_classes": 4, "image_size": 8,
        "init_channels": 4, "growth": 4, "blocks": 2, "block_layers": 2,
    },
}

#: The policy arms pinned as goldens in the conformance suite.
GOLDEN_POLICIES: Tuple[str, ...] = ("baseline", "gist-lossless")

#: Policy names accepted by :func:`build_trace_policy`.
TRACE_POLICIES: Tuple[str, ...] = (
    "baseline", "gist-lossless", "gist-fp16", "gist-fp10", "gist-fp8",
    "uniform-fp16", "groupquant", "groupquant-int8",
)


def build_trace_policy(name: str, graph: Graph) -> StashPolicy:
    """Build the stash policy a trace/golden arm names.

    ``baseline``, ``gist-lossless``, ``gist-fp16/fp10/fp8`` (full Gist at
    that DPR width) and ``uniform-fp16`` are supported.
    """
    if name == "baseline":
        return BaselinePolicy()
    if name == "gist-lossless":
        return GistPolicy(graph, GistConfig.lossless())
    if name.startswith("gist-") and name[5:] in DPR_FORMATS:
        return GistPolicy(graph, GistConfig.full(name[5:]))
    if name.startswith("uniform-") and name[8:] in DPR_FORMATS:
        return UniformReductionPolicy(DPR_FORMATS[name[8:]])
    if name == "groupquant":
        return GroupQuantPolicy(bits=4)
    if name.startswith("groupquant-int"):
        return GroupQuantPolicy(bits=int(name[len("groupquant-int"):]))
    raise KeyError(f"unknown trace policy {name!r}; known: {TRACE_POLICIES}")


def golden_filename(model: str, policy: str) -> str:
    """Canonical golden-trace filename for a model/policy arm."""
    return f"{model}--{policy}.json"


def golden_batches(
    model: str, steps: int, seed: int = 0
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """The pinned synthetic batch stream for a golden run.

    The input geometry follows the recipe's kwargs — ``image_size``
    models draw (B, 3, S, S) images, ``seq_len`` models draw (B, T, F)
    sequences — from the same RNG stream either way, so pre-existing
    image goldens are byte-identical to before sequences existed.
    """
    spec = GOLDEN_MODELS[model]
    rng = np.random.default_rng(seed + 1_000_003)
    batch, classes = spec["batch_size"], spec["num_classes"]
    if "seq_len" in spec:
        shape = (batch, spec["seq_len"], spec["input_size"])
    else:
        shape = (batch, 3, spec["image_size"], spec["image_size"])
    return [
        (
            rng.normal(0.0, 1.0, shape).astype(np.float32),
            rng.integers(0, classes, batch),
        )
        for _ in range(steps)
    ]


def run_traced(
    model: str,
    policy: str,
    steps: int = 3,
    seed: int = 0,
    tracer: Optional[StepTracer] = None,
    check_invariants: bool = False,
    rewrite: bool = False,
) -> TraceDigest:
    """Run the pinned recipe for ``model``/``policy``; return its digest.

    Args:
        model: A key of :data:`GOLDEN_MODELS`.
        policy: A :data:`TRACE_POLICIES` name.
        steps: Number of SGD steps (goldens pin 3).
        seed: Master seed for parameters and the batch stream.
        tracer: Optional :class:`StepTracer` to observe the run with.
        check_invariants: Enable the full runtime invariant suite.
        rewrite: Apply the default graph-rewrite passes before tracing.
            On the golden models (no dead branches, so no parameterised
            node is removed) the digest's losses and gradients stay
            byte-identical to the unrewritten run — the property the
            rewrite-equivalence oracle pins.
    """
    spec = GOLDEN_MODELS[model]
    graph = build_model(model, **spec)
    if rewrite:
        from repro.rewrite import apply_passes

        graph = apply_passes(graph).graph
    executor = GraphExecutor(graph, build_trace_policy(policy, graph),
                             seed=seed, tracer=tracer)
    if check_invariants:
        executor.enable_invariants()
    optimizer = SGD(lr=0.01, momentum=0.9)
    return capture_digest(
        executor,
        golden_batches(model, steps, seed),
        optimizer=optimizer,
        model=model,
        policy=policy,
        seed=seed,
    )
