"""Runtime invariant checkers for the training executor.

Gist's correctness claims become machine-checkable here.  An
:class:`InvariantSuite` binds to one
:class:`~repro.train.executor.GraphExecutor` (via
:meth:`~repro.train.executor.GraphExecutor.enable_invariants`) and
verifies, while training runs:

* **lossless-round-trip** — every lossless encoding's decode reproduces,
  bit for bit, the reference the paper promises (the stashed values for
  Identity/SSDC, the positivity mask for Binarize);
* **stash-liveness** — no encoded stash is read after its death point on
  the schedule clock, i.e. the shortened lifetimes the Schedule Builder
  sells to the allocator are honoured by the runtime;
* **arena-alias** — no workspace-arena rent hands out memory overlapping
  a live encoded stash (the aliasing bug a buggy ``release`` would cause).

Each checker *raises* :class:`InvariantViolation` at the faulty event, so
seeded-fault tests can assert the checkers actually fire.
:func:`verify_kernel_agreement` additionally cross-checks the kernel-plan
and reference execution paths for bit-identical training.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.diagnostics.digest import array_digest, step_digest
from repro.graph.graph import Graph
from repro.graph.node import OpNode
from repro.graph.schedule import TrainingSchedule
# The runtime stash-dependence resolvers are shared with the executor so
# the liveness table here matches what the executor actually stashes.
from repro.train.executor import (
    GraphExecutor,
    _runtime_needs_input,
    _runtime_needs_output,
)

__all__ = ["InvariantSuite", "InvariantViolation", "verify_kernel_agreement"]


class InvariantViolation(AssertionError):
    """A runtime invariant of the training executor was broken."""


def _component_arrays(encoded, out: Optional[List[np.ndarray]] = None):
    """Flatten an encoded stash object into its backing ndarrays."""
    if out is None:
        out = []
    if isinstance(encoded, np.ndarray):
        out.append(encoded)
        return out
    for attr in ("words", "values", "col_idx", "row_ptr", "mask_words"):
        part = getattr(encoded, attr, None)
        if part is not None:
            _component_arrays(part, out)
    return out


def _span(arr: np.ndarray) -> Tuple[int, int]:
    """[start, end) byte-address range of a (contiguous) array."""
    start = arr.__array_interface__["data"][0]
    return start, start + arr.nbytes


class InvariantSuite:
    """Per-executor runtime invariant checkers.

    Built by :meth:`~repro.train.executor.GraphExecutor.enable_invariants`;
    the executor calls the ``on_*`` hooks at each event site.  Checkers are
    individually switchable so a test can isolate one invariant.

    Args:
        executor: The executor to bind to.
        round_trip: Verify lossless decode bit-exactness.
        liveness: Verify stash reads stay inside their lifetime window.
        aliasing: Verify arena rents never overlap live encoded stashes
            (installs itself as the arena's rent observer).
    """

    def __init__(self, executor: "GraphExecutor", round_trip: bool = True,
                 liveness: bool = True, aliasing: bool = True):
        self.executor = executor
        self.round_trip = round_trip
        self.liveness = liveness
        self.aliasing = aliasing
        self.schedule = TrainingSchedule(executor.graph)
        self._death = self._death_table(executor.graph, self.schedule)
        self._clock = -1
        #: node_id -> digest of the expected lossless decode.
        self._expected: Dict[int, Tuple[str, str]] = {}
        #: [start, end) spans of live encoded-stash buffers, + node name.
        self._regions: List[Tuple[int, int, str]] = []
        if aliasing:
            executor.arena.observer = self

    @staticmethod
    def _death_table(graph: Graph, schedule: TrainingSchedule) -> Dict[int, int]:
        """Last legitimate read time of each node's stash, runtime flags."""
        death: Dict[int, int] = {}
        for node in graph.nodes:
            nid = node.node_id
            last = schedule.forward_time(nid)
            for consumer in graph.consumers(nid):
                last = max(last, schedule.forward_time(consumer.node_id))
                if (_runtime_needs_input(consumer)
                        and schedule.has_backward(consumer.node_id)):
                    last = max(last, schedule.backward_time(consumer.node_id))
            if _runtime_needs_output(node) and schedule.has_backward(nid):
                last = max(last, schedule.backward_time(nid))
            death[nid] = last
        return death

    # -- executor hooks -------------------------------------------------
    def begin_step(self) -> None:
        """Reset per-step state (called at the top of ``forward``)."""
        self._clock = -1
        self._expected.clear()
        self._regions.clear()

    def on_forward(self, node: OpNode) -> None:
        """Advance the schedule clock to ``node``'s forward op."""
        self._clock = self.schedule.forward_time(node.node_id)

    def on_backward(self, node: OpNode) -> None:
        """Advance the schedule clock to ``node``'s backward op."""
        self._clock = self.schedule.backward_time(node.node_id)

    def end_step(self) -> None:
        """Move the clock past the schedule end (called after backward).

        Any stash read issued after this point is by definition outside
        every liveness window and will be reported.
        """
        self._clock = self.schedule.num_steps

    def on_stash_encoded(self, node: OpNode, y: np.ndarray,
                         encoding, encoded) -> None:
        """Record expectations for a freshly encoded stash."""
        if self.round_trip and encoding.lossless:
            self._expected[node.node_id] = (
                array_digest(encoding.expected_decode(y)), encoding.name
            )
        if self.aliasing:
            for arr in _component_arrays(encoded):
                self._regions.append(_span(arr) + (node.name,))

    def on_stash_read(self, node_id: int) -> None:
        """Check a stash read against the liveness table."""
        if not self.liveness:
            return
        death = self._death.get(node_id)
        if death is not None and self._clock > death:
            name = self.executor.graph.node(node_id).name
            raise InvariantViolation(
                f"stash-liveness: stash of {name!r} read at schedule time "
                f"{self._clock}, after its death point {death}"
            )

    def on_decoded(self, node_id: int, encoding, value: np.ndarray) -> None:
        """Check a decode result against the recorded expectation."""
        if not self.round_trip:
            return
        expected = self._expected.get(node_id)
        if expected is None:
            return
        digest, enc_name = expected
        if array_digest(value) != digest:
            name = self.executor.graph.node(node_id).name
            raise InvariantViolation(
                f"lossless-round-trip: {enc_name} decode of {name!r} is not "
                f"bit-identical to the encoded reference"
            )

    def on_rent(self, arr: np.ndarray) -> None:
        """Arena observer: a rented buffer must not alias a live stash."""
        if not self.aliasing:
            return
        start, end = _span(arr)
        for r_start, r_end, name in self._regions:
            if start < r_end and r_start < end:
                raise InvariantViolation(
                    f"arena-alias: rented buffer [{start:#x}, {end:#x}) "
                    f"overlaps the live encoded stash of {name!r}"
                )


def verify_kernel_agreement(
    graph: Graph,
    batches: Sequence[Tuple[np.ndarray, np.ndarray]],
    policy_factory=None,
    seed: int = 0,
) -> int:
    """Cross-check the kernel-plan and reference execution paths.

    Runs two fresh executors over the same graph and batches — one with
    the shape-static kernel plans + arena, one with the original per-call
    kernels — and requires bit-identical losses, parameter gradients and
    decoded stash tensors at every step.

    Args:
        graph: The training graph (parameters are re-initialised per
            executor from ``seed``, so both start identical).
        batches: ``(images, labels)`` pairs, one per step.
        policy_factory: ``graph -> StashPolicy`` builder; called once per
            executor so no runtime state is shared.  ``None`` uses the
            FP32 baseline.
        seed: Parameter-initialisation seed for both executors.

    Returns:
        The number of verified steps.

    Raises:
        InvariantViolation: On the first step where the two paths diverge.
    """
    def run(use_plans: bool) -> List:
        # Stateful layers (dropout) live on the shared graph: restart their
        # mask streams so both modes draw identical randomness.
        for node in graph.nodes:
            reset = getattr(node.layer, "reset_rng", None)
            if reset is not None:
                reset()
        policy = policy_factory(graph) if policy_factory is not None else None
        ex = GraphExecutor(graph, policy, seed=seed,
                           use_kernel_plans=use_plans)
        digests = []
        for images, labels in batches:
            loss = ex.forward(images, labels, train=True)
            stashes = {
                graph.node(nid).name: ex.stashed_value(nid)
                for nid in ex.stashed_node_ids()
            }
            grads = ex.backward()
            digests.append(step_digest(loss, grads, stashes))
        return digests

    plan_digests, ref_digests = run(True), run(False)
    for step, (mine, theirs) in enumerate(zip(plan_digests, ref_digests)):
        if mine != theirs:
            raise InvariantViolation(
                f"kernel-agreement: plan and reference paths diverged at "
                f"step {step} (plan loss={mine.loss!r}, "
                f"reference loss={theirs.loss!r})"
            )
    return len(batches)
