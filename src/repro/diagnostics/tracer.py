"""Structured per-step, per-node observability for the training runtime.

A :class:`StepTracer` attaches to a :class:`~repro.train.executor.GraphExecutor`
(constructor argument or :attr:`~repro.train.executor.GraphExecutor.tracer`)
and records, for every training step:

* per-node forward/backward wall time;
* per-stash encode/decode wall time, raw vs encoded byte counts and the
  resulting compression ratio, broken down by encoding class;
* workspace-arena statistics — pooled bytes (the arena's high-water
  footprint), rent hits/misses, and peak outstanding buffers.

The executor's hook sites are guarded by a single ``tracer is not None``
branch, so a detached tracer costs nothing on the hot path — the
``benchmarks/bench_trace_overhead.py`` gate holds tracer-off overhead
under 1% and tracer-on overhead under 10% of median step time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional

__all__ = ["StepRecord", "StepTracer", "TraceEvent"]


@dataclass(frozen=True)
class TraceEvent:
    """One traced runtime event (a node execution or a codec call).

    Attributes:
        step: Training-step index the event belongs to.
        node: Graph node name.
        phase: ``"forward"``, ``"backward"``, ``"encode"`` or ``"decode"``.
        wall_s: Wall-clock seconds spent in the event.
        encoding: Encoding name for codec events (``""`` otherwise).
        raw_bytes: FP32 bytes entering an encode (0 for non-codec events).
        encoded_bytes: Bytes of the encoded representation (codec events).
    """

    step: int
    node: str
    phase: str
    wall_s: float
    encoding: str = ""
    raw_bytes: int = 0
    encoded_bytes: int = 0


@dataclass
class StepRecord:
    """Aggregated observations for one training step.

    Attributes:
        index: Step number (0-based, counted per tracer).
        loss: Scalar loss of the step (``None`` until the forward pass
            reports it).
        forward_s / backward_s: Summed per-node wall time of each pass.
        encode_s / decode_s: Summed codec wall time (subset of the above).
        raw_bytes: Per-encoding-name FP32 bytes entering the stash.
        encoded_bytes: Per-encoding-name bytes actually stashed.
        arena_pooled_bytes: Arena footprint (free + outstanding buffers) at
            the end of the step — the pool's high-water mark, since the
            arena only ever grows within a step.
        arena_hits / arena_misses: Buffer-pool rents served from the free
            pool vs fresh allocations, this step only.
        arena_outstanding: Buffers still checked out when the step ended
            (escaped gradients and encoded stashes).
    """

    index: int
    loss: Optional[float] = None
    forward_s: float = 0.0
    backward_s: float = 0.0
    encode_s: float = 0.0
    decode_s: float = 0.0
    raw_bytes: Dict[str, int] = field(default_factory=dict)
    encoded_bytes: Dict[str, int] = field(default_factory=dict)
    arena_pooled_bytes: int = 0
    arena_hits: int = 0
    arena_misses: int = 0
    arena_outstanding: int = 0

    @property
    def step_s(self) -> float:
        """Total traced wall time of the step (forward + backward)."""
        return self.forward_s + self.backward_s

    @property
    def total_raw_bytes(self) -> int:
        """FP32 bytes entering the stash across all encodings."""
        return sum(self.raw_bytes.values())

    @property
    def total_encoded_bytes(self) -> int:
        """Bytes actually stashed across all encodings."""
        return sum(self.encoded_bytes.values())

    @property
    def compression_ratio(self) -> float:
        """Raw/encoded stash bytes (1.0 when nothing was stashed)."""
        enc = self.total_encoded_bytes
        return self.total_raw_bytes / enc if enc else 1.0


class StepTracer:
    """Collects :class:`StepRecord`/:class:`TraceEvent` streams from an executor.

    Args:
        keep_events: Record the fine-grained per-node event list in
            addition to per-step aggregates.  Disable for long runs where
            only the step summaries matter.
    """

    def __init__(self, keep_events: bool = True):
        self.keep_events = keep_events
        self.steps: List[StepRecord] = []
        self.events: List[TraceEvent] = []
        self._current: Optional[StepRecord] = None
        self._arena_hits0 = 0
        self._arena_misses0 = 0

    # -- executor-facing hooks -----------------------------------------
    def begin_step(self, arena=None) -> None:
        """Open a new step record (finalising any still-open one)."""
        if self._current is not None:
            self.steps.append(self._current)
        self._current = StepRecord(index=len(self.steps))
        if arena is not None:
            self._arena_hits0 = arena.hits
            self._arena_misses0 = arena.misses

    def record_loss(self, loss: float) -> None:
        """Attach the step's scalar loss (called at forward end)."""
        if self._current is not None:
            self._current.loss = float(loss)

    def record_node(self, node_name: str, phase: str, wall_s: float) -> None:
        """Record one node's forward or backward execution."""
        rec = self._current
        if rec is None:  # node run outside a step (standalone layer call)
            return
        if phase == "forward":
            rec.forward_s += wall_s
        else:
            rec.backward_s += wall_s
        if self.keep_events:
            self.events.append(TraceEvent(rec.index, node_name, phase, wall_s))

    def record_encode(self, node_name: str, encoding: str, raw_bytes: int,
                      encoded_bytes: int, wall_s: float) -> None:
        """Record one stash encode (byte counts + wall time)."""
        rec = self._current
        if rec is None:
            return
        rec.encode_s += wall_s
        rec.forward_s += wall_s
        rec.raw_bytes[encoding] = rec.raw_bytes.get(encoding, 0) + raw_bytes
        rec.encoded_bytes[encoding] = (
            rec.encoded_bytes.get(encoding, 0) + encoded_bytes
        )
        if self.keep_events:
            self.events.append(TraceEvent(
                rec.index, node_name, "encode", wall_s,
                encoding=encoding, raw_bytes=raw_bytes,
                encoded_bytes=encoded_bytes,
            ))

    def record_decode(self, node_name: str, encoding: str,
                      decoded_bytes: int, wall_s: float) -> None:
        """Record one stash decode performed by the backward pass."""
        rec = self._current
        if rec is None:
            return
        rec.decode_s += wall_s
        rec.backward_s += wall_s
        if self.keep_events:
            self.events.append(TraceEvent(
                rec.index, node_name, "decode", wall_s,
                encoding=encoding, raw_bytes=decoded_bytes,
            ))

    def end_step(self, arena=None) -> None:
        """Close the current step, snapshotting arena statistics."""
        rec = self._current
        if rec is None:
            return
        if arena is not None:
            rec.arena_pooled_bytes = arena.pooled_bytes()
            rec.arena_hits = arena.hits - self._arena_hits0
            rec.arena_misses = arena.misses - self._arena_misses0
            rec.arena_outstanding = arena.outstanding
        self.steps.append(rec)
        self._current = None

    # -- reporting ------------------------------------------------------
    def encoded_bytes_by_encoding(self) -> Dict[str, int]:
        """Total stashed bytes per encoding name across all steps."""
        out: Dict[str, int] = {}
        for rec in self.steps:
            for name, nbytes in rec.encoded_bytes.items():
                out[name] = out.get(name, 0) + nbytes
        return out

    def to_json(self) -> list:
        """JSON-serialisable list of per-step summaries."""
        return [
            {
                "step": r.index,
                "loss": r.loss,
                "forward_ms": r.forward_s * 1e3,
                "backward_ms": r.backward_s * 1e3,
                "encode_ms": r.encode_s * 1e3,
                "decode_ms": r.decode_s * 1e3,
                "raw_bytes": dict(r.raw_bytes),
                "encoded_bytes": dict(r.encoded_bytes),
                "compression_ratio": r.compression_ratio,
                "arena_pooled_bytes": r.arena_pooled_bytes,
                "arena_hits": r.arena_hits,
                "arena_misses": r.arena_misses,
                "arena_outstanding": r.arena_outstanding,
            }
            for r in self.steps
        ]

    def summary(self) -> str:
        """Human-readable per-step table (the ``repro trace`` output)."""
        header = (
            f"{'step':>4} {'loss':>10} {'fwd ms':>8} {'bwd ms':>8} "
            f"{'enc ms':>7} {'dec ms':>7} {'stash MiB':>10} "
            f"{'ratio':>6} {'arena MiB':>10} {'hit/miss':>9}"
        )
        lines = [header, "-" * len(header)]
        for r in self.steps:
            loss = f"{r.loss:.5f}" if r.loss is not None else "-"
            lines.append(
                f"{r.index:>4} {loss:>10} {r.forward_s * 1e3:>8.2f} "
                f"{r.backward_s * 1e3:>8.2f} {r.encode_s * 1e3:>7.2f} "
                f"{r.decode_s * 1e3:>7.2f} "
                f"{r.total_encoded_bytes / 2**20:>10.3f} "
                f"{r.compression_ratio:>6.2f} "
                f"{r.arena_pooled_bytes / 2**20:>10.3f} "
                f"{r.arena_hits:>4}/{r.arena_misses:<4}"
            )
        return "\n".join(lines)

    @staticmethod
    def clock() -> float:
        """The tracer's time source (``time.perf_counter``)."""
        return perf_counter()
