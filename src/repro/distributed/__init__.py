"""Simulated data-parallel training with compressed communication.

The distributed layer composes three guarantees the repo already ships —
payload-complete work units (any process can run one), a deterministic
process pool (results independent of worker count and arrival order) and
lossless/lossy codecs with measured byte counts — into N-replica
data-parallel SGD:

* :mod:`repro.distributed.shard` splits each step's minibatch so the
  concatenation of replica shards is byte-identical to the serial batch;
* :mod:`repro.distributed.wire` adapts the stash codecs (run-length /
  CSR for sparse gradients, DPR for dense) into wire codecs with
  measured bytes-on-wire;
* :mod:`repro.distributed.allreduce` merges shard gradients through a
  fixed pairwise tree keyed by shard index, so the merged bits never
  depend on replica count or completion order;
* :mod:`repro.distributed.replica` is the ``replica-step`` work-unit
  executor (one shard, one step, everything from the payload);
* :mod:`repro.distributed.trainer` drives whole runs over the pool, with
  elastic worker counts and crash/straggler recovery via the run
  journal.

The determinism contract extends the pool's: a run with ``replicas=N``
is byte-identical (losses, parameters, gradients) to the same
configuration at ``replicas=1`` — the serial comparator — because shard
structure, wire codec and merge order are all functions of the
configuration, never of scheduling.
"""

from repro.distributed.allreduce import tree_reduce, tree_reduce_gradients
from repro.distributed.replica import replica_work_units, run_replica_unit
from repro.distributed.shard import shard_slices, split_batch
from repro.distributed.trainer import (
    DistConfig,
    DistRunResult,
    DistStepRecord,
    train_distributed,
)
from repro.distributed.wire import (
    WIRE_CODECS,
    WireCodec,
    decode_wire,
    wire_codec,
)

__all__ = [
    "DistConfig",
    "DistRunResult",
    "DistStepRecord",
    "WIRE_CODECS",
    "WireCodec",
    "decode_wire",
    "replica_work_units",
    "run_replica_unit",
    "shard_slices",
    "split_batch",
    "train_distributed",
    "tree_reduce",
    "tree_reduce_gradients",
    "wire_codec",
]
