"""Fixed-order pairwise-tree gradient merge.

Floating-point addition is not associative, so "sum the shard gradients"
underdetermines the result: a ring reduce, a linear fold and a tree give
different last-ulp bits.  We pin one schedule — iterative pairwise
merging by *shard index*: ``(0,1), (2,3), ...`` each round, an odd
tail passing through untouched — and apply it everywhere, so the merged
bits are a pure function of the per-shard gradients.  Arrival order
cannot matter because the reduction never sees it: callers index
contributions by shard before merging.  Replica count cannot matter
because the tree's shape depends only on ``num_shards``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np


def tree_reduce(arrays: Sequence[np.ndarray]) -> np.ndarray:
    """Pairwise-tree sum of ``arrays`` in index order.

    The schedule is the balanced binary tree over indices; every merge is
    a single float32 ``a + b``, so the result is bit-reproducible for a
    fixed input list.
    """
    if not arrays:
        raise ValueError("tree_reduce needs at least one array")
    level: List[np.ndarray] = [
        np.asarray(a, dtype=np.float32) for a in arrays
    ]
    while len(level) > 1:
        merged = []
        for i in range(0, len(level) - 1, 2):
            merged.append(level[i] + level[i + 1])
        if len(level) % 2:
            merged.append(level[-1])
        level = merged
    return level[0]


def tree_reduce_gradients(
    shard_grads: Sequence[Dict[str, np.ndarray]],
    shard_sizes: Sequence[int],
) -> Dict[str, np.ndarray]:
    """Merge per-shard parameter gradients into the effective-batch view.

    Each shard's loss (and so its gradients) is a mean over its own
    samples; weighting shard ``s`` by ``n_s / N`` before the tree-sum
    reproduces the mean over the whole effective batch.  The weights and
    the tree schedule are functions of the shard structure alone, so the
    output is bit-identical however the shard gradients were computed
    (inline, one worker, N workers) as long as they are passed in shard
    order.
    """
    if len(shard_grads) != len(shard_sizes):
        raise ValueError(
            f"{len(shard_grads)} gradient sets but {len(shard_sizes)} "
            f"shard sizes"
        )
    if not shard_grads:
        raise ValueError("no shard gradients to merge")
    total = sum(int(n) for n in shard_sizes)
    if total <= 0:
        raise ValueError(f"shard sizes must sum positive, got {shard_sizes}")
    keys = list(shard_grads[0])
    for shard, grads in enumerate(shard_grads):
        if list(grads) != keys:
            raise ValueError(
                f"shard {shard} gradient keys differ from shard 0"
            )
    weights = [np.float32(int(n) / total) for n in shard_sizes]
    merged: Dict[str, np.ndarray] = {}
    for key in keys:
        merged[key] = tree_reduce(
            [w * g[key] for w, g in zip(weights, shard_grads)]
        )
    return merged
