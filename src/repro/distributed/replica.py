"""The ``replica-step`` work unit: one shard of one training step.

Payload-completeness is the whole design: the unit carries the model
recipe, the master parameters (base64 float32), the data recipe and the
``(step, shard)`` coordinates, so *any* worker process — or the parent,
inline — reconstructs the identical computation from the payload alone.
That is what makes the run journal's fingerprint resume sound for
training: a re-run after a crash re-issues byte-identical payloads, so
completed shards replay from the journal and interrupted ones re-execute
to the same bits.

Per-shard randomness (Dropout masks) comes from
``SeedSequence([seed, tag, step, shard])`` children: independent across
shards and steps, identical across worker counts and retries.
"""

from __future__ import annotations

import base64
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.distributed.allreduce import tree_reduce, tree_reduce_gradients
from repro.distributed.shard import shard_slices
from repro.distributed.wire import decode_wire, wire_codec

#: Domain-separation tags for the run's SeedSequence splits.
_BATCH_TAG = 0xBA7C
_MASK_TAG = 0xD120

#: Stash policies a replica unit can run under.
_POLICIES = ("baseline", "gist-lossless")


# ----------------------------------------------------------------------
# Parameter transport
# ----------------------------------------------------------------------
def encode_params(params: Dict[str, np.ndarray]) -> Dict[str, dict]:
    """Master parameters as a JSON-safe payload fragment."""
    return {
        name: {
            "shape": list(arr.shape),
            "data": base64.b64encode(
                np.ascontiguousarray(arr, dtype=np.float32).tobytes()
            ).decode("ascii"),
        }
        for name, arr in params.items()
    }


def decode_params(encoded: Dict[str, dict]) -> Dict[str, np.ndarray]:
    """Inverse of :func:`encode_params` (fresh writable arrays)."""
    return {
        name: np.frombuffer(
            base64.b64decode(spec["data"]), dtype=np.float32
        ).reshape(tuple(spec["shape"])).copy()
        for name, spec in encoded.items()
    }


def _build_policy(name: str, graph):
    if name == "baseline":
        return None
    if name == "gist-lossless":
        from repro.core.policy import GistConfig
        from repro.train.stash import GistPolicy

        return GistPolicy(graph, GistConfig.lossless())
    raise ValueError(f"unknown replica policy {name!r}; known: {_POLICIES}")


def step_batch_indices(
    seed: int, step: int, num_samples: int, batch_size: int
) -> np.ndarray:
    """Sample indices of step ``step``'s effective batch.

    A per-step ``SeedSequence([seed, tag, step])`` child draws the batch
    without replacement, so the schedule is a pure function of the
    configuration — every shard of every replica agrees on it without
    communicating.
    """
    if batch_size > num_samples:
        raise ValueError(
            f"batch_size {batch_size} exceeds dataset size {num_samples}"
        )
    rng = np.random.default_rng(
        np.random.SeedSequence([seed, _BATCH_TAG, step])
    )
    return rng.choice(num_samples, size=batch_size, replace=False)


# ----------------------------------------------------------------------
# The unit executor
# ----------------------------------------------------------------------
def run_replica_unit(payload: dict) -> dict:
    """Work-unit executor for kind ``replica-step``.

    Rebuilds the shard's graph, installs the master parameters and the
    per-(step, shard) mask streams, runs forward + backward on the
    shard's slice of the step batch, and returns the shard loss plus the
    wire-encoded parameter gradients with measured bytes-on-wire.
    """
    from repro.models.registry import build_model
    from repro.train.data import make_synthetic_for
    from repro.train.executor import GraphExecutor

    seed = int(payload["seed"])
    step = int(payload["step"])
    shard = int(payload["shard"])
    num_shards = int(payload["num_shards"])
    batch_size = int(payload["batch_size"])

    start, stop = shard_slices(batch_size, num_shards)[shard]
    shard_size = stop - start

    model_kwargs = dict(payload.get("model_kwargs", {}))
    graph = build_model(payload["model"], batch_size=shard_size,
                        **model_kwargs)
    executor = GraphExecutor(
        graph, _build_policy(payload.get("policy", "baseline"), graph),
        seed=seed,
    )
    params = executor.parameters()
    for name, arr in decode_params(payload["params"]).items():
        if name not in params:
            raise KeyError(f"payload parameter {name!r} not in graph")
        params[name][...] = arr
    executor.reset_layer_state(
        np.random.SeedSequence([seed, _MASK_TAG, step, shard])
    )

    data = payload["data"]
    # The dataset's geometry comes from the graph itself (model kwargs
    # like tiny_cnn's ``channels`` name conv widths, not input planes);
    # rank dispatch picks images or sequences to match the input node.
    train_set, _ = make_synthetic_for(
        graph.node(graph.input_id).output_shape,
        num_samples=int(data["num_samples"]),
        num_classes=int(model_kwargs.get("num_classes", 4)),
        noise=float(data.get("noise", 0.6)),
        seed=int(data.get("data_seed", seed)),
    )
    batch_idx = step_batch_indices(seed, step, train_set.num_samples,
                                   batch_size)
    idx = batch_idx[start:stop]
    loss = executor.forward(train_set.images[idx], train_set.labels[idx],
                            train=True)
    grads = executor.backward()

    codec = wire_codec(payload.get("wire_codec", "fp32"))
    messages = {name: codec.encode(g) for name, g in sorted(grads.items())}
    return {
        "shard": shard,
        "shard_size": shard_size,
        "loss": float(loss),
        "grads": messages,
        "wire_bytes": sum(int(m["wire_bytes"]) for m in messages.values()),
        "fp32_bytes": sum(4 * int(g.size) for g in grads.values()),
    }


def replica_work_units(
    base_payload: dict,
    step: int,
    params: Dict[str, np.ndarray],
    kind: str = "replica-step",
) -> List["WorkUnit"]:
    """One payload-complete unit per shard of training step ``step``.

    ``base_payload`` carries the static run configuration (model, data,
    seed, shard count, wire codec); the step number and current master
    parameters are stamped in here, which is exactly what makes the
    journal fingerprint step-specific: resuming a run replays completed
    shards only when the parameters they started from are identical.
    """
    from repro.orchestrate import WorkUnit

    encoded = encode_params(params)
    return [
        WorkUnit(
            kind,
            f"step:{step}/shard:{shard}",
            {**base_payload, "step": int(step), "shard": shard,
             "params": encoded},
        )
        for shard in range(int(base_payload["num_shards"]))
    ]


def merge_replica_results(
    units: Sequence["WorkUnit"],
    results: Dict[str, "UnitResult"],
) -> Tuple[float, Dict[str, np.ndarray], dict]:
    """Deterministic merge of one step's shard results.

    Walks units in shard order (never completion order), decodes each
    shard's wire messages and tree-merges the gradients; the step loss is
    the shard-size-weighted mean, matching the loss the serial effective
    batch would report.  Raises ``RuntimeError`` if any shard failed
    terminally — partial gradient updates are never applied.
    """
    losses: List[float] = []
    sizes: List[int] = []
    shard_grads: List[Dict[str, np.ndarray]] = []
    wire_total = 0
    fp32_total = 0
    for unit in units:
        result = results.get(unit.key)
        if result is None or not result.ok:
            error = None if result is None else result.error
            raise RuntimeError(
                f"replica unit {unit.key!r} did not complete: "
                f"{error or 'never scheduled'}"
            )
        value = result.value
        losses.append(float(value["loss"]))
        sizes.append(int(value["shard_size"]))
        shard_grads.append({
            name: decode_wire(message)
            for name, message in value["grads"].items()
        })
        wire_total += int(value["wire_bytes"])
        fp32_total += int(value["fp32_bytes"])
    merged = tree_reduce_gradients(shard_grads, sizes)
    total = sum(sizes)
    loss = float(
        tree_reduce([np.float32(n / total) * np.float32(l)
                     for n, l in zip(sizes, losses)])
    )
    stats = {"wire_bytes": wire_total, "fp32_bytes": fp32_total,
             "shard_losses": losses, "shard_sizes": sizes}
    return loss, merged, stats
