"""Deterministic minibatch sharding.

The shard structure is part of the *training configuration*, not of the
scheduling: ``num_shards`` fixes how every step's batch splits, and the
gradient semantics (which samples contribute to which shard gradient)
follow from that alone.  Replica count — how many worker processes run
those shards — is free to vary without touching a single bit of the
result, which is the property the replicas-N ≡ serial oracle checks.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np


def shard_slices(batch_size: int, num_shards: int) -> List[Tuple[int, int]]:
    """Contiguous ``[start, stop)`` ranges splitting a batch into shards.

    Sizes are as equal as possible (the first ``batch_size % num_shards``
    shards get one extra sample) and every shard is non-empty, so the
    concatenation of the ranges is exactly ``[0, batch_size)``.
    """
    if num_shards <= 0:
        raise ValueError(f"num_shards must be positive, got {num_shards}")
    if batch_size < num_shards:
        raise ValueError(
            f"cannot split batch of {batch_size} into {num_shards} "
            f"non-empty shards"
        )
    base, extra = divmod(batch_size, num_shards)
    slices = []
    start = 0
    for shard in range(num_shards):
        stop = start + base + (1 if shard < extra else 0)
        slices.append((start, stop))
        start = stop
    return slices


def split_batch(
    images: np.ndarray, labels: np.ndarray, num_shards: int
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Split one minibatch into per-shard ``(images, labels)`` views.

    Concatenating the shards in index order reproduces the input arrays
    byte-for-byte (the splitter never copies, reorders or pads).
    """
    if images.shape[0] != labels.shape[0]:
        raise ValueError(
            f"{images.shape[0]} images but {labels.shape[0]} labels"
        )
    return [
        (images[start:stop], labels[start:stop])
        for start, stop in shard_slices(images.shape[0], num_shards)
    ]
