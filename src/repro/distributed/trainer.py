"""Data-parallel training runs over the deterministic process pool.

:func:`train_distributed` is the driver: it holds the master parameters
and the optimiser state, issues one ``replica-step`` work unit per shard
per step, merges the wire-decoded gradients through the fixed pairwise
tree and applies a single SGD update.  The pool supplies elasticity and
fault tolerance — replicas are worker processes, so the replica count
can differ from the shard count (stragglers just serialise), a crashed
replica is respawned and its shard retried, and a run journal resumes a
killed run at the exact shard where it stopped (payload fingerprints
include the master parameters, so stale journal entries can never leak
into a different run).

The determinism contract: every field of :class:`DistRunResult` —
per-step losses, merged gradients, final parameters, the digest — is a
pure function of :class:`DistConfig`.  ``replicas`` is *not* part of the
result's inputs, which is the replicas-N ≡ serial guarantee the oracle
and the benchmark gate check.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Union

import numpy as np

from repro.distributed.replica import (
    merge_replica_results,
    replica_work_units,
)
from repro.distributed.shard import shard_slices
from repro.distributed.wire import WIRE_CODECS


@dataclass(frozen=True)
class DistConfig:
    """Everything that determines a data-parallel run's bits.

    ``replicas`` (worker processes) deliberately lives here too, but it
    only affects scheduling: any value yields identical results.
    ``num_shards`` is what defines the gradient semantics.
    """

    model: str = "tiny_cnn"
    batch_size: int = 16
    num_shards: int = 4
    replicas: int = 4
    steps: int = 4
    wire_codec: str = "auto"
    policy: str = "baseline"
    seed: int = 0
    lr: float = 0.05
    momentum: float = 0.9
    model_kwargs: dict = field(default_factory=dict)
    num_samples: int = 64
    noise: float = 0.6
    #: Work-unit kind executing each shard (tests substitute
    #: fault-injecting kinds wrapping the real executor).
    unit_kind: str = "replica-step"
    timeout_s: Optional[float] = None
    retries: int = 1

    def __post_init__(self) -> None:
        if self.wire_codec not in WIRE_CODECS:
            raise ValueError(
                f"unknown wire codec {self.wire_codec!r}; "
                f"known: {WIRE_CODECS}"
            )
        if self.steps <= 0:
            raise ValueError(f"steps must be positive, got {self.steps}")
        if self.replicas <= 0:
            raise ValueError(
                f"replicas must be positive, got {self.replicas}"
            )
        shard_slices(self.batch_size, self.num_shards)  # validates split

    def base_payload(self) -> dict:
        """The static (step-independent) part of every unit payload."""
        kwargs = dict(self.model_kwargs)
        return {
            "model": self.model,
            "model_kwargs": kwargs,
            "batch_size": int(self.batch_size),
            "num_shards": int(self.num_shards),
            "seed": int(self.seed),
            "wire_codec": self.wire_codec,
            "policy": self.policy,
            "data": {
                "num_samples": int(self.num_samples),
                "noise": float(self.noise),
                "data_seed": int(self.seed),
            },
        }


@dataclass(frozen=True)
class DistStepRecord:
    """Merged outcome of one training step."""

    step: int
    loss: float
    wire_bytes: int
    fp32_bytes: int
    comm_s: float
    shard_losses: List[float]
    shard_sizes: List[int]


@dataclass
class DistRunResult:
    """Outcome of a whole data-parallel run."""

    config: DistConfig
    records: List[DistStepRecord]
    params: Dict[str, np.ndarray]

    @property
    def losses(self) -> List[float]:
        return [r.loss for r in self.records]

    @property
    def total_wire_bytes(self) -> int:
        return sum(r.wire_bytes for r in self.records)

    @property
    def total_fp32_bytes(self) -> int:
        return sum(r.fp32_bytes for r in self.records)

    @property
    def wire_reduction(self) -> float:
        """Bytes-on-wire compression factor vs the fp32 wire."""
        if self.total_wire_bytes == 0:
            raise ValueError("run moved no bytes")
        return self.total_fp32_bytes / self.total_wire_bytes

    def digest(self) -> str:
        """SHA-256 over per-step losses and final parameters.

        Two runs with equal digests trained byte-identically; the
        benchmark pins the replicas-4 digest against the serial one.
        """
        h = hashlib.sha256()
        h.update(np.asarray(self.losses, dtype=np.float64).tobytes())
        for name in sorted(self.params):
            h.update(name.encode("utf-8"))
            h.update(np.ascontiguousarray(self.params[name]).tobytes())
        return h.hexdigest()

    def to_json(self) -> dict:
        """JSON summary (no parameter payloads, just the digest)."""
        return {
            "config": asdict(self.config),
            "digest": self.digest(),
            "losses": self.losses,
            "total_wire_bytes": self.total_wire_bytes,
            "total_fp32_bytes": self.total_fp32_bytes,
            "wire_reduction": self.wire_reduction,
            "comm_s": sum(r.comm_s for r in self.records),
            "records": [asdict(r) for r in self.records],
        }


def master_parameters(config: DistConfig) -> Dict[str, np.ndarray]:
    """Initial master parameters for a run.

    Built from the full-batch graph so the initialisation is manifestly
    independent of the shard structure (parameter shapes never depend on
    the minibatch dimension).
    """
    from repro.models.registry import build_model
    from repro.train.executor import GraphExecutor

    graph = build_model(config.model, batch_size=config.batch_size,
                        **config.model_kwargs)
    return GraphExecutor(graph, seed=config.seed).parameters()


def train_distributed(
    config: DistConfig,
    journal: Union[None, str, "RunJournal"] = None,
    comm_model: Optional["CommModel"] = None,
) -> DistRunResult:
    """Run ``config.steps`` of data-parallel SGD over the process pool.

    Args:
        config: The run configuration (fully determines the result).
        journal: Optional run journal (or path): completed shard units
            replay on resume instead of re-running, and the merged run
            is byte-identical to an uninterrupted one.
        comm_model: Communication-time model for the per-step ``comm_s``
            estimate (defaults to :class:`~repro.perf.comm.CommModel`
            on the paper's device).
    """
    from repro.orchestrate import run_units
    from repro.perf.comm import CommModel
    from repro.train.optimizer import SGD

    if comm_model is None:
        comm_model = CommModel()
    params = master_parameters(config)
    optimizer = SGD(lr=config.lr, momentum=config.momentum)
    base = config.base_payload()
    records: List[DistStepRecord] = []
    for step in range(config.steps):
        units = replica_work_units(base, step, params,
                                   kind=config.unit_kind)
        results = run_units(
            units,
            workers=config.replicas,
            timeout_s=config.timeout_s,
            retries=config.retries,
            journal=journal,
        )
        loss, merged, stats = merge_replica_results(units, results)
        optimizer.step(params, merged)
        shard_wire = [
            int(results[unit.key].value["wire_bytes"]) for unit in units
        ]
        records.append(DistStepRecord(
            step=step,
            loss=loss,
            wire_bytes=int(stats["wire_bytes"]),
            fp32_bytes=int(stats["fp32_bytes"]),
            comm_s=comm_model.allreduce_s(shard_wire),
            shard_losses=[float(l) for l in stats["shard_losses"]],
            shard_sizes=[int(n) for n in stats["shard_sizes"]],
        ))
    return DistRunResult(config=config, records=records, params=params)
