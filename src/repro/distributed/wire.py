"""Wire codecs: gradient compression for the simulated interconnect.

Each codec adapts an existing stash encoding into a transport format:
``encode`` produces a JSON-serialisable message (arrays as base64, so it
survives the pool's result normalisation and the run journal) carrying
the *measured* bytes-on-wire of the underlying encoded representation —
what the paper's compressing DMA engine would actually move.  The JSON
envelope itself is simulation plumbing and is not charged.

Codecs:

========== ==================================================== ========
name       representation                                       lossless
========== ==================================================== ========
fp32       raw float32 stream (the baseline wire)               yes
rle        zero-run-length (:class:`RunLengthEncoding`)         yes
csr        narrow CSR (:func:`csr_encode`); signed zeros        yes*
           canonicalise to ``+0.0``
auto       cheapest of fp32/rle/csr per tensor, skipping csr    yes
           when the tensor holds a ``-0.0`` (bit-exactness)
dpr-fp16   delayed-precision-reduction pack to fp16             no
dpr-fp10   DPR pack to fp10                                     no
dpr-fp8    DPR pack to fp8                                      no
========== ==================================================== ========

Lossy DPR codecs are *deterministic*: both the replicated and the serial
run push gradients through the same rounding, so the replicas-N ≡ serial
bit-identity guarantee holds for every codec in the table.
"""

from __future__ import annotations

import base64
from typing import Dict, List

import numpy as np

from repro.dtypes import DPR_FORMATS
from repro.encodings.dpr import DPRTensor, dpr_encoding
from repro.encodings.runlength import RunLengthEncoding
from repro.encodings.ssdc import csr_decode, csr_encode

#: Names accepted by :func:`wire_codec`.
WIRE_CODECS: List[str] = [
    "fp32", "rle", "csr", "auto", "dpr-fp16", "dpr-fp10", "dpr-fp8",
]

_NEG_ZERO_BITS = np.uint32(0x8000_0000)


def _b64(arr: np.ndarray) -> str:
    return base64.b64encode(np.ascontiguousarray(arr).tobytes()).decode(
        "ascii")


def _unb64(blob: str, dtype) -> np.ndarray:
    return np.frombuffer(base64.b64decode(blob), dtype=dtype)


def _has_negative_zero(flat: np.ndarray) -> bool:
    return bool(np.any(flat.view(np.uint32) == _NEG_ZERO_BITS))


class WireCodec:
    """One gradient-compression scheme for replica traffic.

    ``encode`` returns a message dict with at least ``codec``, ``shape``
    and ``wire_bytes`` keys; :func:`decode_wire` reconstructs the float32
    array from any codec's message (the message names its own codec, so
    an ``auto`` sender needs no side channel).
    """

    def __init__(self, name: str):
        if name not in WIRE_CODECS:
            raise ValueError(
                f"unknown wire codec {name!r}; known: {WIRE_CODECS}"
            )
        self.name = name
        self.lossless = not name.startswith("dpr-")

    # ------------------------------------------------------------------
    def encode(self, x: np.ndarray) -> dict:
        """Encode one gradient tensor into a wire message."""
        flat = np.ascontiguousarray(x, dtype=np.float32).reshape(-1)
        shape = list(np.asarray(x).shape)
        name = self.name
        if name == "auto":
            name = self._auto_pick(flat)
        if name == "fp32":
            return {"codec": "fp32", "shape": shape,
                    "wire_bytes": 4 * flat.size, "data": _b64(flat)}
        if name == "rle":
            enc = RunLengthEncoding().encode(flat)
            return {"codec": "rle", "shape": shape,
                    "wire_bytes": enc.nbytes,
                    "runs": _b64(enc.run_lengths),
                    "values": _b64(enc.values)}
        if name == "csr":
            enc = csr_encode(flat)
            return {"codec": "csr", "shape": shape,
                    "wire_bytes": enc.nbytes,
                    "cols": enc.cols,
                    "n": flat.size,
                    "values": _b64(enc.values),
                    "col_idx": _b64(enc.col_idx),
                    "row_ptr": _b64(enc.row_ptr)}
        fmt = name[len("dpr-"):]
        enc = dpr_encoding(fmt).encode(flat)
        return {"codec": name, "shape": shape,
                "wire_bytes": int(enc.words.nbytes),
                "words": _b64(enc.words)}

    def _auto_pick(self, flat: np.ndarray) -> str:
        """Cheapest lossless representation for this tensor.

        CSR canonicalises ``-0.0`` (its zero test is by value), so it is
        only eligible when the tensor carries none — ``auto`` promises a
        bit-exact round trip.
        """
        sizes = {
            "fp32": 4 * flat.size,
            "rle": RunLengthEncoding().encode(flat).nbytes,
        }
        if not _has_negative_zero(flat):
            sizes["csr"] = csr_encode(flat).nbytes
        # Deterministic tie-break: cheapest, then alphabetical.
        return min(sorted(sizes), key=lambda n: sizes[n])


def wire_codec(name: str) -> WireCodec:
    """Construct the named wire codec."""
    return WireCodec(name)


def decode_wire(message: dict) -> np.ndarray:
    """Reconstruct the float32 tensor from any codec's wire message."""
    codec = message["codec"]
    shape = tuple(message["shape"])
    if codec == "fp32":
        return _unb64(message["data"], np.float32).reshape(shape)
    if codec == "rle":
        runs = _unb64(message["runs"], np.uint32).astype(np.int64)
        values = _unb64(message["values"], np.float32)
        flat = np.zeros(int(runs.sum()), dtype=np.float32)
        live = np.repeat(np.arange(runs.size, dtype=np.int64) % 2 == 1, runs)
        flat[live] = values
        return flat.reshape(shape)
    if codec == "csr":
        from repro.encodings.ssdc import CSRTensor

        enc = CSRTensor(
            values=_unb64(message["values"], np.float32),
            col_idx=_unb64(
                message["col_idx"],
                np.uint8 if message["cols"] <= 256 else np.int32,
            ),
            row_ptr=_unb64(message["row_ptr"], np.int32),
            shape=(message["n"],),
            cols=message["cols"],
        )
        return csr_decode(enc).reshape(shape)
    if codec.startswith("dpr-"):
        fmt = codec[len("dpr-"):]
        dtype = DPR_FORMATS[fmt]
        words = _unb64(message["words"], np.uint32)
        n = 1
        for d in shape:
            n *= d
        return dpr_encoding(fmt).decode(
            DPRTensor(words, (n,), dtype)
        ).reshape(shape)
    raise ValueError(f"unknown wire codec in message: {codec!r}")


def wire_bytes(messages: Dict[str, dict]) -> int:
    """Total measured bytes-on-wire of one shard's gradient messages."""
    return sum(int(m["wire_bytes"]) for m in messages.values())
