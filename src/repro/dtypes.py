"""Data type descriptors with byte-exact storage accounting.

Gist's entire premise is that a value's *storage format* can differ from its
*compute format*.  This module defines descriptors for every storage format
used in the paper:

* ``FP32`` — the compute format (IEEE single precision).
* ``FP16`` — IEEE half precision (1 sign / 5 exponent / 10 mantissa bits),
  packed two values per 32-bit word.
* ``FP10`` — Gist's 10-bit minifloat (1/5/4), packed three per 32-bit word
  (the paper notes 2 bits of each word are wasted — we model that exactly).
* ``FP8``  — Gist's 8-bit minifloat (1/4/3), packed four per 32-bit word.
* ``BIT1`` — the Binarize encoding, 32 booleans per word.
* ``NIBBLE4`` — 4-bit pool argmax indices, eight per word (the largest pool
  window in the paper's suite is 3x3, so 4 bits suffice).
* ``UINT8`` — narrow CSR column indices (the narrow-value optimisation).
* ``INT32``/``UINT32`` — CSR row pointers and packed words themselves.

Storage is always rounded up to whole 32-bit words for the packed formats,
matching the CUDA implementations described in the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class DType:
    """A storage format descriptor.

    Attributes:
        name: Human-readable identifier, e.g. ``"fp10"``.
        bits: Nominal bits occupied per value (before word padding).
        kind: One of ``"float"``, ``"int"``, ``"bit"``.
        values_per_word: If set, values are packed this many per 32-bit word
            and storage rounds up to whole words.  If ``None`` the format is
            byte-addressable (``bits`` must be a multiple of 8).
        exponent_bits: For minifloats, width of the exponent field.
        mantissa_bits: For minifloats, width of the mantissa field.
    """

    name: str
    bits: int
    kind: str
    values_per_word: Optional[int] = None
    exponent_bits: Optional[int] = None
    mantissa_bits: Optional[int] = None

    def size_bytes(self, num_elements: int) -> int:
        """Bytes needed to store ``num_elements`` values in this format."""
        if num_elements < 0:
            raise ValueError(f"num_elements must be >= 0, got {num_elements}")
        if num_elements == 0:
            return 0
        if self.values_per_word is not None:
            words = math.ceil(num_elements / self.values_per_word)
            return words * 4
        if self.bits % 8 != 0:
            raise ValueError(
                f"dtype {self.name} is not byte addressable and has no packing"
            )
        return num_elements * (self.bits // 8)

    @property
    def is_minifloat(self) -> bool:
        """True for reduced-precision float formats (FP16/FP10/FP8)."""
        return self.kind == "float" and self.bits < 32

    @property
    def exponent_bias(self) -> int:
        """IEEE-style exponent bias, ``2**(e-1) - 1``."""
        if self.exponent_bits is None:
            raise ValueError(f"dtype {self.name} has no exponent field")
        return (1 << (self.exponent_bits - 1)) - 1

    @property
    def max_finite(self) -> float:
        """Largest representable finite magnitude.

        The all-ones exponent is reserved (IEEE convention), so the largest
        biased exponent is ``2**e - 2``.  Gist clamps out-of-range values
        at this maximum rather than producing infinities.  For FP16 this
        yields exactly IEEE half precision's 65504.
        """
        if self.exponent_bits is None or self.mantissa_bits is None:
            raise ValueError(f"dtype {self.name} is not a float format")
        max_exp = (1 << self.exponent_bits) - 2 - self.exponent_bias
        mant = 2.0 - 2.0 ** (-self.mantissa_bits)
        return mant * (2.0**max_exp)

    @property
    def min_normal(self) -> float:
        """Smallest positive normal magnitude (denormals are flushed to 0)."""
        if self.exponent_bits is None:
            raise ValueError(f"dtype {self.name} is not a float format")
        return 2.0 ** (1 - self.exponent_bias)

    def __str__(self) -> str:
        return self.name


FP32 = DType("fp32", 32, "float", exponent_bits=8, mantissa_bits=23)
FP16 = DType("fp16", 16, "float", values_per_word=2, exponent_bits=5, mantissa_bits=10)
FP10 = DType("fp10", 10, "float", values_per_word=3, exponent_bits=5, mantissa_bits=4)
FP8 = DType("fp8", 8, "float", values_per_word=4, exponent_bits=4, mantissa_bits=3)
BIT1 = DType("bit1", 1, "bit", values_per_word=32)
NIBBLE4 = DType("nibble4", 4, "int", values_per_word=8)
UINT8 = DType("uint8", 8, "int")
INT32 = DType("int32", 32, "int")
UINT32 = DType("uint32", 32, "int")

#: DPR storage formats by name, as selectable in :class:`repro.core.policy.GistConfig`.
DPR_FORMATS = {"fp16": FP16, "fp10": FP10, "fp8": FP8}

_ALL = {
    d.name: d
    for d in (FP32, FP16, FP10, FP8, BIT1, NIBBLE4, UINT8, INT32, UINT32)
}


def dtype_by_name(name: str) -> DType:
    """Look up a dtype descriptor by its ``name`` field."""
    try:
        return _ALL[name.lower()]
    except KeyError:
        raise KeyError(f"unknown dtype {name!r}; known: {sorted(_ALL)}") from None
