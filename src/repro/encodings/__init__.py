"""Gist's data encodings: Binarize, SSDC, DPR, plus packing substrates."""

from repro.encodings.base import Encoding, HostSwapEncoding, IdentityEncoding
from repro.encodings.binarize import (
    BinarizedTensor,
    BinarizeEncoding,
    argmax_map_bytes,
    pack_bits,
    pack_nibbles,
    unpack_bits,
    unpack_nibbles,
)
from repro.encodings.dpr import (
    DPREncoding,
    DPRTensor,
    dpr_encoding,
    pack_codes,
    unpack_codes,
)
from repro.encodings.groupquant import (
    GroupQuantEncoding,
    GroupQuantPolicy,
    GroupQuantTensor,
)
from repro.encodings.floatsim import (
    decode_minifloat,
    encode_minifloat,
    max_relative_error,
    quantize,
)
from repro.encodings.inplace import inplace_eligible_edges
from repro.encodings.runlength import RLETensor, RunLengthEncoding, rle_stats
from repro.encodings.ssdc import (
    BitmapTensor,
    CSRTensor,
    NARROW_COLS,
    SSDCEncoding,
    bitmap_bytes,
    bitmap_decode,
    bitmap_encode,
    csr_bytes,
    csr_decode,
    csr_encode,
    csr_positions,
)

__all__ = [
    "BinarizeEncoding",
    "BinarizedTensor",
    "BitmapTensor",
    "CSRTensor",
    "DPREncoding",
    "DPRTensor",
    "Encoding",
    "GroupQuantEncoding",
    "GroupQuantPolicy",
    "GroupQuantTensor",
    "HostSwapEncoding",
    "IdentityEncoding",
    "NARROW_COLS",
    "RLETensor",
    "RunLengthEncoding",
    "SSDCEncoding",
    "argmax_map_bytes",
    "bitmap_bytes",
    "bitmap_decode",
    "bitmap_encode",
    "csr_bytes",
    "csr_decode",
    "csr_encode",
    "csr_positions",
    "decode_minifloat",
    "dpr_encoding",
    "encode_minifloat",
    "inplace_eligible_edges",
    "max_relative_error",
    "pack_bits",
    "pack_codes",
    "pack_nibbles",
    "quantize",
    "rle_stats",
    "unpack_bits",
    "unpack_codes",
    "unpack_nibbles",
]
