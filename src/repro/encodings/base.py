"""Encoding interface.

Each Gist encoding plays two roles, mirroring the static/runtime split of
the whole library:

* **Static size model** — ``encoded_bytes(num_elements, **ctx)`` tells the
  schedule builder how many bytes the stashed representation occupies, so
  the memory planner can account for it exactly.
* **Runtime codec** — ``encode``/``decode`` transform real NumPy arrays, so
  the training executor stores what the paper's CUDA kernels would have
  stored and the accuracy experiments see the true injected error.

``decode(encode(x))`` must reproduce ``x`` exactly for lossless encodings
(Binarize reproduces the information ReLU's backward pass needs — the
positivity mask — rather than the values; see its docstring).
"""

from __future__ import annotations

import abc
from typing import Any

import numpy as np


class Encoding(abc.ABC):
    """A storage transform applied to a stashed feature map."""

    #: Identifier used in plans, reports and policy configuration.
    name: str = "encoding"
    #: Whether the backward pass sees bit-identical information.
    lossless: bool = True
    #: Optional workspace arena the runtime codec rents buffers from
    #: (set by the executor via :meth:`bind_arena`; ``None`` means every
    #: encode allocates fresh memory).
    arena = None

    def bind_arena(self, arena) -> None:
        """Attach (or detach, with ``None``) a workspace arena.

        The executor binds its per-instance arena before each stash so
        the codec fast paths write into pooled buffers.  Rented buffers
        live until the arena's next ``reset`` — one training step —
        which matches a stash's encode-to-decode lifetime.
        """
        self.arena = arena

    @abc.abstractmethod
    def encoded_bytes(self, num_elements: int, **ctx) -> int:
        """Size of the encoded representation, in bytes.

        Context keyword arguments are encoding-specific (e.g. ``sparsity``
        for SSDC).
        """

    @abc.abstractmethod
    def encode(self, x: np.ndarray) -> Any:
        """Produce the compact stashed representation of ``x``."""

    @abc.abstractmethod
    def decode(self, encoded: Any) -> np.ndarray:
        """Reconstruct the array (or mask) the backward pass consumes."""

    def expected_decode(self, x: np.ndarray) -> np.ndarray:
        """Reference value ``decode(encode(x))`` must reproduce bit-exactly.

        Only meaningful for lossless encodings; the diagnostics round-trip
        checker digests this at encode time and compares it against the
        actual decode.  Defaults to ``x`` itself (Identity, SSDC);
        mask-based encodings override it (Binarize returns ``x > 0``).
        """
        if not self.lossless:
            raise ValueError(
                f"{self.name}: expected_decode is defined only for "
                f"lossless encodings"
            )
        return x

    def measure_bytes(self, encoded: Any) -> int:
        """Actual bytes of a runtime-encoded object (for sparsity studies)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class IdentityEncoding(Encoding):
    """Baseline 'encoding': stash the raw FP32 array."""

    name = "identity"
    lossless = True

    def encoded_bytes(self, num_elements: int, itemsize: int = 4, **ctx) -> int:
        return itemsize * num_elements

    def encode(self, x: np.ndarray) -> np.ndarray:
        return x

    def decode(self, encoded: np.ndarray) -> np.ndarray:
        return encoded

    def measure_bytes(self, encoded: np.ndarray) -> int:
        # The stash is the array itself, so its true byte count is just
        # nbytes — correct for FP16 or integer stashes too, not only FP32.
        return int(encoded.nbytes)


class HostSwapEncoding(IdentityEncoding):
    """Simulated host swap: the stash lives in host DRAM, not on device.

    Numerically an identity transform — a DMA copy is bit-exact — but the
    *device* footprint of the stash is zero: the memory planner charges
    only a short-lived prefetch buffer across the backward uses (see
    :mod:`repro.memory.hybrid`).  ``encode`` copies the array (the
    offload; the executor's live forward value must not alias the host
    buffer), ``decode`` hands the copy back (the prefetch).
    """

    name = "host-swap"
    lossless = True

    def encoded_bytes(self, num_elements: int, itemsize: int = 4, **ctx) -> int:
        # Device-resident bytes across the stash gap: none.
        return 0

    def encode(self, x: np.ndarray) -> np.ndarray:
        return np.ascontiguousarray(x)

    def measure_bytes(self, encoded: np.ndarray) -> int:
        # The copy lives in (simulated) host DRAM; device footprint is 0,
        # matching ``encoded_bytes`` and the planner's resident-bytes claim.
        return 0
