"""Binarize: the 1-bit encoding for ReLU-Pool feature maps.

Paper Section IV-A: for a ReLU whose only consumer is a max-pool, the ReLU
output's two backward uses are (a) ReLU's own backward pass, which needs
only whether each element is positive, and (b) the pool's backward pass,
which — once the pool is rewritten to record a Y-to-X argmax map in its
forward pass — does not need the values at all.  So the stashed FP32 map
is replaced by a 1-bit positivity mask: 32x compression for the ReLU
output, and the pool's stash shrinks to a 4-bit-per-output-element map
(8x for the pool side; ~16x combined for the ReLU-Pool pair).

This module supplies the bit packing for both data structures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.dtypes import BIT1, NIBBLE4
from repro.encodings.base import Encoding
from repro.kernels.backends import run_codec


def pack_bits(mask: np.ndarray, arena=None) -> np.ndarray:
    """Pack a boolean array into uint32 words, 32 values per word.

    With an ``arena`` the padded word buffer is rented instead of
    allocated, and in either case the words are written directly into
    the final buffer — no concatenate/copy chain.
    """
    flat = np.asarray(mask, dtype=bool).ravel()
    n = flat.size
    nbytes_padded = 4 * ((n + 31) // 32)
    if arena is not None:
        buf = arena.rent((nbytes_padded,), np.uint8)
    else:
        buf = np.zeros(nbytes_padded, dtype=np.uint8)
    packed = run_codec("pack_bits", flat)
    buf[: packed.size] = packed
    if arena is not None:
        buf[packed.size:] = 0  # rented buffers arrive uninitialised
    return buf.view(np.uint32)


def unpack_bits(words: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Inverse of :func:`pack_bits`; returns a boolean array of ``shape``."""
    n = int(np.prod(shape))
    bits = np.unpackbits(words.view(np.uint8), count=n, bitorder="little")
    # unpackbits yields fresh 0/1 uint8 storage, so a bool view is free.
    return bits.view(bool).reshape(shape)


def pack_nibbles(values: np.ndarray, arena=None) -> np.ndarray:
    """Pack 0..15 integers into uint32 words, 8 values per word."""
    flat = np.asarray(values).ravel()
    if flat.dtype != np.uint8:
        flat = flat.astype(np.uint8)
    if flat.size and flat.max() > 15:
        raise ValueError("nibble packing requires values in [0, 15]")
    n = flat.size
    npairs = (n + 1) // 2
    nbytes_padded = 4 * ((npairs + 3) // 4)
    if arena is not None:
        buf = arena.rent((nbytes_padded,), np.uint8)
        buf[npairs:] = 0
    else:
        buf = np.zeros(nbytes_padded, dtype=np.uint8)
    buf[:npairs] = run_codec("pack_nibbles", flat)
    return buf.view(np.uint32)


def unpack_nibbles(words: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Inverse of :func:`pack_nibbles`; returns uint8 values of ``shape``."""
    n = int(np.prod(shape))
    bytes_ = words.view(np.uint8)
    lo = bytes_ & np.uint8(0x0F)
    hi = bytes_ >> np.uint8(4)
    inter = np.empty(bytes_.size * 2, dtype=np.uint8)
    inter[0::2] = lo
    inter[1::2] = hi
    return inter[:n].reshape(shape)


@dataclass(frozen=True)
class BinarizedTensor:
    """Packed 1-bit positivity mask plus the original shape."""

    words: np.ndarray
    shape: Tuple[int, ...]

    @property
    def nbytes(self) -> int:
        """Storage bytes (whole 32-bit words)."""
        return self.words.size * 4


class BinarizeEncoding(Encoding):
    """1-bit-per-element stash for ReLU outputs feeding a max-pool.

    ``decode`` returns the boolean positivity mask — the exact information
    ReLU's backward pass consumes (``dX = dY * mask``) — not the FP32
    values, which by construction nothing downstream needs.  The encoding
    is lossless with respect to every gradient computed from it.
    """

    name = "binarize"
    lossless = True

    def encoded_bytes(self, num_elements: int, **ctx) -> int:
        return BIT1.size_bytes(num_elements)

    def encode(self, x: np.ndarray) -> BinarizedTensor:
        if self.arena is not None:
            mask = self.arena.rent(x.shape, np.bool_)
            np.greater(x, 0, out=mask)
            words = pack_bits(mask, arena=self.arena)
            self.arena.release(mask)
            return BinarizedTensor(words, tuple(x.shape))
        return BinarizedTensor(pack_bits(x > 0), tuple(x.shape))

    def decode(self, encoded: BinarizedTensor) -> np.ndarray:
        return unpack_bits(encoded.words, encoded.shape)

    def expected_decode(self, x: np.ndarray) -> np.ndarray:
        """The positivity mask — all the information decode reconstructs."""
        return x > 0

    def measure_bytes(self, encoded: BinarizedTensor) -> int:
        return encoded.nbytes


def argmax_map_bytes(num_pool_outputs: int) -> int:
    """Bytes of the pool's 4-bit Y-to-X argmax map."""
    return NIBBLE4.size_bytes(num_pool_outputs)
