"""Delayed Precision Reduction (DPR): Gist's lossy encoding.

DPR stores a stashed feature map in FP16, FP10 or FP8 *only for the gap
between its forward and backward uses*; computation stays FP32 on both
ends.  Values are packed 2, 3 or 4 per 32-bit word (FP10 wastes 2 bits per
word — the paper packs three 10-bit values into 4 bytes).

The crucial property reproduced here: because the reduction is applied
*after* the forward consumer has read the full-precision value, the
quantisation error reaches only the backward pass, which tolerates as few
as 8 bits — whereas quantising in the forward pass (the prior-work
"All-FP16" baseline in Figure 12) compounds error layer over layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.dtypes import DPR_FORMATS, DType
from repro.encodings.base import Encoding
from repro.encodings.floatsim import decode_minifloat, encode_minifloat

# Bit offsets of each packed value within a 32-bit word, per format.
_OFFSETS = {2: (0, 16), 3: (0, 10, 20), 4: (0, 8, 16, 24)}


def pack_codes(codes: np.ndarray, dtype: DType) -> np.ndarray:
    """Pack ``dtype.bits``-wide codes into uint32 words."""
    if dtype.values_per_word not in _OFFSETS:
        raise ValueError(f"dtype {dtype.name} is not a packable DPR format")
    k = dtype.values_per_word
    flat = np.asarray(codes, dtype=np.uint32).ravel()
    pad = (-flat.size) % k
    if pad:
        flat = np.concatenate([flat, np.zeros(pad, dtype=np.uint32)])
    lanes = flat.reshape(-1, k)
    words = np.zeros(lanes.shape[0], dtype=np.uint32)
    for lane, offset in enumerate(_OFFSETS[k]):
        words |= lanes[:, lane] << np.uint32(offset)
    return words


def unpack_codes(words: np.ndarray, n: int, dtype: DType) -> np.ndarray:
    """Extract ``n`` codes from packed uint32 words."""
    k = dtype.values_per_word
    mask = np.uint32((1 << dtype.bits) - 1)
    lanes = [
        (words >> np.uint32(offset)) & mask for offset in _OFFSETS[k]
    ]
    inter = np.stack(lanes, axis=1).ravel()
    return inter[:n]


@dataclass(frozen=True)
class DPRTensor:
    """Packed reduced-precision stash plus reconstruction metadata."""

    words: np.ndarray
    shape: Tuple[int, ...]
    dtype: DType

    @property
    def nbytes(self) -> int:
        """Storage bytes (whole 32-bit words)."""
        return self.words.size * 4


class DPREncoding(Encoding):
    """Store a feature map as packed FP16/FP10/FP8 between its two uses."""

    lossless = False

    def __init__(self, dtype: DType, rounding: str = "nearest"):
        if dtype.values_per_word not in _OFFSETS:
            raise ValueError(
                f"DPR supports {sorted(DPR_FORMATS)}, got {dtype.name!r}"
            )
        self.dtype = dtype
        self.rounding = rounding
        self.name = f"dpr-{dtype.name}"

    def encoded_bytes(self, num_elements: int, **ctx) -> int:
        return self.dtype.size_bytes(num_elements)

    def encode(self, x: np.ndarray) -> DPRTensor:
        codes = encode_minifloat(x, self.dtype, self.rounding)
        return DPRTensor(pack_codes(codes, self.dtype), tuple(x.shape), self.dtype)

    def decode(self, encoded: DPRTensor) -> np.ndarray:
        n = int(np.prod(encoded.shape))
        codes = unpack_codes(encoded.words, n, encoded.dtype)
        return decode_minifloat(codes, encoded.dtype).reshape(encoded.shape)

    def measure_bytes(self, encoded: DPRTensor) -> int:
        return encoded.nbytes


def dpr_encoding(format_name: str, rounding: str = "nearest") -> DPREncoding:
    """Build a :class:`DPREncoding` from a format name (fp16/fp10/fp8)."""
    try:
        dtype = DPR_FORMATS[format_name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown DPR format {format_name!r}; choose from {sorted(DPR_FORMATS)}"
        ) from None
    return DPREncoding(dtype, rounding)
