"""Bit-exact minifloat quantisation (the substrate for DPR).

Implements the paper's reduced-precision storage formats:

* FP16 — 1 sign / 5 exponent / 10 mantissa bits,
* FP10 — 1 sign / 5 exponent / 4 mantissa bits,
* FP8  — 1 sign / 4 exponent / 3 mantissa bits,

with the paper's exact conversion rules: round-to-nearest, clamping at the
format's maximum/minimum representable magnitude (no infinities), and
denormals flushed to zero ("we ignore denormalized numbers as they have
negligible effect on CNN accuracy").

Two levels of API:

* :func:`encode_minifloat` / :func:`decode_minifloat` — produce and consume
  raw integer *bit patterns*, used by the DPR packer.
* :func:`quantize` — encode-then-decode in one step, used wherever only the
  value error matters (accuracy experiments, error-bound property tests).
"""

from __future__ import annotations

import numpy as np

from repro.dtypes import DType


def _check_minifloat(dtype: DType) -> None:
    if dtype.exponent_bits is None or dtype.mantissa_bits is None:
        raise ValueError(f"dtype {dtype.name} is not a float format")
    if dtype.bits > 32:
        raise ValueError(f"dtype {dtype.name} too wide for 32-bit codes")


def encode_minifloat(x: np.ndarray, dtype: DType, rounding: str = "nearest") -> np.ndarray:
    """Quantise FP32 values to integer bit patterns of ``dtype``.

    Args:
        x: Input array (any shape); converted to float32 first.
        dtype: Target minifloat format.
        rounding: ``"nearest"`` (round-half-even, the paper's choice) or
            ``"truncate"`` (ablation).

    Returns:
        ``uint32`` array of ``x.shape`` holding ``dtype.bits``-wide codes.
    """
    _check_minifloat(dtype)
    if rounding not in ("nearest", "truncate"):
        raise ValueError(f"unknown rounding mode {rounding!r}")
    eb, mb = dtype.exponent_bits, dtype.mantissa_bits
    bias = dtype.exponent_bias
    x = np.asarray(x, dtype=np.float32)

    # The whole pipeline stays in float32/int32: every intermediate
    # (frexp output, 1.f remainder, the scaled mantissa f * 2**mb) is
    # exactly representable in float32, so the codes are bit-for-bit the
    # ones the original float64 formulation produced, at half the memory
    # traffic and with in-place ops instead of fresh temporaries.
    sign = (np.signbit(x)).astype(np.uint32)
    mag = np.abs(x)
    # NaNs have no meaning in feature maps; map them to zero for safety.
    mag[np.isnan(mag)] = 0.0
    # Clamp overflow at the largest finite magnitude (paper: "the value is
    # clamped at maximum/minimum value").
    np.minimum(mag, np.float32(dtype.max_finite), out=mag)

    with np.errstate(divide="ignore"):
        frac, exp = np.frexp(mag)  # mag == frac * 2**exp, frac in [0.5, 1)
    # Re-normalise to 1.f * 2**e form: scaled = (frac*2 - 1) * 2**mb,
    # computed in place (frac is owned and each step is exact).
    frac *= np.float32(2.0)
    frac -= np.float32(1.0)
    frac *= np.float32(1 << mb)
    if rounding == "nearest":
        mant = np.rint(frac).astype(np.int32)
    else:
        mant = np.floor(frac).astype(np.int32)
    # Mantissa overflow carries into the exponent.
    carry = mant >= (1 << mb)
    mant[carry] = 0
    biased = exp  # frexp's exponent array, owned: reuse for e + bias
    biased += np.int32(bias - 1)
    biased += carry
    # After the carry the magnitude may exceed max_finite: clamp the code.
    # The all-ones exponent is reserved (IEEE convention), so the largest
    # usable biased exponent is 2**eb - 2.
    max_biased = (1 << eb) - 2
    over = biased > max_biased
    biased[over] = max_biased
    mant[over] = (1 << mb) - 1
    # Denormals (biased exponent < 1) flush to zero; so does exact zero.
    zero = biased < 1
    zero |= mag == 0.0
    biased[zero] = 0
    mant[zero] = 0
    sign[zero] = 0

    code = sign
    code <<= np.uint32(eb + mb)
    code |= biased.astype(np.uint32) << np.uint32(mb)
    code |= mant.astype(np.uint32)
    return code


def decode_minifloat(codes: np.ndarray, dtype: DType) -> np.ndarray:
    """Expand integer bit patterns of ``dtype`` back to FP32 values."""
    _check_minifloat(dtype)
    eb, mb = dtype.exponent_bits, dtype.mantissa_bits
    bias = dtype.exponent_bias
    codes = np.asarray(codes, dtype=np.uint32)
    sign = (codes >> np.uint32(eb + mb)) & np.uint32(1)
    biased = (codes >> np.uint32(mb)) & np.uint32((1 << eb) - 1)
    mant = codes & np.uint32((1 << mb) - 1)
    # 1.f * 2**e evaluated in float32: the fraction has mb <= 10 bits and
    # every decoded value is a normal float32, so ldexp is exact and the
    # result matches the original float64 formulation bit-for-bit.
    frac = mant.astype(np.float32)
    frac *= np.float32(1.0 / (1 << mb))
    frac += np.float32(1.0)
    value = np.ldexp(frac, biased.astype(np.int32) - np.int32(bias))
    value[biased == 0] = 0.0
    np.negative(value, out=value, where=sign == 1)
    return value


def quantize(x: np.ndarray, dtype: DType, rounding: str = "nearest") -> np.ndarray:
    """Round-trip ``x`` through ``dtype``: the value error DPR injects."""
    return decode_minifloat(encode_minifloat(x, dtype, rounding), dtype)


def max_relative_error(dtype: DType) -> float:
    """Worst-case relative rounding error for in-range normal values.

    Half a unit in the last place: ``2 ** -(mantissa_bits + 1)``.
    """
    _check_minifloat(dtype)
    return 2.0 ** -(dtype.mantissa_bits + 1)
