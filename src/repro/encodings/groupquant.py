"""Per-group affine integer quantisation (follow-on-work direction).

Work that followed Gist (notably ActNN) pushed stashed activations to 4
and even 2 bits by quantising *per group* with a stored scale/offset:
each run of ``group_size`` values is affinely mapped onto the integer
grid ``[0, 2**bits - 1]`` using its own min/max.  DPR's minifloats spend
bits on exponent range every value; group quantisation amortises range
information across the group, which is why it reaches lower widths.

Provided here as a library-level encoding so the ablation bench can ask
Gist's own question one step further: how low can the *stash* width go
before backward-only error stops being harmless?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.encodings.base import Encoding

#: Bytes of per-group metadata: one float32 scale + one float32 offset.
_GROUP_META_BYTES = 8


@dataclass(frozen=True)
class GroupQuantTensor:
    """Packed integer codes plus per-group scale/offset."""

    words: np.ndarray      # packed uint32
    scales: np.ndarray     # float32, one per group
    offsets: np.ndarray    # float32, one per group
    shape: Tuple[int, ...]
    bits: int
    group_size: int

    @property
    def nbytes(self) -> int:
        """Storage: packed codes + group metadata."""
        return (self.words.size * 4
                + self.scales.nbytes + self.offsets.nbytes)


class GroupQuantEncoding(Encoding):
    """Affine b-bit quantisation with per-group min/max scaling.

    Args:
        bits: Code width; 32 must be divisible by it (8, 4, 2, 1).
        group_size: Values sharing one scale/offset pair.
    """

    lossless = False

    def __init__(self, bits: int = 4, group_size: int = 256):
        if bits not in (1, 2, 4, 8):
            raise ValueError(f"bits must be one of 1/2/4/8, got {bits}")
        if group_size <= 0:
            raise ValueError(f"group_size must be positive, got {group_size}")
        self.bits = bits
        self.group_size = group_size
        self.name = f"groupquant-int{bits}"

    # ------------------------------------------------------------------
    def encoded_bytes(self, num_elements: int, **ctx) -> int:
        values_per_word = 32 // self.bits
        words = -(-num_elements // values_per_word)
        groups = -(-num_elements // self.group_size)
        return words * 4 + groups * _GROUP_META_BYTES

    def encode(self, x: np.ndarray) -> GroupQuantTensor:
        flat = np.asarray(x, dtype=np.float32).ravel()
        n = flat.size
        groups = -(-n // self.group_size)
        padded = np.empty(groups * self.group_size, dtype=np.float32)
        padded[:n] = flat
        # Pad the ragged tail with the last *real* value: it already
        # belongs to the last group, so per-group min/max — and hence the
        # quantisation grid — are computed over real values only.  (Zero
        # padding would drag lo/hi towards 0 and collapse the last
        # group's grid whenever its values live far from zero.)
        padded[n:] = flat[n - 1] if n else 0.0
        mat = padded.reshape(groups, self.group_size)
        lo = mat.min(axis=1)
        hi = mat.max(axis=1)
        span = np.maximum(hi - lo, 1e-12)
        levels = (1 << self.bits) - 1
        scale = (span / levels).astype(np.float32)
        codes = np.rint((mat - lo[:, None]) / scale[:, None])
        # Store only the real n codes (the group padding is reconstructed
        # at decode time), so the byte count matches the static model.
        codes = np.clip(codes, 0, levels).astype(np.uint32).ravel()[:n]
        # Pack codes into 32-bit words.
        values_per_word = 32 // self.bits
        pad = (-codes.size) % values_per_word
        if pad:
            codes = np.concatenate([codes, np.zeros(pad, np.uint32)])
        lanes = codes.reshape(-1, values_per_word)
        words = np.zeros(lanes.shape[0], dtype=np.uint32)
        for lane in range(values_per_word):
            words |= lanes[:, lane] << np.uint32(lane * self.bits)
        return GroupQuantTensor(words, scale, lo.astype(np.float32),
                                tuple(x.shape), self.bits, self.group_size)

    def decode(self, encoded: GroupQuantTensor) -> np.ndarray:
        n = int(np.prod(encoded.shape))
        values_per_word = 32 // encoded.bits
        mask = np.uint32((1 << encoded.bits) - 1)
        lanes = [
            (encoded.words >> np.uint32(lane * encoded.bits)) & mask
            for lane in range(values_per_word)
        ]
        codes = np.stack(lanes, axis=1).ravel()[:n]
        total = encoded.scales.size * encoded.group_size
        padded = np.zeros(total, dtype=np.uint32)
        padded[:n] = codes
        codes = padded.reshape(encoded.scales.size, encoded.group_size)
        values = (codes.astype(np.float32) * encoded.scales[:, None]
                  + encoded.offsets[:, None])
        return values.ravel()[:n].reshape(encoded.shape).astype(np.float32)

    def measure_bytes(self, encoded: GroupQuantTensor) -> int:
        return encoded.nbytes


class GroupQuantPolicy:
    """Stash policy applying group quantisation to every stashed map.

    Duck-typed against :class:`repro.train.stash.StashPolicy` (kept here
    to spare a train<->encodings dependency); the input images stay exact.
    """

    param_dtype = None

    def __init__(self, bits: int = 4, group_size: int = 256):
        from repro.encodings.base import IdentityEncoding

        self._encoding = GroupQuantEncoding(bits, group_size)
        self._identity = IdentityEncoding()

    def encoding_for(self, graph, node_id):
        """Group-quantise everything except the raw input images."""
        if node_id == graph.input_id:
            return self._identity
        return self._encoding

    def describe(self) -> str:
        """Label: ``"groupquant-int<bits>"`` (traces, digests, reports)."""
        return self._encoding.name

    def transform_forward(self, y, node):
        """Forward pass stays exact (delayed reduction)."""
        return y

    def transform_gradient(self, dx, node):
        """Gradient maps stay exact."""
        return dx
