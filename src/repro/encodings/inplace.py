"""Inplace-computation optimisation (paper Section III-C).

Layers with a read-once/write-once element mapping (chiefly ReLU) can
write their output into the producer's buffer, eliminating one immediately
consumed feature map per conv-ReLU pair.  This module identifies the
eligible edges; :mod:`repro.core.schedule_builder` applies the merge to
the memory plan.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.graph.graph import Graph


def inplace_eligible_edges(graph: Graph) -> List[Tuple[int, int]]:
    """(producer_id, consumer_id) pairs where the consumer may run inplace.

    Requirements (all must hold, otherwise a backward pass would read a
    clobbered buffer):

    * the consumer supports inplace (read-once/write-once mapping);
    * it is the producer's *only* forward consumer;
    * the producer's backward pass does not read its own output;
    * the consumer's backward pass does not read its input;
    * the producer is a real op (not the graph input — the minibatch buffer
      is owned by the data loader);
    * producer and consumer outputs occupy the same number of elements;
    * the producer's buffer is genuinely its own: view-producing layers
      (``aliases_input``, e.g. flatten's reshape) hand out their upstream
      producer's buffer, so the same no-later-reader conditions must hold
      transitively along the whole alias chain — otherwise overwriting the
      view would clobber a stashed upstream feature map.
    """
    edges: List[Tuple[int, int]] = []
    for node in graph.nodes:
        if node.node_id == graph.input_id:
            continue
        consumers = graph.consumers(node.node_id)
        if len(consumers) != 1:
            continue
        consumer = consumers[0]
        if not consumer.layer.supports_inplace:
            continue
        if node.layer.backward_needs_output:
            continue
        if consumer.layer.backward_needs_input:
            continue
        prod_elems = 1
        for d in node.output_shape:
            prod_elems *= d
        cons_elems = 1
        for d in consumer.output_shape:
            cons_elems *= d
        if prod_elems != cons_elems:
            continue
        if not _buffer_dead_after_use(graph, node):
            continue
        edges.append((node.node_id, consumer.node_id))
    return edges


def _buffer_dead_after_use(graph: Graph, producer) -> bool:
    """Whether ``producer``'s output buffer has no reader after its use.

    Walks the alias chain upward: while the current node's layer only
    *views* its input (``aliases_input``), the buffer actually belongs to
    the node's own producer, which must therefore satisfy the same safety
    conditions — sole consumer, backward never reads the buffer (neither
    as the parent's output nor as the view op's input), and not the graph
    input.  The walk ends at the first node that owns a real buffer.
    """
    current = graph.node(producer.node_id)
    while getattr(current.layer, "aliases_input", False):
        if current.layer.backward_needs_input:
            return False
        parent = graph.node(current.inputs[0])
        if parent.node_id == graph.input_id:
            return False
        if len(graph.consumers(parent.node_id)) != 1:
            return False
        if parent.layer.backward_needs_output:
            return False
        current = parent
    return True
