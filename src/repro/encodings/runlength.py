"""Zero-run-length encoding for sparse tensors.

The ReLU-path gradients crossing the wire in data-parallel training are
zero wherever the forward activation was zero — long zero runs broken by
short bursts of live values.  SSDC's narrow CSR already exploits this for
stashed activations; run-length is the complementary shape for *streams*:
no row structure, one pass to encode, one to decode, and the encoded form
is two flat arrays (run lengths + surviving values) that serialise
directly onto a wire.

Zero detection is by bit pattern (``+0.0`` only), so ``-0.0`` survives as
a stored value and ``decode(encode(x))`` is bit-identical for every input
— the encoding is lossless in the strictest sense the round-trip oracle
checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.encodings.base import Encoding


@dataclass(frozen=True)
class RLETensor:
    """Run-length encoded tensor.

    ``run_lengths`` holds alternating run sizes starting with a zero-run
    (possibly of length 0 when the tensor opens with a live value):
    ``[z0, v0, z1, v1, ...]``.  ``values`` concatenates the live values in
    order; its length equals the sum of the odd-indexed runs.
    """

    run_lengths: np.ndarray
    values: np.ndarray
    shape: Tuple[int, ...]

    @property
    def nbytes(self) -> int:
        """Wire footprint of the encoded representation."""
        return int(self.run_lengths.nbytes + self.values.nbytes)


class RunLengthEncoding(Encoding):
    """Lossless zero-run-length codec over flattened FP32 tensors."""

    name = "rle"
    lossless = True

    def encoded_bytes(self, num_elements: int, sparsity: float = 0.0,
                      nnz: int = None, num_runs: int = None, **ctx) -> int:
        """Static size model.

        With measured ``nnz``/``num_runs`` context (see :func:`rle_stats`)
        the model is exact: 4 bytes per surviving value plus 4 per run
        table entry.  Without it, a sound upper bound at the given
        sparsity: the worst-case run table is fully interleaved singleton
        runs — ``2 * min(nnz, nz) + 1`` entries.  Real activation
        gradients cluster, so measured bytes land well under the bound.
        """
        if nnz is not None and num_runs is not None:
            return 4 * int(nnz) + 4 * int(num_runs)
        if not 0.0 <= sparsity <= 1.0:
            raise ValueError(f"sparsity must be in [0, 1], got {sparsity}")
        est_nnz = int(round(num_elements * (1.0 - sparsity)))
        runs = (2 * min(est_nnz, num_elements - est_nnz) + 1
                if num_elements else 0)
        return 4 * est_nnz + 4 * runs

    def encode(self, x: np.ndarray) -> RLETensor:
        flat = np.ascontiguousarray(x, dtype=np.float32).reshape(-1)
        if flat.size == 0:
            empty32 = np.zeros(0, dtype=np.uint32)
            return RLETensor(empty32, np.zeros(0, dtype=np.float32),
                             tuple(x.shape))
        # Bit-pattern zero test: only +0.0 compresses; -0.0 and denormals
        # are live values, keeping the round trip bit-identical.
        zero = flat.view(np.uint32) == 0
        change = np.flatnonzero(zero[1:] != zero[:-1])
        bounds = np.concatenate(
            (np.zeros(1, np.int64), change + 1,
             np.array([flat.size], np.int64))
        )
        runs = np.diff(bounds)
        if not zero[0]:  # normalise: stream always opens with a zero-run
            runs = np.concatenate((np.zeros(1, np.int64), runs))
        return RLETensor(runs.astype(np.uint32), flat[~zero].copy(),
                         tuple(x.shape))

    def decode(self, encoded: RLETensor) -> np.ndarray:
        runs = encoded.run_lengths.astype(np.int64)
        total = int(runs.sum())
        flat = np.zeros(total, dtype=np.float32)
        live = np.repeat(np.arange(runs.size, dtype=np.int64) % 2 == 1, runs)
        flat[live] = encoded.values
        return flat.reshape(encoded.shape)

    def measure_bytes(self, encoded: RLETensor) -> int:
        return encoded.nbytes


def rle_stats(x: np.ndarray) -> Tuple[int, int]:
    """``(nnz, num_runs)`` the codec would produce for ``x``.

    Uses the codec's own bit-pattern zero rule, so feeding these into
    :meth:`RunLengthEncoding.encoded_bytes` reproduces the measured
    encode size exactly (the size-model oracle relies on this).
    """
    flat = np.ascontiguousarray(x, dtype=np.float32).reshape(-1)
    if flat.size == 0:
        return 0, 0
    zero = flat.view(np.uint32) == 0
    num_runs = 1 + int(np.count_nonzero(zero[1:] != zero[:-1]))
    if not zero[0]:
        num_runs += 1
    return int(np.count_nonzero(~zero)), num_runs

