"""SSDC — Sparse Storage and Dense Compute (paper Section IV-A).

ReLU outputs feeding convolutions are highly sparse (often >80% zeros in
VGG16), so Gist stashes them in CSR format while keeping computation
dense.  Two fidelity-critical details from the paper are reproduced:

* **Narrow Value Optimisation.**  cuSPARSE's stock CSR spends 4 bytes per
  column index, so compression only wins above 50% sparsity.  Gist
  reshapes the flattened map into rows of at most 256 columns, shrinking
  each index to 1 byte and moving the breakeven point to ~20% sparsity.
* **DPR composition.**  The lossy pass may additionally compress the CSR
  *values* array (never the meta arrays, which affect control flow).

A bitmap format (1 bit per element + dense nonzero values) is included for
the format-choice ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.dtypes import DType
from repro.encodings.base import Encoding
from repro.encodings.binarize import pack_bits, unpack_bits
from repro.encodings.dpr import DPRTensor, pack_codes, unpack_codes
from repro.encodings.floatsim import decode_minifloat, encode_minifloat
from repro.kernels.backends import run_codec

#: Row width of the narrow-value reshape: 256 columns -> uint8 indices.
NARROW_COLS = 256


@dataclass(frozen=True)
class CSRTensor:
    """CSR stash of a (conceptually flattened) feature map.

    ``values`` is either a float32 array or a packed :class:`DPRTensor`
    when DPR is composed on top.  ``col_idx`` is uint8 (narrow) or int32
    (wide, the cuSPARSE default modelled for the ablation).
    """

    values: object
    col_idx: np.ndarray
    row_ptr: np.ndarray
    shape: Tuple[int, ...]
    cols: int
    #: Cached flat nonzero positions (``rows * cols + col_idx``).  The
    #: encoder knows them for free; decoders cache them here so repeated
    #: backward reads never recompute the row expansion.  A runtime-only
    #: derived quantity: excluded from equality and not charged to nbytes.
    positions: Optional[np.ndarray] = field(
        default=None, repr=False, compare=False
    )

    @property
    def nnz(self) -> int:
        """Number of stored non-zeros."""
        return int(self.row_ptr[-1])

    @property
    def nbytes(self) -> int:
        """Total storage: values + column indices + row pointers."""
        if isinstance(self.values, DPRTensor):
            vbytes = self.values.nbytes
        else:
            vbytes = self.values.size * 4
        return vbytes + self.col_idx.nbytes + self.row_ptr.nbytes


def csr_encode(
    x: np.ndarray,
    cols: int = NARROW_COLS,
    value_dtype: Optional[DType] = None,
) -> CSRTensor:
    """Encode an array into (narrow) CSR.

    Args:
        x: Input feature map, any shape; flattened row-major and split into
            rows of ``cols`` elements (the last row may be shorter).
        cols: Row width.  ``<= 256`` selects 1-byte indices (the narrow
            value optimisation); wider rows fall back to 4-byte indices.
        value_dtype: Optional DPR format for the values array.
    """
    if cols <= 0:
        raise ValueError(f"cols must be positive, got {cols}")
    flat = np.asarray(x, dtype=np.float32).ravel()
    nz_flat, col_positions, row_ptr = run_codec("csr_build", flat, cols)
    raw_values = flat[nz_flat]
    if value_dtype is None:
        values: object = raw_values
    else:
        codes = encode_minifloat(raw_values, value_dtype)
        values = DPRTensor(pack_codes(codes, value_dtype),
                           (raw_values.size,), value_dtype)
    return CSRTensor(values, col_positions, row_ptr, tuple(x.shape), cols,
                     positions=nz_flat)


def csr_positions(enc: CSRTensor) -> np.ndarray:
    """Flat dense positions of the stored non-zeros (cached on ``enc``)."""
    positions = enc.positions
    if positions is None:
        counts = np.diff(enc.row_ptr)
        rows = np.repeat(np.arange(counts.size), counts)
        positions = (rows.astype(np.int64) * enc.cols
                     + enc.col_idx.astype(np.int64))
        object.__setattr__(enc, "positions", positions)
    return positions


def csr_decode(enc: CSRTensor) -> np.ndarray:
    """Reconstruct the dense array from CSR (dense compute side of SSDC)."""
    n = int(np.prod(enc.shape))
    flat = np.zeros(n, dtype=np.float32)
    positions = csr_positions(enc)
    if isinstance(enc.values, DPRTensor):
        nnz = enc.nnz
        codes = unpack_codes(enc.values.words, nnz, enc.values.dtype)
        values = decode_minifloat(codes, enc.values.dtype)
    else:
        values = enc.values
    flat[positions] = values
    return flat.reshape(enc.shape)


def csr_bytes(
    num_elements: int,
    sparsity: float,
    cols: int = NARROW_COLS,
    value_bits: int = 32,
) -> int:
    """Static size model for a CSR stash.

    Args:
        num_elements: Dense element count.
        sparsity: Fraction of zeros, in [0, 1].
        cols: Row width (narrow optimisation when <= 256).
        value_bits: Bits per stored value (32, or a DPR width).
    """
    if not 0.0 <= sparsity <= 1.0:
        raise ValueError(f"sparsity must be in [0, 1], got {sparsity}")
    nnz = round(num_elements * (1.0 - sparsity))
    n_rows = max(1, -(-num_elements // cols))
    idx_bytes = 1 if cols <= 256 else 4
    value_bytes = -(-nnz * value_bits // 8)
    # Pack DPR values in whole words.
    if value_bits in (8, 10, 16):
        per_word = 32 // value_bits if value_bits != 10 else 3
        value_bytes = -(-nnz // per_word) * 4
    return value_bytes + nnz * idx_bytes + (n_rows + 1) * 4


class SSDCEncoding(Encoding):
    """Sparse Storage, Dense Compute.

    Lossless when ``value_dtype`` is ``None``; composing DPR on the values
    array makes it lossy (the zero pattern is always exact).
    """

    def __init__(self, cols: int = NARROW_COLS,
                 value_dtype: Optional[DType] = None):
        self.cols = cols
        self.value_dtype = value_dtype
        self.lossless = value_dtype is None
        suffix = f"+dpr-{value_dtype.name}" if value_dtype is not None else ""
        self.name = f"ssdc{suffix}"

    def encoded_bytes(self, num_elements: int, sparsity: float = 0.0, **ctx) -> int:
        value_bits = 32 if self.value_dtype is None else self.value_dtype.bits
        return csr_bytes(num_elements, sparsity, self.cols, value_bits)

    def encode(self, x: np.ndarray) -> CSRTensor:
        return csr_encode(x, self.cols, self.value_dtype)

    def decode(self, encoded: CSRTensor) -> np.ndarray:
        return csr_decode(encoded)

    def measure_bytes(self, encoded: CSRTensor) -> int:
        return encoded.nbytes


@dataclass(frozen=True)
class BitmapTensor:
    """Bitmap sparse format: 1 bit per element + packed nonzero values."""

    mask_words: np.ndarray
    values: np.ndarray
    shape: Tuple[int, ...]

    @property
    def nbytes(self) -> int:
        return self.mask_words.size * 4 + self.values.size * 4


def bitmap_encode(x: np.ndarray) -> BitmapTensor:
    """Encode with a *nonzero-occupancy* bitmap + packed value list.

    One bit per element marks whether it is nonzero (sign plays no role —
    negative values are stored too); the values array then holds exactly
    the nonzero entries in flat order.  Format-choice ablation vs CSR.
    """
    flat = np.asarray(x, dtype=np.float32).ravel()
    mask = flat != 0
    return BitmapTensor(pack_bits(mask), flat[mask], tuple(x.shape))


def bitmap_decode(enc: BitmapTensor) -> np.ndarray:
    """Reconstruct the dense array from the bitmap format."""
    n = int(np.prod(enc.shape))
    mask = unpack_bits(enc.mask_words, (n,))
    flat = np.zeros(n, dtype=np.float32)
    flat[mask] = enc.values
    return flat.reshape(enc.shape)


def bitmap_bytes(num_elements: int, sparsity: float) -> int:
    """Static size model for the bitmap format."""
    nnz = round(num_elements * (1.0 - sparsity))
    return -(-num_elements // 32) * 4 + nnz * 4
