"""One-call drivers for the paper's experiments.

The benchmark harness (``benchmarks/``) asserts the reproduction's shape
claims; this module exposes the same computations as plain library
functions, for notebooks and downstream studies.  Every function returns
ordinary dicts/lists of built-in types — directly serialisable, directly
plottable.

Static analyses accept any registered model name; training studies run on
the scaled substitution workload (see DESIGN.md §2) and are configurable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core import Gist, GistConfig, stash_bytes_by_class
from repro.memory import build_memory_plan
from repro.models import PAPER_SUITE, build_model
from repro.perf import (
    larger_minibatch_speedup,
    measure_overhead,
    measure_transfer_energy,
    simulate_swapping,
)


def figure8_mfr(models: Optional[Sequence[str]] = None,
                batch_size: int = 64) -> List[dict]:
    """Figure 8: per-network lossless and lossless+lossy MFR."""
    rows = []
    for name in models or PAPER_SUITE:
        graph = build_model(name, batch_size=batch_size)
        cfg = GistConfig.for_network(name)
        rows.append({
            "network": name,
            "dpr_format": cfg.dpr_format,
            "mfr_lossless": Gist(GistConfig.lossless()).measure_mfr(graph).mfr,
            "mfr_full": Gist(cfg).measure_mfr(graph).mfr,
        })
    return rows


def figure3_stash_classes(models: Optional[Sequence[str]] = None,
                          batch_size: int = 64) -> Dict[str, Dict[str, float]]:
    """Figure 3: per-network stash-class byte fractions."""
    out = {}
    for name in models or PAPER_SUITE:
        graph = build_model(name, batch_size=batch_size)
        raw = stash_bytes_by_class(graph)
        total = sum(raw.values())
        out[name] = {cls: nbytes / total for cls, nbytes in raw.items()}
    return out


def figure9_overheads(models: Optional[Sequence[str]] = None,
                      batch_size: int = 64) -> List[dict]:
    """Figure 9 + 15 + energy: performance/energy cost per strategy."""
    rows = []
    for name in models or PAPER_SUITE:
        graph = build_model(name, batch_size=batch_size)
        cfg = GistConfig.for_network(name)
        gist = measure_overhead(graph, cfg)
        swap = simulate_swapping(graph)
        energy = measure_transfer_energy(graph, cfg)
        rows.append({
            "network": name,
            "gist_overhead": gist.overhead_frac,
            "vdnn_overhead": swap.vdnn_overhead,
            "naive_overhead": swap.naive_overhead,
            "energy_ratio_vdnn_over_gist": energy.ratio,
        })
    return rows


def figure16_speedups(depths: Sequence[int] = (509, 851, 1202),
                      dpr_format: str = "fp10",
                      device=None) -> List[dict]:
    """Figure 16: larger-minibatch speedups for deep CIFAR ResNets."""
    from repro.models import resnet_cifar
    from repro.perf import TITAN_X_MAXWELL

    rows = []
    config = GistConfig.full(dpr_format)
    for depth in depths:
        report = larger_minibatch_speedup(
            lambda b, d=depth: resnet_cifar(d, batch_size=b),
            config,
            device=device or TITAN_X_MAXWELL,
            name=f"resnet-{depth}",
        )
        rows.append({
            "network": report.model,
            "baseline_batch": report.baseline_batch,
            "gist_batch": report.gist_batch,
            "speedup": report.speedup,
        })
    return rows


def figure12_accuracy(epochs: int = 6, seed: int = 3) -> Dict[str, List[float]]:
    """Figure 12: accuracy-loss curves per stash policy (scaled workload).

    Returns ``policy label -> per-epoch accuracy-loss``.
    """
    from repro.dtypes import FP8, FP16
    from repro.models import scaled_vgg
    from repro.train import (
        GistPolicy,
        SGD,
        Trainer,
        UniformReductionPolicy,
        make_synthetic,
    )

    train_set, test_set = make_synthetic(num_samples=640, num_classes=8,
                                         image_size=16, noise=1.2, seed=seed)
    arms = [
        ("baseline-fp32", lambda g: None),
        ("all-fp16", lambda g: UniformReductionPolicy(FP16)),
        ("all-fp8", lambda g: UniformReductionPolicy(FP8)),
        ("gist-dpr-fp16", lambda g: GistPolicy(g, GistConfig(dpr_format="fp16"))),
        ("gist-dpr-fp10", lambda g: GistPolicy(g, GistConfig(dpr_format="fp10"))),
        ("gist-dpr-fp8", lambda g: GistPolicy(g, GistConfig(dpr_format="fp8"))),
    ]
    curves = {}
    for label, make_policy in arms:
        graph = scaled_vgg(batch_size=32, num_classes=8, image_size=16,
                           width=8)
        trainer = Trainer(graph, make_policy(graph),
                          SGD(lr=0.01, momentum=0.9), seed=0)
        result = trainer.train(train_set, test_set, epochs=epochs,
                               label=label)
        curves[label] = result.accuracy_loss_curve
    return curves


def figure14_ssdc_series(epochs: int = 3, sample_every: int = 4,
                         seed: int = 3) -> Dict[str, List[float]]:
    """Figure 14: per-layer SSDC compression over training minibatches."""
    from repro.core import STASH_RELU_CONV, classify_all_stashes
    from repro.models import scaled_vgg
    from repro.train import (
        GistPolicy,
        SGD,
        Trainer,
        feature_map_elements,
        make_synthetic,
    )

    graph = scaled_vgg(batch_size=32, num_classes=8, image_size=16, width=8)
    train_set, test_set = make_synthetic(num_samples=640, num_classes=8,
                                         image_size=16, noise=1.2, seed=seed)
    trainer = Trainer(graph, GistPolicy(graph, GistConfig.lossless()),
                      SGD(lr=0.01, momentum=0.9), seed=0)
    result = trainer.train(train_set, test_set, epochs=epochs,
                           sparsity_every=sample_every)
    layers = [
        graph.node(nid).name
        for nid, info in classify_all_stashes(graph).items()
        if info.stash_class == STASH_RELU_CONV
        and graph.node(nid).kind == "relu"
    ]
    elements = feature_map_elements(graph)
    series: Dict[str, List[float]] = {name: [] for name in layers}
    for sample in result.sparsity_samples:
        ratios = sample.compression_ratios(elements)
        for name in layers:
            series[name].append(ratios[name])
    return series


def figure17_dynamic(models: Optional[Sequence[str]] = None,
                     batch_size: int = 64) -> List[dict]:
    """Figure 17: MFR under dynamic allocation arms."""
    from repro.core import footprint_bytes

    rows = []
    for name in models or PAPER_SUITE:
        graph = build_model(name, batch_size=batch_size)
        cfg = GistConfig.for_network(name)
        static_base = footprint_bytes(graph, None)
        rows.append({
            "network": name,
            "dynamic": static_base / footprint_bytes(graph, None, dynamic=True),
            "dynamic_lossless": static_base / footprint_bytes(
                graph, GistConfig.lossless(), dynamic=True),
            "dynamic_full": static_base / footprint_bytes(
                graph, cfg, dynamic=True),
            "dynamic_optimized": static_base / footprint_bytes(
                graph, cfg.with_(optimized_software=True), dynamic=True),
        })
    return rows


def baseline_memory_breakdown(models: Optional[Sequence[str]] = None,
                              batch_size: int = 64) -> Dict[str, Dict[str, int]]:
    """Figure 1: full per-class byte breakdown (weights and workspace in)."""
    out = {}
    for name in models or PAPER_SUITE:
        graph = build_model(name, batch_size=batch_size)
        plan = build_memory_plan(graph, include_weights=True,
                                 include_workspace=True)
        out[name] = plan.bytes_by_class()
    return out
