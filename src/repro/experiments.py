"""One-call drivers for the paper's experiments.

The benchmark harness (``benchmarks/``) asserts the reproduction's shape
claims; this module exposes the same computations as plain library
functions, for notebooks and downstream studies.  Every function returns
ordinary dicts/lists of built-in types — directly serialisable, directly
plottable.

Static analyses accept any registered model name; training studies run on
the scaled substitution workload (see DESIGN.md §2) and are configurable.

Each driver is decomposed into payload-complete per-unit cores (one
model, one arm, one depth), so ``repro sweep`` can shard a whole figure
suite across worker processes (:mod:`repro.orchestrate`) and reassemble
exactly what the one-call driver would have returned: the public
functions below are thin loops over the same cores the sweep units run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.core import Gist, GistConfig, stash_bytes_by_class
from repro.memory import build_memory_plan
from repro.models import PAPER_SUITE, build_model
from repro.orchestrate import WorkUnit, run_units
from repro.perf import (
    larger_minibatch_speedup,
    measure_overhead,
    measure_transfer_energy,
    simulate_swapping,
)


def _figure8_row(name: str, batch_size: int) -> dict:
    graph = build_model(name, batch_size=batch_size)
    cfg = GistConfig.for_network(name)
    return {
        "network": name,
        "dpr_format": cfg.dpr_format,
        "mfr_lossless": Gist(GistConfig.lossless()).measure_mfr(graph).mfr,
        "mfr_full": Gist(cfg).measure_mfr(graph).mfr,
    }


def figure8_mfr(models: Optional[Sequence[str]] = None,
                batch_size: int = 64) -> List[dict]:
    """Figure 8: per-network lossless and lossless+lossy MFR."""
    return [_figure8_row(name, batch_size) for name in models or PAPER_SUITE]


def _figure3_fractions(name: str, batch_size: int) -> Dict[str, float]:
    graph = build_model(name, batch_size=batch_size)
    raw = stash_bytes_by_class(graph)
    total = sum(raw.values())
    return {cls: nbytes / total for cls, nbytes in raw.items()}


def figure3_stash_classes(models: Optional[Sequence[str]] = None,
                          batch_size: int = 64) -> Dict[str, Dict[str, float]]:
    """Figure 3: per-network stash-class byte fractions."""
    return {name: _figure3_fractions(name, batch_size)
            for name in models or PAPER_SUITE}


def _figure9_row(name: str, batch_size: int) -> dict:
    graph = build_model(name, batch_size=batch_size)
    cfg = GistConfig.for_network(name)
    gist = measure_overhead(graph, cfg)
    swap = simulate_swapping(graph)
    energy = measure_transfer_energy(graph, cfg)
    return {
        "network": name,
        "gist_overhead": gist.overhead_frac,
        "vdnn_overhead": swap.vdnn_overhead,
        "naive_overhead": swap.naive_overhead,
        "energy_ratio_vdnn_over_gist": energy.ratio,
    }


def figure9_overheads(models: Optional[Sequence[str]] = None,
                      batch_size: int = 64) -> List[dict]:
    """Figure 9 + 15 + energy: performance/energy cost per strategy."""
    return [_figure9_row(name, batch_size) for name in models or PAPER_SUITE]


#: Figure 16's deep CIFAR ResNet depths (the paper's Table III picks).
FIGURE16_DEPTHS: Sequence[int] = (509, 851, 1202)


def _figure16_row(depth: int, dpr_format: str, device=None) -> dict:
    from repro.models import resnet_cifar
    from repro.perf import TITAN_X_MAXWELL

    config = GistConfig.full(dpr_format)
    report = larger_minibatch_speedup(
        lambda b, d=depth: resnet_cifar(d, batch_size=b),
        config,
        device=device or TITAN_X_MAXWELL,
        name=f"resnet-{depth}",
    )
    return {
        "network": report.model,
        "baseline_batch": report.baseline_batch,
        "gist_batch": report.gist_batch,
        "speedup": report.speedup,
    }


def figure16_speedups(depths: Sequence[int] = FIGURE16_DEPTHS,
                      dpr_format: str = "fp10",
                      device=None) -> List[dict]:
    """Figure 16: larger-minibatch speedups for deep CIFAR ResNets."""
    return [_figure16_row(depth, dpr_format, device) for depth in depths]


#: Figure 12's stash-policy arms, in plot order.
FIGURE12_ARMS: Sequence[str] = (
    "baseline-fp32", "all-fp16", "all-fp8",
    "gist-dpr-fp16", "gist-dpr-fp10", "gist-dpr-fp8",
)


def _figure12_policy(label: str, graph):
    from repro.dtypes import DPR_FORMATS
    from repro.train import GistPolicy, UniformReductionPolicy

    if label == "baseline-fp32":
        return None
    if label.startswith("all-"):
        return UniformReductionPolicy(DPR_FORMATS[label[4:]])
    if label.startswith("gist-dpr-"):
        return GistPolicy(graph, GistConfig(dpr_format=label[9:]))
    raise KeyError(f"unknown figure-12 arm {label!r}; known: "
                   f"{list(FIGURE12_ARMS)}")


def _figure12_arm(label: str, epochs: int, seed: int) -> List[float]:
    from repro.models import scaled_vgg
    from repro.train import SGD, Trainer, make_synthetic

    train_set, test_set = make_synthetic(num_samples=640, num_classes=8,
                                         image_size=16, noise=1.2, seed=seed)
    graph = scaled_vgg(batch_size=32, num_classes=8, image_size=16, width=8)
    trainer = Trainer(graph, _figure12_policy(label, graph),
                      SGD(lr=0.01, momentum=0.9), seed=0)
    result = trainer.train(train_set, test_set, epochs=epochs, label=label)
    return result.accuracy_loss_curve


def figure12_accuracy(epochs: int = 6, seed: int = 3) -> Dict[str, List[float]]:
    """Figure 12: accuracy-loss curves per stash policy (scaled workload).

    Returns ``policy label -> per-epoch accuracy-loss``.
    """
    return {label: _figure12_arm(label, epochs, seed)
            for label in FIGURE12_ARMS}


def figure14_ssdc_series(epochs: int = 3, sample_every: int = 4,
                         seed: int = 3) -> Dict[str, List[float]]:
    """Figure 14: per-layer SSDC compression over training minibatches."""
    from repro.core import STASH_RELU_CONV, classify_all_stashes
    from repro.models import scaled_vgg
    from repro.train import (
        GistPolicy,
        SGD,
        Trainer,
        feature_map_elements,
        make_synthetic,
    )

    graph = scaled_vgg(batch_size=32, num_classes=8, image_size=16, width=8)
    train_set, test_set = make_synthetic(num_samples=640, num_classes=8,
                                         image_size=16, noise=1.2, seed=seed)
    trainer = Trainer(graph, GistPolicy(graph, GistConfig.lossless()),
                      SGD(lr=0.01, momentum=0.9), seed=0)
    result = trainer.train(train_set, test_set, epochs=epochs,
                           sparsity_every=sample_every)
    layers = [
        graph.node(nid).name
        for nid, info in classify_all_stashes(graph).items()
        if info.stash_class == STASH_RELU_CONV
        and graph.node(nid).kind == "relu"
    ]
    elements = feature_map_elements(graph)
    series: Dict[str, List[float]] = {name: [] for name in layers}
    for sample in result.sparsity_samples:
        ratios = sample.compression_ratios(elements)
        for name in layers:
            series[name].append(ratios[name])
    return series


def _figure17_row(name: str, batch_size: int) -> dict:
    from repro.core import footprint_bytes

    graph = build_model(name, batch_size=batch_size)
    cfg = GistConfig.for_network(name)
    static_base = footprint_bytes(graph, None)
    return {
        "network": name,
        "dynamic": static_base / footprint_bytes(graph, None, dynamic=True),
        "dynamic_lossless": static_base / footprint_bytes(
            graph, GistConfig.lossless(), dynamic=True),
        "dynamic_full": static_base / footprint_bytes(
            graph, cfg, dynamic=True),
        "dynamic_optimized": static_base / footprint_bytes(
            graph, cfg.with_(optimized_software=True), dynamic=True),
    }


def figure17_dynamic(models: Optional[Sequence[str]] = None,
                     batch_size: int = 64) -> List[dict]:
    """Figure 17: MFR under dynamic allocation arms."""
    return [_figure17_row(name, batch_size) for name in models or PAPER_SUITE]


#: The replica counts the throughput sweep scales across.
THROUGHPUT_REPLICAS: Sequence[int] = (1, 2, 4)

#: One tiny config per workload family (convolutional, recurrent,
#: densely-connected); the sweep is about scaling shape, not accuracy.
THROUGHPUT_MODELS: Dict[str, dict] = {
    "tiny_cnn": {"image_size": 8, "num_classes": 4},
    "lstm": {"seq_len": 6, "input_size": 8, "hidden_size": 12,
             "num_classes": 4},
    "densenet": {"image_size": 8, "init_channels": 4, "growth": 4,
                 "blocks": 2, "block_layers": 2, "num_classes": 4},
}

#: Gradient shards per step, fixed across the whole sweep: ``replicas``
#: only changes scheduling, so every row of a model must produce the
#: same run digest — the invariance each row carries for checking.
_THROUGHPUT_SHARDS = 4


def _throughput_row(model: str, replicas: int, steps: int = 3,
                    batch_size: int = 16, seed: int = 0) -> dict:
    import time

    from repro.distributed import DistConfig, train_distributed

    config = DistConfig(
        model=model, batch_size=batch_size,
        num_shards=_THROUGHPUT_SHARDS, replicas=replicas, steps=steps,
        seed=seed, model_kwargs=dict(THROUGHPUT_MODELS.get(model, {})),
    )
    start = time.perf_counter()
    result = train_distributed(config)
    elapsed = time.perf_counter() - start
    samples = steps * batch_size
    return {
        "model": model,
        "replicas": int(replicas),
        "steps": int(steps),
        "batch_size": int(batch_size),
        "samples": samples,
        "elapsed_s": elapsed,
        "samples_per_s": samples / elapsed,
        "digest": result.digest(),
    }


def throughput_replicas(
    models: Optional[Sequence[str]] = None,
    replicas: Sequence[int] = THROUGHPUT_REPLICAS,
) -> List[dict]:
    """Samples/sec versus replica count for each workload family.

    Returns one row per (model, replicas) pair.  Within a model, every
    row's ``digest`` is identical — the shard count is pinned, so more
    replicas may only change wall-clock, never bits.  ``samples_per_s``
    is measured wall-clock throughput and so varies run to run; the
    digest column is the deterministic part.
    """
    return [
        _throughput_row(model, r)
        for model in (models or list(THROUGHPUT_MODELS))
        for r in replicas
    ]


def _breakdown_entry(name: str, batch_size: int) -> Dict[str, int]:
    graph = build_model(name, batch_size=batch_size)
    plan = build_memory_plan(graph, include_weights=True,
                             include_workspace=True)
    return plan.bytes_by_class()


def baseline_memory_breakdown(models: Optional[Sequence[str]] = None,
                              batch_size: int = 64) -> Dict[str, Dict[str, int]]:
    """Figure 1: full per-class byte breakdown (weights and workspace in)."""
    return {name: _breakdown_entry(name, batch_size)
            for name in models or PAPER_SUITE}


# ----------------------------------------------------------------------
# Sweep work units: every driver above, enumerable and parallelisable.

#: payload["driver"] -> per-unit core.  Each core is a pure function of
#: its payload, so any worker process can run any unit.
_UNIT_RUNNERS: Dict[str, Callable[[dict], object]] = {
    "figure8_mfr": lambda p: _figure8_row(p["model"], p["batch_size"]),
    "figure3_stash_classes":
        lambda p: _figure3_fractions(p["model"], p["batch_size"]),
    "figure9_overheads": lambda p: _figure9_row(p["model"], p["batch_size"]),
    "figure12_accuracy":
        lambda p: _figure12_arm(p["arm"], p["epochs"], p["seed"]),
    "figure14_ssdc_series":
        lambda p: figure14_ssdc_series(p["epochs"], p["sample_every"],
                                       p["seed"]),
    "figure16_speedups":
        lambda p: _figure16_row(p["depth"], p["dpr_format"]),
    "figure17_dynamic":
        lambda p: _figure17_row(p["model"], p["batch_size"]),
    "baseline_memory_breakdown":
        lambda p: _breakdown_entry(p["model"], p["batch_size"]),
    "throughput_replicas":
        lambda p: _throughput_row(p["model"], p["replicas"]),
}


def run_sweep_unit(payload: dict):
    """Work-unit executor for kind ``experiment`` (runs in any process)."""
    try:
        runner = _UNIT_RUNNERS[payload["driver"]]
    except KeyError:
        raise KeyError(
            f"unknown sweep driver {payload.get('driver')!r}; known: "
            f"{sorted(_UNIT_RUNNERS)}"
        ) from None
    return runner(payload)


@dataclass(frozen=True)
class SweepDriver:
    """How one figure driver shards into work units and merges back.

    Attributes:
        name: Driver name (the ``experiments`` function it mirrors).
        enumerate_units: ``(models, batch_size) -> [WorkUnit]`` in the
            driver's canonical order.
        merge: ``(units, values) -> object`` reassembling the one-call
            driver's return value from per-unit results *in unit order*
            (order-independent of how the pool completed them).
    """

    name: str
    enumerate_units: Callable[[Optional[Sequence[str]], int],
                              List[WorkUnit]]
    merge: Callable[[Sequence[WorkUnit], Sequence[object]], object]


def _per_model_units(driver: str):
    def enumerate_units(models, batch_size):
        return [
            WorkUnit("experiment", f"{driver}:{name}",
                     {"driver": driver, "model": name,
                      "batch_size": int(batch_size)})
            for name in models or PAPER_SUITE
        ]
    return enumerate_units


def _by_model(units, values):
    return {u.payload["model"]: v for u, v in zip(units, values)}


SWEEP_DRIVERS: Dict[str, SweepDriver] = {d.name: d for d in (
    SweepDriver("baseline_memory_breakdown",
                _per_model_units("baseline_memory_breakdown"), _by_model),
    SweepDriver("figure3_stash_classes",
                _per_model_units("figure3_stash_classes"), _by_model),
    SweepDriver("figure8_mfr", _per_model_units("figure8_mfr"),
                lambda units, values: list(values)),
    SweepDriver("figure9_overheads", _per_model_units("figure9_overheads"),
                lambda units, values: list(values)),
    SweepDriver("figure12_accuracy",
                lambda models, batch_size: [
                    WorkUnit("experiment", f"figure12_accuracy:{arm}",
                             {"driver": "figure12_accuracy", "arm": arm,
                              "epochs": 6, "seed": 3})
                    for arm in FIGURE12_ARMS
                ],
                lambda units, values: {u.payload["arm"]: v
                                       for u, v in zip(units, values)}),
    SweepDriver("figure14_ssdc_series",
                lambda models, batch_size: [
                    WorkUnit("experiment", "figure14_ssdc_series",
                             {"driver": "figure14_ssdc_series", "epochs": 3,
                              "sample_every": 4, "seed": 3})
                ],
                lambda units, values: values[0] if values else None),
    SweepDriver("figure16_speedups",
                lambda models, batch_size: [
                    WorkUnit("experiment", f"figure16_speedups:{depth}",
                             {"driver": "figure16_speedups",
                              "depth": int(depth), "dpr_format": "fp10"})
                    for depth in FIGURE16_DEPTHS
                ],
                lambda units, values: list(values)),
    SweepDriver("figure17_dynamic", _per_model_units("figure17_dynamic"),
                lambda units, values: list(values)),
    SweepDriver("throughput_replicas",
                lambda models, batch_size: [
                    WorkUnit("experiment",
                             f"throughput_replicas:{model}:{r}",
                             {"driver": "throughput_replicas",
                              "model": model, "replicas": int(r)})
                    for model in THROUGHPUT_MODELS
                    for r in THROUGHPUT_REPLICAS
                ],
                lambda units, values: list(values)),
)}

#: The cheap static-analysis drivers ``repro sweep`` runs by default
#: (the training studies are opt-in: they dominate wall-clock).
DEFAULT_SWEEP_DRIVERS: Sequence[str] = (
    "baseline_memory_breakdown",
    "figure3_stash_classes",
    "figure8_mfr",
    "figure9_overheads",
    "figure17_dynamic",
)


def run_sweep(
    drivers: Optional[Sequence[str]] = None,
    models: Optional[Sequence[str]] = None,
    batch_size: int = 64,
    workers: int = 1,
    journal=None,
    timeout_s: Optional[float] = None,
    retries: int = 1,
) -> dict:
    """Run figure drivers as parallel work units; merge deterministically.

    Returns a JSON-serialisable mapping with one merged entry per driver
    under ``"figures"`` plus a ``"failed_units"`` list (payload + error
    for every unit that could not be computed).  The output is a pure
    function of the unit results: byte-identical for any ``workers``
    count, and resumable via ``journal`` (completed units are replayed
    from disk, only missing ones re-run).
    """
    names = list(drivers) if drivers is not None \
        else list(DEFAULT_SWEEP_DRIVERS)
    unknown = [n for n in names if n not in SWEEP_DRIVERS]
    if unknown:
        raise KeyError(f"unknown sweep drivers {unknown}; known: "
                       f"{sorted(SWEEP_DRIVERS)}")
    spans = [(name, SWEEP_DRIVERS[name].enumerate_units(models, batch_size))
             for name in names]
    all_units = [unit for _, units in spans for unit in units]
    results = run_units(all_units, workers=workers, timeout_s=timeout_s,
                        retries=retries, journal=journal)

    figures: Dict[str, object] = {}
    failed: List[dict] = []
    for name, units in spans:
        done = []
        for unit in units:
            result = results.get(unit.key)
            if result is not None and result.ok:
                done.append((unit, result.value))
            else:
                failed.append({
                    "key": unit.key,
                    "payload": unit.payload,
                    "error": (None if result is None else
                              {"type": result.error["type"],
                               "message": result.error["message"]}),
                    "attempts": 0 if result is None else result.attempts,
                })
        figures[name] = SWEEP_DRIVERS[name].merge(
            [u for u, _ in done], [v for _, v in done])
    return {
        "batch_size": int(batch_size),
        "drivers": names,
        "models": list(models or PAPER_SUITE),
        "figures": figures,
        "failed_units": failed,
        "ok": not failed,
    }
