"""Execution-graph IR: DAG, builder, training schedule, liveness."""

from repro.graph.builder import GraphBuilder, NodeRef
from repro.graph.fingerprint import (
    FINGERPRINT_VERSION,
    graph_fingerprint,
    node_fingerprints,
)
from repro.graph.graph import Graph, GraphError
from repro.graph.liveness import (
    LiveTensor,
    ROLE_DECODED,
    ROLE_ENCODED,
    ROLE_FEATURE_MAP,
    ROLE_GRADIENT_MAP,
    ROLE_STATE,
    ROLE_WEIGHT,
    ROLE_WEIGHT_GRAD,
    ROLE_WORKSPACE,
    compute_lifetimes,
    feature_map_last_uses,
)
from repro.graph.node import OpNode
from repro.graph.schedule import BACKWARD, FORWARD, ScheduledOp, TrainingSchedule

__all__ = [
    "BACKWARD",
    "FINGERPRINT_VERSION",
    "FORWARD",
    "Graph",
    "GraphBuilder",
    "GraphError",
    "LiveTensor",
    "NodeRef",
    "OpNode",
    "ROLE_DECODED",
    "ROLE_ENCODED",
    "ROLE_FEATURE_MAP",
    "ROLE_GRADIENT_MAP",
    "ROLE_STATE",
    "ROLE_WEIGHT",
    "ROLE_WEIGHT_GRAD",
    "ROLE_WORKSPACE",
    "ScheduledOp",
    "TrainingSchedule",
    "compute_lifetimes",
    "feature_map_last_uses",
    "graph_fingerprint",
    "node_fingerprints",
]
