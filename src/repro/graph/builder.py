"""Fluent builder for training execution graphs."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from repro.graph.graph import Graph, GraphError
from repro.graph.node import OpNode
from repro.layers.base import InputLayer, Layer, Shape


class NodeRef:
    """Opaque handle to a node under construction."""

    __slots__ = ("node_id",)

    def __init__(self, node_id: int):
        self.node_id = node_id


class GraphBuilder:
    """Constructs a :class:`~repro.graph.graph.Graph` with shape checking.

    Example::

        b = GraphBuilder("tiny", input_shape=(8, 3, 32, 32))
        x = b.add(Conv2D(16, 3, pad=1), b.input, name="conv1")
        x = b.add(ReLU(), x)
        b.mark_output(x)
        graph = b.build()
    """

    def __init__(self, name: str, input_shape: Shape):
        self.name = name
        self._nodes: Dict[int, OpNode] = {}
        self._names: set = set()
        self._next_id = 0
        self._output: Optional[NodeRef] = None
        self._counters: Dict[str, int] = {}
        self.input = self._add_node(InputLayer(tuple(input_shape)), [], "input")

    # ------------------------------------------------------------------
    def add(
        self,
        layer: Layer,
        inputs: Union[NodeRef, Sequence[NodeRef]],
        name: Optional[str] = None,
    ) -> NodeRef:
        """Append an op consuming ``inputs``; returns a ref to the new node."""
        if isinstance(inputs, NodeRef):
            inputs = [inputs]
        if not inputs:
            raise GraphError(f"op {name or layer.kind!r} must have at least one input")
        return self._add_node(layer, [r.node_id for r in inputs], name)

    def shape_of(self, ref: NodeRef) -> Shape:
        """Output shape of a node under construction."""
        return self._nodes[ref.node_id].output_shape

    def mark_output(self, ref: NodeRef) -> None:
        """Declare the graph output (typically the loss node)."""
        self._output = ref

    def build(self) -> Graph:
        """Finalise and validate the graph."""
        if self._output is None:
            # Default: the last node added.
            last_id = max(self._nodes)
            self._output = NodeRef(last_id)
        return Graph(self.name, self._nodes, self.input.node_id, self._output.node_id)

    # ------------------------------------------------------------------
    def _add_node(
        self, layer: Layer, input_ids: List[int], name: Optional[str]
    ) -> NodeRef:
        if name is None:
            count = self._counters.get(layer.kind, 0) + 1
            self._counters[layer.kind] = count
            name = f"{layer.kind}{count}"
        if name in self._names:
            raise GraphError(f"duplicate node name {name!r}")
        input_shapes = tuple(self._nodes[i].output_shape for i in input_ids)
        output_shape = layer.infer_shape(input_shapes)
        node = OpNode(self._next_id, name, layer, list(input_ids), tuple(output_shape))
        self._nodes[self._next_id] = node
        self._names.add(name)
        self._next_id += 1
        return NodeRef(node.node_id)
