"""Content-addressed graph identity: a canonical structural fingerprint.

The serve layer caches priced hybrid plans by *what a graph is*, not by
how it happened to be built: two graphs with the same topology, the same
layer kinds and hyper-parameters, the same shapes and dtypes must hash
identically even when their node ids, node names or construction order
differ (the same amortise-the-analysis move Echo makes by folding
footprint optimisation into the compiler instead of redoing it per run).

The fingerprint is a Merkle hash over the DAG: every node's digest
covers its own semantic content (layer class/kind, public scalar
hyper-parameters, output shape, saved-state dtypes) plus the digests of
its inputs *in argument order* (argument order is semantic — ``a - b``
is not ``b - a``).  The graph digest then combines the output node's
digest with the sorted multiset of all node digests, which makes it
independent of any id numbering or sibling ordering while still
distinguishing dead branches.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Tuple

from repro.graph.graph import Graph
from repro.graph.node import OpNode

#: Bump when the canonical form changes; part of every fingerprint, so
#: caches keyed on old fingerprints miss instead of serving stale plans.
FINGERPRINT_VERSION = 1


def _scalar(value) -> bool:
    return isinstance(value, (bool, int, float, str)) or value is None


def layer_signature(node: OpNode, graph: Graph) -> List:
    """Canonical semantic description of one node's operator.

    Covers the layer's class and kind, every public scalar (or
    scalar-tuple) attribute — which is where conv kernel/stride/pad,
    dropout rate, BN momentum/eps and friends live — the node's output
    shape, and the dtypes of the layer's saved backward state.  Private
    (``_``-prefixed) attributes are runtime state (RNG streams, running
    statistics) and deliberately excluded: they don't change what plan a
    graph deserves.
    """
    layer = node.layer
    attrs = []
    for key in sorted(vars(layer)):
        if key.startswith("_"):
            continue
        value = getattr(layer, key)
        if _scalar(value):
            attrs.append([key, value])
        elif isinstance(value, tuple) and all(_scalar(v) for v in value):
            attrs.append([key, list(value)])
    state_dtypes = [
        [spec.key, spec.dtype.name, list(spec.shape)]
        for spec in layer.saved_state_specs(
            node.input_shapes(graph), node.output_shape
        )
    ]
    return [
        type(layer).__name__,
        layer.kind,
        attrs,
        list(node.output_shape),
        "fp32",  # feature-map storage dtype (uniform across the runtime)
        state_dtypes,
        bool(node.inplace),
    ]


def _digest(parts: List) -> str:
    import json

    blob = json.dumps(parts, sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def node_fingerprints(graph: Graph) -> Dict[int, str]:
    """Merkle digest per node id (inputs folded in argument order)."""
    digests: Dict[int, str] = {}
    for node in graph.nodes:  # topological: inputs already hashed
        digests[node.node_id] = _digest([
            layer_signature(node, graph),
            [digests[i] for i in node.inputs],
        ])
    return digests


def graph_fingerprint(graph: Graph) -> str:
    """Order-independent canonical fingerprint of ``graph``.

    A pure function of topology + layer kinds/params + shapes/dtypes:
    invariant under node renaming, id renumbering and construction
    order, sensitive to any semantic change (one hyper-parameter, one
    edge, one extra node).
    """
    digests = node_fingerprints(graph)
    return _digest([
        FINGERPRINT_VERSION,
        digests[graph.output_id],
        sorted(digests.values()),
    ])


def fingerprint_pair(graph: Graph) -> Tuple[str, int]:
    """``(fingerprint, node_count)`` — the cache key plus a sanity field."""
    return graph_fingerprint(graph), len(graph)
