"""The training execution graph (a DAG of operator nodes).

This is the reproduction's stand-in for the CNTK execution graph that
Gist's Schedule Builder consumes: it provides topological ordering,
consumer lookup, shape/parameter introspection and aggregate statistics.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.graph.node import OpNode
from repro.layers.base import Shape


class GraphError(ValueError):
    """Raised for malformed graph construction or queries."""


class Graph:
    """Immutable DAG of :class:`~repro.graph.node.OpNode`.

    Build instances through :class:`~repro.graph.builder.GraphBuilder`.
    """

    def __init__(self, name: str, nodes: Dict[int, OpNode], input_id: int, output_id: int):
        self.name = name
        self._nodes = dict(nodes)
        self.input_id = input_id
        self.output_id = output_id
        self._consumers: Dict[int, List[int]] = {nid: [] for nid in self._nodes}
        for node in self._nodes.values():
            for src in node.inputs:
                if src not in self._nodes:
                    raise GraphError(
                        f"node {node.name!r} references unknown input id {src}"
                    )
                self._consumers[src].append(node.node_id)
        self._topo = self._topological_order()

    # ------------------------------------------------------------------
    def node(self, node_id: int) -> OpNode:
        """Node by id."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise GraphError(f"no node with id {node_id}") from None

    def node_by_name(self, name: str) -> OpNode:
        """Node by unique name."""
        for node in self._nodes.values():
            if node.name == name:
                return node
        raise GraphError(f"no node named {name!r}")

    @property
    def nodes(self) -> List[OpNode]:
        """All nodes in topological order."""
        return [self._nodes[i] for i in self._topo]

    def consumers(self, node_id: int) -> List[OpNode]:
        """Nodes that read ``node_id``'s output in the forward pass."""
        return [self._nodes[i] for i in self._consumers[node_id]]

    def topological_ids(self) -> List[int]:
        """Node ids in a deterministic topological order."""
        return list(self._topo)

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterable[OpNode]:
        return iter(self.nodes)

    # ------------------------------------------------------------------
    def _topological_order(self) -> List[int]:
        indegree = {nid: len(n.inputs) for nid, n in self._nodes.items()}
        # Deterministic Kahn's algorithm: ready set ordered by node id.
        ready = sorted(nid for nid, d in indegree.items() if d == 0)
        order: List[int] = []
        while ready:
            nid = ready.pop(0)
            order.append(nid)
            for consumer in self._consumers[nid]:
                indegree[consumer] -= 1
                if indegree[consumer] == 0:
                    # Insert keeping the ready list sorted (graphs are small).
                    ready.append(consumer)
                    ready.sort()
        if len(order) != len(self._nodes):
            raise GraphError(f"graph {self.name!r} contains a cycle")
        return order

    # ------------------------------------------------------------------
    # Aggregate statistics
    # ------------------------------------------------------------------
    def param_shapes(self) -> Dict[str, Shape]:
        """All learnable parameter shapes, keyed ``"<node>.<param>"``."""
        shapes: Dict[str, Shape] = {}
        for node in self.nodes:
            for pname, pshape in node.layer.param_shapes(
                node.input_shapes(self)
            ).items():
                shapes[f"{node.name}.{pname}"] = pshape
        return shapes

    def num_parameters(self) -> int:
        """Total learnable parameter count."""
        total = 0
        for shape in self.param_shapes().values():
            n = 1
            for d in shape:
                n *= d
            total += n
        return total

    def total_forward_flops(self) -> int:
        """Sum of forward FLOPs over all ops."""
        total = 0
        for node in self.nodes:
            total += node.layer.flops(node.input_shapes(self), node.output_shape)
        return total

    def summary(self) -> str:
        """Multi-line human-readable description of the graph."""
        lines = [f"Graph {self.name!r}: {len(self)} ops, "
                 f"{self.num_parameters():,} params"]
        for node in self.nodes:
            srcs = ",".join(self._nodes[i].name for i in node.inputs)
            dims = "x".join(str(d) for d in node.output_shape)
            lines.append(f"  {node.name:<24} {node.kind:<10} [{dims}] <- {srcs}")
        return "\n".join(lines)
