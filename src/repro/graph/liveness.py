"""Static liveness analysis over a training schedule.

For every tensor that exists during a training step — feature maps,
gradient maps, weights, weight gradients, workspace and per-layer saved
state — this module computes its ``[birth, death]`` interval on the
schedule's discrete clock.  The Gist Schedule Builder (in
:mod:`repro.core.schedule_builder`) rewrites these intervals when it
inserts encode/decode ops; the memory allocator then shares space between
tensors with disjoint intervals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.dtypes import FP32, UINT8
from repro.graph.graph import Graph
from repro.graph.schedule import TrainingSchedule
from repro.tensor.categories import TensorCategory
from repro.tensor.spec import TensorSpec

# Tensor roles: how a LiveTensor relates to its owning node.
ROLE_FEATURE_MAP = "feature_map"
ROLE_GRADIENT_MAP = "gradient_map"
ROLE_WEIGHT = "weight"
ROLE_WEIGHT_GRAD = "weight_grad"
ROLE_WORKSPACE = "workspace"
ROLE_STATE = "state"
ROLE_ENCODED = "encoded"
ROLE_DECODED = "decoded"


@dataclass
class LiveTensor:
    """A tensor plus its lifetime on the schedule clock.

    Attributes:
        spec: Shape/dtype/category descriptor.
        birth: Time index at which the tensor is produced.
        death: Time index of the tensor's last use (inclusive).
        node_id: Owning graph node.
        role: One of the ``ROLE_*`` constants.
        shareable: Whether the allocator may place this tensor in a shared
            group.  The paper's *investigation baseline* switches this off
            for stashed feature maps.
        alias_group: Label of a physical-aliasing set, or ``None``.
            Tensors carrying the same label are views of one buffer (the
            DenseNet shared-concat trick): the allocator co-locates them
            in a single region sized by the largest member even though
            their lifetimes overlap.
    """

    spec: TensorSpec
    birth: int
    death: int
    node_id: int
    role: str
    shareable: bool = True
    alias_group: Optional[str] = None

    def __post_init__(self) -> None:
        if self.death < self.birth:
            raise ValueError(
                f"tensor {self.spec.name!r}: death {self.death} precedes "
                f"birth {self.birth}"
            )

    @property
    def size_bytes(self) -> int:
        """Storage footprint in bytes."""
        return self.spec.size_bytes

    def overlaps(self, other: "LiveTensor") -> bool:
        """Whether the two lifetime intervals share any time step."""
        return not (self.death < other.birth or other.death < self.birth)


def feature_map_last_uses(
    graph: Graph, schedule: TrainingSchedule, node_id: int
) -> tuple:
    """(last forward use, last backward use or None) for a node's output.

    The forward use set contains the producing op and every forward
    consumer; the backward use set contains the producer's backward op (if
    it declares ``backward_needs_output``) and each consumer's backward op
    (if it declares ``backward_needs_input``).
    """
    node = graph.node(node_id)
    last_fwd = schedule.forward_time(node_id)
    for consumer in graph.consumers(node_id):
        last_fwd = max(last_fwd, schedule.forward_time(consumer.node_id))
    backward_uses = []
    if node.layer.backward_needs_output and schedule.has_backward(node_id):
        backward_uses.append(schedule.backward_time(node_id))
    for consumer in graph.consumers(node_id):
        if consumer.layer.backward_needs_input and schedule.has_backward(
            consumer.node_id
        ):
            backward_uses.append(schedule.backward_time(consumer.node_id))
    last_bwd = max(backward_uses) if backward_uses else None
    first_bwd = min(backward_uses) if backward_uses else None
    return last_fwd, first_bwd, last_bwd


def compute_lifetimes(
    graph: Graph,
    schedule: Optional[TrainingSchedule] = None,
    include_weights: bool = True,
    include_workspace: bool = True,
) -> List[LiveTensor]:
    """Full liveness table for one training step.

    Args:
        graph: The training execution graph.
        schedule: Precomputed schedule; built from ``graph`` if omitted.
        include_weights: Include weights and weight gradients (the paper's
            "CNTK baseline" excludes them from footprint accounting).
        include_workspace: Include per-op cuDNN-style workspace.

    Returns:
        One :class:`LiveTensor` per tensor, in deterministic order.
    """
    if schedule is None:
        schedule = TrainingSchedule(graph)
    end = schedule.end
    tensors: List[LiveTensor] = []

    for node in graph.nodes:
        nid = node.node_id
        f_t = schedule.forward_time(nid)
        input_shapes = node.input_shapes(graph)

        # --- Feature map (this node's output) ---------------------------
        last_fwd, _, last_bwd = feature_map_last_uses(graph, schedule, nid)
        death = last_bwd if last_bwd is not None else last_fwd
        # The loss output seeds the backward pass.
        if nid == graph.output_id and schedule.has_backward(nid):
            death = max(death, schedule.backward_time(nid))
        tensors.append(
            LiveTensor(
                TensorSpec(f"{node.name}.out", node.output_shape, FP32,
                           TensorCategory.FEATURE_MAP),
                birth=f_t,
                death=max(death, f_t),
                node_id=nid,
                role=ROLE_FEATURE_MAP,
            )
        )

        # --- Gradient map (gradient w.r.t. this node's output) ----------
        if schedule.has_backward(nid):
            b_t = schedule.backward_time(nid)
            producer_times = [
                schedule.backward_time(c.node_id)
                for c in graph.consumers(nid)
                if schedule.has_backward(c.node_id)
            ]
            birth = min(producer_times) if producer_times else b_t
            tensors.append(
                LiveTensor(
                    TensorSpec(f"{node.name}.grad", node.output_shape, FP32,
                               TensorCategory.GRADIENT_MAP),
                    birth=birth,
                    death=b_t,
                    node_id=nid,
                    role=ROLE_GRADIENT_MAP,
                )
            )

        # --- Weights and weight gradients -------------------------------
        if include_weights:
            for pname, pshape in node.layer.param_shapes(input_shapes).items():
                tensors.append(
                    LiveTensor(
                        TensorSpec(f"{node.name}.{pname}", pshape, FP32,
                                   TensorCategory.WEIGHT),
                        birth=0,
                        death=end,
                        node_id=nid,
                        role=ROLE_WEIGHT,
                        shareable=False,
                    )
                )
                if schedule.has_backward(nid):
                    tensors.append(
                        LiveTensor(
                            TensorSpec(f"{node.name}.d{pname}", pshape, FP32,
                                       TensorCategory.WEIGHT_GRAD),
                            birth=schedule.backward_time(nid),
                            death=end,
                            node_id=nid,
                            role=ROLE_WEIGHT_GRAD,
                            shareable=False,
                        )
                    )

        # --- Saved per-layer state ---------------------------------------
        if schedule.has_backward(nid):
            b_t = schedule.backward_time(nid)
            for state in node.layer.saved_state_specs(input_shapes, node.output_shape):
                tensors.append(
                    LiveTensor(
                        TensorSpec(f"{node.name}.{state.key}", state.shape,
                                   state.dtype, TensorCategory.SAVED_STATE),
                        birth=f_t,
                        death=b_t,
                        node_id=nid,
                        role=ROLE_STATE,
                    )
                )

        # --- Workspace ----------------------------------------------------
        if include_workspace:
            ws = node.layer.workspace_bytes(input_shapes, node.output_shape)
            if ws > 0:
                tensors.append(
                    LiveTensor(
                        TensorSpec(f"{node.name}.ws_f", (ws,), UINT8,
                                   TensorCategory.WORKSPACE),
                        birth=f_t,
                        death=f_t,
                        node_id=nid,
                        role=ROLE_WORKSPACE,
                    )
                )
                if schedule.has_backward(nid):
                    b_t = schedule.backward_time(nid)
                    tensors.append(
                        LiveTensor(
                            TensorSpec(f"{node.name}.ws_b", (ws,), UINT8,
                                       TensorCategory.WORKSPACE),
                            birth=b_t,
                            death=b_t,
                            node_id=nid,
                            role=ROLE_WORKSPACE,
                        )
                    )

    return tensors
