"""Execution-graph node: one operator application."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.layers.base import Layer, Shape


@dataclass
class OpNode:
    """A single operator instance in the execution graph.

    Attributes:
        node_id: Dense integer id assigned by the builder (topological for
            sequentially built graphs, but never relied upon for ordering).
        name: Unique human-readable name, e.g. ``"conv3_2"``.
        layer: The operator (shared :class:`~repro.layers.base.Layer`).
        inputs: ``node_id`` of each input edge, in argument order.
        output_shape: Inferred output shape (filled by the builder).
        inplace: Set by the inplace rewrite pass: the executor computes
            this node's output in its (sole) input's buffer via
            :meth:`~repro.layers.base.Layer.forward_inplace`.
    """

    node_id: int
    name: str
    layer: Layer
    inputs: List[int] = field(default_factory=list)
    output_shape: Shape = ()
    inplace: bool = False

    @property
    def kind(self) -> str:
        """The operator kind (``"conv"``, ``"relu"``, ...)."""
        return self.layer.kind

    def input_shapes(self, graph: "Graph") -> Tuple[Shape, ...]:  # noqa: F821
        """Shapes of this node's inputs, resolved through the graph."""
        return tuple(graph.node(i).output_shape for i in self.inputs)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"#{self.node_id}:{self.name}({self.kind})"
