"""Training-step schedule: forward ops in topological order, then backward
ops in reverse.

Time is a discrete index over scheduled ops; all lifetime intervals in the
memory planner are expressed in this clock, which is exactly the
information Gist's Schedule Builder extracts from the CNTK graph (paper
Figure 2's computation timeline).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.graph.graph import Graph

FORWARD = "forward"
BACKWARD = "backward"


@dataclass(frozen=True)
class ScheduledOp:
    """One op execution at discrete time ``t``."""

    t: int
    phase: str  # FORWARD or BACKWARD
    node_id: int


class TrainingSchedule:
    """The per-minibatch timeline of a training step.

    Attributes:
        ops: Scheduled ops, index == time.
        forward_end: First time index belonging to the backward pass; a
            tensor whose last use is ``>= forward_end`` is *stashed*.
    """

    def __init__(self, graph: Graph):
        self.graph = graph
        topo = graph.topological_ids()
        self.ops: List[ScheduledOp] = []
        t = 0
        for node_id in topo:
            self.ops.append(ScheduledOp(t, FORWARD, node_id))
            t += 1
        self.forward_end = t
        input_id = graph.input_id
        for node_id in reversed(topo):
            if node_id == input_id:
                continue  # the minibatch input needs no gradient
            self.ops.append(ScheduledOp(t, BACKWARD, node_id))
            t += 1
        self._forward_t: Dict[int, int] = {}
        self._backward_t: Dict[int, int] = {}
        for op in self.ops:
            if op.phase == FORWARD:
                self._forward_t[op.node_id] = op.t
            else:
                self._backward_t[op.node_id] = op.t

    @property
    def num_steps(self) -> int:
        """Total number of time steps in the schedule."""
        return len(self.ops)

    @property
    def end(self) -> int:
        """The last valid time index."""
        return len(self.ops) - 1

    def forward_time(self, node_id: int) -> int:
        """Time at which ``node_id``'s forward op runs."""
        return self._forward_t[node_id]

    def backward_time(self, node_id: int) -> int:
        """Time at which ``node_id``'s backward op runs.

        Raises:
            KeyError: For the input node, which has no backward op.
        """
        return self._backward_t[node_id]

    def has_backward(self, node_id: int) -> bool:
        """Whether ``node_id`` has a backward op in the schedule."""
        return node_id in self._backward_t

    def is_forward_time(self, t: int) -> bool:
        """Whether time ``t`` falls in the forward pass."""
        return t < self.forward_end
