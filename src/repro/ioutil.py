"""Durable file I/O primitives.

Result files, golden traces and orchestration journals are all consumed
by later runs (regression tracking, conformance gates, sweep resume), so
a crash mid-write must never leave a half-written file behind.  Two
primitives cover every on-disk artefact in the repo:

* :func:`atomic_write_text` — full-file replacement.  The text is
  written to a temporary file in the *same directory* (same filesystem,
  so the final ``os.replace`` is atomic), fsynced, then renamed over the
  destination.  Readers observe either the old contents or the new
  contents, never a prefix.
* :func:`append_jsonl_line` — journal appends.  Each record is encoded
  as one newline-terminated JSON line and pushed with a single
  ``os.write`` on an ``O_APPEND`` descriptor, so a record is either
  fully present or absent; a crash can at worst truncate the final
  line, which journal readers detect and drop (see
  :mod:`repro.orchestrate.journal`).
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path


def atomic_write_text(path, text: str, encoding: str = "utf-8") -> Path:
    """Write ``text`` to ``path`` atomically; returns the path.

    The destination directory is created if missing.  On any failure the
    previous contents of ``path`` are left untouched and the temporary
    file is removed.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "w", encoding=encoding) as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def atomic_write_json(path, data, indent: int = 2,
                      sort_keys: bool = True) -> Path:
    """Serialise ``data`` and :func:`atomic_write_text` it to ``path``."""
    text = json.dumps(data, indent=indent, sort_keys=sort_keys) + "\n"
    return atomic_write_text(path, text)


def append_jsonl_line(path, record: dict) -> None:
    """Append ``record`` to a JSONL file as one atomic write.

    The record must serialise to a single line (``json.dumps`` never
    emits raw newlines).  The write is a single ``os.write`` call on an
    ``O_APPEND`` descriptor followed by fsync, so concurrent appenders
    never interleave bytes and a crash never leaves more than one
    truncated trailing line.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    line = json.dumps(record, sort_keys=True) + "\n"
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, line.encode("utf-8"))
        os.fsync(fd)
    finally:
        os.close(fd)


def read_jsonl(path):
    """Yield records from a JSONL file, dropping a truncated tail.

    A crash mid-append can leave the final line incomplete; any line
    that fails to parse is skipped (only the tail can be affected given
    :func:`append_jsonl_line`'s single-write contract).
    """
    path = Path(path)
    if not path.exists():
        return
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError:
                continue
