"""Shape-static runtime kernel layer: plan cache + workspace arena.

The training graph never changes shape between iterations, so all index
arithmetic for the conv/pool lowering is done once (:mod:`.plan`) and
all scratch buffers are pooled per executor (:mod:`.arena`).  The global
on/off switch lives in :mod:`.config` (env var ``REPRO_KERNEL_PLANS``);
disabling it restores the original per-call Python-loop kernels for A/B
verification.  See the "Runtime kernel layer" section of
``docs/architecture.md``.
"""

from repro.kernels.arena import NULL_ARENA, WorkspaceArena
from repro.kernels.config import (
    plans_enabled,
    plans_override,
    resolve_kernel_state,
    set_plans_enabled,
)
from repro.kernels.plan import (
    KernelPlan,
    clear_plan_cache,
    get_plan,
    plan_cache_stats,
)

__all__ = [
    "KernelPlan",
    "NULL_ARENA",
    "WorkspaceArena",
    "clear_plan_cache",
    "get_plan",
    "plan_cache_stats",
    "plans_enabled",
    "plans_override",
    "resolve_kernel_state",
    "set_plans_enabled",
]
