"""Shape-static runtime kernel layer: plan cache + workspace arena.

The training graph never changes shape between iterations, so all index
arithmetic for the conv/pool lowering is done once (:mod:`.plan`) and
all scratch buffers are pooled per executor (:mod:`.arena`).  The global
on/off switch lives in :mod:`.config` (env var ``REPRO_KERNEL_PLANS``);
disabling it restores the original per-call Python-loop kernels for A/B
verification.  See the "Runtime kernel layer" section of
``docs/architecture.md``.
"""

from repro.kernels.arena import NULL_ARENA, WorkspaceArena
from repro.kernels.autotune import (
    autotune_report,
    clear_selection_cache,
)
from repro.kernels.backends import (
    KernelBackend,
    OpFamily,
    backends_for,
    default_backend,
    get_backend,
    op_families,
    register_backend,
    registered_ops,
    run_codec,
    select_conv_backend,
    select_pool_backend,
    unregister_backend,
)
from repro.kernels.config import (
    backend_override,
    forced_backend,
    plans_enabled,
    plans_override,
    resolve_kernel_state,
    set_forced_backends,
    set_plans_enabled,
)
from repro.kernels.plan import (
    KernelPlan,
    clear_plan_cache,
    get_plan,
    plan_cache_stats,
)

__all__ = [
    "KernelBackend",
    "KernelPlan",
    "NULL_ARENA",
    "OpFamily",
    "WorkspaceArena",
    "autotune_report",
    "backend_override",
    "backends_for",
    "clear_plan_cache",
    "clear_selection_cache",
    "default_backend",
    "forced_backend",
    "get_backend",
    "get_plan",
    "op_families",
    "plan_cache_stats",
    "plans_enabled",
    "plans_override",
    "register_backend",
    "registered_ops",
    "resolve_kernel_state",
    "run_codec",
    "select_conv_backend",
    "select_pool_backend",
    "set_forced_backends",
    "set_plans_enabled",
    "unregister_backend",
]
