"""Workspace arena: a buffer pool keyed by (shape, dtype).

The paper's premise is that a training graph is shape-static, so every
iteration needs exactly the same scratch buffers.  Instead of allocating
them afresh each step (what the seed kernels did), ops *rent* buffers
from an arena owned by the executor and either release them as soon as
their contents are dead, or let them escape (returned gradients, encoded
stashes) until the executor calls :meth:`WorkspaceArena.reset` at the
top of the next step.

Invariants that make reuse safe:

* ``rent`` never hands out a buffer that is currently outstanding — a
  buffer moves back to the free pool only via ``release``/``reset``.
* ``release`` is only valid for the exact array object ``rent`` returned
  (views of it are ignored), so a kernel cannot accidentally free a
  buffer it does not own.
* ``reset`` reclaims everything outstanding at once; callers must only
  invoke it at a point where all tensors from the previous step are dead
  (the executor does so at the start of ``forward``).

A disabled arena degrades to plain ``np.empty`` allocation with no
pooling, which is the behaviour used for the A/B "cache off" mode and
for standalone layer calls outside an executor.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

_Key = Tuple[Tuple[int, ...], str]


class WorkspaceArena:
    """Reusable scratch-buffer pool for the shape-static kernels."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._free: Dict[_Key, List[np.ndarray]] = {}
        #: id(array) -> (pool key, array), for every rented buffer.
        self._outstanding: Dict[int, Tuple[_Key, np.ndarray]] = {}
        self.hits = 0
        self.misses = 0
        #: Optional rent observer (the diagnostics arena-alias checker):
        #: an object with ``on_rent(arr)`` called for every pooled rent.
        #: ``None`` (the default) keeps the rent path observer-free.
        self.observer = None

    @staticmethod
    def _key(shape, dtype) -> _Key:
        return (tuple(int(d) for d in shape), np.dtype(dtype).str)

    def rent(self, shape, dtype=np.float32) -> np.ndarray:
        """Check out an uninitialised buffer of ``shape``/``dtype``."""
        if not self.enabled:
            return np.empty(shape, dtype=dtype)
        key = self._key(shape, dtype)
        stack = self._free.get(key)
        if stack:
            arr = stack.pop()
            self.hits += 1
        else:
            arr = np.empty(shape, dtype=dtype)
            self.misses += 1
        self._outstanding[id(arr)] = (key, arr)
        if self.observer is not None:
            self.observer.on_rent(arr)
        return arr

    def release(self, arr: np.ndarray) -> None:
        """Return a rented buffer whose contents are dead."""
        if not self.enabled or arr is None:
            return
        entry = self._outstanding.pop(id(arr), None)
        if entry is None:
            return  # not a buffer we handed out (e.g. a view) — ignore
        key, base = entry
        self._free.setdefault(key, []).append(base)

    def reset(self) -> None:
        """Reclaim every outstanding buffer (start-of-step boundary)."""
        if not self.enabled:
            return
        for key, arr in self._outstanding.values():
            self._free.setdefault(key, []).append(arr)
        self._outstanding.clear()

    @property
    def outstanding(self) -> int:
        """Number of buffers currently checked out."""
        return len(self._outstanding)

    def pooled_bytes(self) -> int:
        """Total bytes held across free and outstanding buffers."""
        total = sum(a.nbytes for stack in self._free.values() for a in stack)
        total += sum(a.nbytes for _, a in self._outstanding.values())
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WorkspaceArena(enabled={self.enabled}, hits={self.hits}, "
            f"misses={self.misses}, outstanding={self.outstanding})"
        )


#: Shared pass-through arena for calls outside an executor: every rent is
#: a fresh allocation, so standalone layer invocations can never alias.
NULL_ARENA = WorkspaceArena(enabled=False)
