"""Measured, cached backend chooser for the kernel registry.

This extends the plan layer's original GEMM-formulation probe (see
``repro.kernels.plan._gemm_fast``) from "matmul vs einsum" to "which
registered backend runs this signature fastest".  The first time a
``(op, shapes, dtype)`` signature is dispatched, every arm runs the op
forward *and* backward on the live data a few times; the fastest arm
that is **bit-identical to the incumbent default** — output values and
the memory layout of every tensor that escapes to the graph — wins and
is cached for the rest of the process.

Bit-identity (not closeness) is the eligibility bar on purpose: the
default selection must keep every training golden, so an arm whose BLAS
reduction order differs on some signature silently stays off there and
wins where it provably matches.  Arms that only meet their registered
``tolerance`` are never auto-selected; they are reachable via
``REPRO_KERNEL_BACKEND`` or a per-executor override, which bypasses this
module entirely.

Selections persist across processes when ``REPRO_KERNEL_AUTOTUNE_CACHE``
names a JSON file: a persisted choice skips the timing sweep but is
still *verified* against the incumbent on live data before being
trusted — a cache written on one BLAS build cannot smuggle a
non-identical arm onto another.
"""

from __future__ import annotations

import json
import time
import warnings
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.kernels import config
from repro.kernels.backends import (
    ConvBackend,
    KernelBackend,
    PoolBackend,
    backends_for,
    default_backend,
)

#: Timed repetitions per arm during a tuning probe (min is kept).
PROBE_REPS = 2

_chosen: Dict[str, KernelBackend] = {}
_records: Dict[str, dict] = {}
_persisted: Optional[Dict[str, dict]] = None


# ----------------------------------------------------------------------
# Persistence
# ----------------------------------------------------------------------
def _cache_path() -> Optional[Path]:
    return Path(config.autotune_cache_path) if config.autotune_cache_path \
        else None


def _host_signature() -> Dict[str, int]:
    from repro.orchestrate.cores import usable_cores

    return {"usable_cores": usable_cores()}


def _load_persisted() -> Dict[str, dict]:
    global _persisted
    if _persisted is None:
        _persisted = {}
        path = _cache_path()
        if path is not None and path.exists():
            try:
                data = json.loads(path.read_text())
                if isinstance(data, dict):
                    selections = {
                        k: v for k, v in data.get("selections", {}).items()
                        if isinstance(v, dict) and "backend" in v
                    }
                    # Timings depend on the host: a cache tuned on a
                    # multi-core box would silently force losing arms on a
                    # 1-core runner.  Unstamped or mismatched caches are
                    # ignored (forcing a retune at this host's timings).
                    host = data.get("host")
                    if selections and host != _host_signature():
                        warnings.warn(
                            "ignoring autotune cache "
                            f"{path}: host signature {host!r} does not "
                            f"match this host {_host_signature()!r}; "
                            "arms will be re-timed here",
                            RuntimeWarning,
                            stacklevel=3,
                        )
                        selections = {}
                    _persisted = selections
            except (OSError, ValueError):  # corrupt cache: retune
                _persisted = {}
    return _persisted


def _save_persisted() -> None:
    path = _cache_path()
    if path is None:
        return
    from repro.ioutil import atomic_write_json

    merged = dict(_load_persisted())
    for key, record in _records.items():
        merged[key] = {
            "backend": record["backend"],
            "timings_ms": record.get("timings_ms", {}),
        }
    _persisted.update(merged)
    atomic_write_json(
        path,
        {"version": 1, "host": _host_signature(), "selections": merged},
    )


# ----------------------------------------------------------------------
# Probe machinery
# ----------------------------------------------------------------------
def _matches(truth: Dict[str, np.ndarray], out: Dict[str, np.ndarray],
             stride_keys: Sequence[str]) -> bool:
    """Bit-identity check: values everywhere, layout on escaping keys."""
    for key, ref in truth.items():
        got = out.get(key)
        if got is None or got.dtype != ref.dtype or got.shape != ref.shape:
            return False
        if not np.array_equal(got, ref):
            return False
        if key in stride_keys and got.strides != ref.strides:
            return False
    return True


def _select(
    op: str,
    sig: str,
    runner: Callable[[KernelBackend], Dict[str, np.ndarray]],
    stride_keys: Sequence[str],
) -> KernelBackend:
    key = f"{op}|{sig}"
    backend = _chosen.get(key)
    if backend is not None:
        return backend

    incumbent = default_backend(op)
    arms = {b.name: b for b in backends_for(op)}
    truth = runner(incumbent)

    persisted = _load_persisted().get(key)
    if persisted is not None and persisted["backend"] in arms:
        name = persisted["backend"]
        verified = (name == incumbent.name
                    or _matches(truth, runner(arms[name]), stride_keys))
        if verified:
            _chosen[key] = arms[name]
            _records[key] = {
                "op": op, "signature": sig, "backend": name,
                "source": "persisted",
                "timings_ms": persisted.get("timings_ms", {}),
            }
            return arms[name]

    timings: Dict[str, float] = {}
    exact: Dict[str, bool] = {}
    for name, arm in arms.items():
        best = float("inf")
        out: Dict[str, np.ndarray] = {}
        for _ in range(PROBE_REPS):
            t0 = time.perf_counter()
            out = runner(arm)
            best = min(best, time.perf_counter() - t0)
        timings[name] = best
        exact[name] = (name == incumbent.name
                       or _matches(truth, out, stride_keys))
    eligible = [name for name in timings if exact[name]]
    choice = min(eligible, key=lambda name: timings[name])
    _chosen[key] = arms[choice]
    _records[key] = {
        "op": op, "signature": sig, "backend": choice, "source": "tuned",
        "timings_ms": {n: t * 1000 for n, t in sorted(timings.items())},
        "exact": {n: bool(e) for n, e in sorted(exact.items())},
    }
    _save_persisted()
    return arms[choice]


# ----------------------------------------------------------------------
# Per-op entry points
# ----------------------------------------------------------------------
def autotuned_backend(op: str, x, w4, bias, stride, pad) -> ConvBackend:
    """The tuned conv2d arm for this signature (probing on first use)."""
    sig = (f"x{'x'.join(map(str, x.shape))}-"
           f"w{'x'.join(map(str, w4.shape))}-s{stride}p{pad}-"
           f"b{int(bias is not None)}-{x.dtype}")
    key = f"{op}|{sig}"
    backend = _chosen.get(key)
    if backend is not None:
        return backend

    incumbent = default_backend(op)
    y0, _ = incumbent.forward(x, w4, bias, stride, pad, arena=None,
                              want_saved=False)
    dy = y0  # synthetic cotangent with realistic shape and magnitudes

    def runner(arm: ConvBackend) -> Dict[str, np.ndarray]:
        y, saved = arm.forward(x, w4, bias, stride, pad, arena=None,
                               want_saved=True)
        dx, dw = arm.backward(x, w4, dy, stride, pad, arena=None,
                              saved=saved)
        return {"y": y, "dx": dx, "dw": dw}

    return _select(op, sig, runner, stride_keys=("y", "dx"))


def autotuned_pool_backend(x, kh, kw, stride, pad) -> PoolBackend:
    """The tuned maxpool2d arm for this signature."""
    sig = (f"x{'x'.join(map(str, x.shape))}-k{kh}x{kw}-s{stride}p{pad}-"
           f"{x.dtype}")
    key = f"maxpool2d|{sig}"
    backend = _chosen.get(key)
    if backend is not None:
        return backend

    incumbent = default_backend("maxpool2d")
    y0, _ = incumbent.forward(x, kh, kw, stride, pad, arena=None)
    dy = y0

    def runner(arm: PoolBackend) -> Dict[str, np.ndarray]:
        y, argmax = arm.forward(x, kh, kw, stride, pad, arena=None)
        dx = arm.backward(argmax, dy, x.shape, kh, kw, stride, pad,
                          arena=None)
        return {"y": y, "argmax": argmax, "dx": dx}

    return _select("maxpool2d", sig, runner, stride_keys=("y", "dx"))


# ----------------------------------------------------------------------
# Introspection
# ----------------------------------------------------------------------
def autotune_report() -> List[dict]:
    """Per-signature selection records (for ``repro bench`` and tests)."""
    return [dict(_records[key]) for key in sorted(_records)]


def clear_selection_cache() -> None:
    """Drop in-memory selections and force a cache-file reload."""
    global _persisted
    _chosen.clear()
    _records.clear()
    _persisted = None
