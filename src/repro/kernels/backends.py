"""Per-op kernel backend registry.

Every hot op in the runtime — conv lowering, max-pool, and the codec
bit-packing paths — has multiple interchangeable implementations
("arms").  This module is the registry that holds them, the dispatch
that picks one per call site, and the op-family descriptors the
differential tester uses to run *all* arms on shared inputs and demand
agreement.

Arms and their contracts
------------------------

Each backend registers with an explicit numerical contract:

* ``exact=True`` — the arm claims bit-identity with its op's
  ``reference`` arm on every input.  The differential oracle
  (:mod:`repro.verify.differential`) enforces this with
  ``np.array_equal``.
* ``exact=False, tolerance=t`` — the arm only claims a maximum relative
  error of ``t`` (e.g. the fat-GEMM conv, whose BLAS reduction order is
  library-dependent, or the threaded conv, whose per-shard weight
  gradients accumulate in shard order).

The *default selection* is stricter than the registration contract: the
measured chooser (:mod:`repro.kernels.autotune`) only promotes an arm to
default for a signature after a live-data probe shows it bit-identical —
values **and** memory layout of the escaping tensors — to the incumbent
``numpy-plan`` arm, so the training goldens hold no matter which arm
wins.  Forcing an arm via ``REPRO_KERNEL_BACKEND`` bypasses that probe
and accepts the arm's registered contract instead.

Registered ops and arms:

=============  =====================================================
op             arms
=============  =====================================================
conv2d         reference, numpy-plan, blas-fat, threaded
maxpool2d      reference, numpy-plan, reduce
pack_bits      loop, numpy
pack_nibbles   loop, numpy
csr_build      loop, numpy, searchsorted
=============  =====================================================
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.kernels import config
from repro.kernels.arena import NULL_ARENA
from repro.layers.im2col import (
    col2im_reference,
    conv_output_hw,
    im2col_reference,
)


class KernelBackend:
    """Base class: one implementation arm of one op.

    Attributes:
        op: Registry op name (``conv2d``, ``pack_bits``, ...).
        name: Arm name, unique within the op.
        exact: Whether the arm claims bit-identity with the op's
            ``reference`` arm.
        tolerance: Maximum relative error the arm is allowed when
            ``exact`` is False (must be > 0 in that case).
    """

    op: str = ""
    name: str = ""
    exact: bool = True
    tolerance: float = 0.0
    description: str = ""


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_BACKENDS: Dict[str, Dict[str, KernelBackend]] = {}
_DEFAULTS: Dict[str, str] = {}
_warned_forces: set = set()

#: The ground-truth arm name every op must register.
REFERENCE = "reference"


def register_backend(backend: KernelBackend, default: bool = False) -> None:
    """Add an arm to the registry (replacing a same-named one).

    Args:
        backend: The arm; ``backend.op``/``backend.name`` must be set.
        default: Make this arm the op's static default (the incumbent
            the measured chooser starts from and codec dispatch uses).

    Raises:
        ValueError: If the arm declares ``exact=False`` without a
            positive ``tolerance`` — every arm must either claim
            bit-exactness or state its error bound explicitly.
    """
    if not backend.op or not backend.name:
        raise ValueError("backend must define both op and name")
    if not backend.exact and not backend.tolerance > 0:
        raise ValueError(
            f"backend {backend.op}:{backend.name} is not exact but "
            f"declares no tolerance; every arm must either claim "
            f"bit-exactness or state an explicit error bound"
        )
    _BACKENDS.setdefault(backend.op, {})[backend.name] = backend
    if default:
        _DEFAULTS[backend.op] = backend.name


def unregister_backend(op: str, name: str) -> None:
    """Remove an arm (fault-injection tests); unknown names are a no-op."""
    _BACKENDS.get(op, {}).pop(name, None)
    if _DEFAULTS.get(op) == name:
        del _DEFAULTS[op]


def registered_ops() -> List[str]:
    """Sorted op names with at least one registered arm."""
    return sorted(_BACKENDS)


def backends_for(op: str) -> List[KernelBackend]:
    """All arms of ``op``, reference first, then by name."""
    arms = _BACKENDS.get(op, {})
    return sorted(
        arms.values(), key=lambda b: (b.name != REFERENCE, b.name)
    )


def get_backend(op: str, name: str) -> KernelBackend:
    """Fetch one arm; raises ``KeyError`` with the known names."""
    arms = _BACKENDS.get(op, {})
    if name not in arms:
        known = ", ".join(sorted(arms)) or "<none>"
        raise KeyError(f"no backend {name!r} for op {op!r} (known: {known})")
    return arms[name]


def default_backend(op: str) -> KernelBackend:
    """The op's static default arm (the pre-registry incumbent)."""
    return get_backend(op, _DEFAULTS[op])


def _all_arm_names() -> set:
    names: set = set()
    for arms in _BACKENDS.values():
        names.update(arms)
    return names


def resolve_forced_backend(op: str) -> Optional[KernelBackend]:
    """The arm ``REPRO_KERNEL_BACKEND`` (or an override) forces for ``op``.

    Returns ``None`` when nothing is forced or when a *global* (bare)
    name simply is not registered for this op — a global
    ``blas-fat`` force legitimately applies only to conv.  A name that
    no op registers at all warns once per value instead of silently
    falling back.
    """
    name = config.forced_backend(op)
    if name is None:
        return None
    arms = _BACKENDS.get(op, {})
    if name in arms:
        return arms[name]
    if name not in _all_arm_names() and name not in _warned_forces:
        _warned_forces.add(name)
        warnings.warn(
            f"REPRO_KERNEL_BACKEND names unknown backend {name!r} "
            f"(registered: {', '.join(sorted(_all_arm_names()))}); "
            f"falling back to autotuned selection",
            RuntimeWarning,
            stacklevel=2,
        )
    return None


def _resolve_context_backend(op: str, ctx) -> Optional[KernelBackend]:
    """Per-executor override (``GraphExecutor(kernel_backend=...)``)."""
    spec = getattr(ctx, "kernel_backend", None)
    if not spec:
        return None
    arms = _BACKENDS.get(op, {})
    if spec in arms:
        return arms[spec]
    key = ("ctx", op, spec)
    if spec not in _all_arm_names() and key not in _warned_forces:
        _warned_forces.add(key)
        warnings.warn(
            f"executor kernel_backend={spec!r} names no registered "
            f"backend; falling back to autotuned selection",
            RuntimeWarning,
            stacklevel=2,
        )
    return None


# ----------------------------------------------------------------------
# conv2d arms
# ----------------------------------------------------------------------
class ConvBackend(KernelBackend):
    """Interface of a conv2d arm.

    ``forward`` returns ``(y, saved)`` where ``saved`` is an opaque
    per-arm column stash the executor may hand back to ``backward`` (only
    when the layer's input stash is lossless); ``backward`` returns
    ``(dx, dw)``.  The bias add happens inside the arm so layout-changing
    arms can apply it before their output transpose.
    """

    op = "conv2d"

    def forward(self, x, w4, bias, stride, pad, arena=None,
                want_saved=False):
        raise NotImplementedError

    def backward(self, x, w4, dy, stride, pad, arena=None, saved=None):
        raise NotImplementedError


def _conv_geometry(x, w4, stride, pad):
    n, c, h, w = x.shape
    f, _, kh, kw = w4.shape
    oh, ow = conv_output_hw(h, w, kh, kw, stride, pad)
    return n, c, f, kh, kw, oh, ow


class ConvReference(ConvBackend):
    """The original loop-lowered kernels: slice-loop im2col + einsum."""

    name = REFERENCE
    description = "kh*kw slice-loop im2col + einsum contraction"

    def forward(self, x, w4, bias, stride, pad, arena=None,
                want_saved=False):
        n, c, f, kh, kw, oh, ow = _conv_geometry(x, w4, stride, pad)
        wmat = w4.reshape(f, -1)
        cols = im2col_reference(x, kh, kw, stride, pad)
        y = np.einsum("fk,nkp->nfp", wmat, cols, optimize=True)
        if bias is not None:
            y += bias[None, :, None]
        return y.reshape(n, f, oh, ow).astype(np.float32, copy=False), None

    def backward(self, x, w4, dy, stride, pad, arena=None, saved=None):
        n, c, f, kh, kw, oh, ow = _conv_geometry(x, w4, stride, pad)
        wmat = w4.reshape(f, -1)
        dy_mat = dy.reshape(n, f, oh * ow)
        cols = im2col_reference(x, kh, kw, stride, pad)
        dw = np.einsum("nfp,nkp->fk", dy_mat, cols, optimize=True)
        dcols = np.einsum("fk,nfp->nkp", wmat, dy_mat, optimize=True)
        dx = col2im_reference(dcols, x.shape, kh, kw, stride, pad)
        return dx, dw.reshape(w4.shape)


class ConvNumpyPlan(ConvBackend):
    """The plan-cache path: strided window-view gather + probed GEMM."""

    name = "numpy-plan"
    description = ("plan-cache strided im2col/col2im + per-signature "
                   "probed matmul")

    def forward(self, x, w4, bias, stride, pad, arena=None,
                want_saved=False):
        from repro.kernels.plan import gemm_forward, get_plan

        n, c, f, kh, kw, oh, ow = _conv_geometry(x, w4, stride, pad)
        wmat = w4.reshape(f, -1)
        plan = get_plan(x.shape, kh, kw, stride, pad)
        cols = plan.im2col(x, arena)
        y = gemm_forward(wmat, cols)
        if bias is not None:
            y += bias[None, :, None]
        saved = None
        if want_saved:
            saved = cols
        elif arena is not None:
            arena.release(cols)
        return (y.reshape(n, f, oh, ow).astype(np.float32, copy=False),
                saved)

    def backward(self, x, w4, dy, stride, pad, arena=None, saved=None):
        from repro.kernels.plan import gemm_dcols, get_plan

        n, c, f, kh, kw, oh, ow = _conv_geometry(x, w4, stride, pad)
        p = oh * ow
        wmat = w4.reshape(f, -1)
        k = wmat.shape[1]
        dy_mat = dy.reshape(n, f, p)
        plan = get_plan(x.shape, kh, kw, stride, pad)
        cols = saved if saved is not None else plan.im2col(x, arena)
        dw = np.einsum("nfp,nkp->fk", dy_mat, cols, optimize=True)
        if arena is not None:
            arena.release(cols)
            dcols = gemm_dcols(wmat, dy_mat,
                               out=arena.rent((n, k, p), np.float32))
        else:
            dcols = gemm_dcols(wmat, dy_mat)
        dx = plan.col2im(dcols, arena)
        if arena is not None:
            arena.release(dcols)
        return dx, dw.reshape(w4.shape)


_einsum_y_layouts: Dict[Tuple[Tuple[int, ...], Tuple[int, ...]],
                        Tuple[int, ...]] = {}


def _einsum_y_strides(wmat, cols_shape):
    """Strides of the reference einsum's (N, F, P) output.

    Layout-changing arms write their output into a buffer with exactly
    these strides so downstream memory-order reductions see identical
    bits; cached per signature (with a zero-input einsum probe when the
    plan layer has not probed this GEMM yet).
    """
    from repro.kernels import plan as plan_mod

    key = (wmat.shape, cols_shape)
    strides = _einsum_y_layouts.get(key)
    if strides is None:
        probed = plan_mod._gemm_fast.get(("fwd", wmat.shape, cols_shape))
        if probed is not None:
            strides = probed[1]
        else:
            ref = np.einsum(
                "fk,nkp->nfp", wmat,
                np.zeros(cols_shape, wmat.dtype), optimize=True,
            )
            strides = ref.strides
        _einsum_y_layouts[key] = strides
    return strides


def _rent_like_layout(arena, shape, strides, dtype):
    """Arena-rented array of ``shape`` in the memory order implied by
    ``strides`` (the arena analogue of ``plan._empty_like_layout``)."""
    order = sorted(range(len(shape)), key=lambda a: -strides[a])
    buf = arena.rent(tuple(shape[a] for a in order), dtype)
    return buf.transpose(np.argsort(order))


class ConvBlasFat(ConvBackend):
    """Whole-batch fat GEMMs over a transposed (K, N*P) column layout.

    One BLAS call each for the forward product, the weight gradient and
    the column gradient (vs one-GEMM-per-sample in ``numpy-plan`` and a
    batched einsum for dW).  BLAS reduction blocking over the fat axis is
    library-dependent, so the arm registers a tolerance; on the
    benchmark library/shapes it probes bit-identical and the chooser
    promotes it to default.  The forward output is written into a buffer
    laid out exactly like the reference einsum's so downstream
    memory-order reductions (BatchNorm) see identical bits.
    """

    name = "blas-fat"
    exact = False
    tolerance = 1e-5
    description = "single-GEMM whole-batch im2col^T lowering"

    def _y_strides(self, wmat, cols_shape):
        return _einsum_y_strides(wmat, cols_shape)

    def forward(self, x, w4, bias, stride, pad, arena=None,
                want_saved=False):
        from repro.kernels.plan import get_plan

        arena = arena if arena is not None else NULL_ARENA
        n, c, f, kh, kw, oh, ow = _conv_geometry(x, w4, stride, pad)
        p = oh * ow
        wmat = w4.reshape(f, -1)
        k = wmat.shape[1]
        plan = get_plan(x.shape, kh, kw, stride, pad)
        cols_t = plan.im2col_t(x, arena)                     # (K, N*P)
        y2 = arena.rent((f, n * p), np.float32)
        np.matmul(wmat, cols_t, out=y2)
        if bias is not None:
            y2 += bias[:, None]
        y = _rent_like_layout(
            arena, (n, f, p), self._y_strides(wmat, (n, k, p)), np.float32
        )
        np.copyto(y, y2.reshape(f, n, p).transpose(1, 0, 2))
        arena.release(y2)
        saved = None
        if want_saved:
            saved = cols_t
        else:
            arena.release(cols_t)
        return (y.reshape(n, f, oh, ow).astype(np.float32, copy=False),
                saved)

    def backward(self, x, w4, dy, stride, pad, arena=None, saved=None):
        from repro.kernels.plan import get_plan

        arena = arena if arena is not None else NULL_ARENA
        n, c, f, kh, kw, oh, ow = _conv_geometry(x, w4, stride, pad)
        p = oh * ow
        wmat = w4.reshape(f, -1)
        k = wmat.shape[1]
        plan = get_plan(x.shape, kh, kw, stride, pad)
        cols_t = saved if saved is not None else plan.im2col_t(x, arena)
        dy2 = arena.rent((f, n * p), np.float32)
        np.copyto(dy2.reshape(f, n, p),
                  dy.reshape(n, f, p).transpose(1, 0, 2))
        dw = np.matmul(dy2, cols_t.T)                        # (F, K)
        arena.release(cols_t)
        dcols_t = arena.rent((k, n * p), np.float32)
        np.matmul(wmat.T, dy2, out=dcols_t)
        arena.release(dy2)
        dx = plan.col2im_t(dcols_t, arena)
        arena.release(dcols_t)
        return dx, dw.reshape(w4.shape)


class ConvBlasChunk(ConvBackend):
    """Image-tiled im2col + GEMM pipeline with cache-resident workspaces.

    The whole-batch lowerings stream a ``K x N*P`` column matrix through
    DRAM three times per step (gather, forward GEMM, weight-gradient
    GEMM).  This arm never materialises it: the batch is processed in
    image tiles whose column chunk fits in cache, so the gather, the
    GEMMs and the ``col2im`` scatter of one tile all hit hot lines, and
    the only DRAM traffic left is the layer's own tensors.  The chunked
    weight-gradient accumulation changes the reduction order, hence the
    registered tolerance; forward output and input gradient still probe
    bit-identical to the incumbent on most signatures.
    """

    name = "blas-chunk"
    exact = False
    tolerance = 1e-5
    description = "image-tiled im2col+GEMM with cache-resident chunks"

    #: Target bytes of the per-tile column workspace (~L2-to-L3 sized).
    chunk_bytes = 4 << 20

    def _tile_imgs(self, k: int, p: int) -> int:
        return max(1, self.chunk_bytes // (k * p * 4))

    def forward(self, x, w4, bias, stride, pad, arena=None,
                want_saved=False):
        from repro.kernels.plan import get_plan

        arena = arena if arena is not None else NULL_ARENA
        n, c, f, kh, kw, oh, ow = _conv_geometry(x, w4, stride, pad)
        p = oh * ow
        wmat = w4.reshape(f, -1)
        k = wmat.shape[1]
        plan = get_plan(x.shape, kh, kw, stride, pad)
        xp = plan._padded(x, 0.0)
        imgs = self._tile_imgs(k, p)
        y = _rent_like_layout(
            arena, (n, f, p), _einsum_y_strides(wmat, (n, k, p)), np.float32
        )
        cols = arena.rent((k, imgs * p), np.float32)
        u = arena.rent((f, imgs * p), np.float32)
        for n0 in range(0, n, imgs):
            n1 = min(n, n0 + imgs)
            m = n1 - n0
            cv = cols[:, : m * p]
            c6 = cv.reshape(c, kh, kw, m, oh, ow)
            for ki in range(kh):
                for kj in range(kw):
                    np.copyto(
                        c6[:, ki, kj],
                        xp[n0:n1, :, ki:ki + stride * oh:stride,
                           kj:kj + stride * ow:stride].transpose(1, 0, 2, 3),
                    )
            uv = u[:, : m * p]
            np.matmul(wmat, cv, out=uv)
            if bias is not None:
                uv += bias[:, None]
            np.copyto(y[n0:n1], uv.reshape(f, m, p).transpose(1, 0, 2))
        arena.release(u)
        arena.release(cols)
        # Columns are tile-local by design; backward re-gathers from the
        # (cache-hot) input instead of stashing a DRAM-sized matrix.
        return (y.reshape(n, f, oh, ow).astype(np.float32, copy=False),
                None)

    def backward(self, x, w4, dy, stride, pad, arena=None, saved=None):
        from repro.kernels.plan import get_plan

        arena = arena if arena is not None else NULL_ARENA
        n, c, f, kh, kw, oh, ow = _conv_geometry(x, w4, stride, pad)
        h, w = x.shape[2], x.shape[3]
        p = oh * ow
        wmat = w4.reshape(f, -1)
        k = wmat.shape[1]
        plan = get_plan(x.shape, kh, kw, stride, pad)
        xp = plan._padded(x, 0.0)
        hp, wp = h + 2 * pad, w + 2 * pad
        imgs = self._tile_imgs(k, p)
        dy4 = dy.reshape(n, f, p)
        dw = np.zeros((f, k), dtype=np.float32)
        dxp = arena.rent((n, c, hp, wp), np.float32)
        dxp.fill(0.0)
        cols = arena.rent((k, imgs * p), np.float32)
        dyc = arena.rent((f, imgs * p), np.float32)
        dcols = arena.rent((k, imgs * p), np.float32)
        for n0 in range(0, n, imgs):
            n1 = min(n, n0 + imgs)
            m = n1 - n0
            cv = cols[:, : m * p]
            c6 = cv.reshape(c, kh, kw, m, oh, ow)
            for ki in range(kh):
                for kj in range(kw):
                    np.copyto(
                        c6[:, ki, kj],
                        xp[n0:n1, :, ki:ki + stride * oh:stride,
                           kj:kj + stride * ow:stride].transpose(1, 0, 2, 3),
                    )
            dyv = dyc[:, : m * p]
            np.copyto(dyv.reshape(f, m, p),
                      dy4[n0:n1].transpose(1, 0, 2))
            dw += np.matmul(dyv, cv.T)
            dcv = dcols[:, : m * p]
            np.matmul(wmat.T, dyv, out=dcv)
            d6 = dcv.reshape(c, kh, kw, m, oh, ow)
            for ki in range(kh):
                for kj in range(kw):
                    dxp[n0:n1, :, ki:ki + stride * oh:stride,
                        kj:kj + stride * ow:stride] += \
                        d6[:, ki, kj].transpose(1, 0, 2, 3)
        arena.release(dcols)
        arena.release(dyc)
        arena.release(cols)
        dx = dxp
        if pad:
            dx = dxp[:, :, pad:pad + h, pad:pad + w]
        return dx, dw.reshape(w4.shape)


def _im2col_local(x, kh, kw, stride, pad):
    """Stateless im2col for the threaded arm (no shared plan workspaces)."""
    from numpy.lib.stride_tricks import as_strided

    n, c, h, w = x.shape
    oh, ow = conv_output_hw(h, w, kh, kw, stride, pad)
    if pad > 0:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    x = np.ascontiguousarray(x)
    hp, wp = h + 2 * pad, w + 2 * pad
    it = x.itemsize
    view = as_strided(
        x,
        (n, c, kh, kw, oh, ow),
        (c * hp * wp * it, hp * wp * it, wp * it, it,
         stride * wp * it, stride * it),
    )
    return np.ascontiguousarray(view).reshape(n, c * kh * kw, oh * ow)


class ConvThreaded(ConvBackend):
    """Batch-sharded conv over a thread pool (BLAS releases the GIL).

    Each shard runs a stateless im2col + per-shard GEMM; the weight
    gradient accumulates per-shard partial sums in ascending shard
    order, which changes the floating-point reduction order — hence the
    registered tolerance.  Wins only on multi-core hosts; the measured
    chooser keeps it off elsewhere.
    """

    name = "threaded"
    exact = False
    tolerance = 1e-4
    description = "batch-sharded im2col/GEMM over a thread pool"

    def __init__(self, max_workers: Optional[int] = None):
        self._max_workers = max_workers
        self._pool = None

    def _workers(self, n: int) -> int:
        if self._max_workers is None:
            from repro.orchestrate import usable_cores

            self._max_workers = max(1, min(4, usable_cores()))
        return max(1, min(self._max_workers, n))

    def _submit(self, fns):
        if len(fns) == 1:
            fns[0]()
            return
        if self._pool is None:
            from concurrent.futures import ThreadPoolExecutor

            self._pool = ThreadPoolExecutor(
                max_workers=self._max_workers,
                thread_name_prefix="repro-conv",
            )
        for future in [self._pool.submit(fn) for fn in fns]:
            future.result()

    @staticmethod
    def _shards(n: int, workers: int):
        bounds = np.linspace(0, n, workers + 1).astype(int)
        return [slice(int(a), int(b)) for a, b in zip(bounds, bounds[1:])
                if b > a]

    def forward(self, x, w4, bias, stride, pad, arena=None,
                want_saved=False):
        n, c, f, kh, kw, oh, ow = _conv_geometry(x, w4, stride, pad)
        wmat = w4.reshape(f, -1)
        y = np.empty((n, f, oh * ow), np.float32)

        def chunk(sl):
            def run():
                cols = _im2col_local(x[sl], kh, kw, stride, pad)
                np.matmul(wmat, cols, out=y[sl])
            return run

        self._submit([chunk(sl)
                      for sl in self._shards(n, self._workers(n))])
        if bias is not None:
            y += bias[None, :, None]
        return y.reshape(n, f, oh, ow), None

    def backward(self, x, w4, dy, stride, pad, arena=None, saved=None):
        n, c, f, kh, kw, oh, ow = _conv_geometry(x, w4, stride, pad)
        p = oh * ow
        wmat = w4.reshape(f, -1)
        dy_mat = dy.reshape(n, f, p)
        dx = np.empty(x.shape, np.float32)
        shards = self._shards(n, self._workers(n))
        partial_dw: List[Optional[np.ndarray]] = [None] * len(shards)

        def chunk(i, sl):
            def run():
                cols = _im2col_local(x[sl], kh, kw, stride, pad)
                partial_dw[i] = np.einsum(
                    "nfp,nkp->fk", dy_mat[sl], cols, optimize=True
                )
                dcols = np.einsum(
                    "fk,nfp->nkp", wmat, dy_mat[sl], optimize=True
                )
                dx[sl] = col2im_reference(dcols, x[sl].shape, kh, kw,
                                          stride, pad)
            return run

        self._submit([chunk(i, sl) for i, sl in enumerate(shards)])
        dw = partial_dw[0]
        for part in partial_dw[1:]:
            dw = dw + part
        return dx, dw.reshape(w4.shape)


# ----------------------------------------------------------------------
# maxpool2d arms
# ----------------------------------------------------------------------
class PoolBackend(KernelBackend):
    """Interface of a maxpool2d arm: forward -> (y, argmax), backward
    scatters ``dy`` through the argmax map."""

    op = "maxpool2d"

    def forward(self, x, kh, kw, stride, pad, arena=None):
        raise NotImplementedError

    def backward(self, argmax, dy, x_shape, kh, kw, stride, pad,
                 arena=None):
        raise NotImplementedError


class PoolReference(PoolBackend):
    """The original loop-lowered formulation (pad, slice-loop, scatter)."""

    name = REFERENCE
    description = "slice-loop im2col + multi-index scatter"

    def forward(self, x, kh, kw, stride, pad, arena=None):
        n, c, h, w = x.shape
        oh, ow = conv_output_hw(h, w, kh, kw, stride, pad)
        if pad > 0:
            x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)),
                       mode="constant", constant_values=-np.inf)
        cols = im2col_reference(x, kh, kw, stride, 0)
        cols = cols.reshape(n, c, kh * kw, oh * ow)
        argmax = cols.argmax(axis=2).astype(np.uint8)
        y = np.take_along_axis(
            cols, argmax[:, :, None, :].astype(np.intp), axis=2
        )[:, :, 0, :].reshape(n, c, oh, ow)
        return (y.astype(np.float32, copy=False),
                argmax.reshape(n, c, oh, ow))

    def backward(self, argmax, dy, x_shape, kh, kw, stride, pad,
                 arena=None):
        n, c, h, w = x_shape
        oh, ow = conv_output_hw(h, w, kh, kw, stride, pad)
        hp, wp = h + 2 * pad, w + 2 * pad
        dx = np.zeros((n, c, hp, wp), dtype=dy.dtype)
        oy, ox = np.meshgrid(np.arange(oh), np.arange(ow), indexing="ij")
        base_i = (oy * stride).ravel()
        base_j = (ox * stride).ravel()
        amax = argmax.reshape(n, c, oh * ow)
        di = amax // kw
        dj = amax % kw
        rows = base_i[None, None, :] + di
        colsj = base_j[None, None, :] + dj
        nn = np.arange(n)[:, None, None]
        cc = np.arange(c)[None, :, None]
        np.add.at(dx, (nn, cc, rows, colsj), dy.reshape(n, c, oh * ow))
        if pad > 0:
            dx = dx[:, :, pad:pad + h, pad:pad + w]
        return dx


class PoolNumpyPlan(PoolBackend):
    """The plan-cache kernels (strided gather + flat 1-D scatter)."""

    name = "numpy-plan"
    description = "plan-cache strided gather + flat argmax scatter"

    def forward(self, x, kh, kw, stride, pad, arena=None):
        from repro.kernels.plan import get_plan

        plan = get_plan(x.shape, kh, kw, stride, pad)
        return plan.maxpool_forward(x, arena)

    def backward(self, argmax, dy, x_shape, kh, kw, stride, pad,
                 arena=None):
        from repro.kernels.plan import get_plan

        plan = get_plan(x_shape, kh, kw, stride, pad)
        return plan.maxpool_backward(argmax, dy, arena)


class PoolReduce(PoolBackend):
    """Plan-based forward with a max *reduction* for the values.

    ``cols.max(axis=slot)`` replaces the ``take_along_axis`` gather —
    the maximum value is by definition the element the argmax picks, so
    values, ties and the argmax map are all bit-identical while one
    indexed gather disappears from the hot path.
    """

    name = "reduce"
    description = "plan gather + slot-axis max reduction"

    def forward(self, x, kh, kw, stride, pad, arena=None):
        from repro.kernels.plan import get_plan

        arena = arena if arena is not None else NULL_ARENA
        plan = get_plan(x.shape, kh, kw, stride, pad)
        n, c, h, w = plan.shape
        disjoint = (
            plan.pad == 0
            and plan.stride == plan.kh == plan.kw
            and h == plan.oh * plan.kh
            and w == plan.ow * plan.kw
        )
        if disjoint:
            rented = arena.rent((n, c, plan.P, plan.S), x.dtype)
            v = x.reshape(n, c, plan.oh, plan.kh, plan.ow, plan.kw)
            cols = rented.reshape(n, c, plan.oh, plan.ow, plan.kh, plan.kw)
            np.copyto(cols, v.transpose(0, 1, 2, 4, 3, 5))
            cols = rented
            argmax = cols.argmax(axis=3).astype(np.uint8)
            y = cols.max(axis=3)
        else:
            rented = plan.im2col(x, arena, pad_value=-np.inf)
            cols = rented.reshape(n, c, plan.S, plan.P)
            argmax = cols.argmax(axis=2).astype(np.uint8)
            y = cols.max(axis=2)
        arena.release(rented)
        return (
            y.reshape(n, c, plan.oh, plan.ow).astype(np.float32, copy=False),
            argmax.reshape(n, c, plan.oh, plan.ow),
        )

    def backward(self, argmax, dy, x_shape, kh, kw, stride, pad,
                 arena=None):
        from repro.kernels.plan import get_plan

        plan = get_plan(x_shape, kh, kw, stride, pad)
        return plan.maxpool_backward(argmax, dy, arena)


# ----------------------------------------------------------------------
# Codec arms (pack_bits / pack_nibbles / csr_build)
# ----------------------------------------------------------------------
@dataclass
class FnBackend(KernelBackend):
    """A stateless functional arm wrapping one callable."""

    op: str = ""
    name: str = ""
    fn: Callable = None
    exact: bool = True
    tolerance: float = 0.0
    description: str = ""

    def run(self, *args):
        return self.fn(*args)


def _pack_bits_loop(flat: np.ndarray) -> np.ndarray:
    """Bit-position loop: 8 shift-or passes (the pre-registry fallback)."""
    out = np.zeros((flat.size + 7) // 8, np.uint8)
    for b in range(8):
        part = flat[b::8]
        out[: part.size] |= part.astype(np.uint8) << np.uint8(b)
    return out


def _pack_bits_numpy(flat: np.ndarray) -> np.ndarray:
    return np.packbits(flat, bitorder="little")


def _pack_nibbles_loop(flat: np.ndarray) -> np.ndarray:
    out = np.zeros((flat.size + 1) // 2, np.uint8)
    for offset, shift in ((0, 0), (1, 4)):
        part = flat[offset::2]
        out[: part.size] |= part << np.uint8(shift)
    return out


def _pack_nibbles_numpy(flat: np.ndarray) -> np.ndarray:
    n = flat.size
    npairs = (n + 1) // 2
    out = np.zeros(npairs, np.uint8)
    out[:] = flat[0::2]
    half = n // 2
    if half:
        out[:half] |= flat[1::2] << np.uint8(4)
    return out


def _csr_rows(n: int, cols: int) -> int:
    return max(1, -(-n // cols))


def _csr_index_dtype(cols: int):
    return np.uint8 if cols <= 256 else np.int32


def _csr_build_loop(flat: np.ndarray, cols: int):
    """Row-loop CSR build (one flatnonzero per row)."""
    n_rows = _csr_rows(flat.size, cols)
    row_ptr = np.zeros(n_rows + 1, np.int32)
    nz_parts, col_parts = [], []
    for r in range(n_rows):
        seg_nz = np.flatnonzero(flat[r * cols:(r + 1) * cols])
        nz_parts.append(seg_nz + r * cols)
        col_parts.append(seg_nz)
        row_ptr[r + 1] = row_ptr[r] + seg_nz.size
    nz = np.concatenate(nz_parts).astype(np.int64, copy=False)
    col_idx = np.concatenate(col_parts).astype(_csr_index_dtype(cols))
    return nz, col_idx, row_ptr


def _csr_build_numpy(flat: np.ndarray, cols: int):
    """Vectorised build: flatnonzero + divmod + bincount/cumsum."""
    n_rows = _csr_rows(flat.size, cols)
    nz = np.flatnonzero(flat).astype(np.int64, copy=False)
    rows, col_idx = np.divmod(nz, cols)
    col_idx = col_idx.astype(_csr_index_dtype(cols))
    row_ptr = np.zeros(n_rows + 1, np.int32)
    counts = np.bincount(rows, minlength=n_rows)
    np.cumsum(counts, out=row_ptr[1:])
    return nz, col_idx, row_ptr


def _csr_build_searchsorted(flat: np.ndarray, cols: int):
    """Vectorised build with a searchsorted row pointer.

    ``flatnonzero`` yields ascending positions, so the row index array
    is sorted and ``row_ptr[i] == count of nonzeros in rows < i`` is one
    binary-search sweep instead of a bincount over all rows.
    """
    n_rows = _csr_rows(flat.size, cols)
    nz = np.flatnonzero(flat).astype(np.int64, copy=False)
    rows = nz // cols
    col_idx = (nz - rows * cols).astype(_csr_index_dtype(cols))
    row_ptr = np.zeros(n_rows + 1, np.int32)
    row_ptr[1:] = np.searchsorted(rows, np.arange(1, n_rows + 1))
    return nz, col_idx, row_ptr


def run_codec(op: str, *args):
    """Dispatch one codec op through its active arm.

    Codec calls are tiny and frequent, so they use the static default
    (or a forced arm) rather than the measured chooser — the registry
    still exposes every arm to the differential oracle.
    """
    backend = resolve_forced_backend(op) or default_backend(op)
    return backend.run(*args)


# ----------------------------------------------------------------------
# Op families: shared-input descriptors for the differential tester
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class OpFamily:
    """How to drive every arm of one op on one shared input set.

    ``make_inputs(rng)`` draws a small randomized input tuple;
    ``run(backend, inputs)`` executes one arm end-to-end (forward *and*
    backward for the layer ops) and returns named output arrays for
    comparison.
    """

    op: str
    make_inputs: Callable[[np.random.Generator], tuple]
    run: Callable[[KernelBackend, tuple], Dict[str, np.ndarray]]
    #: Arm name treated as ground truth by the differential oracle.
    reference: str = REFERENCE


def _make_conv_inputs(rng: np.random.Generator) -> tuple:
    n = int(rng.integers(1, 3))
    c = int(rng.integers(1, 4))
    f = int(rng.integers(1, 5))
    kh = kw = int(rng.choice([1, 2, 3]))
    stride = int(rng.choice([1, 2]))
    pad = int(rng.integers(0, 2))
    h = int(rng.integers(max(2, kh), 8))
    w = int(rng.integers(max(2, kw), 8))
    if h + 2 * pad < kh or w + 2 * pad < kw:  # pragma: no cover - guarded
        h, w = kh, kw
    x = rng.normal(0, 1, (n, c, h, w)).astype(np.float32)
    w4 = rng.normal(0, 0.5, (f, c, kh, kw)).astype(np.float32)
    bias = (rng.normal(0, 0.5, f).astype(np.float32)
            if rng.random() < 0.5 else None)
    oh, ow = conv_output_hw(h, w, kh, kw, stride, pad)
    dy = rng.normal(0, 1, (n, f, oh, ow)).astype(np.float32)
    return x, w4, bias, dy, stride, pad


def _run_conv(backend: ConvBackend, inputs: tuple) -> Dict[str, np.ndarray]:
    x, w4, bias, dy, stride, pad = inputs
    y, saved = backend.forward(x, w4, bias, stride, pad, arena=None,
                               want_saved=True)
    dx, dw = backend.backward(x, w4, dy, stride, pad, arena=None,
                              saved=saved)
    return {"y": y, "dx": dx, "dw": dw}


def _make_pool_inputs(rng: np.random.Generator) -> tuple:
    n = int(rng.integers(1, 3))
    c = int(rng.integers(1, 4))
    kh = kw = int(rng.choice([2, 3]))
    stride = int(rng.choice([1, 2, kh]))
    pad = int(rng.integers(0, min(2, (kh + 1) // 2)))
    h = int(rng.integers(kh, 9))
    w = int(rng.integers(kw, 9))
    x = rng.normal(0, 1, (n, c, h, w)).astype(np.float32)
    # Plant exact ties so tie-breaking order is part of the contract.
    if h >= 2:
        x[:, :, 0, :] = x[:, :, 1, :]
    oh, ow = conv_output_hw(h, w, kh, kw, stride, pad)
    dy = rng.normal(0, 1, (n, c, oh, ow)).astype(np.float32)
    return x, dy, kh, kw, stride, pad


def _run_pool(backend: PoolBackend, inputs: tuple) -> Dict[str, np.ndarray]:
    x, dy, kh, kw, stride, pad = inputs
    y, argmax = backend.forward(x, kh, kw, stride, pad, arena=None)
    dx = backend.backward(argmax, dy, x.shape, kh, kw, stride, pad,
                          arena=None)
    return {"y": y, "argmax": argmax, "dx": dx}


def _make_pack_bits_inputs(rng: np.random.Generator) -> tuple:
    size = int(rng.choice([0, 1, 7, 31, 32, 33, int(rng.integers(1, 400))]))
    return ((rng.random(size) < 0.5),)


def _run_fn(backend: FnBackend, inputs: tuple) -> Dict[str, np.ndarray]:
    out = backend.run(*inputs)
    if isinstance(out, tuple):
        return {f"out{i}": arr for i, arr in enumerate(out)}
    return {"out": out}


def _make_pack_nibbles_inputs(rng: np.random.Generator) -> tuple:
    size = int(rng.choice([0, 1, 2, 9, int(rng.integers(1, 300))]))
    return (rng.integers(0, 16, size).astype(np.uint8),)


def _make_csr_inputs(rng: np.random.Generator) -> tuple:
    size = int(rng.choice([0, 1, int(rng.integers(1, 900))]))
    flat = np.where(rng.random(size) < 0.7, 0.0,
                    rng.normal(0, 2, size)).astype(np.float32)
    cols = int(rng.choice([7, 32, 256, 300]))
    return flat, cols


OP_FAMILIES: Tuple[OpFamily, ...] = (
    OpFamily("conv2d", _make_conv_inputs, _run_conv),
    OpFamily("maxpool2d", _make_pool_inputs, _run_pool),
    OpFamily("pack_bits", _make_pack_bits_inputs, _run_fn, reference="loop"),
    OpFamily("pack_nibbles", _make_pack_nibbles_inputs, _run_fn,
             reference="loop"),
    OpFamily("csr_build", _make_csr_inputs, _run_fn, reference="loop"),
)


def op_families() -> Tuple[OpFamily, ...]:
    """The differential tester's op-family table."""
    return OP_FAMILIES


# ----------------------------------------------------------------------
# Dispatch entry points for the layers
# ----------------------------------------------------------------------
def select_conv_backend(ctx, x, w4, bias, stride, pad) -> ConvBackend:
    """The conv2d arm for this call: ctx override > env force > chooser."""
    forced = _resolve_context_backend("conv2d", ctx)
    if forced is None:
        forced = resolve_forced_backend("conv2d")
    if forced is not None:
        return forced
    from repro.kernels.autotune import autotuned_backend

    return autotuned_backend("conv2d", x, w4, bias, stride, pad)


def select_pool_backend(ctx, x, kh, kw, stride, pad) -> PoolBackend:
    """The maxpool2d arm for this call (same precedence as conv)."""
    forced = _resolve_context_backend("maxpool2d", ctx)
    if forced is None:
        forced = resolve_forced_backend("maxpool2d")
    if forced is not None:
        return forced
    from repro.kernels.autotune import autotuned_pool_backend

    return autotuned_pool_backend(x, kh, kw, stride, pad)


# ----------------------------------------------------------------------
# Built-in registrations
# ----------------------------------------------------------------------
register_backend(ConvReference())
register_backend(ConvNumpyPlan(), default=True)
register_backend(ConvBlasFat())
register_backend(ConvBlasChunk())
register_backend(ConvThreaded())

register_backend(PoolReference())
register_backend(PoolNumpyPlan(), default=True)
register_backend(PoolReduce())

register_backend(FnBackend("pack_bits", "loop", _pack_bits_loop,
                           description="8-pass shift-or loop"))
register_backend(FnBackend("pack_bits", "numpy", _pack_bits_numpy,
                           description="np.packbits(little-endian)"),
                 default=True)
register_backend(FnBackend("pack_nibbles", "loop", _pack_nibbles_loop,
                           description="2-pass shift-or loop"))
register_backend(FnBackend("pack_nibbles", "numpy", _pack_nibbles_numpy,
                           description="strided even/odd interleave"),
                 default=True)
register_backend(FnBackend("csr_build", "loop", _csr_build_loop,
                           description="per-row flatnonzero loop"))
register_backend(FnBackend("csr_build", "numpy", _csr_build_numpy,
                           description="divmod + bincount/cumsum"),
                 default=True)
register_backend(FnBackend("csr_build", "searchsorted",
                           _csr_build_searchsorted,
                           description="sorted-rows binary-search row_ptr"))
