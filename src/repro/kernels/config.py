"""Global switches for the runtime kernel layer.

Two environment variables control the layer; both are validated at
import time and unknown values produce a ``RuntimeWarning`` instead of a
silent fallback:

* ``REPRO_KERNEL_PLANS`` — boolean; ``0/false/off/no`` falls back to the
  original per-call Python-loop kernels (the A/B baseline), anything in
  ``1/true/on/yes`` (the default) enables the shape-static plan cache +
  workspace arena and, with it, the multi-backend registry.
* ``REPRO_KERNEL_BACKEND`` — forces the registry's backend selection
  instead of the measured autotuner.  Accepts a bare backend name
  (``reference``, ``numpy-plan``, ``blas-fat``, ``threaded``, ``numpy``,
  ``loop``, ``searchsorted``) applied to every op that registers it, or
  comma-separated ``op=name`` pairs (``conv2d=blas-fat,maxpool2d=reference``)
  for per-op control.  ``auto`` (or unset) keeps the autotuner in charge.
  Names are validated lazily against the live registry — see
  :func:`repro.kernels.backends.resolve_forced_backend`.

A third, optional, variable ``REPRO_KERNEL_AUTOTUNE_CACHE`` points the
measured backend chooser at a JSON file for cross-process persistence of
per-signature selections (see :mod:`repro.kernels.autotune`).

This module is import-cycle-free on purpose: layers import it directly
(``repro.kernels.config``) while the heavier plan machinery imports the
layer helpers.
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager
from typing import Dict, Optional, Tuple

_FALSEY = ("0", "false", "off", "no")
_TRUTHY = ("1", "true", "on", "yes")


def _parse_bool_env(name: str, default: bool) -> bool:
    """Validated boolean env parse: warn (once, at import) on unknown."""
    raw = os.environ.get(name)
    if raw is None:
        return default
    value = raw.strip().lower()
    if value in _FALSEY:
        return False
    if value in _TRUTHY:
        return True
    warnings.warn(
        f"{name}={raw!r} is not a recognised boolean "
        f"({'/'.join(_TRUTHY)} or {'/'.join(_FALSEY)}); "
        f"using the default ({'on' if default else 'off'})",
        RuntimeWarning,
        stacklevel=2,
    )
    return default


def _parse_backend_env(raw: Optional[str]) -> Dict[str, str]:
    """Parse ``REPRO_KERNEL_BACKEND`` into an ``{op_or_*: name}`` map.

    A bare name maps from ``"*"`` (all ops); ``op=name`` pairs scope the
    force to one op.  ``auto``/empty clears the force.  Syntax is
    validated here; *name* validity is checked against the registry at
    dispatch time (the registry may not be imported yet).
    """
    forced: Dict[str, str] = {}
    if raw is None:
        return forced
    for part in raw.split(","):
        part = part.strip()
        if not part or part.lower() == "auto":
            continue
        if "=" in part:
            op, _, name = part.partition("=")
            op, name = op.strip(), name.strip()
            if not op or not name:
                warnings.warn(
                    f"REPRO_KERNEL_BACKEND entry {part!r} is malformed "
                    f"(expected op=name); ignoring it",
                    RuntimeWarning,
                    stacklevel=2,
                )
                continue
            forced[op] = name
        else:
            forced["*"] = part
    return forced


_enabled: bool = _parse_bool_env("REPRO_KERNEL_PLANS", True)
_forced_backends: Dict[str, str] = _parse_backend_env(
    os.environ.get("REPRO_KERNEL_BACKEND")
)
#: Optional JSON path for cross-process autotune persistence.
autotune_cache_path: Optional[str] = (
    os.environ.get("REPRO_KERNEL_AUTOTUNE_CACHE") or None
)


def plans_enabled() -> bool:
    """Whether the shape-static kernel plans are globally enabled."""
    return _enabled


def set_plans_enabled(flag: bool) -> bool:
    """Set the global switch; returns the previous value."""
    global _enabled
    previous = _enabled
    _enabled = bool(flag)
    return previous


@contextmanager
def plans_override(flag: bool):
    """Temporarily force the global switch (for A/B tests)."""
    previous = set_plans_enabled(flag)
    try:
        yield
    finally:
        set_plans_enabled(previous)


def forced_backend(op: str) -> Optional[str]:
    """The backend name ``REPRO_KERNEL_BACKEND`` forces for ``op``.

    Per-op entries win over a bare (``*``) name; ``None`` means the
    measured chooser decides.
    """
    return _forced_backends.get(op, _forced_backends.get("*"))


def set_forced_backends(forced: Optional[Dict[str, str]]) -> Dict[str, str]:
    """Replace the forced-backend map (tests/benchmarks); returns the old."""
    global _forced_backends
    previous = _forced_backends
    _forced_backends = dict(forced or {})
    return previous


@contextmanager
def backend_override(spec: Optional[str]):
    """Temporarily apply a ``REPRO_KERNEL_BACKEND``-style spec string."""
    previous = set_forced_backends(_parse_backend_env(spec))
    try:
        yield
    finally:
        set_forced_backends(previous)


def resolve_kernel_state(ctx) -> Tuple[bool, Optional[object]]:
    """Resolve (enabled, arena) for a layer call.

    An executor-provided :class:`~repro.layers.base.OpContext` may carry
    ``kernels_enabled`` and ``arena`` attributes; standalone contexts
    (gradient-check harness, ``ctx=None`` inference) fall back to the
    global switch and a fresh-allocation arena.
    """
    enabled = getattr(ctx, "kernels_enabled", None)
    if enabled is None:
        enabled = _enabled
    arena = getattr(ctx, "arena", None) if enabled else None
    return bool(enabled), arena
