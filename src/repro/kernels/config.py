"""Global switch for the shape-static kernel plan layer.

The plan cache + workspace arena are on by default; set the environment
variable ``REPRO_KERNEL_PLANS=0`` (or call :func:`set_plans_enabled`)
to fall back to the original per-call Python-loop kernels.  The switch
exists so the two implementations can be A/B-verified against each
other — the executor also takes a per-instance ``use_kernel_plans``
constructor argument for side-by-side comparisons in one process.

This module is import-cycle-free on purpose: layers import it directly
(``repro.kernels.config``) while the heavier plan machinery imports the
layer helpers.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Optional, Tuple

_FALSEY = ("0", "false", "off", "no")

_enabled: bool = (
    os.environ.get("REPRO_KERNEL_PLANS", "1").strip().lower() not in _FALSEY
)


def plans_enabled() -> bool:
    """Whether the shape-static kernel plans are globally enabled."""
    return _enabled


def set_plans_enabled(flag: bool) -> bool:
    """Set the global switch; returns the previous value."""
    global _enabled
    previous = _enabled
    _enabled = bool(flag)
    return previous


@contextmanager
def plans_override(flag: bool):
    """Temporarily force the global switch (for A/B tests)."""
    previous = set_plans_enabled(flag)
    try:
        yield
    finally:
        set_plans_enabled(previous)


def resolve_kernel_state(ctx) -> Tuple[bool, Optional[object]]:
    """Resolve (enabled, arena) for a layer call.

    An executor-provided :class:`~repro.layers.base.OpContext` may carry
    ``kernels_enabled`` and ``arena`` attributes; standalone contexts
    (gradient-check harness, ``ctx=None`` inference) fall back to the
    global switch and a fresh-allocation arena.
    """
    enabled = getattr(ctx, "kernels_enabled", None)
    if enabled is None:
        enabled = _enabled
    arena = getattr(ctx, "arena", None) if enabled else None
    return bool(enabled), arena
