"""Shape-static kernel plans for the conv/pool lowering.

Gist's Schedule Builder exploits the fact that a training graph is
static: all analysis happens once and every iteration replays the same
plan.  This module applies the same idea to the NumPy *compute* kernels.
A :class:`KernelPlan` is built once per ``(input_shape, kh, kw, stride,
pad)`` signature and precomputes the flat gather/scatter geometry so the
per-iteration kernels contain no Python loops at all:

* ``im2col`` becomes a single C-level copy through a precomputed
  six-axis strided *window view* of the padded input — one structured
  gather covering all ``kh*kw`` slots at once;
* ``col2im`` writes the column gradient through a precomputed strided
  *slot view* of an ``(N, kh*kw, C*HP*WP)`` workspace (each window slot
  lands in its own plane, so no two writes collide) and then reduces
  over the slot axis;
* max-pool's backward pass scatters through precomputed flat indices —
  the plan caches the per-channel window-corner offsets, so the
  per-step work is three integer ops and one 1-D ``np.add.at``.

Accumulation order is chosen so the per-element floating-point sums are
*identical* to the reference Python-loop kernels: ``col2im`` reduces
slots in ``(ki, kj)`` ascending order (the reference's loop order) and
the flat pool scatter applies duplicates in the same element order as
the reference's multi-index ``np.add.at``.  The planned kernels are
therefore bit-identical to the unplanned ones, not merely close — the
property tests assert this.

Plans are cached process-wide; :func:`clear_plan_cache` empties the
cache and :func:`plan_cache_stats` reports hit/miss counts.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np
from numpy.lib.stride_tricks import as_strided

from repro.kernels.arena import NULL_ARENA, WorkspaceArena
from repro.layers.im2col import conv_output_hw

Shape4 = Tuple[int, int, int, int]


class KernelPlan:
    """Precomputed gather/scatter geometry for one conv/pool signature."""

    def __init__(self, shape: Shape4, kh: int, kw: int, stride: int, pad: int):
        n, c, h, w = (int(d) for d in shape)
        oh, ow = conv_output_hw(h, w, kh, kw, stride, pad)
        self.shape: Shape4 = (n, c, h, w)
        self.kh, self.kw = int(kh), int(kw)
        self.stride, self.pad = int(stride), int(pad)
        self.oh, self.ow = oh, ow
        self.hp, self.wp = h + 2 * pad, w + 2 * pad
        #: S window slots, K column rows, P output positions, Q padded cells.
        self.S = self.kh * self.kw
        self.K = c * self.S
        self.P = oh * ow
        self.Q = c * self.hp * self.wp
        self._pool_base: Optional[np.ndarray] = None
        self._batch_offsets: Optional[np.ndarray] = None
        # Plan-owned persistent workspaces (see _padded / col2im): their
        # static cells are initialised exactly once, per dtype signature.
        self._pad_ws: Dict[Tuple[np.dtype, float], np.ndarray] = {}
        self._slot_ws: Dict[np.dtype, np.ndarray] = {}

    # ------------------------------------------------------------------
    # One-time geometry (never on the per-step hot path)
    # ------------------------------------------------------------------
    def _window_view(self, xp: np.ndarray) -> np.ndarray:
        """(N, C, kh, kw, OH, OW) read view of the padded input.

        ``view[n, c, ki, kj, oy, ox] == xp[n, c, ki + oy*stride,
        kj + ox*stride]`` — copying it out materialises the full column
        matrix in one strided pass.
        """
        n, c, _, _ = self.shape
        it = xp.itemsize
        return as_strided(
            xp,
            (n, c, self.kh, self.kw, self.oh, self.ow),
            (
                c * self.hp * self.wp * it,
                self.hp * self.wp * it,
                self.wp * it,
                it,
                self.stride * self.wp * it,
                self.stride * it,
            ),
        )

    def _slot_view(self, g: np.ndarray) -> np.ndarray:
        """(N, C, kh, kw, OH, OW) write view into the (N, S, Q) workspace.

        Element ``[n, c, ki, kj, oy, ox]`` aliases ``g[n, ki*kw + kj,
        flat(c, ki + oy*stride, kj + ox*stride)]`` — every column-matrix
        entry lands in its own slot plane at the padded-input cell it
        came from, so the strided write never self-collides and the slot
        axis holds exactly the per-slot partial sums of ``col2im``.
        """
        it = g.itemsize
        n, c, _, _ = self.shape
        return as_strided(
            g,
            (n, c, self.kh, self.kw, self.oh, self.ow),
            (
                self.S * self.Q * it,
                self.hp * self.wp * it,
                (self.kw * self.Q + self.wp) * it,
                (self.Q + 1) * it,
                self.stride * self.wp * it,
                self.stride * it,
            ),
        )

    @property
    def pool_base(self) -> np.ndarray:
        """(C*P,) flat padded index of every pool window's top-left cell."""
        if self._pool_base is None:
            c = self.shape[1]
            corner = (
                (np.arange(self.oh) * self.stride)[:, None] * self.wp
                + np.arange(self.ow) * self.stride
            ).ravel()
            self._pool_base = np.ascontiguousarray(
                (
                    np.arange(c)[:, None] * (self.hp * self.wp)
                    + corner[None, :]
                ).reshape(c * self.P),
                dtype=np.intp,
            )
        return self._pool_base

    @property
    def batch_offsets(self) -> np.ndarray:
        """(N, 1) flat offsets of each sample in an (N, Q) buffer."""
        if self._batch_offsets is None:
            n = self.shape[0]
            self._batch_offsets = (np.arange(n, dtype=np.intp) * self.Q)[
                :, None
            ]
        return self._batch_offsets

    # ------------------------------------------------------------------
    # Per-step kernels: no Python loops, arena-rented workspaces
    # ------------------------------------------------------------------
    def _padded(self, x: np.ndarray, pad_value: float) -> np.ndarray:
        """Pad into the plan's persistent padded workspace.

        The border carries the same ``pad_value`` on every call, so it is
        written exactly once per ``(dtype, pad_value)``; each call only
        copies the interior.  The buffer never escapes this module — the
        kernels copy out of it before returning.

        The result is always C-contiguous: :meth:`_window_view` builds its
        strides from the shape alone, so a non-contiguous input (e.g. an
        einsum output that is a transposed view) must be compacted first.
        """
        if self.pad == 0:
            return np.ascontiguousarray(x)
        n, c, h, w = self.shape
        pad = self.pad
        key = (np.dtype(x.dtype), float(pad_value))
        xp = self._pad_ws.get(key)
        if xp is None:
            xp = np.full((n, c, self.hp, self.wp), pad_value, dtype=x.dtype)
            self._pad_ws[key] = xp
        xp[:, :, pad:pad + h, pad:pad + w] = x
        return xp

    def im2col(
        self,
        x: np.ndarray,
        arena: Optional[WorkspaceArena] = None,
        pad_value: float = 0.0,
    ) -> np.ndarray:
        """Unfold ``x`` into columns (N, C*kh*kw, OH*OW) in one copy.

        The returned buffer is rented from ``arena``; the caller owns it
        and should ``release`` it once the columns are dead.
        """
        arena = arena if arena is not None else NULL_ARENA
        n, c, _, _ = self.shape
        src = self._padded(x, pad_value)
        out = arena.rent((n, self.K, self.P), x.dtype)
        out6 = out.reshape(n, c, self.kh, self.kw, self.oh, self.ow)
        np.copyto(out6, self._window_view(src))
        return out

    def col2im(
        self, cols: np.ndarray, arena: Optional[WorkspaceArena] = None
    ) -> np.ndarray:
        """Adjoint of :meth:`im2col`: strided slot scatter + slot sum.

        Returns an (N, C, H, W) array backed by an arena buffer (a view of
        one when ``pad > 0``); the caller owns it until the next reset.
        """
        arena = arena if arena is not None else NULL_ARENA
        n, c, h, w = self.shape
        cols6 = np.ascontiguousarray(cols).reshape(
            n, c, self.kh, self.kw, self.oh, self.ow
        )
        # The slot planes cover the same static cell set on every call,
        # so the never-covered cells only need zeroing once — the
        # persistent workspace replaces a per-step fill of S*Q elements.
        dt = np.dtype(cols.dtype)
        g = self._slot_ws.get(dt)
        if g is None:
            g = np.zeros((n, self.S, self.Q), dtype=dt)
            self._slot_ws[dt] = g
        np.copyto(self._slot_view(g), cols6)
        out = arena.rent((n, self.Q), cols.dtype)
        g.sum(axis=1, out=out)
        x4 = out.reshape(n, c, self.hp, self.wp)
        if self.pad:
            x4 = x4[:, :, self.pad:self.pad + h, self.pad:self.pad + w]
        return x4

    def im2col_t(
        self,
        x: np.ndarray,
        arena: Optional[WorkspaceArena] = None,
        pad_value: float = 0.0,
    ) -> np.ndarray:
        """Unfold ``x`` into *transposed* columns (C*kh*kw, N*OH*OW).

        Same gather as :meth:`im2col` through an axis-permuted window
        view, but laid out so the whole batch forms one fat GEMM operand:
        ``out[c*S + ki*kw + kj, n*P + oy*ow + ox]``.  The ``blas-fat``
        conv backend contracts this with the filter matrix in a single
        BLAS call instead of one GEMM per sample.
        """
        arena = arena if arena is not None else NULL_ARENA
        n, c, _, _ = self.shape
        src = self._padded(x, pad_value)
        out = arena.rent((self.K, n * self.P), x.dtype)
        out6 = out.reshape(c, self.kh, self.kw, n, self.oh, self.ow)
        np.copyto(out6, self._window_view(src).transpose(1, 2, 3, 0, 4, 5))
        return out

    def col2im_t(
        self, cols_t: np.ndarray, arena: Optional[WorkspaceArena] = None
    ) -> np.ndarray:
        """Adjoint of :meth:`im2col_t`; bit-identical to :meth:`col2im`.

        Accumulates the ``S`` shifted slot planes directly into the padded
        gradient with strided adds, in the same ascending ``(ki, kj)``
        order as :meth:`col2im`'s sequential slot-axis reduction (numpy
        reduces a non-contiguous axis serially), so every per-element
        accumulation — and therefore every bit of the result — matches
        :meth:`col2im` on the equivalent ``(N, K, P)`` gradient, while
        skipping the (N, S, Q) scatter workspace and its extra pass.
        """
        arena = arena if arena is not None else NULL_ARENA
        n, c, h, w = self.shape
        cols6 = np.ascontiguousarray(cols_t).reshape(
            c, self.kh, self.kw, n, self.oh, self.ow
        )
        out = arena.rent((n, self.Q), cols_t.dtype)
        x4 = out.reshape(n, c, self.hp, self.wp)
        x4.fill(0)
        s = self.stride
        for ki in range(self.kh):
            for kj in range(self.kw):
                x4[:, :, ki:ki + s * self.oh:s, kj:kj + s * self.ow:s] += \
                    cols6[:, ki, kj].transpose(1, 0, 2, 3)
        if self.pad:
            x4 = x4[:, :, self.pad:self.pad + h, self.pad:self.pad + w]
        return x4

    def maxpool_forward(
        self, x: np.ndarray, arena: Optional[WorkspaceArena] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Max-pool ``x``, returning ``(y, argmax)``.

        ``argmax`` holds the window-local winner index per output element
        (uint8, the Y-to-X map of the Binarize rewrite).  When windows
        tile the input exactly (stride == kernel, no padding — the common
        VGG configuration, known statically from the plan) the slot axis
        is never materialised at all: strided views of the input are
        max-reduced slot by slot.  Ties, values and winner indices are
        bit-identical to the reference formulation either way: the slots
        are compared in the same ``(ki, kj)`` order.
        """
        arena = arena if arena is not None else NULL_ARENA
        n, c, h, w = self.shape
        disjoint = (
            self.pad == 0
            and self.stride == self.kh == self.kw
            and h == self.oh * self.kh
            and w == self.ow * self.kw
        )
        if disjoint:
            v = x.reshape(n, c, self.oh, self.kh, self.ow, self.kw)
            y = np.empty((n, c, self.P), dtype=x.dtype)
            y3 = y.reshape(n, c, self.oh, self.ow)
            np.copyto(y3, v[:, :, :, 0, :, 0])
            argmax = np.zeros((n, c, self.P), dtype=np.uint8)
            am3 = argmax.reshape(n, c, self.oh, self.ow)
            mask = arena.rent((n, c, self.oh, self.ow), np.bool_)
            # Running strict-greater max over ascending slots: ties keep
            # the earlier slot, exactly argmax's first-max rule, and
            # np.maximum returns its first operand on equality, so tied
            # values (including signed zeros) match take_along_axis too.
            for slot in range(1, self.S):
                ki, kj = divmod(slot, self.kw)
                vs = v[:, :, :, ki, :, kj]
                np.greater(vs, y3, out=mask)
                np.copyto(am3, np.uint8(slot), where=mask)
                np.maximum(y3, vs, out=y3)
            arena.release(mask)
            rented = None
        else:
            rented = self.im2col(x, arena, pad_value=-np.inf)
            cols = rented.reshape(n, c, self.S, self.P)
            argmax = cols.argmax(axis=2).astype(np.uint8)
            y = np.take_along_axis(
                cols, argmax[:, :, None, :].astype(np.intp), axis=2
            )[:, :, 0, :]
        if rented is not None:
            arena.release(rented)
        y = y.reshape(n, c, self.oh, self.ow)
        return y.astype(np.float32, copy=False), argmax.reshape(
            n, c, self.oh, self.ow
        )

    def maxpool_backward(
        self,
        argmax: np.ndarray,
        dy: np.ndarray,
        arena: Optional[WorkspaceArena] = None,
    ) -> np.ndarray:
        """Scatter ``dy`` to the argmax winners via one flat ``np.add.at``.

        ``argmax`` holds window-local winner indices (N, C, OH, OW); the
        result is the (N, C, H, W) input gradient.  The flat 1-D scatter
        applies duplicate updates in the same element order as the
        reference multi-index scatter, so overlapping windows accumulate
        bit-identically.
        """
        arena = arena if arena is not None else NULL_ARENA
        n, c, h, w = self.shape
        am = argmax.reshape(n, c * self.P)
        lin = arena.rent((n, c * self.P), np.intp)
        # Window-local winner am decomposes as (di, dj) = divmod(am, kw);
        # its flat padded offset is di*wp + dj == di*(wp - kw) + am.
        np.floor_divide(am, self.kw, out=lin, casting="unsafe")
        lin *= self.wp - self.kw
        lin += am
        lin += self.pool_base[None]
        lin += self.batch_offsets
        out = arena.rent((n, self.Q), dy.dtype)
        out.fill(0)
        np.add.at(out.reshape(-1), lin.reshape(-1), dy.reshape(-1))
        arena.release(lin)
        dx = out.reshape(n, c, self.hp, self.wp)
        if self.pad:
            dx = dx[:, :, self.pad:self.pad + h, self.pad:self.pad + w]
        return dx

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"KernelPlan(shape={self.shape}, k=({self.kh},{self.kw}), "
            f"stride={self.stride}, pad={self.pad})"
        )


# ----------------------------------------------------------------------
# GEMM formulation autotune
# ----------------------------------------------------------------------
# ``np.matmul`` (one BLAS GEMM per sample) is 2-3x faster than the
# reference ``np.einsum`` contraction on the benchmark shapes, and on
# those shapes it is also *bit-identical* — but the equivalence is
# shape-dependent (einsum's optimizer may pick a fat-GEMM path whose
# reduction blocking differs on small problems).  Since the compute path
# both libraries take is a function of shape/dtype only, one probe per
# signature settles it: the first call evaluates both forms on the live
# data, returns the reference result, and records whether matmul matched
# bit-for-bit.  Later calls use matmul only when it did.  This keeps the
# planned kernels unconditionally bit-identical to the reference mode
# while taking the fast path wherever it is provably safe.
#
# The probe also records the einsum result's *strides*: einsum often
# returns a transposed view, and downstream reductions (BatchNorm's
# ``mean``/``var``) sum in memory order, so handing them a contiguous
# matmul result would change *their* bits.  The fast path therefore
# writes the GEMM into a buffer laid out exactly like einsum's output.
_GemmKey = Tuple[str, Tuple[int, ...], Tuple[int, ...]]
_gemm_fast: Dict[_GemmKey, Tuple[bool, Tuple[int, ...]]] = {}


def _empty_like_layout(
    shape: Tuple[int, ...], strides: Tuple[int, ...], dtype
) -> np.ndarray:
    """An uninitialised array of ``shape`` whose memory order matches an
    array with the given (positive, non-overlapping) ``strides``."""
    order = sorted(range(len(shape)), key=lambda a: -strides[a])
    buf = np.empty([shape[a] for a in order], dtype=dtype)
    return buf.transpose(np.argsort(order))


def gemm_forward(wmat: np.ndarray, cols: np.ndarray) -> np.ndarray:
    """(F, K) @ (N, K, P) -> (N, F, P), bit-identical to the reference
    ``einsum("fk,nkp->nfp")`` — values *and* memory layout — with a
    per-signature matmul fast path."""
    key = ("fwd", wmat.shape, cols.shape)
    spec = _gemm_fast.get(key)
    if spec is None:
        ref = np.einsum("fk,nkp->nfp", wmat, cols, optimize=True)
        # Probe the *exact* operation the fast path will run: matmul
        # into a layout-matched buffer can itself take a different
        # (non-BLAS) kernel than plain matmul on small shapes.
        trial = _empty_like_layout(ref.shape, ref.strides, ref.dtype)
        fast = bool(np.array_equal(ref, np.matmul(wmat, cols, out=trial)))
        _gemm_fast[key] = (fast, ref.strides)
        return ref
    fast, strides = spec
    if fast:
        out = _empty_like_layout(
            (cols.shape[0], wmat.shape[0], cols.shape[2]), strides,
            np.result_type(wmat.dtype, cols.dtype),
        )
        return np.matmul(wmat, cols, out=out)
    return np.einsum("fk,nkp->nfp", wmat, cols, optimize=True)


def gemm_dcols(
    wmat: np.ndarray,
    dy_mat: np.ndarray,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """(F, K)^T @ (N, F, P) -> (N, K, P), bit-identical to the reference
    ``einsum("fk,nfp->nkp")`` with a per-signature fast path.

    Layout faithfulness is not needed here: the gradient columns are
    consumed only by ``col2im``, which compacts its input, so only the
    values matter.
    """
    key = ("dcols", wmat.shape, dy_mat.shape)
    spec = _gemm_fast.get(key)
    if spec is None:
        ref = np.einsum("fk,nfp->nkp", wmat, dy_mat, optimize=True)
        # The fast path always writes into a C-contiguous destination
        # (plain matmul or an arena buffer), so probe exactly that.
        trial = np.empty(ref.shape, ref.dtype)
        _gemm_fast[key] = (
            bool(np.array_equal(ref, np.matmul(wmat.T, dy_mat, out=trial))),
            ref.strides,
        )
        if out is not None:
            np.copyto(out, ref)
            return out
        return ref
    if spec[0]:
        if out is not None:
            return np.matmul(wmat.T, dy_mat, out=out)
        return np.matmul(wmat.T, dy_mat)
    return np.einsum("fk,nfp->nkp", wmat, dy_mat, optimize=True, out=out)


# ----------------------------------------------------------------------
# Process-wide plan cache
# ----------------------------------------------------------------------
_PlanKey = Tuple[Shape4, int, int, int, int]
_plan_cache: Dict[_PlanKey, KernelPlan] = {}
_cache_hits = 0
_cache_misses = 0


def get_plan(shape, kh: int, kw: int, stride: int, pad: int) -> KernelPlan:
    """Fetch (or build once) the plan for a shape signature."""
    global _cache_hits, _cache_misses
    key = (tuple(int(d) for d in shape), int(kh), int(kw), int(stride), int(pad))
    plan = _plan_cache.get(key)
    if plan is None:
        plan = KernelPlan(*key)
        _plan_cache[key] = plan
        _cache_misses += 1
    else:
        _cache_hits += 1
    return plan


def clear_plan_cache() -> None:
    """Drop every cached plan and GEMM probe (tests / memory pressure)."""
    global _cache_hits, _cache_misses
    _plan_cache.clear()
    _gemm_fast.clear()
    _cache_hits = 0
    _cache_misses = 0


def plan_cache_stats() -> Dict[str, int]:
    """Cache effectiveness counters for benchmarks and tests."""
    return {
        "size": len(_plan_cache),
        "hits": _cache_hits,
        "misses": _cache_misses,
    }
