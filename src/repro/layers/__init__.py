"""NumPy layer library: the cuDNN substitute.

Every operator carries both static metadata (shapes, FLOPs, which forward
tensors its backward pass reads — the paper's Figure 4) and runtime
forward/backward kernels used by the training experiments.
"""

from repro.layers.activation import ReLU, Sigmoid, Tanh
from repro.layers.base import InputLayer, Layer, OpContext, StateSpec
from repro.layers.conv import Conv2D
from repro.layers.dense import Dense
from repro.layers.dropout import Dropout
from repro.layers.fused import FusedConvReLU
from repro.layers.loss import SoftmaxCrossEntropy
from repro.layers.merge import Add, Concat
from repro.layers.norm import BatchNorm2D, LocalResponseNorm
from repro.layers.pool import ArgmaxMaxPool2D, AvgPool2D, GlobalAvgPool2D, MaxPool2D
from repro.layers.recurrent import (
    LSTMCell,
    LSTMStep,
    RNNCell,
    RNNStep,
    StateSlice,
    TimeSlice,
)
from repro.layers.reshape import Flatten

__all__ = [
    "Add",
    "ArgmaxMaxPool2D",
    "AvgPool2D",
    "BatchNorm2D",
    "Concat",
    "Conv2D",
    "Dense",
    "Dropout",
    "Flatten",
    "FusedConvReLU",
    "GlobalAvgPool2D",
    "InputLayer",
    "LSTMCell",
    "LSTMStep",
    "Layer",
    "LocalResponseNorm",
    "MaxPool2D",
    "OpContext",
    "ReLU",
    "RNNCell",
    "RNNStep",
    "Sigmoid",
    "SoftmaxCrossEntropy",
    "StateSlice",
    "StateSpec",
    "Tanh",
    "TimeSlice",
]
