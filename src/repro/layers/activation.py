"""Activation layers.

ReLU is the heart of Gist's lossless opportunities: its backward pass needs
only the *sign* of its stashed output (paper Figure 4(b)), i.e.
``dX = dY * (Y > 0)``.  The implementation below therefore accepts either
the full output ``Y`` or a pre-computed 1-bit positivity mask from the
Binarize encoding — both produce bit-identical gradients, which is what
makes Binarize lossless.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.kernels.config import resolve_kernel_state
from repro.layers.base import Layer, OpContext, Shape


class ReLU(Layer):
    """Rectified linear unit, ``y = max(x, 0)``.

    ReLU has a read-once/write-once element mapping, so it supports the
    paper's inplace optimisation (its output may reuse the producer's
    buffer, typically a convolution output).
    """

    kind = "relu"
    backward_needs_input = False
    backward_needs_output = True
    supports_inplace = True
    #: The output is a rectified map — the attribute the stash classifier
    #: keys on (so fused conv+relu nodes classify identically).
    relu_output = True

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        (shape,) = input_shapes
        return shape

    def flops(self, input_shapes: Sequence[Shape], output_shape: Shape) -> int:
        return int(np.prod(output_shape))

    def forward_inplace(
        self,
        x: np.ndarray,
        params: Dict[str, np.ndarray],
        ctx: Optional[OpContext],
        train: bool = True,
    ) -> np.ndarray:
        # Bit-identical to forward(): np.maximum writes the same values
        # whether the destination aliases the input or not.
        np.maximum(x, 0.0, out=x)
        return x

    def forward(
        self,
        xs: Sequence[np.ndarray],
        params: Dict[str, np.ndarray],
        ctx: Optional[OpContext],
        train: bool = True,
    ) -> np.ndarray:
        (x,) = xs
        return np.maximum(x, 0.0)

    def backward(
        self,
        dy: np.ndarray,
        params: Dict[str, np.ndarray],
        ctx: OpContext,
    ) -> Tuple[List[np.ndarray], Dict[str, np.ndarray]]:
        y = ctx.stashed_output()
        enabled, arena = resolve_kernel_state(ctx)
        enabled = enabled and arena is not None
        if y.dtype == np.bool_:
            mask = y  # Binarize handed us the 1-bit positivity mask directly.
            scratch = None
        elif enabled:
            scratch = arena.rent(y.shape, np.bool_)
            np.greater(y, 0, out=scratch)
            mask = scratch
        else:
            mask = y > 0
            scratch = None
        if enabled:
            # The gradient rides an arena buffer: it is dead by the next
            # step's reset, and renting skips a fresh multi-MB allocation
            # (and its page faults) on every backward call.
            dx = arena.rent(dy.shape, dy.dtype)
            np.multiply(dy, mask, out=dx)
            if scratch is not None:
                arena.release(scratch)
            return [dx], {}
        return [dy * mask], {}


class Sigmoid(Layer):
    """Logistic activation; backward uses the stashed output only."""

    kind = "sigmoid"
    backward_needs_output = True

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        (shape,) = input_shapes
        return shape

    def flops(self, input_shapes: Sequence[Shape], output_shape: Shape) -> int:
        return 4 * int(np.prod(output_shape))

    def forward(self, xs, params, ctx, train=True):
        (x,) = xs
        # Numerically stable piecewise sigmoid.
        out = np.empty_like(x)
        pos = x >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        out[~pos] = ex / (1.0 + ex)
        return out

    def backward(self, dy, params, ctx):
        y = ctx.stashed_output()
        return [dy * y * (1.0 - y)], {}


class Tanh(Layer):
    """Hyperbolic tangent; backward uses the stashed output only."""

    kind = "tanh"
    backward_needs_output = True

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        (shape,) = input_shapes
        return shape

    def flops(self, input_shapes: Sequence[Shape], output_shape: Shape) -> int:
        return 4 * int(np.prod(output_shape))

    def forward(self, xs, params, ctx, train=True):
        (x,) = xs
        return np.tanh(x)

    def backward(self, dy, params, ctx):
        y = ctx.stashed_output()
        return [dy * (1.0 - y * y)], {}
