"""Layer abstraction shared by the static analyser and the runtime executor.

A :class:`Layer` plays two roles:

1. **Static metadata provider** for the memory planner and performance
   model: output-shape inference, parameter shapes, FLOP counts, workspace
   size, and — crucially for Gist — a declaration of which of its forward
   tensors the backward pass reads (``backward_needs_input`` /
   ``backward_needs_output`` / ``saved_state_specs``).  This is the
   information in Figure 4 of the paper: ReLU's backward needs only its
   output ``Y``; convolution's backward needs its input ``X``; max-pool's
   backward can be rewritten to need only a compact argmax map.

2. **Runtime kernel** for the NumPy executor: ``forward``/``backward``
   implementations used by the training experiments (Figures 12 and 14).

Keeping both roles on one object guarantees the graph the allocator reasons
about is exactly the graph the executor runs.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dtypes import DType

Shape = Tuple[int, ...]


@dataclass(frozen=True)
class StateSpec:
    """A small per-layer tensor saved from forward for backward.

    Examples: batch-norm batch statistics, dropout masks, max-pool argmax
    maps.  These are *not* feature maps (no Gist encoding applies), but they
    occupy memory between the forward and backward pass and so must appear
    in the liveness table.
    """

    key: str
    shape: Shape
    dtype: DType


class OpContext(abc.ABC):
    """Per-op bridge between a layer's forward and backward executions.

    The executor provides the concrete implementation; stashed feature maps
    routed through :meth:`stashed_input` / :meth:`stashed_output` pass
    through the active Gist encoding (encode after forward, decode on
    access), which is how lossy DPR error reaches the backward pass in the
    accuracy experiments.
    """

    @abc.abstractmethod
    def save_state(self, key: str, value: np.ndarray) -> None:
        """Save a small non-feature-map tensor for the backward pass."""

    @abc.abstractmethod
    def get_state(self, key: str) -> np.ndarray:
        """Retrieve a tensor saved with :meth:`save_state`."""

    @abc.abstractmethod
    def stashed_input(self, index: int = 0) -> np.ndarray:
        """The layer's forward input, decoded from its stashed encoding."""

    @abc.abstractmethod
    def stashed_output(self) -> np.ndarray:
        """The layer's forward output, decoded from its stashed encoding."""

    def stashed_input_lossless(self, index: int = 0) -> bool:
        """Whether the stashed input decodes bit-exactly.

        Layers may use this to reuse forward-pass intermediates in the
        backward pass (e.g. conv's im2col columns): when the stash round
        trip is exact, recomputing from the decoded stash would reproduce
        the same bits, so the cached copy is equivalent.  The default is
        conservative — contexts that don't track encodings report False.
        """
        return False


class Layer(abc.ABC):
    """Base class for all operators in the execution graph."""

    #: Short operator kind used by the Gist schedule builder to classify
    #: layer pairs, e.g. ``"conv"``, ``"relu"``, ``"maxpool"``.
    kind: str = "op"

    #: Whether the backward pass reads the layer's forward *input* X.
    backward_needs_input: bool = False
    #: Whether the backward pass reads the layer's forward *output* Y.
    backward_needs_output: bool = False

    # ------------------------------------------------------------------
    # Static metadata
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        """Output shape given input shapes (NCHW for spatial tensors)."""

    def param_shapes(self, input_shapes: Sequence[Shape]) -> Dict[str, Shape]:
        """Learnable parameter shapes, keyed by parameter name."""
        return {}

    def flops(self, input_shapes: Sequence[Shape], output_shape: Shape) -> int:
        """Forward-pass floating point operations (multiply-adds count 2)."""
        return 0

    def saved_state_specs(
        self, input_shapes: Sequence[Shape], output_shape: Shape
    ) -> List[StateSpec]:
        """Small saved tensors beyond the input/output feature maps."""
        return []

    def workspace_bytes(
        self, input_shapes: Sequence[Shape], output_shape: Shape
    ) -> int:
        """Scratch bytes the op needs while executing (cuDNN 'workspace')."""
        return 0

    def reset_state(
        self, rng: Optional["np.random.Generator"] = None
    ) -> None:
        """Reset mutable per-run layer state (RNG streams and the like).

        Most layers are pure functions of ``(inputs, params)`` and ignore
        this.  Stateful layers (Dropout's mask stream) must override it:
        with ``rng=None`` they restart from their construction seed, so a
        fresh executor on an already-used graph behaves exactly like one
        on a freshly built graph; with a generator they adopt it, which is
        how data-parallel replicas install independent
        ``SeedSequence``-derived streams per (step, shard).
        """

    #: Layers with a read-once/write-once element mapping may compute their
    #: output in the input's buffer (the paper's inplace optimisation).
    supports_inplace: bool = False

    def forward_inplace(
        self,
        x: "np.ndarray",
        params: Dict[str, "np.ndarray"],
        ctx: Optional["OpContext"],
        train: bool = True,
    ) -> "np.ndarray":
        """Forward pass writing the output into ``x``'s own buffer.

        Called by the executor for nodes the inplace rewrite pass marked
        (see :mod:`repro.rewrite.inplace`); only layers with
        ``supports_inplace`` override it.  The default falls back to the
        ordinary out-of-place :meth:`forward`, which is always safe.
        """
        return self.forward([x], params, ctx, train)

    # ------------------------------------------------------------------
    # Runtime kernels
    # ------------------------------------------------------------------
    def init_params(
        self, input_shapes: Sequence[Shape], rng: np.random.Generator
    ) -> Dict[str, np.ndarray]:
        """Initialise learnable parameters (He/Glorot as appropriate)."""
        return {}

    @abc.abstractmethod
    def forward(
        self,
        xs: Sequence[np.ndarray],
        params: Dict[str, np.ndarray],
        ctx: Optional[OpContext],
        train: bool = True,
    ) -> np.ndarray:
        """Compute the forward pass.

        Args:
            xs: Input arrays (most layers take exactly one).
            params: Learnable parameters from :meth:`init_params`.
            ctx: Stash context, or ``None`` for stateless inference.
            train: Whether we are in training mode (affects dropout, BN).
        """

    def backward(
        self,
        dy: np.ndarray,
        params: Dict[str, np.ndarray],
        ctx: OpContext,
    ) -> Tuple[List[np.ndarray], Dict[str, np.ndarray]]:
        """Compute input gradients and parameter gradients.

        Args:
            dy: Gradient of the loss with respect to this layer's output.
            params: Learnable parameters.
            ctx: The context populated during :meth:`forward`.

        Returns:
            ``(dxs, dparams)`` — one gradient per input, and a dict of
            parameter gradients matching :meth:`param_shapes`.
        """
        raise NotImplementedError(f"{type(self).__name__} has no backward pass")

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(kind={self.kind!r})"


class InputLayer(Layer):
    """Placeholder op that sources the minibatch into the graph."""

    kind = "input"

    def __init__(self, shape: Shape):
        if any(d <= 0 for d in shape):
            raise ValueError(f"input shape must be positive, got {shape}")
        self.shape = tuple(shape)

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        if input_shapes:
            raise ValueError("InputLayer takes no inputs")
        return self.shape

    def forward(self, xs, params, ctx, train=True):
        raise RuntimeError("InputLayer is fed by the executor, not executed")
