"""2-D convolution implemented via im2col + GEMM.

Backward-pass dependence (paper Figure 4(d)): convolution needs its stashed
*input* ``X`` (for the weight gradient) but not its output — which is why
Binarize cannot be applied to a ReLU whose consumer is a convolution, and
SSDC is used there instead.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.kernels.config import resolve_kernel_state
from repro.layers.base import Layer, OpContext, Shape
from repro.layers.im2col import (
    col2im_reference,
    conv_output_hw,
    im2col_reference,
)


class Conv2D(Layer):
    """Convolution over NCHW tensors.

    Args:
        out_channels: Number of filters ``F``.
        kernel: Square kernel size, or ``(kh, kw)``.
        stride: Window stride.
        pad: Symmetric zero padding.
        bias: Whether to learn a per-filter bias.
    """

    kind = "conv"
    backward_needs_input = True
    backward_needs_output = False

    def __init__(
        self,
        out_channels: int,
        kernel,
        stride: int = 1,
        pad: int = 0,
        bias: bool = True,
    ):
        if out_channels <= 0:
            raise ValueError(f"out_channels must be positive, got {out_channels}")
        self.out_channels = out_channels
        self.kh, self.kw = (kernel, kernel) if isinstance(kernel, int) else kernel
        if stride <= 0:
            raise ValueError(f"stride must be positive, got {stride}")
        if pad < 0:
            raise ValueError(f"pad must be non-negative, got {pad}")
        self.stride = stride
        self.pad = pad
        self.bias = bias

    # ------------------------------------------------------------------
    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        (shape,) = input_shapes
        n, c, h, w = shape
        oh, ow = conv_output_hw(h, w, self.kh, self.kw, self.stride, self.pad)
        return (n, self.out_channels, oh, ow)

    def param_shapes(self, input_shapes: Sequence[Shape]) -> Dict[str, Shape]:
        (shape,) = input_shapes
        c = shape[1]
        shapes = {"w": (self.out_channels, c, self.kh, self.kw)}
        if self.bias:
            shapes["b"] = (self.out_channels,)
        return shapes

    def flops(self, input_shapes: Sequence[Shape], output_shape: Shape) -> int:
        c = input_shapes[0][1]
        n, f, oh, ow = output_shape
        return 2 * n * f * oh * ow * c * self.kh * self.kw

    def workspace_bytes(
        self, input_shapes: Sequence[Shape], output_shape: Shape
    ) -> int:
        # Memory-optimal cuDNN (implicit GEMM) needs roughly one filter
        # matrix of scratch, not a full im2col buffer.
        c = input_shapes[0][1]
        return 4 * self.out_channels * c * self.kh * self.kw

    # ------------------------------------------------------------------
    def init_params(self, input_shapes, rng):
        c = input_shapes[0][1]
        fan_in = c * self.kh * self.kw
        std = np.sqrt(2.0 / fan_in)  # He init, suits ReLU networks
        params = {
            "w": rng.normal(0.0, std, (self.out_channels, c, self.kh, self.kw)).astype(
                np.float32
            )
        }
        if self.bias:
            params["b"] = np.zeros(self.out_channels, dtype=np.float32)
        return params

    def forward(
        self,
        xs: Sequence[np.ndarray],
        params: Dict[str, np.ndarray],
        ctx: Optional[OpContext],
        train: bool = True,
    ) -> np.ndarray:
        (x,) = xs
        n, c, h, w = x.shape
        oh, ow = conv_output_hw(h, w, self.kh, self.kw, self.stride, self.pad)
        enabled, arena = resolve_kernel_state(ctx)
        bias = params["b"] if self.bias else None
        if enabled:
            from repro.kernels.backends import select_conv_backend

            # Per-signature autotuned backend: the chooser probes every
            # registered arm on live data and promotes the fastest one
            # that is bit-identical (values + layout) to the incumbent.
            backend = select_conv_backend(ctx, x, params["w"], bias,
                                          self.stride, self.pad)
            want_saved = bool(
                train and ctx is not None and ctx.stashed_input_lossless()
            )
            y, saved = backend.forward(x, params["w"], bias, self.stride,
                                       self.pad, arena=arena,
                                       want_saved=want_saved)
            if want_saved and saved is not None:
                # The stash decodes to exactly this x, so the backward
                # pass can reuse the arm's columns instead of
                # re-gathering (the arm name keys the stash because
                # each arm's column layout is its own).
                ctx.save_state("cols", (backend.name, saved))
            return y
        wmat = params["w"].reshape(self.out_channels, -1)
        cols = im2col_reference(x, self.kh, self.kw, self.stride, self.pad)
        y = np.einsum("fk,nkp->nfp", wmat, cols, optimize=True)
        if self.bias:
            y += params["b"][None, :, None]
        return y.reshape(n, self.out_channels, oh, ow).astype(np.float32, copy=False)

    def backward(
        self,
        dy: np.ndarray,
        params: Dict[str, np.ndarray],
        ctx: OpContext,
    ) -> Tuple[List[np.ndarray], Dict[str, np.ndarray]]:
        x = ctx.stashed_input()
        n, f, oh, ow = dy.shape
        p = oh * ow
        dy_mat = dy.reshape(n, f, p)
        wmat = params["w"].reshape(f, -1)
        k = wmat.shape[1]
        enabled, arena = resolve_kernel_state(ctx)
        if enabled:
            from repro.kernels.backends import select_conv_backend

            bias = params["b"] if self.bias else None
            backend = select_conv_backend(ctx, x, params["w"], bias,
                                          self.stride, self.pad)
            try:
                saved_entry = ctx.get_state("cols")
            except KeyError:
                saved_entry = None
            saved = None
            if saved_entry is not None:
                saved_name, saved_obj = saved_entry
                if saved_name == backend.name:
                    saved = saved_obj
            dx, dw = backend.backward(x, params["w"], dy, self.stride,
                                      self.pad, arena=arena, saved=saved)
            ctx.save_state("cols", None)
        else:
            cols = im2col_reference(x, self.kh, self.kw, self.stride, self.pad)
            dw = np.einsum("nfp,nkp->fk", dy_mat, cols, optimize=True).reshape(
                params["w"].shape
            )
            dcols = np.einsum("fk,nfp->nkp", wmat, dy_mat, optimize=True)
            dx = col2im_reference(dcols, x.shape, self.kh, self.kw,
                                  self.stride, self.pad)
        dparams = {"w": dw.astype(np.float32, copy=False)}
        if self.bias:
            dparams["b"] = dy.sum(axis=(0, 2, 3)).astype(np.float32, copy=False)
        return [dx.astype(np.float32, copy=False)], dparams
