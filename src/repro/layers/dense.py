"""Fully connected layer.

Like convolution, the backward pass needs the stashed input ``X`` (for the
weight gradient), so a preceding ReLU's output falls in the paper's
"ReLU-Conv" class and is eligible for SSDC/DPR, not Binarize.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.layers.base import Layer, OpContext, Shape


class Dense(Layer):
    """Affine layer over flattened inputs, ``y = x @ W + b``.

    Accepts any input shape; all non-batch dimensions are flattened.
    """

    kind = "dense"
    backward_needs_input = True

    def __init__(self, out_features: int, bias: bool = True):
        if out_features <= 0:
            raise ValueError(f"out_features must be positive, got {out_features}")
        self.out_features = out_features
        self.bias = bias

    @staticmethod
    def _in_features(shape: Shape) -> int:
        return int(np.prod(shape[1:]))

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        (shape,) = input_shapes
        return (shape[0], self.out_features)

    def param_shapes(self, input_shapes: Sequence[Shape]) -> Dict[str, Shape]:
        (shape,) = input_shapes
        shapes = {"w": (self._in_features(shape), self.out_features)}
        if self.bias:
            shapes["b"] = (self.out_features,)
        return shapes

    def flops(self, input_shapes: Sequence[Shape], output_shape: Shape) -> int:
        n = output_shape[0]
        return 2 * n * self._in_features(input_shapes[0]) * self.out_features

    def init_params(self, input_shapes, rng):
        fan_in = self._in_features(input_shapes[0])
        std = np.sqrt(2.0 / fan_in)
        params = {
            "w": rng.normal(0.0, std, (fan_in, self.out_features)).astype(np.float32)
        }
        if self.bias:
            params["b"] = np.zeros(self.out_features, dtype=np.float32)
        return params

    def forward(
        self,
        xs: Sequence[np.ndarray],
        params: Dict[str, np.ndarray],
        ctx: Optional[OpContext],
        train: bool = True,
    ) -> np.ndarray:
        (x,) = xs
        x2 = x.reshape(x.shape[0], -1)
        y = x2 @ params["w"]
        if self.bias:
            y = y + params["b"]
        return y.astype(np.float32, copy=False)

    def backward(
        self,
        dy: np.ndarray,
        params: Dict[str, np.ndarray],
        ctx: OpContext,
    ) -> Tuple[List[np.ndarray], Dict[str, np.ndarray]]:
        x = ctx.stashed_input()
        x2 = x.reshape(x.shape[0], -1)
        dw = x2.T @ dy
        dx = (dy @ params["w"].T).reshape(x.shape)
        dparams = {"w": dw.astype(np.float32, copy=False)}
        if self.bias:
            dparams["b"] = dy.sum(axis=0).astype(np.float32, copy=False)
        return [dx.astype(np.float32, copy=False)], dparams
