"""Inverted dropout.

The saved mask must survive until the backward pass; CNTK stores it as a
full-precision scale array, which is what the baseline memory model
charges.  (A 1-bit mask would itself be a Binarize-style optimisation; see
the ablation benches.)
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dtypes import FP32
from repro.layers.base import Layer, OpContext, Shape, StateSpec


class Dropout(Layer):
    """Randomly zeroes elements with probability ``p`` during training."""

    kind = "dropout"
    supports_inplace = True

    def __init__(self, p: float = 0.5, seed: int = 0):
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout p must be in [0, 1), got {p}")
        self.p = p
        self._seed = seed
        self._rng = np.random.default_rng(seed)
        # With p == 0 forward returns its input array unchanged, so the
        # output aliases the producer's buffer exactly like a view.
        self.aliases_input = p == 0.0

    def reset_rng(self, seed: Optional[int] = None) -> None:
        """Restart the mask stream (reproducible A/B runs on one graph)."""
        self._rng = np.random.default_rng(self._seed if seed is None else seed)

    def reset_state(self, rng: Optional[np.random.Generator] = None) -> None:
        """Restart the mask stream, or adopt an externally split ``rng``."""
        if rng is None:
            self._rng = np.random.default_rng(self._seed)
        else:
            self._rng = rng

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        (shape,) = input_shapes
        return shape

    def flops(self, input_shapes: Sequence[Shape], output_shape: Shape) -> int:
        return int(np.prod(output_shape))

    def saved_state_specs(self, input_shapes, output_shape):
        return [StateSpec("mask", tuple(output_shape), FP32)]

    def forward(
        self,
        xs: Sequence[np.ndarray],
        params: Dict[str, np.ndarray],
        ctx: Optional[OpContext],
        train: bool = True,
    ) -> np.ndarray:
        (x,) = xs
        if not train or self.p == 0.0:
            if ctx is not None:
                ctx.save_state("mask", np.ones((1,), dtype=np.float32))
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep).astype(np.float32) / keep
        if ctx is not None:
            ctx.save_state("mask", mask)
        return x * mask

    def forward_inplace(
        self,
        x: np.ndarray,
        params: Dict[str, np.ndarray],
        ctx: Optional[OpContext],
        train: bool = True,
    ) -> np.ndarray:
        if not train or self.p == 0.0:
            if ctx is not None:
                ctx.save_state("mask", np.ones((1,), dtype=np.float32))
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep).astype(np.float32) / keep
        if ctx is not None:
            ctx.save_state("mask", mask)
        # Same mask draw, same multiply — only the destination buffer
        # differs, so the result is bit-identical to forward().
        x *= mask
        return x

    def backward(
        self,
        dy: np.ndarray,
        params: Dict[str, np.ndarray],
        ctx: OpContext,
    ) -> Tuple[List[np.ndarray], Dict[str, np.ndarray]]:
        mask = ctx.get_state("mask")
        if mask.shape == (1,):
            return [dy * mask[0]], {}
        return [dy * mask], {}
