"""Fused Conv+ReLU operator produced by the rewrite layer.

The fusion removes the convolution's separately-materialised output map:
the activation is applied in the convolution's own output buffer, and the
backward pass needs only the stashed *input* ``X`` (for the weight
gradient) plus a 1-bit positivity mask saved in the forward pass — never
the post-activation output ``Y``.  That flips the paper's dependence table
for the pair: where an unfused ReLU forces its output to be stashed
(``backward_needs_output``), the fused op lets the map die at its last
forward use whenever no consumer reads it back.

Bit-identity: the forward pass delegates to the wrapped
:class:`~repro.layers.conv.Conv2D` kernel (same backend dispatch, same
saved-columns fast path) and applies ``max(x, 0)`` exactly as
:class:`~repro.layers.activation.ReLU` would; the backward pass masks the
upstream gradient with the saved positivity bits (a 0/1 multiply, exact in
IEEE arithmetic) and feeds it to the identical convolution backward.  The
rewrite-equivalence oracle pins this: a fused graph trains byte-identically
to the unfused one.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dtypes import BIT1
from repro.layers.base import Layer, OpContext, Shape, StateSpec
from repro.layers.conv import Conv2D


class FusedConvReLU(Layer):
    """``relu(conv(x))`` as one graph node.

    Args:
        conv: The convolution being fused.  The instance is wrapped, not
            copied, so parameter shapes/initialisation and the autotuned
            kernel dispatch are exactly the original convolution's.
    """

    kind = "conv_relu"
    backward_needs_input = True   # conv's dW needs X
    backward_needs_output = False  # the mask replaces Y
    #: The output is a ReLU image: sparse, and its backward users can run
    #: from the positivity mask (Gist's Binarize/SSDC classification).
    relu_output = True

    def __init__(self, conv: Conv2D):
        self.conv = conv

    # ------------------------------------------------------------------
    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        return self.conv.infer_shape(input_shapes)

    def param_shapes(self, input_shapes: Sequence[Shape]) -> Dict[str, Shape]:
        return self.conv.param_shapes(input_shapes)

    def flops(self, input_shapes: Sequence[Shape], output_shape: Shape) -> int:
        relu_flops = 1
        for d in output_shape:
            relu_flops *= d
        return self.conv.flops(input_shapes, output_shape) + relu_flops

    def workspace_bytes(
        self, input_shapes: Sequence[Shape], output_shape: Shape
    ) -> int:
        return self.conv.workspace_bytes(input_shapes, output_shape)

    def saved_state_specs(
        self, input_shapes: Sequence[Shape], output_shape: Shape
    ) -> List[StateSpec]:
        return [StateSpec("mask", tuple(output_shape), BIT1)]

    def init_params(self, input_shapes, rng):
        return self.conv.init_params(input_shapes, rng)

    # ------------------------------------------------------------------
    def forward(
        self,
        xs: Sequence[np.ndarray],
        params: Dict[str, np.ndarray],
        ctx: Optional[OpContext],
        train: bool = True,
    ) -> np.ndarray:
        y = self.conv.forward(xs, params, ctx, train)
        if ctx is not None:
            ctx.save_state("mask", y > 0)
        # The conv output buffer is ours alone, so the activation runs in
        # place — the paper's inplace optimisation, free under fusion.
        # Non-contiguous conv outputs (transposed einsum views) get a fresh
        # array instead, exactly as the unfused ReLU would produce: keeping
        # the strided layout would reorder downstream pairwise reductions
        # and break bit-identity with the unfused graph.
        if y.flags["C_CONTIGUOUS"]:
            np.maximum(y, 0.0, out=y)
        else:
            y = np.maximum(y, 0.0)
        return y

    def backward(
        self,
        dy: np.ndarray,
        params: Dict[str, np.ndarray],
        ctx: OpContext,
    ) -> Tuple[List[np.ndarray], Dict[str, np.ndarray]]:
        mask = ctx.get_state("mask")
        # 0/1 mask multiply: bit-identical to ReLU.backward on the unfused
        # pair (dz here == the dy the unfused conv would have received).
        dz = dy * mask
        return self.conv.backward(dz, params, ctx)
