"""im2col / col2im helpers for convolution and pooling kernels.

These implement the classic lowering of convolution to matrix multiply: the
input is unfolded into a matrix of receptive-field columns, the convolution
becomes a GEMM, and the transposed scatter (``col2im``) implements the
backward pass.  This mirrors how cuDNN's GEMM-based algorithms work and
keeps the NumPy kernels fast enough for the scaled training experiments.

Two interchangeable implementations live behind :func:`im2col` /
:func:`col2im`:

* the **planned** path (default) looks up a cached
  :class:`~repro.kernels.plan.KernelPlan` and runs a single strided
  window-view copy / slot-scatter reduction with no Python loops,
  renting its workspaces from a :class:`~repro.kernels.arena.WorkspaceArena`;
* the **reference** path (:func:`im2col_reference` /
  :func:`col2im_reference`) is the original ``kh x kw`` slice loop, kept
  as the A/B baseline selected by ``REPRO_KERNEL_PLANS=0`` or a
  per-executor switch.

Both produce bit-identical results (asserted by the kernel property
tests), including floating-point accumulation order in ``col2im``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def conv_output_hw(
    h: int, w: int, kh: int, kw: int, stride: int, pad: int
) -> Tuple[int, int]:
    """Spatial output size of a conv/pool window sweep.

    Raises:
        ValueError: If the window does not fit the (padded) input.
    """
    oh = (h + 2 * pad - kh) // stride + 1
    ow = (w + 2 * pad - kw) // stride + 1
    if oh <= 0 or ow <= 0:
        raise ValueError(
            f"window {kh}x{kw} stride {stride} pad {pad} does not fit input {h}x{w}"
        )
    return oh, ow


def im2col_reference(
    x: np.ndarray, kh: int, kw: int, stride: int, pad: int
) -> np.ndarray:
    """Loop-based unfold of ``x`` (N, C, H, W) into (N, C*kh*kw, OH*OW)."""
    n, c, h, w = x.shape
    oh, ow = conv_output_hw(h, w, kh, kw, stride, pad)
    if pad > 0:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)), mode="constant")
    cols = np.empty((n, c, kh, kw, oh, ow), dtype=x.dtype)
    for i in range(kh):
        i_end = i + stride * oh
        for j in range(kw):
            j_end = j + stride * ow
            cols[:, :, i, j] = x[:, :, i:i_end:stride, j:j_end:stride]
    return cols.reshape(n, c * kh * kw, oh * ow)


def col2im_reference(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Loop-based adjoint of :func:`im2col_reference` (scatter-add)."""
    n, c, h, w = x_shape
    oh, ow = conv_output_hw(h, w, kh, kw, stride, pad)
    cols = cols.reshape(n, c, kh, kw, oh, ow)
    hp, wp = h + 2 * pad, w + 2 * pad
    x = np.zeros((n, c, hp, wp), dtype=cols.dtype)
    for i in range(kh):
        i_end = i + stride * oh
        for j in range(kw):
            j_end = j + stride * ow
            x[:, :, i:i_end:stride, j:j_end:stride] += cols[:, :, i, j]
    if pad > 0:
        x = x[:, :, pad : pad + h, pad : pad + w]
    return x


def im2col(
    x: np.ndarray,
    kh: int,
    kw: int,
    stride: int,
    pad: int,
    arena=None,
    enabled: Optional[bool] = None,
) -> np.ndarray:
    """Unfold ``x`` (N, C, H, W) into columns (N, C*kh*kw, OH*OW).

    Args:
        arena: Optional workspace arena the planned path rents buffers
            from (the caller owns, and may release, the result).
        enabled: Force the planned (True) or reference (False) path;
            ``None`` defers to the global kernel-plan switch.
    """
    if enabled is None:
        from repro.kernels.config import plans_enabled

        enabled = plans_enabled()
    if not enabled:
        return im2col_reference(x, kh, kw, stride, pad)
    from repro.kernels.plan import get_plan

    return get_plan(x.shape, kh, kw, stride, pad).im2col(x, arena)


def col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    pad: int,
    arena=None,
    enabled: Optional[bool] = None,
) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter-add columns back to (N, C, H, W).

    See :func:`im2col` for the ``arena``/``enabled`` semantics.  The
    planned path may return a view of an arena buffer; it stays valid
    until the owning arena's next ``reset``.
    """
    if enabled is None:
        from repro.kernels.config import plans_enabled

        enabled = plans_enabled()
    if not enabled:
        return col2im_reference(cols, x_shape, kh, kw, stride, pad)
    from repro.kernels.plan import get_plan

    kh, kw = int(kh), int(kw)
    return get_plan(x_shape, kh, kw, stride, pad).col2im(cols, arena)
