"""Softmax cross-entropy loss head.

The stashed probabilities are consumed at the very start of the backward
pass, so their stash interval is short — the planner will classify them as
stashed but they contribute negligibly, matching the paper's focus on deep
convolutional stacks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dtypes import FP32
from repro.layers.base import Layer, OpContext, Shape, StateSpec


class SoftmaxCrossEntropy(Layer):
    """Combined softmax + cross-entropy against integer class labels.

    The executor supplies labels via :meth:`set_labels` before each forward
    pass; ``forward`` returns the scalar mean loss as a ``(1,)`` array.
    """

    kind = "loss"

    def __init__(self):
        self._labels: Optional[np.ndarray] = None

    def set_labels(self, labels: np.ndarray) -> None:
        """Attach the ground-truth integer labels for the next minibatch."""
        self._labels = np.asarray(labels)

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        (shape,) = input_shapes
        if len(shape) != 2:
            raise ValueError(f"loss expects (N, classes) logits, got {shape}")
        return (1,)

    def flops(self, input_shapes: Sequence[Shape], output_shape: Shape) -> int:
        return 5 * int(np.prod(input_shapes[0]))

    def saved_state_specs(self, input_shapes, output_shape):
        return [StateSpec("probs", tuple(input_shapes[0]), FP32)]

    def forward(
        self,
        xs: Sequence[np.ndarray],
        params: Dict[str, np.ndarray],
        ctx: Optional[OpContext],
        train: bool = True,
    ) -> np.ndarray:
        (logits,) = xs
        if self._labels is None:
            raise RuntimeError("set_labels() must be called before forward()")
        if self._labels.shape[0] != logits.shape[0]:
            raise ValueError(
                f"batch mismatch: {self._labels.shape[0]} labels, "
                f"{logits.shape[0]} logits"
            )
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        probs = exp / exp.sum(axis=1, keepdims=True)
        n = logits.shape[0]
        nll = -np.log(np.maximum(probs[np.arange(n), self._labels], 1e-12))
        if ctx is not None:
            ctx.save_state("probs", probs.astype(np.float32))
            ctx.save_state("labels", self._labels)
        return np.array([nll.mean()], dtype=np.float32)

    def backward(
        self,
        dy: np.ndarray,
        params: Dict[str, np.ndarray],
        ctx: OpContext,
    ) -> Tuple[List[np.ndarray], Dict[str, np.ndarray]]:
        probs = ctx.get_state("probs")
        labels = ctx.get_state("labels")
        n = probs.shape[0]
        dx = probs.copy()
        dx[np.arange(n), labels] -= 1.0
        dx *= dy[0] / n
        return [dx.astype(np.float32, copy=False)], {}
