"""Multi-input merge layers used by Inception (Concat) and ResNet (Add)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.layers.base import Layer, OpContext, Shape


class Concat(Layer):
    """Concatenate along the channel axis (NCHW axis 1)."""

    kind = "concat"

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        if len(input_shapes) < 2:
            raise ValueError("Concat needs at least two inputs")
        first = input_shapes[0]
        for s in input_shapes[1:]:
            if s[0] != first[0] or s[2:] != first[2:]:
                raise ValueError(f"incompatible concat shapes: {input_shapes}")
        channels = sum(s[1] for s in input_shapes)
        return (first[0], channels) + tuple(first[2:])

    def forward(
        self,
        xs: Sequence[np.ndarray],
        params: Dict[str, np.ndarray],
        ctx: Optional[OpContext],
        train: bool = True,
    ) -> np.ndarray:
        if ctx is not None:
            ctx.save_state("splits", np.array([x.shape[1] for x in xs]))
        return np.concatenate(list(xs), axis=1)

    def backward(
        self,
        dy: np.ndarray,
        params: Dict[str, np.ndarray],
        ctx: OpContext,
    ) -> Tuple[List[np.ndarray], Dict[str, np.ndarray]]:
        splits = [int(v) for v in ctx.get_state("splits")]
        edges = np.cumsum(splits)[:-1]
        return [np.ascontiguousarray(g) for g in np.split(dy, edges, axis=1)], {}


class Add(Layer):
    """Elementwise sum of equal-shaped inputs (residual connections)."""

    kind = "add"

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        if len(input_shapes) < 2:
            raise ValueError("Add needs at least two inputs")
        first = input_shapes[0]
        for s in input_shapes[1:]:
            if tuple(s) != tuple(first):
                raise ValueError(f"incompatible add shapes: {input_shapes}")
        return tuple(first)

    def flops(self, input_shapes: Sequence[Shape], output_shape: Shape) -> int:
        return int(np.prod(output_shape)) * (len(input_shapes) - 1)

    def forward(
        self,
        xs: Sequence[np.ndarray],
        params: Dict[str, np.ndarray],
        ctx: Optional[OpContext],
        train: bool = True,
    ) -> np.ndarray:
        if ctx is not None:
            ctx.save_state("n_inputs", np.array([len(xs)]))
        out = xs[0].copy()
        for x in xs[1:]:
            out += x
        return out

    def backward(
        self,
        dy: np.ndarray,
        params: Dict[str, np.ndarray],
        ctx: OpContext,
    ) -> Tuple[List[np.ndarray], Dict[str, np.ndarray]]:
        n = int(ctx.get_state("n_inputs")[0])
        return [dy] + [dy.copy() for _ in range(n - 1)], {}
