"""Normalisation layers: spatial batch normalisation and AlexNet-style LRN.

Batch norm's backward pass needs its stashed input plus the small batch
statistics; the paper notes it is a good candidate for the orthogonal
*recompute* technique, but under Gist its stashed input is simply a
DPR-eligible "Other" feature map.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dtypes import FP32
from repro.layers.base import Layer, OpContext, Shape, StateSpec


class BatchNorm2D(Layer):
    """Per-channel batch normalisation over NCHW tensors."""

    kind = "batchnorm"
    backward_needs_input = True

    def __init__(self, momentum: float = 0.9, eps: float = 1e-5):
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if eps <= 0.0:
            raise ValueError(f"eps must be positive, got {eps}")
        self.momentum = momentum
        self.eps = eps
        # Running statistics are inference-time state, not learnable params;
        # kept on the layer, keyed per graph node by the executor.
        self._running: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        (shape,) = input_shapes
        return shape

    def param_shapes(self, input_shapes: Sequence[Shape]) -> Dict[str, Shape]:
        c = input_shapes[0][1]
        return {"gamma": (c,), "beta": (c,)}

    def flops(self, input_shapes: Sequence[Shape], output_shape: Shape) -> int:
        return 8 * int(np.prod(output_shape))

    def saved_state_specs(self, input_shapes, output_shape):
        c = input_shapes[0][1]
        return [StateSpec("mean", (c,), FP32), StateSpec("invstd", (c,), FP32)]

    def init_params(self, input_shapes, rng):
        c = input_shapes[0][1]
        return {
            "gamma": np.ones(c, dtype=np.float32),
            "beta": np.zeros(c, dtype=np.float32),
        }

    def forward(
        self,
        xs: Sequence[np.ndarray],
        params: Dict[str, np.ndarray],
        ctx: Optional[OpContext],
        train: bool = True,
    ) -> np.ndarray:
        (x,) = xs
        if train:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
        else:
            mean, var = self._running.get(
                id(params.get("gamma")),
                (np.zeros(x.shape[1], np.float32), np.ones(x.shape[1], np.float32)),
            )
        invstd = 1.0 / np.sqrt(var + self.eps)
        xhat = (x - mean[None, :, None, None]) * invstd[None, :, None, None]
        y = params["gamma"][None, :, None, None] * xhat
        y = y + params["beta"][None, :, None, None]
        if ctx is not None and train:
            ctx.save_state("mean", mean.astype(np.float32))
            ctx.save_state("invstd", invstd.astype(np.float32))
        if train:
            key = id(params.get("gamma"))
            rm, rv = self._running.get(
                key, (np.zeros_like(mean), np.ones_like(var))
            )
            m = self.momentum
            self._running[key] = (m * rm + (1 - m) * mean, m * rv + (1 - m) * var)
        return y.astype(np.float32, copy=False)

    def backward(
        self,
        dy: np.ndarray,
        params: Dict[str, np.ndarray],
        ctx: OpContext,
    ) -> Tuple[List[np.ndarray], Dict[str, np.ndarray]]:
        x = ctx.stashed_input()
        mean = ctx.get_state("mean")
        invstd = ctx.get_state("invstd")
        n, c, h, w = x.shape
        m = n * h * w
        xhat = (x - mean[None, :, None, None]) * invstd[None, :, None, None]
        dgamma = (dy * xhat).sum(axis=(0, 2, 3))
        dbeta = dy.sum(axis=(0, 2, 3))
        g = params["gamma"][None, :, None, None]
        dxhat = dy * g
        dx = (
            dxhat
            - dxhat.mean(axis=(0, 2, 3), keepdims=True)
            - xhat * (dxhat * xhat).sum(axis=(0, 2, 3), keepdims=True) / m
        ) * invstd[None, :, None, None]
        return [dx.astype(np.float32, copy=False)], {
            "gamma": dgamma.astype(np.float32),
            "beta": dbeta.astype(np.float32),
        }


class LocalResponseNorm(Layer):
    """Across-channel local response normalisation (AlexNet, Overfeat, NiN).

    ``y_i = x_i / (k + (alpha / n) * sum_{j in window(i)} x_j^2) ** beta``

    The backward pass reads both the stashed input and output, so LRN
    outputs fall in the "Other" stashed-feature-map class (DPR-eligible).
    """

    kind = "lrn"
    backward_needs_input = True
    backward_needs_output = True

    def __init__(self, size: int = 5, alpha: float = 1e-4, beta: float = 0.75, k: float = 2.0):
        if size <= 0 or size % 2 == 0:
            raise ValueError(f"LRN size must be a positive odd integer, got {size}")
        self.size = size
        self.alpha = alpha
        self.beta = beta
        self.k = k

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        (shape,) = input_shapes
        return shape

    def flops(self, input_shapes: Sequence[Shape], output_shape: Shape) -> int:
        return int(np.prod(output_shape)) * (self.size + 4)

    def _scale(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        sq = x * x
        half = self.size // 2
        # Sliding-window channel sum via cumulative sums.
        padded = np.zeros((n, c + 2 * half, h, w), dtype=x.dtype)
        padded[:, half : half + c] = sq
        csum = np.cumsum(padded, axis=1)
        window = np.empty_like(sq)
        window[:, 0] = csum[:, self.size - 1]
        window[:, 1:] = csum[:, self.size :] - csum[:, : c - 1]
        return self.k + (self.alpha / self.size) * window

    def forward(self, xs, params, ctx, train=True):
        (x,) = xs
        scale = self._scale(x)
        y = x * scale ** (-self.beta)
        if ctx is not None:
            ctx.save_state("scale", scale.astype(np.float32))
        return y.astype(np.float32, copy=False)

    def saved_state_specs(self, input_shapes, output_shape):
        return [StateSpec("scale", tuple(output_shape), FP32)]

    def backward(self, dy, params, ctx):
        x = ctx.stashed_input()
        y = ctx.stashed_output()
        scale = ctx.get_state("scale")
        n, c, h, w = x.shape
        half = self.size // 2
        # dL/dx_i = dy_i * scale_i^-beta
        #   - (2*alpha*beta/size) * x_i * sum_{j: i in window(j)} dy_j * y_j / scale_j
        ratio = dy * y / scale
        padded = np.zeros((n, c + 2 * half, h, w), dtype=x.dtype)
        padded[:, half : half + c] = ratio
        csum = np.cumsum(padded, axis=1)
        window = np.empty_like(ratio)
        window[:, 0] = csum[:, self.size - 1]
        window[:, 1:] = csum[:, self.size :] - csum[:, : c - 1]
        dx = dy * scale ** (-self.beta)
        dx -= (2.0 * self.alpha * self.beta / self.size) * x * window
        return [dx.astype(np.float32, copy=False)], {}
