"""Pooling layers.

Max-pool is central to the Binarize encoding: the baseline (CNTK) stashes
both its input ``X`` and output ``Y`` and re-derives the winning positions
in the backward pass.  Gist instead records a *Y-to-X argmax map* in the
forward pass — one window-local index per output element, 4 bits each for
windows up to 3x3 — after which the backward pass touches neither ``X`` nor
``Y`` (paper Section IV-A).  The runtime kernels here always compute that
map (it is also the fastest way to write the backward scatter in NumPy);
whether the *baseline memory model* charges for stashed X/Y or for the map
is decided by the memory planner, not by this class.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dtypes import NIBBLE4, UINT8
from repro.kernels.config import resolve_kernel_state
from repro.layers.base import Layer, OpContext, Shape, StateSpec
from repro.layers.im2col import conv_output_hw, im2col, im2col_reference


class _Pool2D(Layer):
    """Shared shape logic for spatial pooling ops."""

    def __init__(self, kernel, stride: int = None, pad: int = 0):
        self.kh, self.kw = (kernel, kernel) if isinstance(kernel, int) else kernel
        self.stride = stride if stride is not None else self.kh
        if self.stride <= 0:
            raise ValueError(f"stride must be positive, got {self.stride}")
        if pad < 0:
            raise ValueError(f"pad must be non-negative, got {pad}")
        self.pad = pad

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        (shape,) = input_shapes
        n, c, h, w = shape
        oh, ow = conv_output_hw(h, w, self.kh, self.kw, self.stride, self.pad)
        return (n, c, oh, ow)

    def flops(self, input_shapes: Sequence[Shape], output_shape: Shape) -> int:
        return int(np.prod(output_shape)) * self.kh * self.kw


class MaxPool2D(_Pool2D):
    """Max pooling with an explicit Y-to-X argmax map.

    The argmax map stores, per output element, which of the ``kh*kw`` window
    positions won — exactly the data structure Gist's Binarize optimisation
    adds for pool layers.
    """

    kind = "maxpool"
    # What the *baseline* framework stashes (paper: CNTK stores X and Y and
    # re-finds max locations in the backward pass).
    backward_needs_input = True
    backward_needs_output = True
    #: Marks this op as rewritable by Gist to use only the argmax map.
    supports_argmax_map = True
    #: The runtime kernels below already use the argmax map, so the
    #: executor never stashes X/Y (the *memory model* still charges the
    #: baseline for them via backward_needs_input/output above).
    runtime_backward_needs_input = False
    runtime_backward_needs_output = False

    def __init__(self, kernel, stride: int = None, pad: int = 0):
        super().__init__(kernel, stride, pad)
        if self.kh * self.kw > 256:
            raise ValueError(
                f"pool window {self.kh}x{self.kw} exceeds 8-bit argmax range"
            )

    def argmax_map_spec(self, output_shape: Shape) -> StateSpec:
        """The Y-to-X map's spec (one entry per output element).

        4 bits per entry for windows up to 16 positions (the paper's suite
        tops out at 3x3 = 9); 8 bits for larger windows.
        """
        dtype = NIBBLE4 if self.kh * self.kw <= 16 else UINT8
        return StateSpec("argmax", output_shape, dtype)

    def forward(
        self,
        xs: Sequence[np.ndarray],
        params: Dict[str, np.ndarray],
        ctx: Optional[OpContext],
        train: bool = True,
    ) -> np.ndarray:
        (x,) = xs
        n, c, h, w = x.shape
        oh, ow = conv_output_hw(h, w, self.kh, self.kw, self.stride, self.pad)
        enabled, arena = resolve_kernel_state(ctx)
        if enabled:
            from repro.kernels.backends import select_pool_backend

            backend = select_pool_backend(ctx, x, self.kh, self.kw,
                                          self.stride, self.pad)
            y, argmax = backend.forward(x, self.kh, self.kw, self.stride,
                                        self.pad, arena=arena)
            if ctx is not None:
                # The backward pass replays the same arm without needing
                # the (no longer live) input tensor for re-selection.
                ctx.save_state("pool_backend", backend.name)
        else:
            if self.pad > 0:
                x = np.pad(
                    x,
                    ((0, 0), (0, 0), (self.pad, self.pad), (self.pad, self.pad)),
                    mode="constant",
                    constant_values=-np.inf,
                )
            cols = im2col_reference(x, self.kh, self.kw, self.stride, 0)
            cols = cols.reshape(n, c, self.kh * self.kw, oh * ow)
            argmax = cols.argmax(axis=2).astype(np.uint8)
            y = np.take_along_axis(
                cols, argmax[:, :, None, :].astype(np.intp), axis=2
            )
            y = y[:, :, 0, :].reshape(n, c, oh, ow)
        if ctx is not None:
            ctx.save_state("argmax", argmax)
            ctx.save_state("in_shape", np.array(xs[0].shape))
        return y.astype(np.float32, copy=False)

    def backward(
        self,
        dy: np.ndarray,
        params: Dict[str, np.ndarray],
        ctx: OpContext,
    ) -> Tuple[List[np.ndarray], Dict[str, np.ndarray]]:
        argmax = ctx.get_state("argmax")
        n, c, h, w = (int(v) for v in ctx.get_state("in_shape"))
        oh, ow = conv_output_hw(h, w, self.kh, self.kw, self.stride, self.pad)
        enabled, arena = resolve_kernel_state(ctx)
        if enabled:
            from repro.kernels.backends import default_backend, get_backend

            try:
                name = ctx.get_state("pool_backend")
            except KeyError:
                name = None
            backend = (get_backend("maxpool2d", name) if name
                       else default_backend("maxpool2d"))
            return [backend.backward(argmax, dy, (n, c, h, w), self.kh,
                                     self.kw, self.stride, self.pad,
                                     arena=arena)], {}
        hp, wp = h + 2 * self.pad, w + 2 * self.pad
        dx = np.zeros((n, c, hp, wp), dtype=dy.dtype)
        # Decompose the window-local winner index into (di, dj) offsets and
        # scatter dY into the padded input at the winning locations.
        oy, ox = np.meshgrid(np.arange(oh), np.arange(ow), indexing="ij")
        base_i = (oy * self.stride).ravel()
        base_j = (ox * self.stride).ravel()
        amax = argmax.reshape(n, c, oh * ow)
        di = amax // self.kw
        dj = amax % self.kw
        rows = base_i[None, None, :] + di
        colsj = base_j[None, None, :] + dj
        nn = np.arange(n)[:, None, None]
        cc = np.arange(c)[None, :, None]
        np.add.at(dx, (nn, cc, rows, colsj), dy.reshape(n, c, oh * ow))
        if self.pad > 0:
            dx = dx[:, :, self.pad : self.pad + h, self.pad : self.pad + w]
        return [dx], {}


class ArgmaxMaxPool2D(MaxPool2D):
    """Max pooling whose *memory model* matches the argmax-map runtime.

    Produced by the rewrite layer's pool-argmax pass (paper Section IV-A
    promoted from an encoding-time rewrite to a graph transform): the
    kernels are inherited unchanged from :class:`MaxPool2D` — which
    already computes and replays the Y-to-X map — but the static
    backward-dependence flags now tell the memory planner the truth: the
    backward pass reads neither ``X`` nor ``Y``, only the 4-bit map
    declared in :meth:`saved_state_specs`.  Training is therefore
    bit-identical to the unrewritten pool while the planner stops
    charging for two stashed feature maps.
    """

    backward_needs_input = False
    backward_needs_output = False
    #: The argmax map is declared statically (saved_state_specs), so the
    #: Gist planners must not add their own ``.argmax`` tensor for it.
    argmax_map_static = True

    def saved_state_specs(
        self, input_shapes: Sequence[Shape], output_shape: Shape
    ) -> List[StateSpec]:
        return [self.argmax_map_spec(output_shape)]


class AvgPool2D(_Pool2D):
    """Average pooling.  Backward needs neither X nor Y — only shapes."""

    kind = "avgpool"
    backward_needs_input = False
    backward_needs_output = False

    def forward(
        self,
        xs: Sequence[np.ndarray],
        params: Dict[str, np.ndarray],
        ctx: Optional[OpContext],
        train: bool = True,
    ) -> np.ndarray:
        (x,) = xs
        n, c, h, w = x.shape
        oh, ow = conv_output_hw(h, w, self.kh, self.kw, self.stride, self.pad)
        enabled, arena = resolve_kernel_state(ctx)
        cols = im2col(x, self.kh, self.kw, self.stride, self.pad,
                      arena=arena, enabled=enabled)
        rented = cols
        cols = cols.reshape(n, c, self.kh * self.kw, oh * ow)
        y = cols.mean(axis=2).reshape(n, c, oh, ow)
        if enabled and arena is not None:
            arena.release(rented)
        if ctx is not None:
            ctx.save_state("in_shape", np.array(x.shape))
        return y.astype(np.float32, copy=False)

    def backward(self, dy, params, ctx):
        from repro.layers.im2col import col2im

        n, c, h, w = (int(v) for v in ctx.get_state("in_shape"))
        oh, ow = conv_output_hw(h, w, self.kh, self.kw, self.stride, self.pad)
        scale = 1.0 / (self.kh * self.kw)
        enabled, arena = resolve_kernel_state(ctx)
        scaled = (dy * scale).reshape(n, c, 1, oh * ow)
        if enabled and arena is not None:
            dcols = arena.rent((n, c * self.kh * self.kw, oh * ow), dy.dtype)
            dcols.reshape(n, c, self.kh * self.kw, oh * ow)[:] = scaled
        else:
            dcols = np.ascontiguousarray(np.broadcast_to(
                scaled, (n, c, self.kh * self.kw, oh * ow)
            ).reshape(n, c * self.kh * self.kw, oh * ow))
        dx = col2im(dcols, (n, c, h, w), self.kh, self.kw, self.stride,
                    self.pad, arena=arena, enabled=enabled)
        if enabled and arena is not None:
            arena.release(dcols)
        return [dx], {}


class GlobalAvgPool2D(Layer):
    """Average over all spatial positions, producing (N, C, 1, 1)."""

    kind = "gavgpool"

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        (shape,) = input_shapes
        n, c, _, _ = shape
        return (n, c, 1, 1)

    def flops(self, input_shapes: Sequence[Shape], output_shape: Shape) -> int:
        return int(np.prod(input_shapes[0]))

    def forward(self, xs, params, ctx, train=True):
        (x,) = xs
        if ctx is not None:
            ctx.save_state("in_shape", np.array(x.shape))
        return x.mean(axis=(2, 3), keepdims=True)

    def backward(self, dy, params, ctx):
        n, c, h, w = (int(v) for v in ctx.get_state("in_shape"))
        dx = np.broadcast_to(dy / (h * w), (n, c, h, w)).astype(dy.dtype)
        return [np.ascontiguousarray(dx)], {}
