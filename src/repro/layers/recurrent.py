"""Recurrent cells unrolled into the static training graph.

Gist's planner, stash classifier and rewrite passes all operate on a
static DAG, so recurrence is expressed the way Echo (PAPERS.md) treats
it: the cell is *unrolled* — one :class:`LSTMStep`/:class:`RNNStep` node
per timestep — and every step node shares one weight holder
(:class:`LSTMCell`/:class:`RNNCell`).  The unrolled graph then gets
per-timestep feature maps the existing machinery prices for free:

* each step stashes its inputs (``x_t`` and the previous state), which
  classify as ``STASH_OTHER`` — identity under lossless policies, so
  recurrent training is bit-identical to the baseline there;
* step outputs form long single-consumer chains, exactly the shape on
  which recomputation-based footprint reduction pays off most (Echo's
  headline result);
* weight sharing is physical: every step's ``init_params`` returns the
  *same* ndarrays, so the optimiser's sequential in-place updates on the
  tied arrays sum to the single tied update (momentum is linear), and
  replica parameter installs (which write through ``params[name][...]``)
  keep the tie intact.

Sharing discipline: only the ``t == 0`` step *owns* the parameters for
static accounting (``param_shapes`` of later steps is empty, so liveness
and MFR count the weights once), but every step's runtime ``params``
dict aliases the owner's arrays.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.layers.base import Layer, OpContext, Shape


def _sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function (same form as layers.Sigmoid)."""
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


class _SharedCell:
    """Weight holder shared by every step node of one unrolled column.

    ``params_for`` caches the drawn arrays keyed on the *identity* of the
    initialisation generator: the executor threads a single generator
    through all nodes' ``init_params`` in topological order, so the
    ``t == 0`` owner draws and every later step receives the same ndarray
    objects (physical tying).  A different executor passes a different
    generator object, which misses the cache and redraws — the cell keeps
    a strong reference to the cached generator, so its identity can never
    be recycled while the cache is alive.
    """

    def __init__(self, input_size: int, hidden_size: int):
        if input_size <= 0 or hidden_size <= 0:
            raise ValueError(
                f"cell sizes must be positive, got input_size={input_size}, "
                f"hidden_size={hidden_size}"
            )
        self.input_size = int(input_size)
        self.hidden_size = int(hidden_size)
        self._rng: Optional[np.random.Generator] = None
        self._params: Optional[Dict[str, np.ndarray]] = None

    def param_shapes(self) -> Dict[str, Shape]:
        raise NotImplementedError

    def _draw(self, rng: np.random.Generator) -> Dict[str, np.ndarray]:
        raise NotImplementedError

    def params_for(self, rng: np.random.Generator) -> Dict[str, np.ndarray]:
        """The tied parameter arrays for one executor's init pass."""
        if self._rng is not rng or self._params is None:
            self._params = self._draw(rng)
            self._rng = rng
        return dict(self._params)


class LSTMCell(_SharedCell):
    """Shared LSTM weights: one gate-stacked ``(Wx, Wh, b)`` triple.

    Gate layout along the last axis is ``[i, f, g, o]`` (input, forget,
    cell candidate, output).  The forget-gate bias initialises to 1.0 —
    the standard trick that keeps early gradients flowing through the
    cell state.
    """

    def param_shapes(self) -> Dict[str, Shape]:
        """Gate-stacked shapes: ``Wx (F,4H)``, ``Wh (H,4H)``, ``b (4H,)``."""
        f, h = self.input_size, self.hidden_size
        return {"Wx": (f, 4 * h), "Wh": (h, 4 * h), "b": (4 * h,)}

    def _draw(self, rng: np.random.Generator) -> Dict[str, np.ndarray]:
        f, h = self.input_size, self.hidden_size
        wx = rng.normal(0.0, 1.0 / np.sqrt(f), (f, 4 * h))
        wh = rng.normal(0.0, 1.0 / np.sqrt(h), (h, 4 * h))
        b = np.zeros(4 * h, dtype=np.float32)
        b[h:2 * h] = 1.0  # forget-gate bias
        return {
            "Wx": wx.astype(np.float32),
            "Wh": wh.astype(np.float32),
            "b": b,
        }


class RNNCell(_SharedCell):
    """Shared vanilla-RNN weights for a ``tanh`` cell."""

    def param_shapes(self) -> Dict[str, Shape]:
        """Single-gate shapes: ``Wx (F,H)``, ``Wh (H,H)``, ``b (H,)``."""
        f, h = self.input_size, self.hidden_size
        return {"Wx": (f, h), "Wh": (h, h), "b": (h,)}

    def _draw(self, rng: np.random.Generator) -> Dict[str, np.ndarray]:
        f, h = self.input_size, self.hidden_size
        wx = rng.normal(0.0, 1.0 / np.sqrt(f), (f, h))
        wh = rng.normal(0.0, 1.0 / np.sqrt(h), (h, h))
        return {
            "Wx": wx.astype(np.float32),
            "Wh": wh.astype(np.float32),
            "b": np.zeros(h, dtype=np.float32),
        }


class TimeSlice(Layer):
    """Extract timestep ``t`` of a ``(batch, seq_len, features)`` sequence.

    The slice is materialised as a contiguous copy (not a view), so the
    per-timestep map is an ordinary feature map the planner can price
    independently of the full sequence buffer.
    """

    kind = "time_slice"

    def __init__(self, t: int, seq_len: int):
        if not 0 <= t < seq_len:
            raise ValueError(f"t={t} outside sequence of length {seq_len}")
        self.t = int(t)
        self.seq_len = int(seq_len)

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        (shape,) = input_shapes
        if len(shape) != 3:
            raise ValueError(
                f"TimeSlice expects (batch, seq_len, features), got {shape}"
            )
        if shape[1] != self.seq_len:
            raise ValueError(
                f"TimeSlice built for seq_len={self.seq_len}, input has "
                f"{shape[1]} timesteps"
            )
        return (shape[0], shape[2])

    def flops(self, input_shapes: Sequence[Shape], output_shape: Shape) -> int:
        return 0

    def forward(self, xs, params, ctx, train=True):
        (x,) = xs
        return np.ascontiguousarray(x[:, self.t, :])

    def backward(self, dy, params, ctx):
        batch, features = dy.shape
        dx = np.zeros((batch, self.seq_len, features), dtype=dy.dtype)
        dx[:, self.t, :] = dy
        return [dx], {}


class StateSlice(Layer):
    """Extract ``h`` (or ``c``) from an LSTM step's ``[h, c]`` state.

    Step nodes emit the concatenated ``(batch, 2*hidden)`` state so each
    timestep stays a single-output graph node; the head of the network
    reads the hidden half through this op.
    """

    kind = "state_slice"

    def __init__(self, hidden_size: int, part: str = "h"):
        if part not in ("h", "c"):
            raise ValueError(f"part must be 'h' or 'c', got {part!r}")
        self.hidden_size = int(hidden_size)
        self.part = part

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        (shape,) = input_shapes
        if len(shape) != 2 or shape[1] != 2 * self.hidden_size:
            raise ValueError(
                f"StateSlice expects (batch, {2 * self.hidden_size}), "
                f"got {shape}"
            )
        return (shape[0], self.hidden_size)

    def flops(self, input_shapes: Sequence[Shape], output_shape: Shape) -> int:
        return 0

    def _bounds(self) -> Tuple[int, int]:
        h = self.hidden_size
        return (0, h) if self.part == "h" else (h, 2 * h)

    def forward(self, xs, params, ctx, train=True):
        (state,) = xs
        lo, hi = self._bounds()
        return np.ascontiguousarray(state[:, lo:hi])

    def backward(self, dy, params, ctx):
        lo, hi = self._bounds()
        dstate = np.zeros((dy.shape[0], 2 * self.hidden_size), dtype=dy.dtype)
        dstate[:, lo:hi] = dy
        return [dstate], {}


class LSTMStep(Layer):
    """One unrolled LSTM timestep over a shared :class:`LSTMCell`.

    Inputs: ``[x_t]`` for ``t == 0`` (the initial state is zero), else
    ``[x_t, state_{t-1}]``.  Output: the ``(batch, 2*hidden)`` state
    ``[h_t, c_t]``.  The backward pass recomputes the gates from the
    stashed *inputs* (Echo-style), so no gate activations are stashed —
    per-timestep memory is exactly ``x_t`` plus the previous state.
    """

    kind = "lstm_step"
    backward_needs_input = True
    backward_needs_output = False

    def __init__(self, cell: LSTMCell, t: int):
        if t < 0:
            raise ValueError(f"timestep must be >= 0, got {t}")
        self._cell = cell
        self.t = int(t)
        self.input_size = cell.input_size
        self.hidden_size = cell.hidden_size

    @property
    def cell(self) -> LSTMCell:
        """The shared weight holder (identity defines the tie group)."""
        return self._cell

    @property
    def owns_params(self) -> bool:
        """Whether this step statically accounts for the tied weights."""
        return self.t == 0

    def _check_inputs(self, input_shapes: Sequence[Shape]) -> None:
        expect = 1 if self.t == 0 else 2
        if len(input_shapes) != expect:
            raise ValueError(
                f"lstm_step t={self.t} expects {expect} input(s), "
                f"got {len(input_shapes)}"
            )
        x = input_shapes[0]
        if len(x) != 2 or x[1] != self.input_size:
            raise ValueError(
                f"lstm_step input must be (batch, {self.input_size}), "
                f"got {x}"
            )
        if self.t > 0:
            state = input_shapes[1]
            if state != (x[0], 2 * self.hidden_size):
                raise ValueError(
                    f"lstm_step state must be "
                    f"({x[0]}, {2 * self.hidden_size}), got {state}"
                )

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        self._check_inputs(input_shapes)
        return (input_shapes[0][0], 2 * self.hidden_size)

    def param_shapes(self, input_shapes: Sequence[Shape]) -> Dict[str, Shape]:
        # Later steps alias the t=0 owner's arrays at runtime; reporting
        # empty shapes here is what makes liveness/MFR count tied weights
        # exactly once.
        return self._cell.param_shapes() if self.owns_params else {}

    def init_params(self, input_shapes, rng) -> Dict[str, np.ndarray]:
        return self._cell.params_for(rng)

    def flops(self, input_shapes: Sequence[Shape], output_shape: Shape) -> int:
        batch = output_shape[0]
        f, h = self.input_size, self.hidden_size
        return 2 * batch * 4 * h * (f + h) + 10 * batch * h

    def _split_state(self, state: Optional[np.ndarray], batch: int):
        h = self.hidden_size
        if state is None:
            zeros = np.zeros((batch, h), dtype=np.float32)
            return zeros, zeros
        return state[:, :h], state[:, h:]

    def _gates(self, x, h_prev, params):
        h = self.hidden_size
        z = x @ params["Wx"] + h_prev @ params["Wh"] + params["b"]
        i = _sigmoid(z[:, :h])
        f = _sigmoid(z[:, h:2 * h])
        g = np.tanh(z[:, 2 * h:3 * h])
        o = _sigmoid(z[:, 3 * h:])
        return i, f, g, o

    def forward(self, xs, params, ctx, train=True):
        x = xs[0]
        state = xs[1] if self.t > 0 else None
        h_prev, c_prev = self._split_state(state, x.shape[0])
        i, f, g, o = self._gates(x, h_prev, params)
        c = f * c_prev + i * g
        h = o * np.tanh(c)
        return np.concatenate([h, c], axis=1)

    def backward(self, dy, params, ctx):
        x = ctx.stashed_input(0)
        state = ctx.stashed_input(1) if self.t > 0 else None
        h_prev, c_prev = self._split_state(state, x.shape[0])
        # Recompute the gates from the stashed inputs: the same numpy ops
        # as forward, so the replay is bit-identical.
        i, f, g, o = self._gates(x, h_prev, params)
        c = f * c_prev + i * g
        tc = np.tanh(c)

        hsz = self.hidden_size
        dh, dc_out = dy[:, :hsz], dy[:, hsz:]
        do = dh * tc
        dc = dc_out + dh * o * (1.0 - tc * tc)
        di = dc * g
        df = dc * c_prev
        dg = dc * i
        dz = np.concatenate(
            [
                di * i * (1.0 - i),
                df * f * (1.0 - f),
                dg * (1.0 - g * g),
                do * o * (1.0 - o),
            ],
            axis=1,
        )
        dx = dz @ params["Wx"].T
        dparams = {
            "Wx": x.T @ dz,
            "Wh": h_prev.T @ dz,
            "b": dz.sum(axis=0),
        }
        if self.t == 0:
            return [dx], dparams
        dstate = np.concatenate([dz @ params["Wh"].T, dc * f], axis=1)
        return [dx, dstate], dparams


class RNNStep(Layer):
    """One unrolled ``tanh`` RNN timestep over a shared :class:`RNNCell`.

    Inputs mirror :class:`LSTMStep`; the state is just ``h_t`` (shape
    ``(batch, hidden)``), and the backward pass reads the stashed output
    for the ``tanh`` derivative plus the stashed inputs for the matmuls.
    """

    kind = "rnn_step"
    backward_needs_input = True
    backward_needs_output = True

    def __init__(self, cell: RNNCell, t: int):
        if t < 0:
            raise ValueError(f"timestep must be >= 0, got {t}")
        self._cell = cell
        self.t = int(t)
        self.input_size = cell.input_size
        self.hidden_size = cell.hidden_size

    @property
    def cell(self) -> RNNCell:
        """The shared weight holder (identity defines the tie group)."""
        return self._cell

    @property
    def owns_params(self) -> bool:
        """Whether this step statically accounts for the tied weights."""
        return self.t == 0

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        expect = 1 if self.t == 0 else 2
        if len(input_shapes) != expect:
            raise ValueError(
                f"rnn_step t={self.t} expects {expect} input(s), "
                f"got {len(input_shapes)}"
            )
        x = input_shapes[0]
        if len(x) != 2 or x[1] != self.input_size:
            raise ValueError(
                f"rnn_step input must be (batch, {self.input_size}), got {x}"
            )
        if self.t > 0 and input_shapes[1] != (x[0], self.hidden_size):
            raise ValueError(
                f"rnn_step state must be ({x[0]}, {self.hidden_size}), "
                f"got {input_shapes[1]}"
            )
        return (x[0], self.hidden_size)

    def param_shapes(self, input_shapes: Sequence[Shape]) -> Dict[str, Shape]:
        return self._cell.param_shapes() if self.owns_params else {}

    def init_params(self, input_shapes, rng) -> Dict[str, np.ndarray]:
        return self._cell.params_for(rng)

    def flops(self, input_shapes: Sequence[Shape], output_shape: Shape) -> int:
        batch = output_shape[0]
        f, h = self.input_size, self.hidden_size
        return 2 * batch * h * (f + h) + 4 * batch * h

    def forward(self, xs, params, ctx, train=True):
        x = xs[0]
        z = x @ params["Wx"] + params["b"]
        if self.t > 0:
            z = z + xs[1] @ params["Wh"]
        return np.tanh(z)

    def backward(self, dy, params, ctx):
        x = ctx.stashed_input(0)
        y = ctx.stashed_output()
        dz = dy * (1.0 - y * y)
        dx = dz @ params["Wx"].T
        dparams = {
            "Wx": x.T @ dz,
            "Wh": (
                ctx.stashed_input(1).T @ dz if self.t > 0
                else np.zeros_like(params["Wh"])
            ),
            "b": dz.sum(axis=0),
        }
        if self.t == 0:
            return [dx], dparams
        dstate = dz @ params["Wh"].T
        return [dx, dstate], dparams
