"""Shape-manipulation layers (no arithmetic, no stash)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.layers.base import Layer, OpContext, Shape


class Flatten(Layer):
    """Collapse all non-batch dimensions into one."""

    kind = "flatten"
    supports_inplace = True
    #: forward returns a reshaped *view*: the output shares the input's
    #: buffer, so an inplace consumer overwriting it would also overwrite
    #: the upstream producer's output (see ``inplace_eligible_edges``).
    aliases_input = True

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        (shape,) = input_shapes
        return (shape[0], int(np.prod(shape[1:])))

    def forward(
        self,
        xs: Sequence[np.ndarray],
        params: Dict[str, np.ndarray],
        ctx: Optional[OpContext],
        train: bool = True,
    ) -> np.ndarray:
        (x,) = xs
        if ctx is not None:
            ctx.save_state("in_shape", np.array(x.shape))
        return x.reshape(x.shape[0], -1)

    def backward(
        self,
        dy: np.ndarray,
        params: Dict[str, np.ndarray],
        ctx: OpContext,
    ) -> Tuple[List[np.ndarray], Dict[str, np.ndarray]]:
        in_shape = tuple(int(v) for v in ctx.get_state("in_shape"))
        return [dy.reshape(in_shape)], {}
