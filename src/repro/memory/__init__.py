"""Memory subsystem: liveness-driven planning, CNTK-style static sharing
allocation, dynamic-allocation simulation and footprint reporting."""

from repro.memory.allocator import (
    AllocationGroup,
    AllocationResult,
    POLICY_FIRST_FIT,
    POLICY_GREEDY_SIZE,
    POLICY_NO_SHARING,
    StaticAllocator,
    static_footprint,
)
from repro.memory.dynamic import DynamicResult, dynamic_footprint, simulate_dynamic
from repro.memory.footprint import (
    FootprintReport,
    GiB,
    MiB,
    measure_dynamic,
    measure_static,
    memory_footprint_ratio,
)
from repro.memory.recompute import (
    RecomputePlan,
    build_recompute_plan,
    trunk_nodes,
)
from repro.memory.planner import (
    ALL_CLASSES,
    CLASS_ENCODED,
    CLASS_GRADIENT,
    CLASS_IMMEDIATE,
    CLASS_SAVED_STATE,
    CLASS_STASHED,
    CLASS_WEIGHT,
    CLASS_WEIGHT_GRAD,
    CLASS_WORKSPACE,
    MemoryPlan,
    build_memory_plan,
)

__all__ = [
    "ALL_CLASSES",
    "AllocationGroup",
    "AllocationResult",
    "CLASS_ENCODED",
    "CLASS_GRADIENT",
    "CLASS_IMMEDIATE",
    "CLASS_SAVED_STATE",
    "CLASS_STASHED",
    "CLASS_WEIGHT",
    "CLASS_WEIGHT_GRAD",
    "CLASS_WORKSPACE",
    "DynamicResult",
    "FootprintReport",
    "GiB",
    "MiB",
    "MemoryPlan",
    "POLICY_FIRST_FIT",
    "POLICY_GREEDY_SIZE",
    "RecomputePlan",
    "POLICY_NO_SHARING",
    "StaticAllocator",
    "build_memory_plan",
    "build_recompute_plan",
    "trunk_nodes",
    "dynamic_footprint",
    "measure_dynamic",
    "measure_static",
    "memory_footprint_ratio",
    "simulate_dynamic",
    "static_footprint",
]
