"""CNTK-style static memory-sharing allocator.

The paper (Section IV-C): *"The memory allocator creates groups of data
structures whose lifetimes do not overlap and thus can share the same
memory space.  [...] the size of this group is the largest size of the
member within the group [...] it first sorts the data structures on the
basis of size, and then forms these groups, so that large data structures
can share the same memory space."*

This module reimplements exactly that greedy policy, plus two ablation
policies (first-fit in insertion order, and no sharing) used by the
allocator ablation bench.
"""

from __future__ import annotations

import bisect

from dataclasses import dataclass, field
from typing import List, Sequence


from repro.graph.liveness import LiveTensor

POLICY_GREEDY_SIZE = "greedy-size"
POLICY_FIRST_FIT = "first-fit"
POLICY_NO_SHARING = "none"

_POLICIES = (POLICY_GREEDY_SIZE, POLICY_FIRST_FIT, POLICY_NO_SHARING)


@dataclass
class AllocationGroup:
    """A set of tensors sharing one memory region."""

    members: List[LiveTensor] = field(default_factory=list)
    #: Whether new tensors may be added (False for dedicated groups that
    #: hold a single non-shareable tensor).
    open: bool = True
    #: True for a physical-aliasing group (same ``alias_group`` label on
    #: every member): the members are *views of one buffer*, so their
    #: lifetimes may overlap — the region is still sized by the largest
    #: member, which is exactly the shared-concat growing buffer.
    aliased: bool = False

    @property
    def size_bytes(self) -> int:
        """Region size: the largest member."""
        return max((t.size_bytes for t in self.members), default=0)


@dataclass
class AllocationResult:
    """Outcome of a static allocation."""

    groups: List[AllocationGroup]
    policy: str

    @property
    def total_bytes(self) -> int:
        """Total static footprint: sum of group sizes."""
        return sum(g.size_bytes for g in self.groups)

    @property
    def unshared_bytes(self) -> int:
        """Footprint had every tensor received dedicated space."""
        return sum(t.size_bytes for g in self.groups for t in g.members)

    @property
    def sharing_ratio(self) -> float:
        """unshared / shared — how much the allocator saved."""
        total = self.total_bytes
        return self.unshared_bytes / total if total else 1.0

    def group_of(self, tensor_name: str) -> AllocationGroup:
        """The group containing the named tensor."""
        for group in self.groups:
            for t in group.members:
                if t.spec.name == tensor_name:
                    return group
        raise KeyError(f"tensor {tensor_name!r} not in any group")


class StaticAllocator:
    """Groups tensors with disjoint lifetimes into shared regions.

    Args:
        policy: One of ``"greedy-size"`` (the CNTK policy), ``"first-fit"``
            (no size sorting — ablation) or ``"none"`` (no sharing).
        horizon: Schedule length, used only to *validate* that every
            tensor's lifetime fits the schedule (``allocate`` raises if a
            death reaches past it).  Inferred from the tensors if omitted;
            pass it explicitly when allocating a subset of a plan so the
            check still sees the full schedule.  (Overlap testing itself
            needs no occupancy structure: each group keeps its member
            intervals as sorted birth/death lists and two bisects decide
            whether a candidate interval fits.)
    """

    def __init__(self, policy: str = POLICY_GREEDY_SIZE, horizon: int = 0):
        if policy not in _POLICIES:
            raise ValueError(f"unknown policy {policy!r}; choose from {_POLICIES}")
        self.policy = policy
        self.horizon = horizon

    def allocate(self, tensors: Sequence[LiveTensor]) -> AllocationResult:
        """Assign every tensor to a group; returns the grouping."""
        tensors = list(tensors)
        horizon = self.horizon or (
            max((t.death for t in tensors), default=0) + 1
        )
        if any(t.death >= horizon for t in tensors):
            raise ValueError("allocation horizon shorter than tensor lifetimes")

        share = self.policy != POLICY_NO_SHARING

        # Physical-aliasing sets first: tensors labelled with the same
        # alias_group are views of one buffer, so they form one region
        # regardless of lifetime overlap.  Under the no-sharing ablation
        # the label is ignored and every tensor gets dedicated space.
        groups: List[AllocationGroup] = []
        if share:
            aliased: dict = {}
            rest: List[LiveTensor] = []
            for tensor in tensors:
                label = tensor.alias_group
                if label is not None and tensor.shareable:
                    aliased.setdefault(label, []).append(tensor)
                else:
                    rest.append(tensor)
            for label in sorted(aliased):
                groups.append(
                    AllocationGroup(aliased[label], open=False, aliased=True)
                )
            tensors = rest

        if self.policy == POLICY_GREEDY_SIZE:
            # Stable deterministic order: size descending, then name.
            order = sorted(
                tensors, key=lambda t: (-t.size_bytes, t.spec.name)
            )
        else:
            order = tensors

        # For each *open* group, the member intervals as two parallel
        # sorted lists (births, deaths) — disjoint by construction, so an
        # overlap test is two bisects instead of an O(horizon) scan.
        open_groups: List[AllocationGroup] = []
        births: List[List[int]] = []
        deaths: List[List[int]] = []

        for tensor in order:
            placed = False
            if share and tensor.shareable:
                b, d = tensor.birth, tensor.death
                for group, g_births, g_deaths in zip(open_groups, births,
                                                     deaths):
                    # Candidate slot: after the last interval that starts
                    # before b.  Fits iff that interval ends before b and
                    # the next one starts after d.
                    idx = bisect.bisect_left(g_births, b)
                    if idx > 0 and g_deaths[idx - 1] >= b:
                        continue
                    if idx < len(g_births) and g_births[idx] <= d:
                        continue
                    group.members.append(tensor)
                    g_births.insert(idx, b)
                    g_deaths.insert(idx, d)
                    placed = True
                    break
            if not placed:
                group = AllocationGroup([tensor], open=share and tensor.shareable)
                groups.append(group)
                if group.open:
                    open_groups.append(group)
                    births.append([tensor.birth])
                    deaths.append([tensor.death])

        return AllocationResult(groups, self.policy)


def static_footprint(
    tensors: Sequence[LiveTensor], policy: str = POLICY_GREEDY_SIZE
) -> int:
    """Convenience wrapper: total static footprint in bytes."""
    return StaticAllocator(policy).allocate(tensors).total_bytes
