"""Dynamic-allocation simulator (paper Section V-H).

Under dynamic allocation, a region exists only while its tensor is live,
so the footprint is the *peak* of the sum of live sizes over the schedule.
The paper uses this to ask how much headroom remains if hardware made
``cudaMalloc`` free — and shows Gist still composes with it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.graph.liveness import LiveTensor


@dataclass(frozen=True)
class DynamicResult:
    """Peak footprint and the time step at which it occurs."""

    peak_bytes: int
    peak_time: int
    timeline: Tuple[int, ...]

    @property
    def average_bytes(self) -> float:
        """Mean live bytes over the schedule."""
        return sum(self.timeline) / len(self.timeline) if self.timeline else 0.0


def simulate_dynamic(tensors: Sequence[LiveTensor], horizon: int = 0) -> DynamicResult:
    """Peak live bytes assuming allocate-at-birth / free-after-death.

    Args:
        tensors: Liveness table.
        horizon: Schedule length (inferred if omitted).
    """
    if not tensors:
        return DynamicResult(0, 0, ())
    horizon = horizon or (max(t.death for t in tensors) + 1)
    deltas: List[int] = [0] * (horizon + 1)
    for t in tensors:
        if t.death >= horizon:
            raise ValueError(
                f"tensor {t.spec.name!r} dies at {t.death}, beyond horizon {horizon}"
            )
        deltas[t.birth] += t.size_bytes
        deltas[t.death + 1] -= t.size_bytes
    timeline: List[int] = []
    live = 0
    for t_idx in range(horizon):
        live += deltas[t_idx]
        timeline.append(live)
    peak = max(timeline)
    return DynamicResult(peak, timeline.index(peak), tuple(timeline))


def dynamic_footprint(tensors: Sequence[LiveTensor]) -> int:
    """Convenience wrapper: peak dynamic footprint in bytes."""
    return simulate_dynamic(tensors).peak_bytes
