"""Footprint reports and the paper's Memory Footprint Ratio (MFR) metric."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.memory.allocator import POLICY_GREEDY_SIZE, StaticAllocator
from repro.memory.dynamic import simulate_dynamic
from repro.memory.planner import ALL_CLASSES, MemoryPlan

MiB = 1024 * 1024
GiB = 1024 * MiB


@dataclass(frozen=True)
class FootprintReport:
    """Memory accounting for one plan under one allocation discipline."""

    model: str
    allocated_bytes: int
    raw_bytes_by_class: Dict[str, int]

    @property
    def raw_total_bytes(self) -> int:
        """Unshared total across all classes."""
        return sum(self.raw_bytes_by_class.values())

    def fraction(self, class_name: str) -> float:
        """Share of the raw total attributable to one class."""
        total = self.raw_total_bytes
        return self.raw_bytes_by_class.get(class_name, 0) / total if total else 0.0

    def format_table(self) -> str:
        """Human-readable per-class breakdown."""
        lines = [f"{self.model}: allocated {self.allocated_bytes / GiB:.3f} GiB "
                 f"(raw {self.raw_total_bytes / GiB:.3f} GiB)"]
        for cls in ALL_CLASSES:
            nbytes = self.raw_bytes_by_class.get(cls, 0)
            if nbytes == 0:
                continue
            lines.append(
                f"  {cls:<24} {nbytes / MiB:10.1f} MiB  ({self.fraction(cls):5.1%})"
            )
        return "\n".join(lines)


def measure_static(plan: MemoryPlan, policy: str = POLICY_GREEDY_SIZE) -> FootprintReport:
    """Allocate the plan statically and report."""
    result = StaticAllocator(policy).allocate(plan.tensors)
    return FootprintReport(plan.graph.name, result.total_bytes, plan.bytes_by_class())


def measure_dynamic(plan: MemoryPlan) -> FootprintReport:
    """Simulate dynamic allocation and report peak footprint."""
    result = simulate_dynamic(plan.tensors, plan.schedule.num_steps)
    return FootprintReport(plan.graph.name, result.peak_bytes, plan.bytes_by_class())


def memory_footprint_ratio(baseline_bytes: int, encoded_bytes: int) -> float:
    """The paper's comparison metric:

    ``MFR = footprint(baseline) / footprint(after encoding)``.

    Raises:
        ValueError: If the encoded footprint is zero.
    """
    if encoded_bytes <= 0:
        raise ValueError(f"encoded footprint must be positive, got {encoded_bytes}")
    return baseline_bytes / encoded_bytes
