"""Hybrid memory planner: encode x recompute x swap, priced per tensor.

Gist's Schedule Builder picks one encoding per stashed feature map.  The
repo also carries the two rival footprint levers as isolated baselines —
segment recomputation (:mod:`repro.memory.recompute`) and host-swap
modeling (:mod:`repro.perf.swap`) — but never combines them, even though
cost-model-driven selection across techniques (Echo, the Compressing DMA
Engine) beats any single one.  This module closes that gap:

for every stashed feature map, price three options with the roofline
cost model —

* **Gist encoding** — the existing per-class choice (Binarize / SSDC /
  DPR); cost is the codec's bandwidth passes;
* **recompute** — drop the map after its last forward use and re-execute
  the forward chain from the cheapest *value-exact* ancestor during the
  backward pass; cost is the chain's forward kernel time
  (:func:`repro.memory.recompute.chain_forward_seconds`);
* **host swap** — offload over PCIe after the forward use, prefetch
  before the backward use; cost is the un-hidden fraction of the two
  transfers, calibrated per graph against the vDNN event simulation —

then select greedily by bytes-saved per second of overhead under a
step-time budget, and emit a unified :class:`~repro.memory.planner.MemoryPlan`
that the static allocator prices and the executor runs.

Strategy arms: ``build_hybrid_plan(graph, policy.with_(strategy=...))``
restricts the planner to a single lever, which yields the pure-gist /
pure-recompute / pure-swap baselines *under the same budget and the same
structural rewrites* — the apples-to-apples comparison the bench gate
and the plan-safety oracle rely on.  The hybrid arm additionally adopts
the best pure selection outright whenever greedy mixing did not beat it,
so ``hybrid footprint <= min(pure footprints)`` holds structurally.

Unlike the Schedule Builder this planner never merges inplace pairs:
all four arms share the same base liveness table, so footprint deltas
are attributable to the per-tensor decisions alone.

Execution: :class:`repro.train.stash.HybridExecutionPolicy` turns a
:class:`HybridPlan` into stash-layer behaviour — codecs for gist
choices, a host-buffer identity codec for swaps, and
:class:`RecomputeDirective`\\ s the executor replays (bit-identically,
because chains exclude RNG/state-mutating layers and sources are pinned
to value-exact choices).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.dtypes import BIT1, DPR_FORMATS, UINT8
from repro.encodings.ssdc import csr_bytes
from repro.graph.graph import Graph
from repro.graph.liveness import (
    LiveTensor,
    ROLE_DECODED,
    ROLE_ENCODED,
    ROLE_FEATURE_MAP,
    ROLE_WORKSPACE,
)
from repro.graph.schedule import TrainingSchedule
from repro.memory.allocator import StaticAllocator
from repro.memory.planner import MemoryPlan, build_memory_plan
from repro.memory.recompute import chain_forward_seconds
from repro.tensor.categories import TensorCategory
from repro.tensor.spec import TensorSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.sparsity import SparsityModel
    from repro.core.policy import HybridPolicy
    from repro.perf.cost import CostModel

# Per-tensor decision labels.
CHOICE_KEEP = "keep"
CHOICE_GIST = "gist"
CHOICE_RECOMPUTE = "recompute"
CHOICE_SWAP = "swap"
#: The DenseNet shared-concat-buffer arm: the map is a bit-exact channel
#: prefix of a downstream concat chain's terminal, so its private stash
#: is dropped and the backward read re-slices the terminal's kept buffer.
CHOICE_SHARED_CONCAT = "shared_concat"
ALL_CHOICES = (CHOICE_KEEP, CHOICE_GIST, CHOICE_RECOMPUTE, CHOICE_SWAP,
               CHOICE_SHARED_CONCAT)

#: Layer kinds that can never appear *inside* a recompute chain:
#: re-running their forward pass is not deterministic and side-effect-free
#: (dropout draws from an RNG, batch norm updates running statistics), or
#: they are not ops at all (input) / must not re-run (loss).
NON_RECOMPUTABLE_KINDS = frozenset({"dropout", "batchnorm", "input", "loss"})

#: Choices a recompute *source* may carry.  The chain is re-executed from
#: the source's decoded stash, so that decode must reproduce the exact
#: forward values: an untouched FP32 stash (keep) or a host-swapped copy.
#: Binarize decodes to a mask and DPR rounds — both are value-destroying,
#: which is why a recompute decision can never sit downstream of a
#: lossy-encoded ancestor.
SOURCE_COMPATIBLE_CHOICES = frozenset({CHOICE_KEEP, CHOICE_SWAP})

#: Ancestor-walk depth limit; chains beyond this are never profitable
#: (the chain cost grows while the savings stay one feature map).
_MAX_CHAIN_LENGTH = 12


@dataclass(frozen=True)
class RecomputeDirective:
    """Runtime instruction: rebuild a stash instead of storing it.

    Attributes:
        source_id: Ancestor node whose stashed (value-exact) output seeds
            the re-execution.
        chain: Node ids to re-run in forward order; the last entry is the
            tensor being rebuilt, the first consumes the source's output.
    """

    source_id: int
    chain: Tuple[int, ...]


@dataclass(frozen=True)
class SharedConcatDirective:
    """Runtime instruction: read a stash as a prefix of a concat terminal.

    Attributes:
        source_id: The concat chain's terminal node, whose stash is kept
            bit-exact (the planner pins it to ``keep``).
        channels: Leading axis-1 extent to slice: the member's value is
            ``terminal[:, :channels]`` bit-exactly.
    """

    source_id: int
    channels: int


@dataclass(frozen=True)
class PlanDecision:
    """What the hybrid planner decided for one stashed feature map."""

    node_id: int
    node_name: str
    stash_class: str
    choice: str
    #: Gist codec name (``binarize``/``ssdc``/``dpr``) for gist choices.
    encoding: Optional[str]
    fp32_bytes: int
    #: Device bytes resident across the forward->backward gap.
    resident_bytes: int
    #: Modeled step-time cost of the choice, seconds.
    cost_s: float
    lossless: bool
    source_id: Optional[int] = None
    chain: Tuple[int, ...] = ()
    sparsity: Optional[float] = None

    @property
    def savings_bytes(self) -> int:
        """Gap bytes freed relative to keeping the FP32 stash."""
        return self.fp32_bytes - self.resident_bytes


@dataclass
class HybridPlan:
    """A rewritten memory plan plus the per-tensor decisions behind it."""

    graph: Graph
    schedule: TrainingSchedule
    plan: MemoryPlan
    policy: "HybridPolicy"
    decisions: Dict[int, PlanDecision]
    baseline_step_s: float
    budget_s: float
    total_cost_s: float
    allocated_bytes: int
    baseline_allocated_bytes: int
    #: Allocated footprint of each pure arm under the same budget
    #: (populated when ``policy.strategy == "hybrid"``).
    pure_footprints: Dict[str, int] = field(default_factory=dict)
    #: Pure arm whose selection the hybrid adopted outright because greedy
    #: mixing did not beat it (``None`` when the mixed selection stood).
    fallback_strategy: Optional[str] = None
    rewritten_pools: Tuple[int, ...] = ()

    @property
    def overhead_frac(self) -> float:
        """Selected decisions' cost as a fraction of the baseline step."""
        return self.total_cost_s / self.baseline_step_s

    @property
    def lossless(self) -> bool:
        """Whether every decision round-trips bit-exactly."""
        return all(d.lossless for d in self.decisions.values())

    @property
    def footprint_ratio(self) -> float:
        """Baseline allocated bytes over this plan's allocated bytes."""
        return self.baseline_allocated_bytes / self.allocated_bytes

    def recompute_directives(self) -> Dict[int, RecomputeDirective]:
        """Executable directives for every recompute decision."""
        return {
            nid: RecomputeDirective(d.source_id, d.chain)
            for nid, d in self.decisions.items()
            if d.choice == CHOICE_RECOMPUTE
        }

    def shared_concat_directives(self) -> Dict[int, SharedConcatDirective]:
        """Executable directives for every shared-concat decision."""
        return {
            nid: SharedConcatDirective(
                source_id=d.source_id,
                channels=self.graph.node(nid).output_shape[1],
            )
            for nid, d in self.decisions.items()
            if d.choice == CHOICE_SHARED_CONCAT
        }

    def bytes_by_choice(self) -> Dict[str, int]:
        """FP32 stash bytes governed by each choice (keep included)."""
        out = {c: 0 for c in ALL_CHOICES}
        for d in self.decisions.values():
            out[d.choice] += d.fp32_bytes
        return out

    def summary_json(self) -> dict:
        """JSON-serialisable summary: every decision plus the footprints.

        This is the unit of plan caching (see :func:`plan_cache_key`):
        it captures everything a caller needs to report or compare a
        priced plan — the per-tensor decision table, the footprints, the
        budget accounting — without the graph/schedule/allocator objects
        that only an executor needs (those are cheap to rebuild, the
        pricing is what amortises).
        """
        from dataclasses import asdict

        return {
            "graph": self.graph.name,
            "strategy": self.policy.strategy,
            "cost_budget_frac": float(self.policy.cost_budget_frac),
            "decisions": [asdict(self.decisions[nid])
                          for nid in sorted(self.decisions)],
            "baseline_step_s": float(self.baseline_step_s),
            "budget_s": float(self.budget_s),
            "total_cost_s": float(self.total_cost_s),
            "allocated_bytes": int(self.allocated_bytes),
            "baseline_allocated_bytes": int(self.baseline_allocated_bytes),
            "footprint_ratio": float(self.footprint_ratio),
            "overhead_frac": float(self.overhead_frac),
            "lossless": bool(self.lossless),
            "pure_footprints": {k: int(v)
                                for k, v in sorted(
                                    self.pure_footprints.items())},
            "fallback_strategy": self.fallback_strategy,
            "bytes_by_choice": self.bytes_by_choice(),
        }


@dataclass(frozen=True)
class _Option:
    """One candidate (tensor, choice) pairing with its price tag."""

    node_id: int
    choice: str
    encoding: Optional[str]
    fp32_bytes: int
    resident_bytes: int
    decoded_bytes: int
    cost_s: float
    lossless: bool
    source_id: Optional[int] = None
    chain: Tuple[int, ...] = ()
    sparsity: Optional[float] = None

    @property
    def savings_bytes(self) -> int:
        return self.fp32_bytes - self.resident_bytes


# ----------------------------------------------------------------------
# Runtime-availability analysis (mirrors the executor's stash rules)
# ----------------------------------------------------------------------
def _runtime_needs_input(node) -> bool:
    override = getattr(node.layer, "runtime_backward_needs_input", None)
    if override is not None:
        return override
    return node.layer.backward_needs_input


def _runtime_needs_output(node) -> bool:
    override = getattr(node.layer, "runtime_backward_needs_output", None)
    if override is not None:
        return override
    return node.layer.backward_needs_output


def _runtime_backward_uses(
    graph: Graph, schedule: TrainingSchedule, node_id: int
) -> Tuple[Optional[int], Optional[int]]:
    """(first, last) backward read of a map under the *runtime* stash rules.

    The executor stashes by the runtime flags (a max-pool always replays
    its argmax map, never X/Y), so recompute-source availability must be
    judged against these, not the declared baseline needs.
    """
    node = graph.node(node_id)
    uses: List[int] = []
    if _runtime_needs_output(node) and schedule.has_backward(node_id):
        uses.append(schedule.backward_time(node_id))
    for consumer in graph.consumers(node_id):
        if _runtime_needs_input(consumer) and schedule.has_backward(
            consumer.node_id
        ):
            uses.append(schedule.backward_time(consumer.node_id))
    if not uses:
        return None, None
    return min(uses), max(uses)


def find_recompute_chain(
    graph: Graph,
    schedule: TrainingSchedule,
    target_id: int,
    target_first_bwd: int,
) -> Optional[Tuple[int, Tuple[int, ...]]]:
    """Walk toward the input for the nearest value-exact recompute source.

    Returns ``(source_id, chain)`` — the chain re-runs in order and ends
    at ``target_id`` — or ``None`` when no valid source exists.  A source
    must be stashed at runtime and its stash must still be live at the
    target's first backward read (so the re-execution reads within the
    source's modeled lifetime); every chain member must be a single-input,
    deterministic, side-effect-free op.
    """
    target = graph.node(target_id)
    if target.kind in NON_RECOMPUTABLE_KINDS or len(target.inputs) != 1:
        return None
    chain: List[int] = [target_id]
    current = target
    for _ in range(_MAX_CHAIN_LENGTH):
        parent = graph.node(current.inputs[0])
        _, parent_last_bwd = _runtime_backward_uses(
            graph, schedule, parent.node_id
        )
        if parent_last_bwd is not None and parent_last_bwd >= target_first_bwd:
            return parent.node_id, tuple(chain)
        if (
            parent.kind in NON_RECOMPUTABLE_KINDS
            or len(parent.inputs) != 1
        ):
            return None
        chain.insert(0, parent.node_id)
        current = parent
    return None


def _swap_stall_fraction(graph: Graph, cost: "CostModel") -> float:
    """Un-hidden fraction of a PCIe transfer, calibrated per graph.

    The vDNN event simulation says how much of the graph's total transfer
    volume its one-deep DMA pipeline fails to hide behind compute; that
    ratio prices each individual offload+prefetch pair here.
    """
    from repro.perf.swap import simulate_swapping  # local: memory<->perf

    sim = simulate_swapping(graph, cost)
    naive_extra = sim.naive_s - sim.baseline_s
    if naive_extra <= 0.0:
        # No offloadable stashes in the vDNN sim; assume half hides.
        return 0.5
    frac = (sim.vdnn_s - sim.baseline_s) / naive_extra
    return max(0.0, min(1.0, frac))


# ----------------------------------------------------------------------
# Option generation
# ----------------------------------------------------------------------
def _gist_option(node, stash_class, fp32_bytes, num_elements, cfg,
                 sparsity_model, graph, cost) -> Optional[_Option]:
    from repro.core.schedule_builder import (
        ENC_BINARIZE,
        ENC_DPR,
        ENC_SSDC,
        _encoding_for,
    )

    encoding = _encoding_for(stash_class, cfg)
    if encoding is None:
        return None
    dpr_dtype = DPR_FORMATS[cfg.dpr_format]
    sparsity: Optional[float] = None
    if encoding == ENC_BINARIZE:
        enc_bytes = TensorSpec(
            f"{node.name}.out.enc", node.output_shape, BIT1,
            TensorCategory.ENCODED,
        ).size_bytes
        decoded_bytes = 0  # ReLU backward reads the mask directly.
        lossless = True
    else:
        if encoding == ENC_SSDC:
            sparsity = sparsity_model.sparsity(graph, node.node_id)
            value_bits = (
                dpr_dtype.bits if (cfg.dpr and cfg.dpr_over_ssdc) else 32
            )
            enc_bytes = csr_bytes(num_elements, sparsity, cfg.ssdc_cols,
                                  value_bits)
            if enc_bytes >= fp32_bytes:
                # Below the CSR breakeven; fall back to DPR when lossy is
                # on, else there is no profitable gist option.
                if not cfg.dpr:
                    return None
                encoding = ENC_DPR
                sparsity = None
        if encoding == ENC_DPR:
            enc_bytes = TensorSpec(
                f"{node.name}.out.enc", node.output_shape, dpr_dtype,
                TensorCategory.ENCODED,
            ).size_bytes
        decoded_bytes = 0 if cfg.optimized_software else fp32_bytes
        lossless = encoding == ENC_SSDC and not (cfg.dpr and cfg.dpr_over_ssdc)
    # Codec cost: one bandwidth pass to encode (read FP32, write encoded)
    # and, where a staging buffer exists, one to decode.
    cost_s = cost.copy_time(fp32_bytes + enc_bytes)
    if decoded_bytes:
        cost_s += cost.copy_time(enc_bytes + decoded_bytes)
    return _Option(
        node_id=node.node_id,
        choice=CHOICE_GIST,
        encoding=encoding,
        fp32_bytes=fp32_bytes,
        resident_bytes=enc_bytes,
        decoded_bytes=decoded_bytes,
        cost_s=cost_s,
        lossless=lossless,
        sparsity=sparsity,
    )


def _candidate_options(
    graph, schedule, stash_infos, uses, cfg, sparsity_model, cost,
    swap_stall, concat_index=None,
) -> List[_Option]:
    concat_index = concat_index or {}
    options: List[_Option] = []
    for node in graph.nodes:
        nid = node.node_id
        info = stash_infos.get(nid)
        if info is None or nid == graph.output_id:
            continue
        last_fwd, first_bwd, last_bwd = uses[nid]
        if first_bwd is None:
            continue  # not stashed under the effective (rewritten) needs
        num_elements = _num_elements(node.output_shape)
        fp32_bytes = 4 * num_elements

        gist = _gist_option(node, info.stash_class, fp32_bytes, num_elements,
                            cfg, sparsity_model, graph, cost)
        if gist is not None:
            options.append(gist)

        found = find_recompute_chain(graph, schedule, nid, first_bwd)
        if found is not None:
            source_id, chain = found
            options.append(_Option(
                node_id=nid,
                choice=CHOICE_RECOMPUTE,
                encoding=None,
                fp32_bytes=fp32_bytes,
                resident_bytes=0,
                decoded_bytes=fp32_bytes,
                cost_s=chain_forward_seconds(graph, chain, cost),
                lossless=True,
                source_id=source_id,
                chain=chain,
            ))

        # Host swap: offload after the last forward use, prefetch before
        # the first backward use.  Only the un-hidden fraction of the two
        # PCIe transfers costs step time; each DMA submission pays one
        # launch overhead.
        swap_cost = (
            2.0 * cost.transfer_time(fp32_bytes) * swap_stall
            + 2.0 * cost.device.kernel_overhead
        )
        options.append(_Option(
            node_id=nid,
            choice=CHOICE_SWAP,
            encoding=None,
            fp32_bytes=fp32_bytes,
            resident_bytes=0,
            decoded_bytes=fp32_bytes,
            cost_s=swap_cost,
            lossless=True,
        ))

        # Shared concat buffer: this map is a bit-exact channel prefix of
        # its chain terminal, so the private stash can be dropped and the
        # backward read re-sliced out of the terminal's kept FP32 buffer.
        # Requires the terminal to be stashed at runtime.
        chain = concat_index.get(nid)
        if chain is not None:
            _, terminal_first_bwd, _ = uses[chain.terminal_id]
            if terminal_first_bwd is not None:
                options.append(_Option(
                    node_id=nid,
                    choice=CHOICE_SHARED_CONCAT,
                    encoding=None,
                    fp32_bytes=fp32_bytes,
                    resident_bytes=0,
                    decoded_bytes=fp32_bytes,
                    # One bandwidth pass at backward: read the prefix out
                    # of the terminal, write the contiguous staging copy.
                    cost_s=cost.copy_time(2 * fp32_bytes)
                    + cost.device.kernel_overhead,
                    lossless=True,
                    source_id=chain.terminal_id,
                    chain=chain.path(nid),
                ))
    return options


# ----------------------------------------------------------------------
# Selection
# ----------------------------------------------------------------------
def _select(
    options: List[_Option], budget_s: float, allowed_choices
) -> Tuple[Dict[int, _Option], float]:
    """Greedy budgeted selection: best bytes-per-second ratio first.

    At most one option per tensor; recompute sources are pinned to
    value-exact choices (the lossy-ancestor guard); shared-concat
    terminals are pinned to *keep* outright (their FP32 stash is the
    shared buffer every member re-slices); every accepted option must fit
    the remaining budget.  Ties break deterministically on
    (node id, choice).
    """
    eligible = [
        o for o in options
        if o.choice in allowed_choices and o.savings_bytes > 0
    ]
    eligible.sort(
        key=lambda o: (
            -(o.savings_bytes / max(o.cost_s, 1e-15)),
            o.node_id,
            o.choice,
        )
    )
    assigned: Dict[int, _Option] = {}
    pinned: set = set()
    keep_pinned: set = set()
    spent = 0.0
    for option in eligible:
        if option.node_id in assigned or option.node_id in keep_pinned:
            continue
        if (option.node_id in pinned
                and option.choice not in SOURCE_COMPATIBLE_CHOICES):
            continue
        if option.choice == CHOICE_RECOMPUTE:
            source = assigned.get(option.source_id)
            if (source is not None
                    and source.choice not in SOURCE_COMPATIBLE_CHOICES):
                continue
        if option.choice == CHOICE_SHARED_CONCAT:
            # The terminal must remain an untouched FP32 keep: any prior
            # decision on it (even the value-exact swap, whose prefetch
            # window is modeled for the terminal's own backward reads,
            # not the members' earlier ones) forfeits the member option.
            if option.source_id in assigned:
                continue
        if spent + option.cost_s > budget_s + 1e-12:
            continue
        assigned[option.node_id] = option
        spent += option.cost_s
        if option.choice == CHOICE_RECOMPUTE:
            pinned.add(option.source_id)
        elif option.choice == CHOICE_SHARED_CONCAT:
            keep_pinned.add(option.source_id)
    return assigned, spent


# ----------------------------------------------------------------------
# Plan rewriting
# ----------------------------------------------------------------------
def _apply_selection(
    graph, schedule, stash_infos, uses, assigned, pools_rewritten, cfg,
) -> Tuple[MemoryPlan, Tuple[int, ...]]:
    """Rewrite the baseline liveness table under the selected choices.

    Mirrors the Schedule Builder's rewrite discipline: the FP32 map dies
    at its last forward use whenever a choice replaces it across the gap;
    the replacement (encoded stash / rebuilt map / prefetch buffer) spans
    exactly the interval the backward pass reads.
    """
    plan = build_memory_plan(graph, schedule)
    fm_by_node: Dict[int, LiveTensor] = {
        t.node_id: t for t in plan.tensors if t.role == ROLE_FEATURE_MAP
    }
    new_tensors: List[LiveTensor] = []
    prefetch_by_node: Dict[int, LiveTensor] = {}

    for node in graph.nodes:
        nid = node.node_id
        fm = fm_by_node[nid]
        last_fwd, first_bwd, last_bwd = uses[nid]
        if first_bwd is None:
            fm.death = last_fwd
            continue
        option = assigned.get(nid)
        if stash_infos.get(nid) is None or option is None:
            fm.death = max(last_fwd, last_bwd)
            continue

        fm.death = last_fwd
        if option.choice == CHOICE_GIST:
            from repro.core.schedule_builder import ENC_BINARIZE, ENC_SSDC

            if option.encoding == ENC_BINARIZE:
                enc_spec = TensorSpec(f"{node.name}.out.enc",
                                      node.output_shape, BIT1,
                                      TensorCategory.ENCODED)
            elif option.encoding == ENC_SSDC:
                enc_spec = TensorSpec(f"{node.name}.out.enc",
                                      (option.resident_bytes,), UINT8,
                                      TensorCategory.ENCODED)
            else:  # ENC_DPR
                enc_spec = TensorSpec(f"{node.name}.out.enc",
                                      node.output_shape,
                                      DPR_FORMATS[cfg.dpr_format],
                                      TensorCategory.ENCODED)
            new_tensors.append(
                LiveTensor(enc_spec, birth=last_fwd, death=last_bwd,
                           node_id=nid, role=ROLE_ENCODED)
            )
            if option.decoded_bytes:
                new_tensors.append(
                    LiveTensor(
                        TensorSpec(f"{node.name}.out.dec", node.output_shape,
                                   fm.spec.dtype, TensorCategory.FEATURE_MAP),
                        birth=first_bwd,
                        death=last_bwd,
                        node_id=nid,
                        role=ROLE_DECODED,
                    )
                )
        elif option.choice == CHOICE_SWAP:
            prefetch = LiveTensor(
                TensorSpec(f"{node.name}.out.prefetch", node.output_shape,
                           fm.spec.dtype, TensorCategory.FEATURE_MAP),
                birth=first_bwd,
                death=last_bwd,
                node_id=nid,
                role=ROLE_DECODED,
            )
            new_tensors.append(prefetch)
            prefetch_by_node[nid] = prefetch
        elif option.choice == CHOICE_SHARED_CONCAT:
            # The member's map aliases the terminal's growing buffer for
            # its whole forward life; only the contiguous staging copy the
            # backward pass reads from is new space.
            fm.alias_group = f"concat:{option.source_id}"
            new_tensors.append(
                LiveTensor(
                    TensorSpec(f"{node.name}.out.shared", node.output_shape,
                               fm.spec.dtype, TensorCategory.FEATURE_MAP),
                    birth=first_bwd,
                    death=last_bwd,
                    node_id=nid,
                    role=ROLE_DECODED,
                )
            )
        elif option.choice == CHOICE_RECOMPUTE:
            new_tensors.append(
                LiveTensor(
                    TensorSpec(f"{node.name}.out.recomp", node.output_shape,
                               fm.spec.dtype, TensorCategory.FEATURE_MAP),
                    birth=first_bwd,
                    death=last_bwd,
                    node_id=nid,
                    role=ROLE_FEATURE_MAP,
                )
            )
            # Chain intermediates live only while the chain replays — a
            # transient scratch region sized to the largest one.
            intermediates = option.chain[:-1]
            if intermediates:
                scratch = max(
                    4 * _num_elements(graph.node(i).output_shape)
                    for i in intermediates
                )
                new_tensors.append(
                    LiveTensor(
                        TensorSpec(f"{node.name}.out.rechain", (scratch,),
                                   UINT8, TensorCategory.WORKSPACE),
                        birth=first_bwd,
                        death=first_bwd,
                        node_id=nid,
                        role=ROLE_WORKSPACE,
                    )
                )

    # A swapped recompute-source is prefetched for the *target's* first
    # backward read, which precedes the source's own backward window.
    for option in assigned.values():
        if option.choice != CHOICE_RECOMPUTE:
            continue
        source_option = assigned.get(option.source_id)
        if source_option is not None and source_option.choice == CHOICE_SWAP:
            prefetch = prefetch_by_node[option.source_id]
            _, target_first_bwd, _ = uses[option.node_id]
            prefetch.birth = min(prefetch.birth, target_first_bwd)

    # A shared-concat terminal's buffer is re-read by its members during
    # *their* backward windows, which outlive the terminal's own (earlier
    # forward nodes run backward later): extend the kept stash and pull it
    # into the members' aliasing group so the allocator prices the whole
    # chain as one terminal-sized region.
    for option in assigned.values():
        if option.choice != CHOICE_SHARED_CONCAT:
            continue
        terminal_fm = fm_by_node[option.source_id]
        _, _, member_last_bwd = uses[option.node_id]
        terminal_fm.death = max(terminal_fm.death, member_last_bwd)
        terminal_fm.alias_group = f"concat:{option.source_id}"

    # Argmax maps for rewritten pools (the uses above were computed under
    # the rewrite, so the maps must be carried whether or not a binarize
    # choice was selected).
    rewritten_pools: List[int] = []
    if pools_rewritten:
        for node in graph.nodes:
            if not getattr(node.layer, "supports_argmax_map", False):
                continue
            if not schedule.has_backward(node.node_id):
                continue
            rewritten_pools.append(node.node_id)
            if getattr(node.layer, "argmax_map_static", False):
                # Pool-argmax-rewritten layers declare the map in their
                # saved_state_specs; adding it again would double-count.
                continue
            map_spec = node.layer.argmax_map_spec(node.output_shape)
            new_tensors.append(
                LiveTensor(
                    TensorSpec(f"{node.name}.argmax", node.output_shape,
                               map_spec.dtype, TensorCategory.ENCODED),
                    birth=schedule.forward_time(node.node_id),
                    death=schedule.backward_time(node.node_id),
                    node_id=node.node_id,
                    role=ROLE_ENCODED,
                )
            )

    plan.tensors.extend(new_tensors)
    return plan, tuple(rewritten_pools)


def _num_elements(shape) -> int:
    n = 1
    for d in shape:
        n *= d
    return n


# ----------------------------------------------------------------------
# The planner
# ----------------------------------------------------------------------
def build_hybrid_plan(
    graph: Graph,
    policy: "Optional[HybridPolicy]" = None,
    sparsity_model: "Optional[SparsityModel]" = None,
    schedule: Optional[TrainingSchedule] = None,
    cost: "Optional[CostModel]" = None,
) -> HybridPlan:
    """Price encode/recompute/swap per stashed tensor and select a mix.

    Args:
        graph: Training execution graph.
        policy: Strategy, budget and gist switches (defaults to the
            all-levers lossless :class:`~repro.core.policy.HybridPolicy`).
        sparsity_model: Supplies per-layer sparsity for SSDC sizing.
        schedule: Precomputed schedule (built if omitted).
        cost: Device cost model (Titan X roofline by default).

    Returns:
        A :class:`HybridPlan` whose ``plan`` feeds the static allocator
        and whose ``decisions`` drive
        :class:`repro.train.stash.HybridExecutionPolicy`.
    """
    from repro.analysis.sparsity import DEFAULT_SPARSITY_MODEL
    from repro.core.analysis import classify_all_stashes
    from repro.core.policy import (
        HybridPolicy,
        STRATEGY_GIST,
        STRATEGY_HYBRID,
        STRATEGY_RECOMPUTE,
        STRATEGY_SHARED_CONCAT,
        STRATEGY_SWAP,
    )
    from repro.core.schedule_builder import _feature_map_uses
    from repro.memory.shared_concat import (
        find_concat_chains,
        member_to_terminal,
    )
    from repro.perf.cost import CostModel

    policy = policy or HybridPolicy()
    sparsity_model = sparsity_model or DEFAULT_SPARSITY_MODEL
    if schedule is None:
        schedule = TrainingSchedule(graph)
    cost = cost or CostModel()
    cfg = policy.gist
    pools_rewritten = cfg.binarize

    baseline_step_s = cost.step_time(graph).total_s
    budget_s = policy.cost_budget_frac * baseline_step_s
    stash_infos = classify_all_stashes(graph, schedule)
    uses = {
        node.node_id: _feature_map_uses(graph, schedule, node.node_id,
                                        pools_rewritten)
        for node in graph.nodes
    }
    swap_stall = _swap_stall_fraction(graph, cost)
    concat_index = member_to_terminal(find_concat_chains(graph))
    options = _candidate_options(graph, schedule, stash_infos, uses, cfg,
                                 sparsity_model, cost, swap_stall,
                                 concat_index)
    baseline_allocated = StaticAllocator().allocate(
        build_memory_plan(graph, schedule).tensors
    ).total_bytes

    choices_of = {
        STRATEGY_GIST: {CHOICE_GIST},
        STRATEGY_RECOMPUTE: {CHOICE_RECOMPUTE},
        STRATEGY_SWAP: {CHOICE_SWAP},
        STRATEGY_SHARED_CONCAT: {CHOICE_SHARED_CONCAT},
        STRATEGY_HYBRID: {CHOICE_GIST, CHOICE_RECOMPUTE, CHOICE_SWAP,
                          CHOICE_SHARED_CONCAT},
    }

    def build_arm(allowed):
        assigned, spent = _select(options, budget_s, allowed)
        plan, pools = _apply_selection(graph, schedule, stash_infos, uses,
                                       assigned, pools_rewritten, cfg)
        allocated = StaticAllocator().allocate(plan.tensors).total_bytes
        return assigned, spent, plan, pools, allocated

    pure_footprints: Dict[str, int] = {}
    fallback_strategy: Optional[str] = None
    if policy.strategy == STRATEGY_HYBRID:
        arms = {
            strategy: build_arm(choices_of[strategy])
            for strategy in (STRATEGY_GIST, STRATEGY_RECOMPUTE,
                             STRATEGY_SWAP, STRATEGY_SHARED_CONCAT)
        }
        pure_footprints = {s: arm[4] for s, arm in arms.items()}
        selected = build_arm(choices_of[STRATEGY_HYBRID])
        best_pure = min(sorted(pure_footprints),
                        key=lambda s: pure_footprints[s])
        if pure_footprints[best_pure] < selected[4]:
            # Greedy mixing lost to a pure arm; adopt that selection so
            # the hybrid is never worse than the best single strategy.
            selected = arms[best_pure]
            fallback_strategy = best_pure
    else:
        selected = build_arm(choices_of[policy.strategy])
    assigned, spent, plan, pools, allocated = selected

    decisions = {
        nid: PlanDecision(
            node_id=nid,
            node_name=graph.node(nid).name,
            stash_class=stash_infos[nid].stash_class,
            choice=o.choice,
            encoding=o.encoding,
            fp32_bytes=o.fp32_bytes,
            resident_bytes=o.resident_bytes,
            cost_s=o.cost_s,
            lossless=o.lossless,
            source_id=o.source_id,
            chain=o.chain,
            sparsity=o.sparsity,
        )
        for nid, o in sorted(assigned.items())
    }
    return HybridPlan(
        graph=graph,
        schedule=schedule,
        plan=plan,
        policy=policy,
        decisions=decisions,
        baseline_step_s=baseline_step_s,
        budget_s=budget_s,
        total_cost_s=spent,
        allocated_bytes=allocated,
        baseline_allocated_bytes=baseline_allocated,
        pure_footprints=pure_footprints,
        fallback_strategy=fallback_strategy,
        rewritten_pools=pools,
    )


# ----------------------------------------------------------------------
# Content-addressed plan caching (the serve layer's hook)
# ----------------------------------------------------------------------
def plan_cache_key(graph: Graph, policy: "Optional[HybridPolicy]" = None
                   ) -> dict:
    """Content-addressed cache key for a priced plan.

    ``(graph-fingerprint, strategy, budget, gist switches)`` — a pure
    function of what the planner sees, never of node names, model-zoo
    spelling or who asked.  Two isomorphic graphs requested under the
    same policy share one cache slot.
    """
    from dataclasses import asdict

    from repro.core.policy import HybridPolicy
    from repro.graph.fingerprint import graph_fingerprint

    policy = policy or HybridPolicy()
    return {
        "kind": "hybrid-plan",
        "graph_fingerprint": graph_fingerprint(graph),
        "strategy": policy.strategy,
        "cost_budget_frac": float(policy.cost_budget_frac),
        "gist": asdict(policy.gist),
    }


def build_hybrid_plan_summary(
    graph: Graph,
    policy: "Optional[HybridPolicy]" = None,
    cache=None,
) -> Tuple[dict, bool]:
    """Plan summary for ``graph``, served from ``cache`` when possible.

    Args:
        graph: Training execution graph.
        policy: Planner policy (defaults like :func:`build_hybrid_plan`).
        cache: Optional content-addressed store with ``get(key)`` /
            ``put(key, value)`` (e.g.
            :class:`repro.serve.cache.ContentCache`).  ``None`` always
            re-plans.

    Returns:
        ``(summary, cached)`` — the :meth:`HybridPlan.summary_json`
        mapping, and whether it was served from the cache without
        re-pricing the graph.
    """
    key = plan_cache_key(graph, policy)
    if cache is not None:
        hit = cache.get(key)
        if hit is not None:
            return hit, True
    summary = build_hybrid_plan(graph, policy).summary_json()
    if cache is not None:
        summary = cache.put(key, summary)
    return summary, False
