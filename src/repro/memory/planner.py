"""Memory plan: the liveness table a memory allocator consumes.

A :class:`MemoryPlan` bundles the graph, its training schedule and the
liveness table, refines feature maps into *stashed* versus *immediately
consumed* (the distinction at the heart of the paper's Section II), and
knows which tensors participate in each of the paper's two baselines:

* **CNTK baseline** — feature maps, gradient maps and saved state, all
  shareable (weights/weight-gradients/workspace excluded, following the
  paper's Section V-A).
* **Investigation baseline** — identical, except stashed feature maps are
  excluded from memory sharing so each encoding's effect can be read in
  isolation.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.graph.graph import Graph
from repro.graph.liveness import (
    LiveTensor,
    ROLE_DECODED,
    ROLE_ENCODED,
    ROLE_FEATURE_MAP,
    ROLE_GRADIENT_MAP,
    ROLE_STATE,
    ROLE_WEIGHT,
    ROLE_WEIGHT_GRAD,
    ROLE_WORKSPACE,
    compute_lifetimes,
)
from repro.graph.schedule import TrainingSchedule

# Refined data-structure classes used in breakdowns (paper Figure 1).
CLASS_WEIGHT = "weights"
CLASS_WEIGHT_GRAD = "weight_gradients"
CLASS_STASHED = "stashed_feature_maps"
CLASS_IMMEDIATE = "immediate_feature_maps"
CLASS_GRADIENT = "gradient_maps"
CLASS_WORKSPACE = "workspace"
CLASS_SAVED_STATE = "saved_state"
CLASS_ENCODED = "encoded"

ALL_CLASSES = [
    CLASS_WEIGHT,
    CLASS_WEIGHT_GRAD,
    CLASS_STASHED,
    CLASS_IMMEDIATE,
    CLASS_GRADIENT,
    CLASS_WORKSPACE,
    CLASS_SAVED_STATE,
    CLASS_ENCODED,
]


@dataclass
class MemoryPlan:
    """A liveness table plus classification, ready for allocation."""

    graph: Graph
    schedule: TrainingSchedule
    tensors: List[LiveTensor] = field(default_factory=list)

    def classify(self, tensor: LiveTensor) -> str:
        """Refined data-structure class of ``tensor``."""
        role = tensor.role
        if role == ROLE_WEIGHT:
            return CLASS_WEIGHT
        if role == ROLE_WEIGHT_GRAD:
            return CLASS_WEIGHT_GRAD
        if role == ROLE_GRADIENT_MAP:
            return CLASS_GRADIENT
        if role == ROLE_WORKSPACE:
            return CLASS_WORKSPACE
        if role == ROLE_STATE:
            return CLASS_SAVED_STATE
        if role == ROLE_ENCODED:
            return CLASS_ENCODED
        if role == ROLE_DECODED:
            return CLASS_IMMEDIATE
        if role == ROLE_FEATURE_MAP:
            if tensor.death >= self.schedule.forward_end:
                return CLASS_STASHED
            return CLASS_IMMEDIATE
        raise ValueError(f"unknown tensor role {role!r}")

    # ------------------------------------------------------------------
    def by_class(self) -> Dict[str, List[LiveTensor]]:
        """Tensors grouped by refined class (all classes present as keys)."""
        groups: Dict[str, List[LiveTensor]] = {c: [] for c in ALL_CLASSES}
        for t in self.tensors:
            groups[self.classify(t)].append(t)
        return groups

    def bytes_by_class(self) -> Dict[str, int]:
        """Raw (unshared) bytes per refined class."""
        return {c: sum(t.size_bytes for t in ts) for c, ts in self.by_class().items()}

    def stashed_feature_maps(self) -> List[LiveTensor]:
        """Feature maps whose last use is in the backward pass."""
        return self.by_class()[CLASS_STASHED]

    def total_bytes(self) -> int:
        """Sum of all tensor sizes with no sharing at all."""
        return sum(t.size_bytes for t in self.tensors)

    def clone(self) -> "MemoryPlan":
        """Deep copy (the Gist schedule builder rewrites plans in place)."""
        return MemoryPlan(self.graph, self.schedule,
                          [copy.copy(t) for t in self.tensors])


def build_memory_plan(
    graph: Graph,
    schedule: Optional[TrainingSchedule] = None,
    include_weights: bool = False,
    include_workspace: bool = False,
    investigation: bool = False,
) -> MemoryPlan:
    """Construct the baseline memory plan for a training step.

    Args:
        graph: Training execution graph.
        schedule: Precomputed schedule (built if omitted).
        include_weights: Include weights and weight gradients.  The paper's
            CNTK baseline excludes them; Figure 1's full breakdown includes
            them.
        include_workspace: Include per-op workspace (Figure 1 only).
        investigation: Disallow memory sharing for stashed feature maps
            (the paper's investigation baseline).
    """
    if schedule is None:
        schedule = TrainingSchedule(graph)
    tensors = compute_lifetimes(
        graph,
        schedule,
        include_weights=include_weights,
        include_workspace=include_workspace,
    )
    plan = MemoryPlan(graph, schedule, tensors)
    if investigation:
        for t in plan.tensors:
            if plan.classify(t) == CLASS_STASHED:
                t.shareable = False
    return plan
