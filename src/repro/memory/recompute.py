"""Recompute (activation checkpointing) baseline — paper Section II-B.

Instead of stashing a feature map, recompute it in the backward pass from
the nearest upstream *checkpoint* (Chen et al.'s sqrt(N) strategy [4],
the MxNet approach the paper discusses).  The paper's argument for Gist
over recomputation: "the largest layers are usually the ones that also
take the longest to recompute", so checkpointing trades memory for
significant time, while Gist's codecs are cheap bandwidth passes.

This module implements segment checkpointing for the *trunk* of a
training graph (the dominant chain through the DAG):

* every ``segment_length``-th trunk feature map is a checkpoint and keeps
  its baseline (stashed) lifetime;
* other trunk maps are dropped after their last forward use and
  re-materialised segment-by-segment during the backward pass — modelled
  as a short-lived segment buffer plus the segment's forward FLOPs run a
  second time.

It exists as a *comparison baseline*: the recompute bench pits it against
Gist on both footprint and step-time overhead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, TYPE_CHECKING, Tuple

from repro.graph.graph import Graph
from repro.graph.liveness import ROLE_FEATURE_MAP
from repro.graph.schedule import TrainingSchedule
from repro.memory.planner import CLASS_STASHED, MemoryPlan, build_memory_plan

if TYPE_CHECKING:  # pragma: no cover
    from repro.perf.cost import CostModel


@dataclass(frozen=True)
class RecomputePlan:
    """A rewritten plan plus the cost of the re-executed forward work."""

    plan: MemoryPlan
    checkpoints: Tuple[int, ...]
    recomputed: Tuple[int, ...]
    extra_forward_flops: int

    def overhead_frac(self, graph: Graph,
                      cost: "Optional[CostModel]" = None) -> float:
        """Step-time overhead of re-running the recomputed segments.

        Prices the re-executed forward FLOPs (whole segments, convolutions
        included) against the baseline step on the same device model.
        """
        from repro.perf.cost import CostModel  # local: avoids memory<->perf cycle

        cost = cost or CostModel()
        base = cost.step_time(graph).total_s
        minibatch = graph.node(graph.input_id).output_shape[0]
        dev = cost.device
        extra = self.extra_forward_flops / (
            dev.peak_flops * dev.compute_efficiency * dev.occupancy(minibatch)
        )
        return extra / base


def chain_forward_flops(graph: Graph, node_ids) -> int:
    """Total forward FLOPs of re-executing ``node_ids`` in order.

    The shared cost-accounting primitive of both recompute planners: the
    segment checkpointer below re-runs whole trunk segments, the hybrid
    planner (:mod:`repro.memory.hybrid`) re-runs per-tensor ancestor
    chains.  Either way the price is the sum of the member ops' forward
    FLOPs — convolutions included, which is the paper's Section II-B
    argument against recomputation.
    """
    total = 0
    for node_id in node_ids:
        node = graph.node(node_id)
        total += node.layer.flops(node.input_shapes(graph), node.output_shape)
    return total


def chain_forward_seconds(graph: Graph, node_ids,
                          cost: "Optional[CostModel]" = None) -> float:
    """Modeled wall-clock of re-executing ``node_ids``' forward kernels.

    Unlike :func:`chain_forward_flops` this includes each kernel's memory
    traffic and launch overhead, so short chains of cheap bandwidth-bound
    ops (ReLU, pool) are not priced at zero.
    """
    from repro.perf.cost import CostModel  # local: avoids memory<->perf cycle

    cost = cost or CostModel()
    return sum(
        cost.forward_time(graph, graph.node(node_id)) for node_id in node_ids
    )


def trunk_nodes(graph: Graph) -> List[int]:
    """The dominant sequential chain: nodes with exactly one input whose
    producer they alone consume, starting from the graph input."""
    chain = [graph.input_id]
    current = graph.input_id
    while True:
        consumers = graph.consumers(current)
        if len(consumers) != 1:
            break
        nxt = consumers[0]
        if len(nxt.inputs) != 1:
            break
        chain.append(nxt.node_id)
        current = nxt.node_id
    return chain


def build_recompute_plan(
    graph: Graph,
    segment_length: Optional[int] = None,
    schedule: Optional[TrainingSchedule] = None,
) -> RecomputePlan:
    """Apply sqrt(N) segment checkpointing to the graph's trunk.

    Args:
        graph: Training graph (works best on chain-shaped networks —
            AlexNet/OverFeat/VGG16; DAG branches are left stashed).
        segment_length: Trunk maps per checkpoint segment; defaults to
            ``ceil(sqrt(trunk length))``.
        schedule: Precomputed schedule (built if omitted).
    """
    if schedule is None:
        schedule = TrainingSchedule(graph)
    plan = build_memory_plan(graph, schedule)
    trunk = trunk_nodes(graph)
    if segment_length is None:
        segment_length = max(1, math.isqrt(len(trunk)))
    if segment_length < 1:
        raise ValueError(f"segment_length must be >= 1, got {segment_length}")

    stashed_ids = {
        t.node_id
        for t in plan.tensors
        if t.role == ROLE_FEATURE_MAP and plan.classify(t) == CLASS_STASHED
    }
    # Checkpoints: every segment_length-th trunk position.  The maps in
    # between form segments that are re-materialised together when the
    # backward pass enters the segment.
    checkpoints: List[int] = []
    segments: List[List[int]] = []       # stashed maps to drop, per segment
    segment_all: List[List[int]] = []    # every trunk op re-run, per segment
    for position, node_id in enumerate(trunk):
        if position % segment_length == 0:
            if node_id in stashed_ids:
                checkpoints.append(node_id)
            segments.append([])
            segment_all.append([])
        else:
            if not segments:
                segments.append([])
                segment_all.append([])
            segment_all[-1].append(node_id)
            if node_id in stashed_ids:
                segments[-1].append(node_id)

    extra_flops = 0
    recomputed: List[int] = []
    fm_by_node = {
        t.node_id: t for t in plan.tensors if t.role == ROLE_FEATURE_MAP
    }
    for segment, whole_segment in zip(segments, segment_all):
        if not segment:
            continue
        # Re-materialising any map in the segment re-executes the whole
        # sub-chain from the checkpoint — convolutions included.  This is
        # the cost the paper's Section II-B points at: "the largest layers
        # are usually the ones that also take the longest to recompute".
        extra_flops += chain_forward_flops(graph, whole_segment)
        # The backward pass enters a segment at the *deepest* member's
        # backward op (reverse-topological order); all segment maps are
        # re-materialised there and live until their own last use.
        entry = min(schedule.backward_time(nid) for nid in segment
                    if schedule.has_backward(nid))
        for node_id in segment:
            node = graph.node(node_id)
            tensor = fm_by_node[node_id]
            last_fwd = schedule.forward_time(node_id)
            for consumer in graph.consumers(node_id):
                last_fwd = max(last_fwd,
                               schedule.forward_time(consumer.node_id))
            original_death = tensor.death
            if original_death <= last_fwd:
                continue  # was not actually stashed
            tensor.death = last_fwd  # dropped after the forward pass
            rebuilt = type(tensor)(
                tensor.spec.with_dtype(tensor.spec.dtype, ".recomp"),
                birth=min(entry, original_death),
                death=original_death,
                node_id=node_id,
                role=ROLE_FEATURE_MAP,
            )
            plan.tensors.append(rebuilt)
            recomputed.append(node_id)

    return RecomputePlan(
        plan, tuple(sorted(checkpoints)), tuple(recomputed), extra_flops
    )
