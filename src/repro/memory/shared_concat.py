"""Shared-concat-buffer chains ("Memory-Efficient DenseNets", PAPERS.md).

In a dense block, every stage concatenates its fresh feature map onto
the running block state, so the intermediate concat outputs are nested
channel prefixes of the block's final concat.  ``np.concatenate`` copies
its first argument to the front of the result, which makes the prefix
relationship *bit-exact*:

    terminal[:, :C_m] == member_m_output          (inductively, per link)

whenever every link in the chain passes the previous concat as its
**first** input.  The planner exploits this by dropping each member's
private stash and re-reading its value as a prefix of the terminal's
kept buffer at backward time — the fourth arm next to encode, recompute
and swap.

This module discovers the chains; pricing lives in
:mod:`repro.memory.hybrid` and the runtime read in
:mod:`repro.train.executor`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.graph.graph import Graph


@dataclass(frozen=True)
class ConcatChain:
    """One maximal axis-1 concat chain.

    ``members`` are the non-terminal concat node ids, earliest first;
    each member's output is a bit-exact channel prefix of the terminal's
    output.  ``path(member)`` lists the node ids from that member to the
    terminal inclusive (the structural witness the oracle re-validates).
    """

    terminal_id: int
    members: Tuple[int, ...]

    def path(self, member_id: int) -> Tuple[int, ...]:
        """Node ids from ``member_id`` to the terminal, inclusive."""
        if member_id not in self.members:
            raise KeyError(f"node {member_id} is not a member of this chain")
        start = self.members.index(member_id)
        return self.members[start:] + (self.terminal_id,)


def _chain_links(graph: Graph) -> Dict[int, int]:
    """Map concat node id -> its unique chain successor's node id.

    A link ``a -> b`` exists when ``b`` is a concat whose *first* input
    is concat ``a`` (the prefix-copy condition).  If two concats both
    extend ``a`` the growing buffer could serve only one of them, so
    ambiguous fan-out forfeits the link entirely.
    """
    succ: Dict[int, int] = {}
    ambiguous = set()
    for node in graph.nodes:
        if node.layer.kind != "concat":
            continue
        first = graph.node(node.inputs[0])
        if first.layer.kind != "concat":
            continue
        if first.node_id in succ or first.node_id in ambiguous:
            succ.pop(first.node_id, None)
            ambiguous.add(first.node_id)
            continue
        succ[first.node_id] = node.node_id
    return succ


def find_concat_chains(graph: Graph) -> List[ConcatChain]:
    """All maximal shared-buffer-eligible concat chains in ``graph``.

    Chains are vertex-disjoint paths (each node has at most one
    predecessor link by construction and ambiguous successors are
    dropped), returned in ascending terminal-id order.  Only chains with
    at least one non-terminal member are reported.
    """
    succ = _chain_links(graph)
    has_pred = set(succ.values())
    chains: List[ConcatChain] = []
    for start in sorted(succ):
        if start in has_pred:
            continue  # interior node; the chain is walked from its head
        members = [start]
        cur = start
        while cur in succ:
            cur = succ[cur]
            members.append(cur)
        chains.append(ConcatChain(terminal_id=members[-1],
                                  members=tuple(members[:-1])))
    return sorted(chains, key=lambda c: c.terminal_id)


def member_to_terminal(chains: List[ConcatChain]) -> Dict[int, ConcatChain]:
    """Index the chains by member node id."""
    index: Dict[int, ConcatChain] = {}
    for chain in chains:
        for member in chain.members:
            index[member] = chain
    return index
