"""Model zoo: the paper's six-network evaluation suite plus scaled variants."""

from repro.models.alexnet import alexnet
from repro.models.inception import inception
from repro.models.nin import nin
from repro.models.overfeat import overfeat
from repro.models.registry import PAPER_SUITE, available_models, build_model
from repro.models.resnet import resnet, resnet_cifar
from repro.models.scaled import scaled_alexnet, scaled_vgg, tiny_cnn
from repro.models.vgg import vgg16, vgg19

__all__ = [
    "PAPER_SUITE",
    "alexnet",
    "available_models",
    "build_model",
    "inception",
    "nin",
    "overfeat",
    "resnet",
    "resnet_cifar",
    "scaled_alexnet",
    "scaled_vgg",
    "tiny_cnn",
    "vgg16",
    "vgg19",
]
