"""AlexNet (Krizhevsky et al., 2012) — single-tower variant with LRN.

Layer order follows the Caffe/CNTK deployment convention: conv → ReLU →
max-pool → LRN for the first two stages (the order CNTK's ImageNet
example uses, and the one the paper's footprint numbers reflect).  This
gives Gist the full mix of stashed-feature-map classes: ReLU-Pool
(relu1/relu2/relu5), ReLU-Conv (conv3/conv4 and FC ReLUs) and Others
(LRN outputs).
"""

from __future__ import annotations

from repro.graph import Graph, GraphBuilder
from repro.layers import (
    Conv2D,
    Dense,
    Dropout,
    LocalResponseNorm,
    MaxPool2D,
    ReLU,
    SoftmaxCrossEntropy,
)


def alexnet(batch_size: int = 64, num_classes: int = 1000,
            image_size: int = 227) -> Graph:
    """Build AlexNet for ``image_size`` x ``image_size`` RGB inputs."""
    b = GraphBuilder("alexnet", (batch_size, 3, image_size, image_size))
    x = b.add(Conv2D(96, 11, stride=4), b.input, name="conv1")
    x = b.add(ReLU(), x, name="relu1")
    x = b.add(MaxPool2D(3, 2), x, name="pool1")
    x = b.add(LocalResponseNorm(5), x, name="norm1")
    x = b.add(Conv2D(256, 5, pad=2), x, name="conv2")
    x = b.add(ReLU(), x, name="relu2")
    x = b.add(MaxPool2D(3, 2), x, name="pool2")
    x = b.add(LocalResponseNorm(5), x, name="norm2")
    x = b.add(Conv2D(384, 3, pad=1), x, name="conv3")
    x = b.add(ReLU(), x, name="relu3")
    x = b.add(Conv2D(384, 3, pad=1), x, name="conv4")
    x = b.add(ReLU(), x, name="relu4")
    x = b.add(Conv2D(256, 3, pad=1), x, name="conv5")
    x = b.add(ReLU(), x, name="relu5")
    x = b.add(MaxPool2D(3, 2), x, name="pool5")
    x = b.add(Dense(4096), x, name="fc6")
    x = b.add(ReLU(), x, name="relu6")
    x = b.add(Dropout(0.5), x, name="drop6")
    x = b.add(Dense(4096), x, name="fc7")
    x = b.add(ReLU(), x, name="relu7")
    x = b.add(Dropout(0.5), x, name="drop7")
    x = b.add(Dense(num_classes), x, name="fc8")
    x = b.add(SoftmaxCrossEntropy(), x, name="loss")
    b.mark_output(x)
    return b.build()
