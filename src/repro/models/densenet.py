"""DenseNet-style model where concat outputs dominate memory.

Each dense block is a chain of ``Conv -> ReLU -> Concat`` stages whose
concat prepends the *previous* concat output (``inputs[0]``), so every
intermediate concat is a bit-exact channel prefix of the block's final
concat.  That is the structural invariant the shared-concat-buffer
planner arm ("Memory-Efficient Implementation of DenseNets", PAPERS.md)
exploits: the intermediate concats alias one growing buffer instead of
each stashing a private copy.
"""

from __future__ import annotations

from repro.graph import Graph, GraphBuilder
from repro.layers import (
    AvgPool2D,
    Concat,
    Conv2D,
    Dense,
    GlobalAvgPool2D,
    ReLU,
    SoftmaxCrossEntropy,
)


def densenet(batch_size: int = 32, num_classes: int = 10,
             image_size: int = 32, init_channels: int = 16,
             growth: int = 12, blocks: int = 2,
             block_layers: int = 3) -> Graph:
    """Densely-connected CNN with shared-buffer-eligible concat chains.

    ``blocks`` dense blocks of ``block_layers`` conv stages each; every
    stage contributes ``growth`` channels and concatenates onto the
    running block state.  Blocks are separated by a 1x1-conv + avg-pool
    transition that halves both channels and resolution.
    """
    b = GraphBuilder("densenet", (batch_size, 3, image_size, image_size))
    x = b.add(Conv2D(init_channels, 3, pad=1), b.input, name="stem")
    channels = init_channels
    for block in range(1, blocks + 1):
        for stage in range(1, block_layers + 1):
            tag = f"b{block}_l{stage}"
            y = b.add(Conv2D(growth, 3, pad=1), x, name=f"conv_{tag}")
            y = b.add(ReLU(), y, name=f"relu_{tag}")
            # The running state goes FIRST so x is a channel prefix of
            # the new concat -- the shared-buffer eligibility condition.
            x = b.add(Concat(), [x, y], name=f"cat_{tag}")
            channels += growth
        if block < blocks:
            channels = max(channels // 2, growth)
            x = b.add(Conv2D(channels, 1), x, name=f"trans{block}_conv")
            x = b.add(ReLU(), x, name=f"trans{block}_relu")
            x = b.add(AvgPool2D(2, 2), x, name=f"trans{block}_pool")
    x = b.add(GlobalAvgPool2D(), x, name="gap")
    x = b.add(Dense(num_classes), x, name="fc")
    x = b.add(SoftmaxCrossEntropy(), x, name="loss")
    b.mark_output(x)
    return b.build()
