"""GoogLeNet / Inception-v1 (Szegedy et al., 2015).

Nine inception modules with 1x1 / 3x3 / 5x5 / pool-projection branches.
Auxiliary classifier heads are omitted: they exist only to inject extra
gradient signal and contribute a negligible fraction of feature-map
footprint, which is what this reproduction accounts for.
"""

from __future__ import annotations

from repro.graph import Graph, GraphBuilder
from repro.layers import (
    AvgPool2D,
    Concat,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    LocalResponseNorm,
    MaxPool2D,
    ReLU,
    SoftmaxCrossEntropy,
)

# Per-module branch channels: (1x1, 3x3 reduce, 3x3, 5x5 reduce, 5x5, pool proj)
_MODULES = {
    "3a": (64, 96, 128, 16, 32, 32),
    "3b": (128, 128, 192, 32, 96, 64),
    "4a": (192, 96, 208, 16, 48, 64),
    "4b": (160, 112, 224, 24, 64, 64),
    "4c": (128, 128, 256, 24, 64, 64),
    "4d": (112, 144, 288, 32, 64, 64),
    "4e": (256, 160, 320, 32, 128, 128),
    "5a": (256, 160, 320, 32, 128, 128),
    "5b": (384, 192, 384, 48, 128, 128),
}


def inception(batch_size: int = 64, num_classes: int = 1000,
              image_size: int = 224) -> Graph:
    """Build GoogLeNet (Inception-v1) for ``image_size`` RGB inputs."""
    b = GraphBuilder("inception", (batch_size, 3, image_size, image_size))

    def conv_relu(x, channels, kernel, name, stride=1, pad=0):
        x = b.add(Conv2D(channels, kernel, stride=stride, pad=pad), x,
                  name=f"{name}")
        return b.add(ReLU(), x, name=f"{name}_relu")

    def module(x, name, cfg):
        c1, c3r, c3, c5r, c5, cp = cfg
        b1 = conv_relu(x, c1, 1, f"inc{name}_1x1")
        b3 = conv_relu(x, c3r, 1, f"inc{name}_3x3r")
        b3 = conv_relu(b3, c3, 3, f"inc{name}_3x3", pad=1)
        b5 = conv_relu(x, c5r, 1, f"inc{name}_5x5r")
        b5 = conv_relu(b5, c5, 5, f"inc{name}_5x5", pad=2)
        bp = b.add(MaxPool2D(3, 1, pad=1), x, name=f"inc{name}_pool")
        bp = conv_relu(bp, cp, 1, f"inc{name}_proj")
        return b.add(Concat(), [b1, b3, b5, bp], name=f"inc{name}_out")

    x = conv_relu(b.input, 64, 7, "conv1", stride=2, pad=3)
    x = b.add(MaxPool2D(3, 2, pad=1), x, name="pool1")
    x = b.add(LocalResponseNorm(5), x, name="norm1")
    x = conv_relu(x, 64, 1, "conv2r")
    x = conv_relu(x, 192, 3, "conv2", pad=1)
    x = b.add(LocalResponseNorm(5), x, name="norm2")
    x = b.add(MaxPool2D(3, 2, pad=1), x, name="pool2")
    x = module(x, "3a", _MODULES["3a"])
    x = module(x, "3b", _MODULES["3b"])
    x = b.add(MaxPool2D(3, 2, pad=1), x, name="pool3")
    for name in ("4a", "4b", "4c", "4d", "4e"):
        x = module(x, name, _MODULES[name])
    x = b.add(MaxPool2D(3, 2, pad=1), x, name="pool4")
    x = module(x, "5a", _MODULES["5a"])
    x = module(x, "5b", _MODULES["5b"])
    x = b.add(AvgPool2D(7, 1), x, name="pool5")
    x = b.add(Dropout(0.4), x, name="drop")
    x = b.add(Flatten(), x, name="flatten")
    x = b.add(Dense(num_classes), x, name="fc")
    x = b.add(SoftmaxCrossEntropy(), x, name="loss")
    b.mark_output(x)
    return b.build()
