"""Unrolled LSTM/RNN sequence classifiers.

The recurrence is unrolled at build time (see ``layers/recurrent.py``):
the rank-3 input ``(batch, seq_len, input_size)`` is split into
per-timestep slices, each fed through a step node sharing one weight
cell, and the final hidden state drives a dense softmax head.  Every
node is an ordinary static-graph op, so stash classification, the
hybrid planner, and the rewrite passes all apply unchanged.
"""

from __future__ import annotations

from repro.graph import Graph, GraphBuilder
from repro.layers import (
    Dense,
    LSTMCell,
    LSTMStep,
    RNNCell,
    RNNStep,
    SoftmaxCrossEntropy,
    StateSlice,
    TimeSlice,
)


def lstm(batch_size: int = 64, num_classes: int = 10, seq_len: int = 12,
         input_size: int = 32, hidden_size: int = 64) -> Graph:
    """Single-layer unrolled LSTM classifier over the last hidden state."""
    b = GraphBuilder("lstm", (batch_size, seq_len, input_size))
    cell = LSTMCell(input_size, hidden_size)
    state = None
    for t in range(seq_len):
        x_t = b.add(TimeSlice(t, seq_len), b.input, name=f"x{t}")
        inputs = [x_t] if state is None else [x_t, state]
        state = b.add(LSTMStep(cell, t), inputs, name=f"step{t}")
    h = b.add(StateSlice(hidden_size, "h"), state, name="hT")
    x = b.add(Dense(num_classes), h, name="fc")
    x = b.add(SoftmaxCrossEntropy(), x, name="loss")
    b.mark_output(x)
    return b.build()


def rnn(batch_size: int = 64, num_classes: int = 10, seq_len: int = 12,
        input_size: int = 32, hidden_size: int = 64) -> Graph:
    """Single-layer unrolled tanh-RNN classifier over the last state."""
    b = GraphBuilder("rnn", (batch_size, seq_len, input_size))
    cell = RNNCell(input_size, hidden_size)
    state = None
    for t in range(seq_len):
        x_t = b.add(TimeSlice(t, seq_len), b.input, name=f"x{t}")
        inputs = [x_t] if state is None else [x_t, state]
        state = b.add(RNNStep(cell, t), inputs, name=f"step{t}")
    x = b.add(Dense(num_classes), state, name="fc")
    x = b.add(SoftmaxCrossEntropy(), x, name="loss")
    b.mark_output(x)
    return b.build()
