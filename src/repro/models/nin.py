"""Network in Network (Lin et al., 2014) — ImageNet configuration.

NiN replaces dense heads with 1x1 "mlpconv" stacks and global average
pooling, so nearly all of its stashed feature maps are ReLU outputs feeding
convolutions — prime SSDC territory.
"""

from __future__ import annotations

from repro.graph import Graph, GraphBuilder
from repro.layers import (
    Conv2D,
    Dropout,
    GlobalAvgPool2D,
    Flatten,
    MaxPool2D,
    ReLU,
    SoftmaxCrossEntropy,
)


def nin(batch_size: int = 64, num_classes: int = 1000,
        image_size: int = 224) -> Graph:
    """Build NiN for ``image_size`` x ``image_size`` RGB inputs."""
    b = GraphBuilder("nin", (batch_size, 3, image_size, image_size))
    x = b.input

    def mlpconv(x, idx, channels, kernel, stride=1, pad=0):
        c1, c2, c3 = channels
        x = b.add(Conv2D(c1, kernel, stride=stride, pad=pad), x, name=f"conv{idx}")
        x = b.add(ReLU(), x, name=f"relu{idx}")
        x = b.add(Conv2D(c2, 1), x, name=f"cccp{idx}a")
        x = b.add(ReLU(), x, name=f"relu{idx}a")
        x = b.add(Conv2D(c3, 1), x, name=f"cccp{idx}b")
        x = b.add(ReLU(), x, name=f"relu{idx}b")
        return x

    x = mlpconv(x, 1, (96, 96, 96), 11, stride=4)
    x = b.add(MaxPool2D(3, 2), x, name="pool1")
    x = mlpconv(x, 2, (256, 256, 256), 5, pad=2)
    x = b.add(MaxPool2D(3, 2), x, name="pool2")
    x = mlpconv(x, 3, (384, 384, 384), 3, pad=1)
    x = b.add(MaxPool2D(3, 2), x, name="pool3")
    x = b.add(Dropout(0.5), x, name="drop")
    x = mlpconv(x, 4, (1024, 1024, num_classes), 3, pad=1)
    x = b.add(GlobalAvgPool2D(), x, name="gap")
    x = b.add(Flatten(), x, name="flatten")
    x = b.add(SoftmaxCrossEntropy(), x, name="loss")
    b.mark_output(x)
    return b.build()
