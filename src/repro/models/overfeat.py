"""OverFeat (Sermanet et al., 2014) — "fast" model."""

from __future__ import annotations

from repro.graph import Graph, GraphBuilder
from repro.layers import (
    Conv2D,
    Dense,
    Dropout,
    MaxPool2D,
    ReLU,
    SoftmaxCrossEntropy,
)


def overfeat(batch_size: int = 64, num_classes: int = 1000,
             image_size: int = 231) -> Graph:
    """Build the OverFeat fast model for ``image_size`` RGB inputs."""
    b = GraphBuilder("overfeat", (batch_size, 3, image_size, image_size))
    x = b.add(Conv2D(96, 11, stride=4), b.input, name="conv1")
    x = b.add(ReLU(), x, name="relu1")
    x = b.add(MaxPool2D(2, 2), x, name="pool1")
    x = b.add(Conv2D(256, 5), x, name="conv2")
    x = b.add(ReLU(), x, name="relu2")
    x = b.add(MaxPool2D(2, 2), x, name="pool2")
    x = b.add(Conv2D(512, 3, pad=1), x, name="conv3")
    x = b.add(ReLU(), x, name="relu3")
    x = b.add(Conv2D(1024, 3, pad=1), x, name="conv4")
    x = b.add(ReLU(), x, name="relu4")
    x = b.add(Conv2D(1024, 3, pad=1), x, name="conv5")
    x = b.add(ReLU(), x, name="relu5")
    x = b.add(MaxPool2D(2, 2), x, name="pool5")
    x = b.add(Dense(3072), x, name="fc6")
    x = b.add(ReLU(), x, name="relu6")
    x = b.add(Dropout(0.5), x, name="drop6")
    x = b.add(Dense(4096), x, name="fc7")
    x = b.add(ReLU(), x, name="relu7")
    x = b.add(Dropout(0.5), x, name="drop7")
    x = b.add(Dense(num_classes), x, name="fc8")
    x = b.add(SoftmaxCrossEntropy(), x, name="loss")
    b.mark_output(x)
    return b.build()
