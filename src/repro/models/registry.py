"""Model registry: name → graph factory.

``PAPER_SUITE`` is the six-network suite evaluated throughout the paper's
Section V; all benches iterate it in the paper's figure order.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.graph import Graph
from repro.models.alexnet import alexnet
from repro.models.densenet import densenet
from repro.models.inception import inception
from repro.models.lstm import lstm, rnn
from repro.models.nin import nin
from repro.models.overfeat import overfeat
from repro.models.resnet import resnet, resnet_cifar
from repro.models.scaled import scaled_alexnet, scaled_vgg, tiny_cnn
from repro.models.vgg import vgg16, vgg19

ModelFactory = Callable[..., Graph]

_REGISTRY: Dict[str, ModelFactory] = {
    "alexnet": alexnet,
    "nin": nin,
    "overfeat": overfeat,
    "vgg16": vgg16,
    "vgg19": vgg19,
    "inception": inception,
    "resnet50": lambda batch_size=64, **kw: resnet(50, batch_size=batch_size, **kw),
    "resnet101": lambda batch_size=64, **kw: resnet(101, batch_size=batch_size, **kw),
    "resnet152": lambda batch_size=64, **kw: resnet(152, batch_size=batch_size, **kw),
    "tiny_cnn": tiny_cnn,
    "scaled_vgg": scaled_vgg,
    "scaled_alexnet": scaled_alexnet,
    "lstm": lstm,
    "rnn": rnn,
    "densenet": densenet,
}

#: The paper's evaluation suite (Section V-A), in figure order.
PAPER_SUITE: List[str] = ["alexnet", "nin", "overfeat", "vgg16", "inception",
                          "resnet50"]


def build_model(name: str, batch_size: int = 64, **kwargs) -> Graph:
    """Instantiate a registered model by name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return factory(batch_size=batch_size, **kwargs)


def available_models() -> List[str]:
    """Names accepted by :func:`build_model`."""
    return sorted(_REGISTRY)


__all__ = ["PAPER_SUITE", "available_models", "build_model", "resnet_cifar"]
