"""ResNet (He et al., 2016): ImageNet bottleneck nets and composable-depth
CIFAR-style nets.

The paper's Figure 16 trend study varies CIFAR-style ResNet depth to 509,
851 and 1202 layers; ``resnet_cifar`` accepts any depth and distributes
``(depth - 2) // 6`` basic blocks per stage (remainder to the earliest
stages), matching the 6n+2 family for exact depths.
"""

from __future__ import annotations

from repro.graph import Graph, GraphBuilder
from repro.graph.builder import NodeRef
from repro.layers import (
    Add,
    AvgPool2D,
    BatchNorm2D,
    Conv2D,
    Dense,
    Flatten,
    GlobalAvgPool2D,
    MaxPool2D,
    ReLU,
    SoftmaxCrossEntropy,
)

# Bottleneck block counts per stage for the ImageNet variants.
_IMAGENET_BLOCKS = {50: (3, 4, 6, 3), 101: (3, 4, 23, 3), 152: (3, 8, 36, 3)}


def resnet(depth: int = 50, batch_size: int = 64, num_classes: int = 1000,
           image_size: int = 224) -> Graph:
    """Build an ImageNet bottleneck ResNet (depth in {50, 101, 152})."""
    if depth not in _IMAGENET_BLOCKS:
        raise ValueError(
            f"ImageNet resnet depth must be one of {sorted(_IMAGENET_BLOCKS)}, "
            f"got {depth}; use resnet_cifar() for arbitrary depths"
        )
    blocks = _IMAGENET_BLOCKS[depth]
    b = GraphBuilder(f"resnet{depth}", (batch_size, 3, image_size, image_size))

    def conv_bn(x, channels, kernel, name, stride=1, pad=0, relu=True):
        x = b.add(Conv2D(channels, kernel, stride=stride, pad=pad, bias=False),
                  x, name=name)
        x = b.add(BatchNorm2D(), x, name=f"{name}_bn")
        if relu:
            x = b.add(ReLU(), x, name=f"{name}_relu")
        return x

    def bottleneck(x: NodeRef, name: str, mid: int, out: int, stride: int) -> NodeRef:
        shortcut = x
        in_channels = b.shape_of(x)[1]
        if stride != 1 or in_channels != out:
            shortcut = conv_bn(x, out, 1, f"{name}_proj", stride=stride, relu=False)
        y = conv_bn(x, mid, 1, f"{name}_a", stride=stride)
        y = conv_bn(y, mid, 3, f"{name}_b", pad=1)
        y = conv_bn(y, out, 1, f"{name}_c", relu=False)
        s = b.add(Add(), [y, shortcut], name=f"{name}_add")
        return b.add(ReLU(), s, name=f"{name}_relu")

    x = conv_bn(b.input, 64, 7, "conv1", stride=2, pad=3)
    x = b.add(MaxPool2D(3, 2, pad=1), x, name="pool1")
    widths = (64, 128, 256, 512)
    for stage, (n_blocks, width) in enumerate(zip(blocks, widths), start=2):
        for i in range(n_blocks):
            stride = 2 if (stage > 2 and i == 0) else 1
            x = bottleneck(x, f"res{stage}{chr(ord('a') + i)}", width, width * 4,
                           stride)
    x = b.add(GlobalAvgPool2D(), x, name="pool5")
    x = b.add(Flatten(), x, name="flatten")
    x = b.add(Dense(num_classes), x, name="fc")
    x = b.add(SoftmaxCrossEntropy(), x, name="loss")
    b.mark_output(x)
    return b.build()


def resnet_cifar(depth: int, batch_size: int = 128, num_classes: int = 10,
                 image_size: int = 32) -> Graph:
    """Build a CIFAR-style basic-block ResNet of (approximately) ``depth``.

    Exact for the 6n+2 family (e.g. 110, 1202); other depths round the
    per-stage block count down and distribute the remainder to the earliest
    stages, reproducing the paper's 509/851-layer configurations as closely
    as the block structure permits.
    """
    if depth < 8:
        raise ValueError(f"resnet_cifar depth must be >= 8, got {depth}")
    # depth = 6n + 2: n basic blocks (2 convs each) in each of 3 stages,
    # plus the stem conv and the final classifier.
    per_stage = [(depth - 2) // 6] * 3
    leftover_blocks = ((depth - 2) - 6 * per_stage[0]) // 2
    for i in range(leftover_blocks):
        per_stage[i % 3] += 1
    b = GraphBuilder(f"resnet{depth}_cifar",
                     (batch_size, 3, image_size, image_size))

    def conv_bn(x, channels, name, stride=1, relu=True):
        x = b.add(Conv2D(channels, 3, stride=stride, pad=1, bias=False), x,
                  name=name)
        x = b.add(BatchNorm2D(), x, name=f"{name}_bn")
        if relu:
            x = b.add(ReLU(), x, name=f"{name}_relu")
        return x

    def basic_block(x: NodeRef, name: str, width: int, stride: int) -> NodeRef:
        shortcut = x
        in_channels = b.shape_of(x)[1]
        if stride != 1 or in_channels != width:
            shortcut = b.add(Conv2D(width, 1, stride=stride, bias=False), x,
                             name=f"{name}_proj")
            shortcut = b.add(BatchNorm2D(), shortcut, name=f"{name}_proj_bn")
        y = conv_bn(x, width, f"{name}_a", stride=stride)
        y = conv_bn(y, width, f"{name}_b", relu=False)
        s = b.add(Add(), [y, shortcut], name=f"{name}_add")
        return b.add(ReLU(), s, name=f"{name}_relu")

    x = conv_bn(b.input, 16, "conv1")
    for stage, width in enumerate((16, 32, 64), start=1):
        for i in range(per_stage[stage - 1]):
            stride = 2 if (stage > 1 and i == 0) else 1
            x = basic_block(x, f"s{stage}b{i}", width, stride)
    x = b.add(GlobalAvgPool2D(), x, name="gap")
    x = b.add(Flatten(), x, name="flatten")
    x = b.add(Dense(num_classes), x, name="fc")
    x = b.add(SoftmaxCrossEntropy(), x, name="loss")
    b.mark_output(x)
    return b.build()
