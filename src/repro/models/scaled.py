"""Scaled-down models for the runtime training experiments.

The paper's accuracy and sparsity experiments (Figures 12, 14) need real
gradient descent; at ImageNet scale that is infeasible on CPU, so these
CIFAR-size variants preserve the *structural* properties that matter to
Gist — ReLU-Pool pairs (Binarize), ReLU-Conv pairs (SSDC), dense heads
(DPR "Others") — while keeping NumPy training fast.
"""

from __future__ import annotations

from repro.graph import Graph, GraphBuilder
from repro.layers import (
    Conv2D,
    Dense,
    Dropout,
    MaxPool2D,
    ReLU,
    SoftmaxCrossEntropy,
)


def tiny_cnn(batch_size: int = 16, num_classes: int = 4,
             image_size: int = 8, channels: int = 8) -> Graph:
    """A minimal conv-relu-pool-dense net for fast unit/integration tests."""
    b = GraphBuilder("tiny_cnn", (batch_size, 3, image_size, image_size))
    x = b.add(Conv2D(channels, 3, pad=1), b.input, name="conv1")
    x = b.add(ReLU(), x, name="relu1")
    x = b.add(MaxPool2D(2, 2), x, name="pool1")
    x = b.add(Conv2D(channels * 2, 3, pad=1), x, name="conv2")
    x = b.add(ReLU(), x, name="relu2")
    x = b.add(Dense(num_classes), x, name="fc")
    x = b.add(SoftmaxCrossEntropy(), x, name="loss")
    b.mark_output(x)
    return b.build()


def scaled_vgg(batch_size: int = 32, num_classes: int = 10,
               image_size: int = 32, width: int = 16) -> Graph:
    """A VGG16-shaped network scaled to CIFAR size.

    Three conv stages of two 3x3 convs each (so every stage contributes one
    ReLU-Conv and one ReLU-Pool stashed map), then a small dense head —
    the same stash-class mix as full VGG16.
    """
    b = GraphBuilder("scaled_vgg", (batch_size, 3, image_size, image_size))
    x = b.input
    for stage, channels in enumerate((width, width * 2, width * 4), start=1):
        x = b.add(Conv2D(channels, 3, pad=1), x, name=f"conv{stage}_1")
        x = b.add(ReLU(), x, name=f"relu{stage}_1")
        x = b.add(Conv2D(channels, 3, pad=1), x, name=f"conv{stage}_2")
        x = b.add(ReLU(), x, name=f"relu{stage}_2")
        x = b.add(MaxPool2D(2, 2), x, name=f"pool{stage}")
    x = b.add(Dense(width * 8), x, name="fc1")
    x = b.add(ReLU(), x, name="relu_fc1")
    x = b.add(Dropout(0.5), x, name="drop1")
    x = b.add(Dense(num_classes), x, name="fc2")
    x = b.add(SoftmaxCrossEntropy(), x, name="loss")
    b.mark_output(x)
    return b.build()


def scaled_alexnet(batch_size: int = 32, num_classes: int = 10,
                   image_size: int = 32) -> Graph:
    """AlexNet-shaped network at CIFAR size (conv-relu-pool x2 + convs)."""
    b = GraphBuilder("scaled_alexnet", (batch_size, 3, image_size, image_size))
    x = b.add(Conv2D(24, 5, pad=2), b.input, name="conv1")
    x = b.add(ReLU(), x, name="relu1")
    x = b.add(MaxPool2D(3, 2), x, name="pool1")
    x = b.add(Conv2D(48, 5, pad=2), x, name="conv2")
    x = b.add(ReLU(), x, name="relu2")
    x = b.add(MaxPool2D(3, 2), x, name="pool2")
    x = b.add(Conv2D(64, 3, pad=1), x, name="conv3")
    x = b.add(ReLU(), x, name="relu3")
    x = b.add(Dense(128), x, name="fc6")
    x = b.add(ReLU(), x, name="relu6")
    x = b.add(Dense(num_classes), x, name="fc8")
    x = b.add(SoftmaxCrossEntropy(), x, name="loss")
    b.mark_output(x)
    return b.build()
