"""VGG-16 (Simonyan & Zisserman, 2015), configuration D.

VGG16 is the paper's flagship workload: 89% of its stashed feature maps
are ReLU outputs (40% ReLU-Pool, 49% ReLU-Conv), and it is the network
whose minimum DPR precision is highest (FP16).
"""

from __future__ import annotations

from repro.graph import Graph, GraphBuilder
from repro.layers import (
    Conv2D,
    Dense,
    Dropout,
    MaxPool2D,
    ReLU,
    SoftmaxCrossEntropy,
)

# (stage index, number of convs, channels) per configuration.
_VGG16_STAGES = [(1, 2, 64), (2, 2, 128), (3, 3, 256), (4, 3, 512), (5, 3, 512)]
_VGG19_STAGES = [(1, 2, 64), (2, 2, 128), (3, 4, 256), (4, 4, 512), (5, 4, 512)]


def _vgg(name: str, stages, batch_size: int, num_classes: int,
         image_size: int) -> Graph:
    b = GraphBuilder(name, (batch_size, 3, image_size, image_size))
    x = b.input
    for stage, n_convs, channels in stages:
        for i in range(1, n_convs + 1):
            x = b.add(Conv2D(channels, 3, pad=1), x, name=f"conv{stage}_{i}")
            x = b.add(ReLU(), x, name=f"relu{stage}_{i}")
        x = b.add(MaxPool2D(2, 2), x, name=f"pool{stage}")
    x = b.add(Dense(4096), x, name="fc6")
    x = b.add(ReLU(), x, name="relu6")
    x = b.add(Dropout(0.5), x, name="drop6")
    x = b.add(Dense(4096), x, name="fc7")
    x = b.add(ReLU(), x, name="relu7")
    x = b.add(Dropout(0.5), x, name="drop7")
    x = b.add(Dense(num_classes), x, name="fc8")
    x = b.add(SoftmaxCrossEntropy(), x, name="loss")
    b.mark_output(x)
    return b.build()


def vgg16(batch_size: int = 64, num_classes: int = 1000,
          image_size: int = 224) -> Graph:
    """Build VGG-16 (configuration D)."""
    return _vgg("vgg16", _VGG16_STAGES, batch_size, num_classes, image_size)


def vgg19(batch_size: int = 64, num_classes: int = 1000,
          image_size: int = 224) -> Graph:
    """Build VGG-19 (configuration E)."""
    return _vgg("vgg19", _VGG19_STAGES, batch_size, num_classes, image_size)
