"""Deterministic parallel orchestration of embarrassingly-parallel work.

The verify layer's fuzz batteries and the paper-figure experiment
drivers are both long lists of independent, seed-deterministic
computations.  This package runs such lists across worker processes
without giving up the determinism contract the verify layer depends on:

* a **work unit** (:class:`~repro.orchestrate.units.WorkUnit`) is an
  explicit ``(kind, key, payload)`` triple — the payload alone
  reproduces the computation, in any process, in any order;
* the **pool** (:func:`~repro.orchestrate.pool.run_units`) shards units
  across crash-isolated worker processes with per-task timeout and
  bounded retry; a worker exception, crash or hang is recorded as a
  task failure carrying its payload, never kills the batch;
* the **journal** (:class:`~repro.orchestrate.journal.RunJournal`)
  streams finished units to disk as atomically-appended JSONL, so an
  interrupted run resumes by skipping completed units;
* **merging is the caller's job** and must be a pure function of the
  ``key -> result`` mapping consumed in unit order — which is what
  makes ``--workers 1`` and ``--workers 8`` byte-identical.
"""

from repro.orchestrate.cores import cgroup_cpu_quota, usable_cores
from repro.orchestrate.journal import JOURNAL_FORMAT, RunJournal
from repro.orchestrate.pool import UnitResult, run_units
from repro.orchestrate.units import (
    WorkUnit,
    payload_fingerprint,
    register_kind,
    registered_kinds,
    resolve_kind,
)

__all__ = [
    "JOURNAL_FORMAT",
    "RunJournal",
    "UnitResult",
    "WorkUnit",
    "cgroup_cpu_quota",
    "payload_fingerprint",
    "register_kind",
    "registered_kinds",
    "resolve_kind",
    "run_units",
    "usable_cores",
]
