"""Usable-core detection for worker sizing and benchmark gates.

``os.cpu_count()`` reports the machine, not the budget this process may
actually use: a container can be pinned to a CPU subset (sched affinity)
or throttled by a cgroup CPU quota while still "seeing" every core.
Sizing a pool — or deciding whether a parallel-speedup gate is even
applicable — from ``cpu_count`` therefore overcounts on CI runners, and
a 4-worker >= 2.5x gate silently becomes unmeetable.  The detection here
takes the minimum of:

* the scheduler affinity mask (``os.sched_getaffinity``), and
* the cgroup CPU quota (v2 ``cpu.max``, v1 ``cfs_quota_us`` /
  ``cfs_period_us``), rounded up — a 350% quota supports 4 busy workers.
"""

from __future__ import annotations

import math
import os
from pathlib import Path
from typing import Optional

_CGROUP_V2_MAX = "/sys/fs/cgroup/cpu.max"
_CGROUP_V1_QUOTA = "/sys/fs/cgroup/cpu/cpu.cfs_quota_us"
_CGROUP_V1_PERIOD = "/sys/fs/cgroup/cpu/cpu.cfs_period_us"


def _read_int(path: str) -> Optional[int]:
    try:
        return int(Path(path).read_text().split()[0])
    except (OSError, ValueError, IndexError):
        return None


def cgroup_cpu_quota(
    v2_max: str = _CGROUP_V2_MAX,
    v1_quota: str = _CGROUP_V1_QUOTA,
    v1_period: str = _CGROUP_V1_PERIOD,
) -> Optional[int]:
    """Cores allowed by the cgroup CPU quota, rounded up; ``None`` if
    unlimited or not in a constrained cgroup."""
    try:
        parts = Path(v2_max).read_text().split()
    except OSError:
        parts = []
    if len(parts) >= 2 and parts[0] != "max":
        try:
            quota, period = int(parts[0]), int(parts[1])
        except ValueError:
            quota, period = 0, 0
        if quota > 0 and period > 0:
            return max(1, math.ceil(quota / period))
    quota = _read_int(v1_quota)
    period = _read_int(v1_period)
    if quota is not None and period is not None and quota > 0 and period > 0:
        return max(1, math.ceil(quota / period))
    return None


def usable_cores() -> int:
    """Cores this process can actually keep busy.

    ``min(affinity mask, cgroup quota)``, falling back to
    ``os.cpu_count()`` where a source is unavailable.
    """
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cores = os.cpu_count() or 1
    quota = cgroup_cpu_quota()
    if quota is not None:
        cores = min(cores, quota)
    return max(1, cores)
