"""On-disk run journal: JSONL of finished work units, resume by replay.

Every terminal unit outcome (``ok`` or ``failed``) is appended as one
atomic JSONL record (:func:`repro.ioutil.append_jsonl_line`), so killing
a run at any instant loses at most the in-flight units.  Re-invoking the
same run with the same journal path replays completed units from disk —
their recorded results feed the merge exactly as a live result would —
and re-runs only what is missing.

Resume is payload-aware: each record stores a fingerprint of the unit's
kind + payload, and a record is only replayed for a unit whose
fingerprint still matches.  Changing a sweep's parameters therefore
invalidates stale journal entries instead of silently reusing them.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, Optional

from repro.ioutil import append_jsonl_line, read_jsonl
from repro.orchestrate.units import WorkUnit, payload_fingerprint

#: Stamped into every record; bump on layout changes.
JOURNAL_FORMAT = 1


class RunJournal:
    """Append-only JSONL journal of unit outcomes for one logical run."""

    def __init__(self, path) -> None:
        self.path = Path(path)

    # ------------------------------------------------------------------
    def record(
        self,
        unit: WorkUnit,
        status: str,
        result=None,
        error: Optional[dict] = None,
        attempts: int = 1,
        elapsed_s: float = 0.0,
    ) -> None:
        """Append one terminal unit outcome (``ok`` or ``failed``)."""
        if status not in ("ok", "failed"):
            raise ValueError(f"terminal status expected, got {status!r}")
        append_jsonl_line(self.path, {
            "format": JOURNAL_FORMAT,
            "key": unit.key,
            "kind": unit.kind,
            "fingerprint": payload_fingerprint(unit),
            "status": status,
            "result": result,
            "error": error,
            "attempts": attempts,
            "elapsed_s": round(float(elapsed_s), 6),
        })

    # ------------------------------------------------------------------
    def completed(self, units: Iterable[WorkUnit],
                  retry_failed: bool = True) -> Dict[str, dict]:
        """Journal records replayable for ``units``, keyed by unit key.

        A record replays only when its fingerprint matches the unit's
        current payload (later records win, so a re-run that overwrote
        an outcome supersedes the old one).  With ``retry_failed`` the
        ``failed`` records are dropped, so a resumed run gives crashed
        and timed-out units another chance.
        """
        wanted = {u.key: payload_fingerprint(u) for u in units}
        replay: Dict[str, dict] = {}
        for record in read_jsonl(self.path):
            if record.get("format") != JOURNAL_FORMAT:
                continue
            key = record.get("key")
            if wanted.get(key) != record.get("fingerprint"):
                continue
            if record.get("status") not in ("ok", "failed"):
                continue
            replay[key] = record
        if retry_failed:
            replay = {k: r for k, r in replay.items()
                      if r["status"] == "ok"}
        return replay
