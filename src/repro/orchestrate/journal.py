"""On-disk run journal: JSONL of finished work units, resume by replay.

Every terminal unit outcome (``ok`` or ``failed``) is appended as one
atomic JSONL record (:func:`repro.ioutil.append_jsonl_line`), so killing
a run at any instant loses at most the in-flight units.  Re-invoking the
same run with the same journal path replays completed units from disk —
their recorded results feed the merge exactly as a live result would —
and re-runs only what is missing.

Resume is payload-aware: each record stores a fingerprint of the unit's
kind + payload, and a record is only replayed for a unit whose
fingerprint still matches.  Changing a sweep's parameters therefore
invalidates stale journal entries instead of silently reusing them.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, Optional, Tuple

from repro.ioutil import append_jsonl_line, atomic_write_text, read_jsonl
from repro.orchestrate.units import WorkUnit, payload_fingerprint

#: Stamped into every record; bump on layout changes.
JOURNAL_FORMAT = 1


class RunJournal:
    """Append-only JSONL journal of unit outcomes for one logical run."""

    def __init__(self, path) -> None:
        self.path = Path(path)

    # ------------------------------------------------------------------
    def record(
        self,
        unit: WorkUnit,
        status: str,
        result=None,
        error: Optional[dict] = None,
        attempts: int = 1,
        elapsed_s: float = 0.0,
    ) -> None:
        """Append one terminal unit outcome (``ok`` or ``failed``)."""
        if status not in ("ok", "failed"):
            raise ValueError(f"terminal status expected, got {status!r}")
        append_jsonl_line(self.path, {
            "format": JOURNAL_FORMAT,
            "key": unit.key,
            "kind": unit.kind,
            "fingerprint": payload_fingerprint(unit),
            "status": status,
            "result": result,
            "error": error,
            "attempts": attempts,
            "elapsed_s": round(float(elapsed_s), 6),
        })

    # ------------------------------------------------------------------
    def completed(self, units: Iterable[WorkUnit],
                  retry_failed: bool = True) -> Dict[str, dict]:
        """Journal records replayable for ``units``, keyed by unit key.

        A record replays only when its fingerprint matches the unit's
        current payload (later records win, so a re-run that overwrote
        an outcome supersedes the old one).  With ``retry_failed`` the
        ``failed`` records are dropped, so a resumed run gives crashed
        and timed-out units another chance.
        """
        wanted = {u.key: payload_fingerprint(u) for u in units}
        replay: Dict[str, dict] = {}
        for record in read_jsonl(self.path):
            if record.get("format") != JOURNAL_FORMAT:
                continue
            key = record.get("key")
            if wanted.get(key) != record.get("fingerprint"):
                continue
            if record.get("status") not in ("ok", "failed"):
                continue
            replay[key] = record
        if retry_failed:
            replay = {k: r for k, r in replay.items()
                      if r["status"] == "ok"}
        return replay

    # ------------------------------------------------------------------
    def compact(self) -> Tuple[int, int]:
        """Atomically rewrite the journal, dropping superseded records.

        An append-only journal replayed on every scheduling pass grows
        without bound across resumes — fatal for a long-lived daemon.
        Compaction keeps only the *latest* record per ``(key,
        fingerprint)`` pair (plus nothing else: malformed lines, foreign
        formats and non-terminal statuses are dropped, exactly the
        records :meth:`completed` already ignores).

        Keying on the pair rather than the key alone is what preserves
        :meth:`completed` semantics byte-for-byte: a journal may hold
        records for the same key under different payload fingerprints
        (a re-invocation with changed parameters), and ``completed``
        replays whichever matches the caller's current payload.  Within
        one pair, later records win both before and after compaction.

        Returns:
            ``(kept, dropped)`` record counts.  The rewrite goes through
            :func:`repro.ioutil.atomic_write_text`, so a crash mid-compaction
            leaves the previous journal intact.
        """
        latest: Dict[Tuple[str, str], dict] = {}
        total = 0
        for record in read_jsonl(self.path):
            total += 1
            if record.get("format") != JOURNAL_FORMAT:
                continue
            if record.get("status") not in ("ok", "failed"):
                continue
            key = record.get("key")
            if not isinstance(key, str):
                continue
            # dict insertion order: re-inserting moves nothing, so kept
            # records stay in first-seen pair order with latest contents.
            latest[(key, str(record.get("fingerprint")))] = record
        if not latest and not self.path.exists():
            return 0, 0
        lines = [json.dumps(record, sort_keys=True)
                 for record in latest.values()]
        atomic_write_text(self.path, "".join(line + "\n" for line in lines))
        return len(latest), total - len(latest)
