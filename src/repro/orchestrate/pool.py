"""Crash-isolated process-pool execution of work units.

``run_units`` is the single entry point.  With ``workers <= 1`` units
run inline (same outcome records, no subprocess machinery); with more,
each worker is a dedicated child process fed over its own task queue, so
the parent always knows which unit a worker holds and can detect both
failure modes a shared pool hides:

* **crash** — the worker process dies (segfault, ``os._exit``, OOM
  kill): the parent sees the dead process, records the attempt as a
  failure carrying the unit's payload, and spawns a replacement;
* **hang** — the unit exceeds its per-task timeout: the worker is
  terminated and replaced the same way.

Ordinary exceptions inside a unit are caught in the worker and returned
as structured error records.  Every failed attempt is retried up to
``retries`` times before the unit is finalised as ``failed``; no unit
outcome ever kills the batch.

Determinism contract: outcomes are finalised per *unit*, normalised
through a JSON round-trip (so a live result, a pickled-queue result and
a journal replay are indistinguishable), and returned keyed by unit key.
Callers merge in unit order, which makes the aggregate independent of
worker count and completion order.
"""

from __future__ import annotations

import multiprocessing as mp
import time
import traceback
from collections import deque
from dataclasses import dataclass
from queue import Empty
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.orchestrate.journal import RunJournal
from repro.orchestrate.units import WorkUnit, normalise_json, resolve_kind

#: Parent poll interval while waiting on worker results (seconds).
_POLL_S = 0.05


@dataclass
class UnitResult:
    """Terminal outcome of one work unit.

    Attributes:
        key: The unit's key.
        status: ``"ok"`` or ``"failed"``.
        value: JSON-normalised executor return value (``ok`` only).
        error: ``{"type", "message", "traceback"}`` for the final
            failed attempt (``failed`` only).
        attempts: Attempts consumed (1 = first try succeeded).
        elapsed_s: Wall-clock of the final attempt.
        cached: True when replayed from a run journal, not executed.
    """

    key: str
    status: str
    value: Any = None
    error: Optional[dict] = None
    attempts: int = 1
    elapsed_s: float = 0.0
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def _error_info(exc: BaseException) -> dict:
    return {
        "type": type(exc).__name__,
        "message": str(exc),
        "traceback": traceback.format_exc(),
    }


def _normalise(value):
    """JSON round-trip a result so live and replayed runs agree.

    Shares :func:`repro.orchestrate.units.normalise_json` with the
    payload fingerprint, so results and payloads canonicalise numpy
    scalars/arrays identically.
    """
    return normalise_json(value)


def _worker_main(worker_id: int, task_q, result_q) -> None:
    """Child-process loop: run units off ``task_q`` until ``None``."""
    while True:
        message = task_q.get()
        if message is None:
            return
        token, kind, payload = message
        start = time.perf_counter()
        try:
            value = resolve_kind(kind)(payload)
            reply = (worker_id, token, "ok", value, None,
                     time.perf_counter() - start)
        except BaseException as exc:  # crash isolation: report, keep serving
            reply = (worker_id, token, "error", None, _error_info(exc),
                     time.perf_counter() - start)
        try:
            result_q.put(reply)
        except Exception as exc:  # e.g. unpicklable result
            result_q.put((worker_id, token, "error", None, _error_info(exc),
                          time.perf_counter() - start))


class _Batch:
    """Shared outcome bookkeeping for one ``run_units`` call."""

    def __init__(self, retries: int, journal: Optional[RunJournal],
                 stop_when) -> None:
        self.retries = retries
        self.journal = journal
        self.stop_when = stop_when
        self.results: Dict[str, UnitResult] = {}
        self.stopping = False

    def finalise(self, unit: WorkUnit, status: str, value, error,
                 attempts: int, elapsed_s: float) -> None:
        if status == "ok":
            try:
                value = _normalise(value)
            except (TypeError, ValueError) as exc:
                status, value, error = "failed", None, _error_info(exc)
        result = UnitResult(unit.key, status, value, error,
                            attempts, elapsed_s)
        self.results[unit.key] = result
        if self.journal is not None:
            self.journal.record(unit, status, result=value, error=error,
                                attempts=attempts, elapsed_s=elapsed_s)
        if self.stop_when is not None and self.stop_when(result):
            self.stopping = True

    def attempt_failed(self, unit: WorkUnit, attempt: int, error: dict,
                       elapsed_s: float) -> Optional[int]:
        """Next attempt number, or None after finalising as failed."""
        if attempt <= self.retries:
            return attempt + 1
        self.finalise(unit, "failed", None, error, attempt, elapsed_s)
        return None


def _run_serial(pending: Sequence[WorkUnit], batch: _Batch) -> None:
    for unit in pending:
        if batch.stopping:
            return
        attempt = 1
        while True:
            start = time.perf_counter()
            try:
                value = resolve_kind(unit.kind)(unit.payload)
            except BaseException as exc:
                attempt_next = batch.attempt_failed(
                    unit, attempt, _error_info(exc),
                    time.perf_counter() - start)
                if attempt_next is None:
                    break
                attempt = attempt_next
            else:
                batch.finalise(unit, "ok", value, None, attempt,
                               time.perf_counter() - start)
                break


class _WorkerHandle:
    """One worker process plus its dedicated task queue."""

    def __init__(self, ctx, worker_id: int, result_q) -> None:
        self.ctx = ctx
        self.worker_id = worker_id
        self.result_q = result_q
        self.task_q = ctx.SimpleQueue()
        self.proc = None
        # In-flight assignment.
        self.token: Optional[int] = None
        self.unit: Optional[WorkUnit] = None
        self.attempt = 0
        self.start = 0.0
        self.deadline: Optional[float] = None
        self.spawn()

    def spawn(self) -> None:
        self.proc = self.ctx.Process(
            target=_worker_main,
            args=(self.worker_id, self.task_q, self.result_q),
            daemon=True,
        )
        self.proc.start()

    def assign(self, token: int, unit: WorkUnit, attempt: int,
               timeout_s: Optional[float]) -> None:
        if not self.proc.is_alive():
            self.spawn()
        self.token, self.unit, self.attempt = token, unit, attempt
        self.start = time.monotonic()
        self.deadline = (self.start + timeout_s
                         if timeout_s is not None else None)
        self.task_q.put((token, unit.kind, unit.payload))

    def clear(self) -> None:
        self.token = self.unit = self.deadline = None

    def replace(self) -> None:
        """Kill and respawn after a crash or timeout."""
        if self.proc.is_alive():
            self.proc.terminate()
        self.proc.join(timeout=2.0)
        if self.proc.is_alive():  # pragma: no cover - stubborn child
            self.proc.kill()
            self.proc.join(timeout=2.0)
        self.clear()
        self.task_q = self.ctx.SimpleQueue()
        self.spawn()

    def shutdown(self) -> None:
        if self.proc.is_alive():
            try:
                self.task_q.put(None)
            except Exception:  # pragma: no cover - broken pipe on exit
                pass
        self.proc.join(timeout=2.0)
        if self.proc.is_alive():
            self.proc.terminate()
            self.proc.join(timeout=2.0)


def _run_pool(pending: Sequence[WorkUnit], batch: _Batch, workers: int,
              timeout_s: Optional[float]) -> None:
    ctx = (mp.get_context("fork")
           if "fork" in mp.get_all_start_methods() else
           mp.get_context("spawn"))
    result_q = ctx.Queue()
    handles = [_WorkerHandle(ctx, i, result_q)
               for i in range(max(1, min(workers, len(pending))))]
    queue = deque((unit, 1) for unit in pending)
    live_tokens: Dict[int, _WorkerHandle] = {}
    next_token = 0

    def outcome(unit: WorkUnit, attempt: int, status: str, value, error,
                elapsed_s: float) -> None:
        if status == "ok":
            batch.finalise(unit, "ok", value, None, attempt, elapsed_s)
            return
        attempt_next = batch.attempt_failed(unit, attempt, error, elapsed_s)
        if attempt_next is not None and not batch.stopping:
            # Retries jump the queue: the unit keeps its scheduling slot.
            queue.appendleft((unit, attempt_next))

    try:
        while True:
            if batch.stopping:
                queue.clear()
            for handle in handles:  # feed idle workers in unit order
                if handle.token is None and queue:
                    unit, attempt = queue.popleft()
                    handle.assign(next_token, unit, attempt, timeout_s)
                    live_tokens[next_token] = handle
                    next_token += 1
            if not queue and not live_tokens:
                return
            # Drain every queued result before liveness checks, so a
            # worker that answered just before dying still counts.
            try:
                message = result_q.get(timeout=_POLL_S)
            except Empty:
                message = None
            while message is not None:
                _, token, status, value, error, elapsed_s = message
                handle = live_tokens.pop(token, None)
                if handle is not None:  # else stale (timed out earlier)
                    unit, attempt = handle.unit, handle.attempt
                    handle.clear()
                    outcome(unit, attempt, status, value, error, elapsed_s)
                try:
                    message = result_q.get_nowait()
                except Empty:
                    message = None
            # Crash and hang detection for still-busy workers.
            now = time.monotonic()
            for handle in handles:
                if handle.token is None:
                    continue
                unit, attempt = handle.unit, handle.attempt
                elapsed = now - handle.start
                if not handle.proc.is_alive():
                    live_tokens.pop(handle.token, None)
                    error = {
                        "type": "WorkerCrash",
                        "message": (f"worker process exited with code "
                                    f"{handle.proc.exitcode} while running "
                                    f"unit {unit.key!r}"),
                        "traceback": "",
                    }
                    handle.replace()
                    outcome(unit, attempt, "crash", None, error, elapsed)
                elif handle.deadline is not None and now > handle.deadline:
                    live_tokens.pop(handle.token, None)
                    error = {
                        "type": "WorkerTimeout",
                        "message": (f"unit {unit.key!r} exceeded "
                                    f"{timeout_s:.1f}s timeout"),
                        "traceback": "",
                    }
                    handle.replace()
                    outcome(unit, attempt, "timeout", None, error, elapsed)
    finally:
        for handle in handles:
            handle.shutdown()
        result_q.close()
        result_q.join_thread()


def run_units(
    units: Sequence[WorkUnit],
    workers: int = 1,
    timeout_s: Optional[float] = None,
    retries: int = 1,
    journal: Union[None, str, RunJournal] = None,
    stop_when: Optional[Callable[[UnitResult], bool]] = None,
) -> Dict[str, UnitResult]:
    """Run ``units``; return a terminal :class:`UnitResult` per unit key.

    Args:
        units: Work units with unique keys; scheduled in list order.
            Callers must merge results in list order for determinism.
        workers: Worker processes; ``<= 1`` runs inline in-process.
        timeout_s: Per-attempt wall-clock limit (parallel mode only —
            inline execution cannot be pre-empted).
        retries: Extra attempts after a failed one (exception, crash or
            timeout) before the unit is finalised as ``failed``.
        journal: Optional :class:`RunJournal` (or path): completed units
            found in it are replayed instead of re-run, and every newly
            finalised unit is appended to it.
        stop_when: Optional predicate over each newly finalised result;
            once true, no further units are scheduled (in-flight units
            still finalise).  Units never scheduled are absent from the
            returned mapping.

    Raises:
        ValueError: On duplicate unit keys or non-JSON payloads.
    """
    seen = set()
    for unit in units:
        if unit.key in seen:
            raise ValueError(f"duplicate work-unit key {unit.key!r}")
        seen.add(unit.key)
        try:
            normalise_json(unit.payload)
        except (TypeError, ValueError) as exc:
            raise ValueError(
                f"unit {unit.key!r} payload is not JSON-serialisable: {exc}"
            ) from None

    if journal is not None and not isinstance(journal, RunJournal):
        journal = RunJournal(journal)

    batch = _Batch(retries=retries, journal=journal, stop_when=stop_when)
    pending: List[WorkUnit] = []
    replayed = journal.completed(units) if journal is not None else {}
    for unit in units:
        record = replayed.get(unit.key)
        if record is None:
            pending.append(unit)
            continue
        batch.results[unit.key] = UnitResult(
            key=unit.key,
            status=record["status"],
            value=record.get("result"),
            error=record.get("error"),
            attempts=int(record.get("attempts", 1)),
            elapsed_s=float(record.get("elapsed_s", 0.0)),
            cached=True,
        )
    if workers <= 1:
        _run_serial(pending, batch)
    elif pending:
        _run_pool(pending, batch, workers, timeout_s)
    return batch.results
