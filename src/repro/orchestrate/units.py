"""Work units: the payload-complete task description the pool runs.

A unit's ``kind`` names a registered executor function; its ``payload``
is a JSON-serialisable dict that fully determines the computation.  That
restriction is what buys determinism and durability: any worker process
can run any unit from its payload alone, and a journal replay is
indistinguishable from a live run.

Kinds resolve lazily.  Built-in kinds are registered as ``module:attr``
strings so importing :mod:`repro.orchestrate` does not drag in the heavy
verify/experiment stacks; tests may register plain callables (inherited
by forked workers).
"""

from __future__ import annotations

import hashlib
import importlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Union

#: kind name -> executor callable or lazy ``"module:attr"`` reference.
_KINDS: Dict[str, Union[Callable[[dict], Any], str]] = {
    "fuzz-seed": "repro.verify.runner:run_fuzz_unit",
    "experiment": "repro.experiments:run_sweep_unit",
    "replica-step": "repro.distributed.replica:run_replica_unit",
    "serve-job": "repro.serve.jobs:run_serve_job",
}


def json_default(value):
    """``json.dumps`` fallback mapping numpy scalars/arrays to plain JSON.

    Sweep and serve configs are frequently built from numpy-derived
    values (``np.int64`` seeds, ``np.float32`` budgets, small arrays);
    these must serialise the same way their round-tripped Python
    equivalents do, or fingerprints and journals diverge.
    """
    # Duck-typed so importing this module never drags in numpy.
    item = getattr(value, "item", None)
    if callable(item) and getattr(value, "shape", None) == ():
        return value.item()  # numpy scalar -> int/float/bool
    tolist = getattr(value, "tolist", None)
    if callable(tolist):
        return value.tolist()  # numpy array -> nested lists
    raise TypeError(
        f"object of type {type(value).__name__} is not JSON-serialisable"
    )


def canonical_json(value) -> str:
    """Canonical JSON text of ``value``: round-trip stable, sorted keys.

    The value is serialised (numpy-aware), parsed back, and serialised
    again, so anything that changes representation across a JSON round
    trip (tuples -> lists, numpy scalars -> Python scalars, int-valued
    floats) reaches its fixed point before being hashed or compared.
    This is the same normalisation the pool applies to unit results.
    """
    once = json.dumps(value, sort_keys=True, default=json_default)
    return json.dumps(json.loads(once), sort_keys=True)


def normalise_json(value):
    """JSON round-trip ``value`` (numpy-aware) to its canonical form."""
    return json.loads(json.dumps(value, sort_keys=True, default=json_default))


@dataclass(frozen=True)
class WorkUnit:
    """One schedulable computation.

    Attributes:
        kind: Registered executor name (see :func:`register_kind`).
        key: Unique identifier within a run; journal resume and result
            merging are keyed on it.
        payload: JSON-serialisable arguments; must fully determine the
            computation (no ambient state).
    """

    kind: str
    key: str
    payload: dict = field(default_factory=dict)


def register_kind(name: str,
                  fn: Union[Callable[[dict], Any], str]) -> None:
    """Register (or replace) the executor for a unit kind.

    ``fn`` is either a callable ``payload -> JSON-serialisable result``
    or a lazy ``"module:attr"`` string resolved on first use.
    """
    _KINDS[name] = fn


def registered_kinds() -> List[str]:
    """Names accepted by :func:`resolve_kind`, sorted."""
    return sorted(_KINDS)


def resolve_kind(name: str) -> Callable[[dict], Any]:
    """Resolve a kind name to its executor, importing lazily if needed."""
    try:
        fn = _KINDS[name]
    except KeyError:
        raise KeyError(
            f"unknown work-unit kind {name!r}; known: {registered_kinds()}"
        ) from None
    if isinstance(fn, str):
        module_name, _, attr = fn.partition(":")
        fn = getattr(importlib.import_module(module_name), attr)
        _KINDS[name] = fn
    return fn


def payload_fingerprint(unit: WorkUnit) -> str:
    """Short stable hash of a unit's kind + payload.

    Journal records carry it so resume only skips a completed unit when
    the unit still means the same thing (same kind, same payload) — a
    re-invocation with different parameters re-runs everything whose
    meaning changed.

    The payload is canonicalised through :func:`canonical_json` — the
    same JSON normalisation the pool applies to results — so payloads
    carrying numpy scalars/arrays fingerprint instead of raising, and a
    payload fingerprints identically before and after a JSON round trip
    (a journal written by a live run replays for the resumed run even
    when the resubmitted spec was parsed from disk).
    """
    blob = canonical_json([unit.kind, unit.payload])
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]
