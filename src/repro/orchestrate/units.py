"""Work units: the payload-complete task description the pool runs.

A unit's ``kind`` names a registered executor function; its ``payload``
is a JSON-serialisable dict that fully determines the computation.  That
restriction is what buys determinism and durability: any worker process
can run any unit from its payload alone, and a journal replay is
indistinguishable from a live run.

Kinds resolve lazily.  Built-in kinds are registered as ``module:attr``
strings so importing :mod:`repro.orchestrate` does not drag in the heavy
verify/experiment stacks; tests may register plain callables (inherited
by forked workers).
"""

from __future__ import annotations

import hashlib
import importlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Union

#: kind name -> executor callable or lazy ``"module:attr"`` reference.
_KINDS: Dict[str, Union[Callable[[dict], Any], str]] = {
    "fuzz-seed": "repro.verify.runner:run_fuzz_unit",
    "experiment": "repro.experiments:run_sweep_unit",
    "replica-step": "repro.distributed.replica:run_replica_unit",
}


@dataclass(frozen=True)
class WorkUnit:
    """One schedulable computation.

    Attributes:
        kind: Registered executor name (see :func:`register_kind`).
        key: Unique identifier within a run; journal resume and result
            merging are keyed on it.
        payload: JSON-serialisable arguments; must fully determine the
            computation (no ambient state).
    """

    kind: str
    key: str
    payload: dict = field(default_factory=dict)


def register_kind(name: str,
                  fn: Union[Callable[[dict], Any], str]) -> None:
    """Register (or replace) the executor for a unit kind.

    ``fn`` is either a callable ``payload -> JSON-serialisable result``
    or a lazy ``"module:attr"`` string resolved on first use.
    """
    _KINDS[name] = fn


def registered_kinds() -> List[str]:
    """Names accepted by :func:`resolve_kind`, sorted."""
    return sorted(_KINDS)


def resolve_kind(name: str) -> Callable[[dict], Any]:
    """Resolve a kind name to its executor, importing lazily if needed."""
    try:
        fn = _KINDS[name]
    except KeyError:
        raise KeyError(
            f"unknown work-unit kind {name!r}; known: {registered_kinds()}"
        ) from None
    if isinstance(fn, str):
        module_name, _, attr = fn.partition(":")
        fn = getattr(importlib.import_module(module_name), attr)
        _KINDS[name] = fn
    return fn


def payload_fingerprint(unit: WorkUnit) -> str:
    """Short stable hash of a unit's kind + payload.

    Journal records carry it so resume only skips a completed unit when
    the unit still means the same thing (same kind, same payload) — a
    re-invocation with different parameters re-runs everything whose
    meaning changed.
    """
    blob = json.dumps([unit.kind, unit.payload], sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]
