"""Analytical performance substrate: device model, kernel costs, Gist
overhead, swapping baselines (naive / vDNN) and utilisation modelling."""

from repro.perf.comm import CommModel, DistStepTime
from repro.perf.cost import CostModel, StepTime, scale_step
from repro.perf.device import DeviceSpec, TITAN_X_MAXWELL
from repro.perf.energy import (
    DRAM_J_PER_BYTE,
    EnergyReport,
    PCIE_J_PER_BYTE,
    measure_transfer_energy,
)
from repro.perf.overhead import (
    OverheadReport,
    SSDC_CONVERSION_FACTOR,
    encoding_time_delta,
    measure_overhead,
)
from repro.perf.swap import SwapReport, simulate_cdma, simulate_swapping
from repro.perf.utilization import (
    SpeedupReport,
    deepest_trainable,
    larger_minibatch_speedup,
    max_minibatch,
    throughput_images_per_s,
    training_footprint_bytes,
)

__all__ = [
    "CommModel",
    "CostModel",
    "DRAM_J_PER_BYTE",
    "DistStepTime",
    "EnergyReport",
    "PCIE_J_PER_BYTE",
    "DeviceSpec",
    "OverheadReport",
    "SSDC_CONVERSION_FACTOR",
    "SpeedupReport",
    "StepTime",
    "SwapReport",
    "TITAN_X_MAXWELL",
    "deepest_trainable",
    "encoding_time_delta",
    "larger_minibatch_speedup",
    "max_minibatch",
    "scale_step",
    "measure_overhead",
    "measure_transfer_energy",
    "simulate_cdma",
    "simulate_swapping",
    "throughput_images_per_s",
    "training_footprint_bytes",
]
