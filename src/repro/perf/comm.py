"""Communication-time model for data-parallel replicas.

Prices the pairwise-tree all-reduce (:mod:`repro.distributed.allreduce`)
with the same link model the swap/prefetch analyses use:
:meth:`CostModel.transfer_time` over the *measured* bytes-on-wire of the
encoded gradients.  Compression therefore shows up exactly where the
paper's compressing-DMA argument says it should — fewer bytes, shorter
rounds, a smaller serial fraction next to the per-shard compute time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.perf.cost import CostModel, StepTime


@dataclass(frozen=True)
class DistStepTime:
    """Timing breakdown of one data-parallel training step."""

    compute_s: float
    comm_s: float

    @property
    def total_s(self) -> float:
        """Per-step wall-clock: shard compute plus the all-reduce."""
        return self.compute_s + self.comm_s

    def samples_per_s(self, effective_batch: int) -> float:
        """Throughput over the whole effective batch."""
        if self.total_s <= 0.0:
            raise ValueError("step time must be positive")
        return effective_batch / self.total_s


class CommModel:
    """Analytical wire timing for the fixed pairwise-tree all-reduce."""

    def __init__(self, cost: Optional[CostModel] = None):
        self.cost = cost or CostModel()

    def transfer_s(self, nbytes: float) -> float:
        """One point-to-point message over the link."""
        return self.cost.transfer_time(nbytes)

    def allreduce_s(self, shard_wire_bytes: Sequence[float]) -> float:
        """Tree all-reduce latency over per-shard encoded gradient sizes.

        Each tree round merges index pairs ``(0,1), (2,3), ...``; the
        transfers within a round run in parallel, so the round costs the
        slowest pair's message.  A merged node's payload is modelled as
        the larger of its two inputs (summing gradients cannot shrink the
        support the codec keeps).  An odd tail passes through for free.
        """
        level = [float(b) for b in shard_wire_bytes]
        if not level:
            raise ValueError("allreduce needs at least one shard")
        total = 0.0
        while len(level) > 1:
            merged = []
            round_s = 0.0
            for i in range(0, len(level) - 1, 2):
                round_s = max(round_s, self.transfer_s(level[i + 1]))
                merged.append(max(level[i], level[i + 1]))
            if len(level) % 2:
                merged.append(level[-1])
            total += round_s
            level = merged
        return total

    def dist_step(self, shard_step: StepTime,
                  shard_wire_bytes: Sequence[float]) -> DistStepTime:
        """Compose a per-shard compute estimate with the all-reduce.

        Shards run concurrently, so compute contributes one shard's
        forward + backward; the merge is the serial fraction on top.
        """
        return DistStepTime(
            compute_s=shard_step.total_s,
            comm_s=self.allreduce_s(shard_wire_bytes),
        )
