"""Per-op and per-step analytical timing.

Each kernel is modelled as ``max(compute_time, memory_time) + launch``,
the standard roofline form.  Backward kernels of parameterised layers
(conv/dense) perform roughly twice the forward work (one GEMM each for
the data gradient and the weight gradient); elementwise/pool layers are
bandwidth-bound in both directions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.graph.graph import Graph
from repro.graph.node import OpNode
from repro.perf.device import DeviceSpec, TITAN_X_MAXWELL

#: Layer kinds whose backward pass costs ~2x their forward FLOPs.
_PARAM_KINDS = {"conv", "dense"}


@dataclass(frozen=True)
class StepTime:
    """Timing breakdown of one training step."""

    forward_s: float
    backward_s: float
    per_node_forward: Dict[int, float]
    per_node_backward: Dict[int, float]

    @property
    def total_s(self) -> float:
        """Forward + backward wall-clock."""
        return self.forward_s + self.backward_s


class CostModel:
    """Analytical GPU kernel timing for a training graph."""

    def __init__(self, device: DeviceSpec = TITAN_X_MAXWELL):
        self.device = device

    # ------------------------------------------------------------------
    def _kernel_time(self, flops: float, nbytes: float, minibatch: int) -> float:
        dev = self.device
        compute = flops / (
            dev.peak_flops * dev.compute_efficiency * dev.occupancy(minibatch)
        )
        memory = nbytes / dev.mem_bandwidth
        return max(compute, memory) + dev.kernel_overhead

    def _node_io_bytes(self, graph: Graph, node: OpNode) -> float:
        input_elems = sum(
            _prod(s) for s in node.input_shapes(graph)
        )
        output_elems = _prod(node.output_shape)
        param_elems = sum(
            _prod(s)
            for s in node.layer.param_shapes(node.input_shapes(graph)).values()
        )
        return 4.0 * (input_elems + output_elems + param_elems)

    def forward_time(self, graph: Graph, node: OpNode) -> float:
        """Forward kernel time for one op, seconds."""
        if node.kind == "input":
            return 0.0
        minibatch = node.output_shape[0] if node.output_shape else 1
        flops = node.layer.flops(node.input_shapes(graph), node.output_shape)
        return self._kernel_time(flops, self._node_io_bytes(graph, node),
                                 minibatch)

    def backward_time(self, graph: Graph, node: OpNode) -> float:
        """Backward kernel time for one op, seconds."""
        if node.kind == "input":
            return 0.0
        minibatch = node.output_shape[0] if node.output_shape else 1
        flops = node.layer.flops(node.input_shapes(graph), node.output_shape)
        factor = 2.0 if node.kind in _PARAM_KINDS else 1.0
        return self._kernel_time(
            factor * flops, 2.0 * self._node_io_bytes(graph, node), minibatch
        )

    # ------------------------------------------------------------------
    def step_time(self, graph: Graph) -> StepTime:
        """One full minibatch (forward + backward), seconds."""
        per_f: Dict[int, float] = {}
        per_b: Dict[int, float] = {}
        for node in graph.nodes:
            per_f[node.node_id] = self.forward_time(graph, node)
            per_b[node.node_id] = self.backward_time(graph, node)
        return StepTime(sum(per_f.values()), sum(per_b.values()), per_f, per_b)

    def transfer_time(self, nbytes: float) -> float:
        """Host link (PCIe) transfer time, seconds."""
        _check_nbytes(nbytes, "transfer_time")
        return nbytes / self.device.pcie_bandwidth

    def copy_time(self, nbytes: float) -> float:
        """On-device bandwidth-bound pass over ``nbytes``, seconds."""
        _check_nbytes(nbytes, "copy_time")
        return nbytes / self.device.mem_bandwidth


def scale_step(step: StepTime, speedup: float) -> StepTime:
    """Fold a measured kernel-backend speedup into an analytical step.

    The backend benchmark (``benchmarks/bench_backends.py``,
    ``BENCH_backends.json``) records how much faster the best registry
    arm runs a real step than the reference loops on the current host.
    Dividing every analytical kernel time by that factor re-expresses a
    :class:`CostModel` estimate against the accelerated baseline, so
    overhead ratios (Figures 9/15) stay comparable as backends improve.
    """
    if not speedup > 0.0:
        raise ValueError(f"speedup must be positive, got {speedup!r}")
    inv = 1.0 / speedup
    return StepTime(
        step.forward_s * inv,
        step.backward_s * inv,
        {k: v * inv for k, v in step.per_node_forward.items()},
        {k: v * inv for k, v in step.per_node_backward.items()},
    )


def _check_nbytes(nbytes: float, where: str) -> None:
    """Reject sizes no transfer could have.

    A negative or non-finite byte count always indicates a bug upstream
    (an encoding whose ``encoded_bytes`` under/overflowed, a planner
    subtracting the wrong direction); pricing it would silently poison
    every schedule comparison built on the result.
    """
    try:
        if isinstance(nbytes, (str, bytes)):
            raise TypeError(f"byte count must be numeric, not {type(nbytes)}")
        value = float(nbytes)
        bad = not math.isfinite(value) or value < 0.0
    except (TypeError, ValueError):
        bad = True
    if bad:
        raise ValueError(
            f"CostModel.{where} needs a finite non-negative byte count, "
            f"got {nbytes!r}"
        )


def _prod(shape) -> int:
    n = 1
    for d in shape:
        n *= d
    return n
