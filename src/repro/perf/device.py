"""GPU device models for the analytical performance substrate.

Substitution record (DESIGN.md §2): the paper measures wall-clock time on
an Nvidia Maxwell GTX Titan X; we model each kernel as the max of its
compute-bound and bandwidth-bound times on that card's published
specifications, with an occupancy factor that saturates with minibatch
size.  All performance *shapes* in Figures 9, 11, 15 and 16 are functions
of these first-order quantities.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DeviceSpec:
    """First-order GPU model.

    Attributes:
        name: Card name.
        peak_flops: FP32 peak, FLOP/s.
        mem_bandwidth: DRAM bandwidth, bytes/s.
        memory_bytes: DRAM capacity, bytes.
        pcie_bandwidth: Effective host link bandwidth, bytes/s (practical
            PCIe 3.0 x16 delivers ~10 GB/s of its 15.75 GB/s peak).
        kernel_overhead: Fixed per-kernel launch latency, seconds.
        compute_efficiency: Fraction of peak a well-tuned GEMM-like kernel
            sustains at full occupancy.
        batch_half_saturation: Minibatch size at which occupancy reaches
            half of its asymptote (utilisation model for Figure 16).
    """

    name: str
    peak_flops: float
    mem_bandwidth: float
    memory_bytes: int
    pcie_bandwidth: float
    kernel_overhead: float = 5e-6
    compute_efficiency: float = 0.55
    batch_half_saturation: float = 6.0

    def occupancy(self, minibatch: int) -> float:
        """Saturating utilisation factor in (0, 1] for a minibatch size."""
        if minibatch <= 0:
            raise ValueError(f"minibatch must be positive, got {minibatch}")
        b = float(minibatch)
        # Normalised so occupancy(64) ~= 0.91 and occupancy -> 1.
        return b / (b + self.batch_half_saturation)


#: The paper's evaluation card: Maxwell GTX Titan X, 12 GB GDDR5, cuDNN v6.
TITAN_X_MAXWELL = DeviceSpec(
    name="GTX Titan X (Maxwell)",
    peak_flops=6.14e12,
    mem_bandwidth=336.5e9,
    memory_bytes=12 * 1024**3,
    pcie_bandwidth=10.0e9,
)
