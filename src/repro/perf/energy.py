"""Data-movement energy model (paper Section VI's qualitative argument).

The paper dismisses swapping partly on energy grounds: vDNN keeps the
PCIe link and both DRAM buses busy with every stashed map, while Gist's
codecs make one extra on-device pass.  This module makes that argument
quantitative with standard per-byte transfer energies:

* GDDR5 access ~ 20 pJ/bit  (~2.5e-9 J per byte end-to-end read+write)
* PCIe 3.0     ~ 40 pJ/bit  (~5.0e-9 J per byte, both PHYs)

Absolute joules inherit the usual caveats of constant-energy models; the
*ratio* between strategies is the reproducible quantity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.sparsity import SparsityModel
from repro.core.policy import GistConfig
from repro.core.schedule_builder import build_gist_plan
from repro.graph.graph import Graph
from repro.graph.liveness import ROLE_FEATURE_MAP
from repro.graph.schedule import TrainingSchedule
from repro.memory.planner import CLASS_STASHED, build_memory_plan

#: Joules per byte moved through GPU DRAM (read or write).
DRAM_J_PER_BYTE = 2.5e-9
#: Joules per byte across the PCIe link (including both controllers).
PCIE_J_PER_BYTE = 5.0e-9


@dataclass(frozen=True)
class EnergyReport:
    """Extra data-movement energy per training step, by strategy."""

    model: str
    gist_j: float
    vdnn_j: float

    @property
    def ratio(self) -> float:
        """How many times more energy swapping costs than Gist codecs."""
        return self.vdnn_j / self.gist_j if self.gist_j else float("inf")


def measure_transfer_energy(
    graph: Graph,
    config: Optional[GistConfig] = None,
    sparsity_model: Optional[SparsityModel] = None,
) -> EnergyReport:
    """Energy of Gist's codec passes vs vDNN's PCIe round trips.

    Gist: every encoded map costs one DRAM read of the FP32 data plus a
    write of the encoded form at encode time, and the reverse at decode.
    vDNN: every stashed map crosses PCIe twice (offload + prefetch) and
    touches DRAM on each side of each transfer.
    """
    config = config or GistConfig()
    plan = build_gist_plan(graph, config, sparsity_model)
    gist_j = 0.0
    for decision in plan.decisions.values():
        moved = decision.fp32_bytes + decision.encoded_bytes
        passes = 2.0 if decision.decoded_bytes else 1.0
        gist_j += passes * moved * DRAM_J_PER_BYTE

    schedule = TrainingSchedule(graph)
    base_plan = build_memory_plan(graph, schedule)
    stashed_bytes = sum(
        t.size_bytes
        for t in base_plan.tensors
        if t.role == ROLE_FEATURE_MAP and base_plan.classify(t) == CLASS_STASHED
    )
    vdnn_j = 2.0 * stashed_bytes * (PCIE_J_PER_BYTE + 2.0 * DRAM_J_PER_BYTE)
    return EnergyReport(graph.name, gist_j, vdnn_j)
