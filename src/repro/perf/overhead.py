"""Encode/decode overhead model for Gist (Figures 9 and 11).

Every Gist codec is a bandwidth-bound streaming kernel:

* **Binarize** — the encode pass reads the FP32 map and writes 1 bit per
  element; afterwards ReLU's backward kernel reads the 1-bit mask instead
  of the FP32 map and the pool's backward reads the 4-bit argmax map
  instead of its X and Y maps.  Net effect: a small *speedup* (the paper
  observes the same, attributing it to higher effective bandwidth in the
  memory-bound ReLU backward).
* **SSDC** — dense↔CSR conversions (cuSPARSE-style) touch the dense map
  plus the CSR arrays with imperfect streaming efficiency; modelled with a
  conversion-inefficiency factor.
* **DPR** — a pure pack/unpack pass; "being very parallel, has minimal
  performance overhead" (~1% in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.sparsity import SparsityModel
from repro.core.policy import GistConfig
from repro.core.schedule_builder import (
    ENC_BINARIZE,
    ENC_DPR,
    ENC_SSDC,
    GistPlan,
    build_gist_plan,
)
from repro.graph.graph import Graph
from repro.perf.cost import CostModel

#: Streaming inefficiency of dense<->CSR conversion kernels relative to a
#: straight memory copy (scatter/gather plus index arithmetic).
SSDC_CONVERSION_FACTOR = 2.0


@dataclass(frozen=True)
class OverheadReport:
    """Step-time impact of a Gist configuration on one network."""

    model: str
    baseline_s: float
    gist_s: float
    per_technique_s: Dict[str, float]

    @property
    def overhead_frac(self) -> float:
        """Relative slowdown; negative values are speedups."""
        return self.gist_s / self.baseline_s - 1.0


def encoding_time_delta(
    plan: GistPlan, cost: CostModel
) -> Dict[str, float]:
    """Per-technique wall-clock delta (seconds) for one training step."""
    deltas = {ENC_BINARIZE: 0.0, ENC_SSDC: 0.0, ENC_DPR: 0.0}
    graph = plan.graph
    for decision in plan.decisions.values():
        n_bytes = decision.fp32_bytes
        if decision.encoding == ENC_BINARIZE:
            # Encode: read FP32, write bits.  Backward: ReLU reads the mask
            # (1/32 of the bytes) instead of the FP32 map.
            encode = cost.copy_time(n_bytes + decision.encoded_bytes)
            backward_saving = cost.copy_time(n_bytes - decision.encoded_bytes)
            deltas[ENC_BINARIZE] += encode - backward_saving
        elif decision.encoding == ENC_SSDC:
            touched = n_bytes + decision.encoded_bytes
            deltas[ENC_SSDC] += 2.0 * SSDC_CONVERSION_FACTOR * cost.copy_time(
                touched
            )
        elif decision.encoding == ENC_DPR:
            touched = n_bytes + decision.encoded_bytes
            deltas[ENC_DPR] += 2.0 * cost.copy_time(touched)
    # The pool argmax rewrite: backward reads the 4-bit map instead of the
    # stashed X and Y maps.
    for pool_id in plan.rewritten_pools:
        node = graph.node(pool_id)
        out_elems = 1
        for d in node.output_shape:
            out_elems *= d
        in_elems = 1
        for d in graph.node(node.inputs[0]).output_shape:
            in_elems *= d
        baseline_read = 4.0 * (in_elems + out_elems)
        map_read = 0.5 * out_elems
        deltas[ENC_BINARIZE] -= cost.copy_time(baseline_read - map_read)
    return deltas


def measure_overhead(
    graph: Graph,
    config: Optional[GistConfig] = None,
    sparsity_model: Optional[SparsityModel] = None,
    cost: Optional[CostModel] = None,
) -> OverheadReport:
    """Baseline vs Gist step time for one network."""
    cost = cost or CostModel()
    plan = build_gist_plan(graph, config, sparsity_model)
    base = cost.step_time(graph).total_s
    deltas = encoding_time_delta(plan, cost)
    gist = base + sum(deltas.values())
    return OverheadReport(graph.name, base, gist, deltas)
