"""CPU-GPU swapping baselines: naive swap and vDNN (paper Figure 15).

vDNN [Rhu et al., MICRO'16] offloads stashed feature maps to host memory
over PCIe after their forward use and prefetches them before their
backward use.  We reproduce it with an event simulation: a single DMA
engine serialises transfers; compute and DMA overlap; the step stalls
whenever the engine falls behind the compute timeline.

* **Naive swapping** — no overlap at all: every offload and prefetch adds
  its full transfer time (paper: ~30% average slowdown).
* **vDNN** — offloads overlap the forward pass, prefetches overlap the
  backward pass; residual stalls remain where PCIe bandwidth cannot keep
  up with compute (paper: ~15% average, up to 27% on Inception).
* **Gist** keeps everything on-device and pays only codec bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.graph.graph import Graph
from repro.graph.liveness import ROLE_FEATURE_MAP
from repro.graph.schedule import TrainingSchedule
from repro.memory.planner import CLASS_STASHED, build_memory_plan
from repro.perf.cost import CostModel


@dataclass(frozen=True)
class SwapReport:
    """Step-time impact of a swapping strategy on one network."""

    model: str
    baseline_s: float
    naive_s: float
    vdnn_s: float

    @property
    def naive_overhead(self) -> float:
        """Relative slowdown of naive (synchronous) swapping."""
        return self.naive_s / self.baseline_s - 1.0

    @property
    def vdnn_overhead(self) -> float:
        """Relative slowdown of vDNN's prefetch-overlapped swapping."""
        return self.vdnn_s / self.baseline_s - 1.0


#: vDNN's offload policy targets the inputs of convolutional (and, in our
#: generalisation, dense) layers — the large, long-lived stashes.
_OFFLOAD_CONSUMER_KINDS = {"conv", "dense"}


def _stashed_transfers(
    graph: Graph, schedule: TrainingSchedule
) -> List[Tuple[int, int, int]]:
    """(producer forward t, consumer backward t, bytes) per offloaded map."""
    plan = build_memory_plan(graph, schedule)
    offloadable = set()
    for node in graph.nodes:
        if node.kind in _OFFLOAD_CONSUMER_KINDS and node.layer.backward_needs_input:
            for src in node.inputs:
                offloadable.add(src)
    out = []
    for t in plan.tensors:
        if (
            t.role == ROLE_FEATURE_MAP
            and plan.classify(t) == CLASS_STASHED
            and t.node_id in offloadable
        ):
            out.append((t.birth, t.death, t.size_bytes))
    return out


def simulate_swapping(
    graph: Graph,
    cost: Optional[CostModel] = None,
) -> SwapReport:
    """Event-simulate naive swapping and vDNN against the in-GPU baseline."""
    cost = cost or CostModel()
    schedule = TrainingSchedule(graph)
    step = cost.step_time(graph)
    baseline_s = step.total_s

    transfers = _stashed_transfers(graph, schedule)
    total_bytes = sum(b for _, _, b in transfers)
    naive_s = baseline_s + 2.0 * cost.transfer_time(total_bytes)

    # --- vDNN forward: offloads overlap compute, single DMA engine -------
    op_time = {}
    for op in schedule.ops:
        node = graph.node(op.node_id)
        op_time[(op.phase, op.node_id)] = (
            cost.forward_time(graph, node)
            if op.phase == "forward"
            else cost.backward_time(graph, node)
        )
    # Compute completion time of each scheduled op (pure compute timeline).
    completion = []
    now = 0.0
    for op in schedule.ops:
        now += op_time[(op.phase, op.node_id)]
        completion.append(now)
    forward_compute_end = completion[schedule.forward_end - 1]

    # Offload each stashed map when its producer's forward op completes.
    # vDNN double-buffers offloads: a producer whose output must be
    # offloaded stalls until the *previous* offload has drained (the freed
    # memory is what makes the strategy viable), giving a one-deep
    # transfer/compute pipeline in the forward direction too.
    offload_bytes: dict = {}
    for birth_t, _, nbytes in transfers:
        offload_bytes[birth_t] = offload_bytes.get(birth_t, 0) + nbytes
    now = 0.0
    dma_free = 0.0
    prev_offload_done = 0.0
    for idx in range(schedule.forward_end):
        op = schedule.ops[idx]
        if idx in offload_bytes:
            now = max(now, prev_offload_done)
        now += op_time[(op.phase, op.node_id)]
        if idx in offload_bytes:
            dma_free = max(dma_free, now) + cost.transfer_time(
                offload_bytes[idx]
            )
            prev_offload_done = dma_free
    forward_end = max(now, dma_free)

    # Prefetch with vDNN's one-layer-ahead pipeline: the transfer for the
    # next needing op is issued when the current needing op starts, so each
    # transfer can hide behind at most the intervening compute.  Residual
    # stalls appear wherever a map's transfer outlasts that window — the
    # source of vDNN's ~15% average overhead in the paper.
    needs_bytes: dict = {}
    for _, death_t, nbytes in transfers:
        needs_bytes[death_t] = needs_bytes.get(death_t, 0) + nbytes
    now = forward_end
    dma_free = forward_end
    issue_time = forward_end  # start of the previously needing op
    for idx in range(schedule.forward_end, schedule.num_steps):
        op = schedule.ops[idx]
        if idx in needs_bytes:
            dma_free = max(dma_free, issue_time) + cost.transfer_time(
                needs_bytes[idx]
            )
            now = max(now, dma_free)
            issue_time = now
        now += op_time[(op.phase, op.node_id)]
    vdnn_s = now

    # Guard: vDNN can never beat the no-swap baseline or lose to naive.
    vdnn_s = min(max(vdnn_s, baseline_s), naive_s)
    return SwapReport(graph.name, baseline_s, naive_s, vdnn_s)


def simulate_cdma(
    graph: Graph,
    cost: Optional[CostModel] = None,
    compression_ratio: float = 2.5,
) -> SwapReport:
    """CDMA-style swapping [42]: vDNN's pipeline with compressed transfers.

    CDMA compresses the data moved between CPU and GPU (exploiting the
    same activation sparsity SSDC uses), shrinking every transfer by
    ``compression_ratio``.  Returned as a :class:`SwapReport` whose
    ``vdnn_s`` field holds the CDMA time (the naive field is the
    uncompressed naive swap, for reference).
    """
    if compression_ratio < 1.0:
        raise ValueError(
            f"compression_ratio must be >= 1, got {compression_ratio}"
        )
    base = simulate_swapping(graph, cost)
    squeezed = CostModel(
        (cost or CostModel()).device
    )
    # Re-run the simulation with an effectively faster link.
    scaled_device = type(squeezed.device)(
        name=squeezed.device.name + " (CDMA)",
        peak_flops=squeezed.device.peak_flops,
        mem_bandwidth=squeezed.device.mem_bandwidth,
        memory_bytes=squeezed.device.memory_bytes,
        pcie_bandwidth=squeezed.device.pcie_bandwidth * compression_ratio,
        kernel_overhead=squeezed.device.kernel_overhead,
        compute_efficiency=squeezed.device.compute_efficiency,
        batch_half_saturation=squeezed.device.batch_half_saturation,
    )
    cdma = simulate_swapping(graph, CostModel(scaled_device))
    return SwapReport(graph.name, base.baseline_s, base.naive_s, cdma.vdnn_s)
