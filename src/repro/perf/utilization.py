"""Minibatch-fitting and throughput model (paper Figure 16).

Gist's footprint reduction lets a deeper network fit a larger minibatch in
the same 12 GB card.  Larger minibatches speed training two ways, both in
the cost model: per-kernel launch overhead is amortised over more images,
and occupancy improves.  For very deep, thin networks (ResNet-1202 has
~2400 kernels per step) the fixed-overhead amortisation dominates —
exactly the regime where the paper reports a 22% speedup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.analysis.sparsity import SparsityModel
from repro.core.policy import GistConfig
from repro.core.schedule_builder import build_gist_plan
from repro.graph.graph import Graph
from repro.memory.allocator import StaticAllocator
from repro.memory.planner import build_memory_plan
from repro.perf.cost import CostModel
from repro.perf.device import DeviceSpec, TITAN_X_MAXWELL

GraphFactory = Callable[[int], Graph]


def training_footprint_bytes(
    graph: Graph,
    config: Optional[GistConfig] = None,
    sparsity_model: Optional[SparsityModel] = None,
) -> int:
    """Total training footprint: activations plan + optimiser state.

    Weights and weight gradients ride in the plan; SGD-with-momentum adds
    one more weight-sized buffer.
    """
    if config is None:
        plan = build_memory_plan(graph, include_weights=True)
        tensors = plan.tensors
    else:
        gist = build_gist_plan(graph, config, sparsity_model,
                               include_weights=True)
        tensors = gist.plan.tensors
    footprint = StaticAllocator().allocate(tensors).total_bytes
    momentum = 4 * graph.num_parameters()
    return footprint + momentum


def max_minibatch(
    factory: GraphFactory,
    config: Optional[GistConfig] = None,
    sparsity_model: Optional[SparsityModel] = None,
    device: DeviceSpec = TITAN_X_MAXWELL,
    upper: int = 2048,
) -> int:
    """Largest minibatch whose training footprint fits device memory.

    Args:
        factory: ``minibatch -> Graph`` builder.
        config: Gist configuration, or ``None`` for the baseline.
        sparsity_model: SSDC sparsity source.
        device: Memory budget provider.
        upper: Search ceiling.

    Returns:
        The largest fitting minibatch (0 if even minibatch 1 does not fit).
    """
    def fits(batch: int) -> bool:
        graph = factory(batch)
        return (
            training_footprint_bytes(graph, config, sparsity_model)
            <= device.memory_bytes
        )

    if not fits(1):
        return 0
    lo, hi = 1, 2
    while hi <= upper and fits(hi):
        lo, hi = hi, hi * 2
    hi = min(hi, upper)
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if fits(mid):
            lo = mid
        else:
            hi = mid - 1
    return lo


def throughput_images_per_s(graph: Graph, cost: Optional[CostModel] = None) -> float:
    """Training throughput at the graph's built-in minibatch size."""
    cost = cost or CostModel()
    batch = graph.node(graph.input_id).output_shape[0]
    return batch / cost.step_time(graph).total_s


@dataclass(frozen=True)
class SpeedupReport:
    """Figure 16 row: larger-minibatch speedup enabled by Gist."""

    model: str
    baseline_batch: int
    gist_batch: int
    baseline_throughput: float
    gist_throughput: float

    @property
    def speedup(self) -> float:
        """Throughput ratio Gist / baseline."""
        return self.gist_throughput / self.baseline_throughput


def larger_minibatch_speedup(
    factory: GraphFactory,
    config: Optional[GistConfig] = None,
    sparsity_model: Optional[SparsityModel] = None,
    device: DeviceSpec = TITAN_X_MAXWELL,
    cost: Optional[CostModel] = None,
    name: str = "",
) -> SpeedupReport:
    """Max-fitting-minibatch throughput, baseline vs Gist (Figure 16)."""
    cost = cost or CostModel(device)
    config = config or GistConfig()
    base_batch = max_minibatch(factory, None, sparsity_model, device)
    gist_batch = max_minibatch(factory, config, sparsity_model, device)
    if base_batch == 0:
        raise ValueError("model does not fit device memory at minibatch 1")
    base_graph = factory(base_batch)
    gist_graph = factory(gist_batch)
    return SpeedupReport(
        name or base_graph.name,
        base_batch,
        gist_batch,
        throughput_images_per_s(base_graph, cost),
        throughput_images_per_s(gist_graph, cost),
    )


def deepest_trainable(
    depth_factory: Callable[[int], Graph],
    config: Optional[GistConfig] = None,
    sparsity_model: Optional[SparsityModel] = None,
    device: DeviceSpec = TITAN_X_MAXWELL,
    start: int = 8,
    stride: int = 96,
    upper: int = 10_000,
) -> int:
    """Deepest network (by the factory's depth parameter) fitting memory.

    Scans ``start, start+stride, ...`` and returns the last depth whose
    training footprint fits the device — the paper's "train a network
    twice as deep" headline, quantified.

    Args:
        depth_factory: ``depth -> Graph`` builder (e.g. a fixed-minibatch
            ``resnet_cifar`` closure).
        config: Gist configuration, or ``None`` for the baseline.
        sparsity_model: SSDC sparsity source.
        device: Memory budget provider.
        start: First depth probed (must fit, else 0 is returned).
        stride: Depth increment between probes.
        upper: Scan ceiling.
    """
    if start < 1 or stride < 1:
        raise ValueError("start and stride must be positive")

    def fits(depth: int) -> bool:
        graph = depth_factory(depth)
        return (training_footprint_bytes(graph, config, sparsity_model)
                <= device.memory_bytes)

    if not fits(start):
        return 0
    # Candidate depths are start + i*stride; gallop up in doubling index
    # steps, then binary-search the boundary index — deep graphs are
    # expensive to plan, so evaluations are precious.
    max_index = (upper - start) // stride

    def depth_at(index: int) -> int:
        return start + index * stride

    lo = 0
    step = 1
    while lo + step <= max_index and fits(depth_at(lo + step)):
        lo += step
        step *= 2
    hi = min(lo + step, max_index + 1)  # first known-or-assumed failure
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if fits(depth_at(mid)):
            lo = mid
        else:
            hi = mid
    return depth_at(lo)
