"""Graph rewrite layer: composable, equivalence-fuzzed graph→graph passes.

Promotes Gist's graph-level optimisations from *classifications* inside
the memory planner to executed transforms that run before planning:

* :class:`~repro.rewrite.passes.FuseConvReLUPass` — conv+ReLU fusion;
* :class:`~repro.rewrite.passes.PoolArgmaxPass` — argmax-map max-pools
  (paper Section IV-A);
* :class:`~repro.rewrite.passes.CSEPass` — merge duplicated subexpressions;
* :class:`~repro.rewrite.passes.DeadStashEliminationPass` — drop branches
  whose stashes never reach the loss;
* :class:`~repro.rewrite.passes.InplacePass` — mark immediately-consumed
  maps for in-buffer execution (paper Section III-C).

Every pass is individually toggleable through
:func:`~repro.rewrite.manager.apply_passes`, and the whole pipeline is
held to a bit-for-bit training-equivalence oracle
(:func:`~repro.rewrite.equivalence.check_rewrite_equivalence`) wired into
the fuzz harness.
"""

from repro.rewrite.base import PassStats, RewritePass, RewriteResult
from repro.rewrite.equivalence import (
    LOSSLESS_POLICIES,
    check_rewrite_equivalence,
    make_batches,
)
from repro.rewrite.manager import (
    DEFAULT_PASSES,
    PASS_FACTORIES,
    apply_passes,
    resolve_passes,
)
from repro.rewrite.passes import (
    CSEPass,
    DeadStashEliminationPass,
    FuseConvReLUPass,
    InplacePass,
    PoolArgmaxPass,
)

__all__ = [
    "CSEPass",
    "DEFAULT_PASSES",
    "DeadStashEliminationPass",
    "FuseConvReLUPass",
    "InplacePass",
    "LOSSLESS_POLICIES",
    "PASS_FACTORIES",
    "PassStats",
    "PoolArgmaxPass",
    "RewritePass",
    "RewriteResult",
    "apply_passes",
    "check_rewrite_equivalence",
    "make_batches",
    "resolve_passes",
]
