"""Rewrite-pass plumbing: the pass interface and its result types.

A rewrite pass is a pure graph→graph function (the input
:class:`~repro.graph.graph.Graph` is never mutated) that returns the new
graph plus a count of the rewrites it performed.  Passes are composed by
:func:`repro.rewrite.manager.apply_passes`, which iterates them to a fixed
point; the count is what drives that loop, so a pass MUST report zero when
(and only when) it left the graph unchanged.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.graph.graph import Graph
from repro.graph.node import OpNode


def clone_node(node: OpNode) -> OpNode:
    """Fresh :class:`OpNode` sharing the (stateless-at-rewrite-time) layer.

    Layers are deliberately shared, not copied: they carry parameter
    *shapes* and kernels, never parameter values, so sharing keeps a
    rewritten graph's parameter initialisation and kernel dispatch
    identical to the original's for every surviving node.
    """
    return OpNode(
        node_id=node.node_id,
        name=node.name,
        layer=node.layer,
        inputs=list(node.inputs),
        output_shape=node.output_shape,
        inplace=node.inplace,
    )


def rebuild(graph: Graph, nodes: Dict[int, OpNode], output_id: int) -> Graph:
    """New :class:`Graph` over ``nodes``, revalidating edges and acyclicity."""
    return Graph(graph.name, nodes, graph.input_id, output_id)


class RewritePass(abc.ABC):
    """One composable graph→graph transform."""

    #: Stable pass name used for toggling, stats and CLI reports.
    name: str = "rewrite"

    @abc.abstractmethod
    def run(self, graph: Graph) -> Tuple[Graph, int]:
        """Apply the pass once.

        Returns:
            ``(new_graph, changes)`` — ``changes`` is the number of
            individual rewrites applied (0 means ``new_graph`` is
            semantically the input graph and the manager may stop).
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


@dataclass
class PassStats:
    """Cumulative rewrite count for one pass across all manager rounds."""

    name: str
    changes: int = 0


@dataclass
class RewriteResult:
    """Outcome of :func:`repro.rewrite.manager.apply_passes`."""

    graph: Graph
    stats: List[PassStats] = field(default_factory=list)
    rounds: int = 0

    @property
    def total_changes(self) -> int:
        """Sum of rewrites over every pass and round."""
        return sum(s.changes for s in self.stats)

    @property
    def changed(self) -> bool:
        """Whether any pass rewrote anything."""
        return self.total_changes > 0

    def report(self) -> str:
        """Per-pass one-line summary, e.g. for ``repro plan --rewrite``."""
        lines = [f"rewrite: {self.total_changes} change(s) in "
                 f"{self.rounds} round(s)"]
        for s in self.stats:
            lines.append(f"  {s.name:<16} {s.changes}")
        return "\n".join(lines)
