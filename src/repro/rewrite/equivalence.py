"""Rewrite-equivalence oracle: rewritten graphs must train identically.

The property fuzzed over the whole pass pipeline: take a graph, apply the
rewrite passes, then train the original and the rewritten graph side by
side from identical initial parameters on identical batches — every
per-step loss and every surviving parameter gradient must match
bit-for-bit under each lossless stash policy.  (Parameters belonging to
dead-code the rewriter removed legitimately disappear; anything else
differing is a rewriter bug.)

The oracle is deliberately end-to-end: it exercises the fused kernels, the
argmax-map pool flags, the inplace executor path, the stash classifier on
rewritten graphs and the Gist encodings all at once, so any pass that
bends a float fails loudly with the policy/step/tensor that diverged.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.policy import GistConfig
from repro.graph.graph import Graph
from repro.rewrite.base import RewriteResult
from repro.rewrite.manager import PassLike, apply_passes
from repro.train.executor import GraphExecutor
from repro.train.stash import BaselinePolicy, GistPolicy, StashPolicy
from repro.verify.oracles import ORACLE_REWRITE, Violation

#: Policies under which equivalence must be bit-exact.  Lossy policies
#: (DPR) are excluded: their rounding is value-dependent, so reordering
#: *allocations* is fine but the oracle's bit-for-bit bar does not apply.
LOSSLESS_POLICIES = ("baseline", "gist-lossless")


def _make_policy(name: str, graph: Graph) -> StashPolicy:
    if name == "baseline":
        return BaselinePolicy()
    if name == "gist-lossless":
        return GistPolicy(graph, GistConfig.lossless())
    raise ValueError(f"unknown equivalence policy {name!r}")


def _reset_layer_rngs(graph: Graph) -> None:
    # Layers (and so their RNG streams, e.g. dropout masks) are shared
    # between the original and rewritten graph; resetting before each run
    # gives both runs the same draws.  Each layer owns its own generator,
    # so removed dead-code layers do not shift the survivors' streams.
    for node in graph.nodes:
        reset = getattr(node.layer, "reset_rng", None)
        if reset is not None:
            reset()


def make_batches(
    graph: Graph, seed: int, steps: int
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Deterministic per-step (images, labels) batches for ``graph``."""
    input_shape = graph.node(graph.input_id).output_shape
    logits_shape = graph.node(
        graph.node(graph.output_id).inputs[0]
    ).output_shape
    classes = int(logits_shape[-1])
    rng = np.random.default_rng(np.random.SeedSequence([seed, 0xE0_1D]))
    batches = []
    for _ in range(steps):
        images = rng.standard_normal(input_shape).astype(np.float32)
        labels = rng.integers(0, classes, size=input_shape[0]).astype(np.int64)
        batches.append((images, labels))
    return batches


def _train(
    graph: Graph,
    policy_name: str,
    batches: Sequence[Tuple[np.ndarray, np.ndarray]],
    initial_params: Optional[Dict[str, np.ndarray]] = None,
    lr: float = 0.05,
) -> Tuple[List[float], List[Dict[str, np.ndarray]], Dict[str, np.ndarray]]:
    """Run SGD steps; returns (losses, per-step grads, initial params).

    When ``initial_params`` is given, matching parameters are copied in
    before the first step (the caller checks name-set compatibility).
    """
    _reset_layer_rngs(graph)
    ex = GraphExecutor(graph, _make_policy(policy_name, graph), seed=0)
    params = ex.parameters()
    if initial_params is not None:
        for key, value in params.items():
            if key in initial_params:
                value[...] = initial_params[key]
    start = {k: v.copy() for k, v in params.items()}
    losses: List[float] = []
    grad_steps: List[Dict[str, np.ndarray]] = []
    for images, labels in batches:
        loss = ex.forward(images, labels)
        grads = ex.backward()
        losses.append(loss)
        grad_steps.append({k: g.copy() for k, g in grads.items()})
        for key, g in grads.items():
            params[key] -= lr * g
    return losses, grad_steps, start


def check_rewrite_equivalence(
    graph: Graph,
    seed: int = 0,
    passes: Optional[Iterable[PassLike]] = None,
    steps: int = 2,
    policies: Sequence[str] = LOSSLESS_POLICIES,
    rewrite_result: Optional[RewriteResult] = None,
) -> List[Violation]:
    """Fuzzable oracle: the rewritten graph trains bit-identically.

    Applies the passes (or uses ``rewrite_result`` if the caller already
    ran them), then compares ``steps`` SGD steps between the original and
    rewritten graph under each policy.  Returns an empty list when the
    rewrite is a no-op or equivalence holds; otherwise one
    :class:`Violation` per divergence, carrying the policy, step and
    tensor that differed.
    """
    result = (
        rewrite_result
        if rewrite_result is not None
        else apply_passes(graph, passes)
    )
    if not result.changed:
        return []
    rewritten = result.graph

    removed = {n.name for n in graph.nodes} - {
        n.name for n in rewritten.nodes
    }
    violations: List[Violation] = []

    def bad(detail: str) -> None:
        violations.append(
            Violation(ORACLE_REWRITE, detail, seed=seed, subject=graph.name)
        )

    batches = make_batches(graph, seed, steps)
    for policy_name in policies:
        losses_a, grads_a, init_a = _train(graph, policy_name, batches)
        losses_b, grads_b, _ = _train(
            rewritten, policy_name, batches, initial_params=init_a
        )
        # Parameter-name accounting: rewritten-only names are impossible
        # (passes never invent parameters); original-only names must come
        # from removed dead nodes.
        a_names, b_names = set(init_a), {
            k for step in grads_b for k in step
        }
        for step_grads in grads_a:
            a_grad_names = set(step_grads)
            break
        else:
            a_grad_names = set()
        for key in sorted(b_names - a_names):
            bad(f"policy {policy_name}: rewritten graph grew parameter "
                f"{key!r} absent from the original")
        for key in sorted(a_grad_names - set(grads_b[0] if grads_b else {})):
            node_name = key.rsplit(".", 1)[0]
            if node_name not in removed:
                bad(f"policy {policy_name}: gradient for {key!r} vanished "
                    f"but node {node_name!r} was not removed by any pass")
        for step, (la, lb) in enumerate(zip(losses_a, losses_b)):
            if not (la == lb or (np.isnan(la) and np.isnan(lb))):
                bad(f"policy {policy_name} step {step}: loss diverged "
                    f"({la!r} original vs {lb!r} rewritten)")
        for step, (ga, gb) in enumerate(zip(grads_a, grads_b)):
            for key in sorted(set(ga) & set(gb)):
                if not np.array_equal(ga[key], gb[key], equal_nan=True):
                    bad(f"policy {policy_name} step {step}: gradient "
                        f"{key!r} not bit-identical after rewrite")
        if violations:
            # One policy's divergence details are enough to debug; later
            # policies would usually repeat the same root cause.
            break
    return violations
