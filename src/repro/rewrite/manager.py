"""Pass manager: compose rewrite passes and iterate them to a fixed point.

Passes interact — fusion exposes new inplace opportunities, CSE can turn a
shared input into a sole-consumer edge, dead-branch removal changes
consumer counts — so a single linear sweep is not enough.  The manager
re-runs the whole pass list until one full round applies zero rewrites
(every pass reports "nothing to do" on its own output), which is the
fixed point.  The default order is chosen so most graphs converge in two
rounds: structural passes first (fusion, pool rewrite, CSE, dead-code),
the flag-marking inplace pass last.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Union

from repro.graph.graph import Graph
from repro.rewrite.base import PassStats, RewritePass, RewriteResult
from repro.rewrite.passes import (
    CSEPass,
    DeadStashEliminationPass,
    FuseConvReLUPass,
    InplacePass,
    PoolArgmaxPass,
)

#: Pass registry: name -> zero-argument factory.
PASS_FACTORIES: Dict[str, type] = {
    FuseConvReLUPass.name: FuseConvReLUPass,
    PoolArgmaxPass.name: PoolArgmaxPass,
    CSEPass.name: CSEPass,
    DeadStashEliminationPass.name: DeadStashEliminationPass,
    InplacePass.name: InplacePass,
}

#: Default pass order (every pass enabled).
DEFAULT_PASSES = (
    FuseConvReLUPass.name,
    PoolArgmaxPass.name,
    CSEPass.name,
    DeadStashEliminationPass.name,
    InplacePass.name,
)

#: Safety valve: rounds are bounded because each structural pass strictly
#: shrinks or monotonically rewrites the graph, but a buggy pass could
#: oscillate; hitting the cap raises instead of looping forever.
MAX_ROUNDS = 16

PassLike = Union[str, RewritePass]


def resolve_passes(
    passes: Optional[Iterable[PassLike]] = None,
) -> List[RewritePass]:
    """Instantiate a pass list from names and/or instances.

    ``None`` selects :data:`DEFAULT_PASSES`.  Unknown names raise
    ``ValueError`` listing the registry, so CLI typos fail loudly.
    """
    selected = DEFAULT_PASSES if passes is None else list(passes)
    out: List[RewritePass] = []
    for p in selected:
        if isinstance(p, RewritePass):
            out.append(p)
        elif p in PASS_FACTORIES:
            out.append(PASS_FACTORIES[p]())
        else:
            raise ValueError(
                f"unknown rewrite pass {p!r}; known: "
                f"{', '.join(sorted(PASS_FACTORIES))}"
            )
    return out


def apply_passes(
    graph: Graph,
    passes: Optional[Iterable[PassLike]] = None,
) -> RewriteResult:
    """Run ``passes`` (default: all) on ``graph`` to a fixed point.

    The input graph is never mutated.  Returns a
    :class:`~repro.rewrite.base.RewriteResult` whose ``stats`` aggregate
    each pass's rewrite count across rounds (in pass-list order) and whose
    ``graph`` is the converged result — identical to the input object when
    nothing applied.
    """
    pass_list = resolve_passes(passes)
    stats = [PassStats(p.name) for p in pass_list]
    current = graph
    rounds = 0
    while True:
        if rounds >= MAX_ROUNDS:
            raise RuntimeError(
                f"rewrite passes did not converge after {MAX_ROUNDS} rounds "
                f"on graph {graph.name!r}"
            )
        round_changes = 0
        for p, st in zip(pass_list, stats):
            current, changes = p.run(current)
            st.changes += changes
            round_changes += changes
        rounds += 1
        if round_changes == 0:
            break
    return RewriteResult(graph=current, stats=stats, rounds=rounds)
