"""The concrete rewrite passes.

Every pass preserves training semantics *bit-for-bit* under the lossless
policies — that is the contract the rewrite-equivalence oracle
(:mod:`repro.rewrite.equivalence`) fuzzes.  The docstring of each pass
states the argument for why its transform is exact; the restrictions the
code enforces are exactly the preconditions of those arguments, so do not
loosen one without extending the other.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.graph.graph import Graph
from repro.graph.node import OpNode
from repro.layers.activation import ReLU
from repro.layers.conv import Conv2D
from repro.layers.fused import FusedConvReLU
from repro.layers.pool import ArgmaxMaxPool2D, MaxPool2D
from repro.rewrite.base import RewritePass, clone_node, rebuild


class FuseConvReLUPass(RewritePass):
    """Fuse ``conv → relu`` chains into one :class:`FusedConvReLU` node.

    Preconditions: the conv's *only* forward consumer is a plain
    :class:`ReLU`, and the conv is not the graph output.  The fused node
    keeps the conv's id, name and inputs (so parameters transplant by
    name) and the ReLU's consumers are rewired onto it.

    Exactness: forward delegates to the identical conv kernel then applies
    ``max(·, 0)`` in the conv's own output buffer; backward masks the
    upstream gradient with the saved 1-bit positivity mask — the same 0/1
    multiply ReLU's backward performs — and feeds the identical conv
    backward.  No floating-point operation is reordered.
    """

    name = "fuse-conv-relu"

    def run(self, graph: Graph) -> Tuple[Graph, int]:
        pairs: List[Tuple[OpNode, OpNode]] = []
        for node in graph.nodes:
            if node.kind != "conv" or not isinstance(node.layer, Conv2D):
                continue
            if node.node_id == graph.output_id:
                continue
            consumers = graph.consumers(node.node_id)
            if len(consumers) != 1:
                continue
            relu = consumers[0]
            # Exactly ReLU — a subclass could change backward semantics.
            if type(relu.layer) is not ReLU:
                continue
            pairs.append((node, relu))
        if not pairs:
            return graph, 0

        nodes = {n.node_id: clone_node(n) for n in graph.nodes}
        remap: Dict[int, int] = {}
        for conv, relu in pairs:
            nodes[conv.node_id] = OpNode(
                node_id=conv.node_id,
                name=conv.name,
                layer=FusedConvReLU(conv.layer),
                inputs=list(conv.inputs),
                output_shape=relu.output_shape,
            )
            del nodes[relu.node_id]
            remap[relu.node_id] = conv.node_id
        for node in nodes.values():
            node.inputs = [remap.get(i, i) for i in node.inputs]
        output_id = remap.get(graph.output_id, graph.output_id)
        return rebuild(graph, nodes, output_id), len(pairs)


class PoolArgmaxPass(RewritePass):
    """Swap plain max-pools for :class:`ArgmaxMaxPool2D` (paper §IV-A).

    The runtime max-pool kernels already compute and replay a Y-to-X
    argmax map; only the *static* backward-dependence flags still claim the
    baseline's X/Y stashes.  This pass replaces the layer with the
    flag-honest subclass, so the memory planner stops charging two
    feature-map stashes per pool while execution is untouched (same
    kernels, same saved map, bit-identical gradients).
    """

    name = "pool-argmax"

    def run(self, graph: Graph) -> Tuple[Graph, int]:
        changes = 0
        nodes = {n.node_id: clone_node(n) for n in graph.nodes}
        for node in graph.nodes:
            layer = node.layer
            if type(layer) is not MaxPool2D:
                continue
            if not getattr(layer, "supports_argmax_map", False):
                continue
            nodes[node.node_id].layer = ArgmaxMaxPool2D(
                (layer.kh, layer.kw), layer.stride, layer.pad
            )
            changes += 1
        if not changes:
            return graph, 0
        return rebuild(graph, nodes, graph.output_id), changes


#: Kinds whose backward pass is exactly linear in the upstream gradient
#: (identity reshape/split/copy, or a 0/1 mask multiply), making a merge
#: of duplicates bit-preserving under the 2-term accumulation restriction
#: below.  Deliberately excluded: sigmoid/tanh (non-exact multiplier),
#: avgpool/gavgpool (division reassociation), dropout/BN (RNG, running
#: state), any parameterised op.
_CSE_EXACT_KINDS = {"relu", "flatten", "add", "concat", "maxpool"}


def _cse_signature(node: OpNode) -> Optional[tuple]:
    """Hashable op identity for duplicate detection, or None if ineligible."""
    kind = node.kind
    if kind not in _CSE_EXACT_KINDS:
        return None
    layer = node.layer
    if kind == "relu":
        return ("relu",) if type(layer) is ReLU else None
    if kind == "flatten":
        return ("flatten",)
    if kind == "add":
        return ("add",)
    if kind == "concat":
        return ("concat", getattr(layer, "axis", 1))
    # maxpool: only non-overlapping windows — with overlap the backward
    # scatter sums several dY terms per input element and the merge would
    # reassociate that sum.
    if type(layer) not in (MaxPool2D, ArgmaxMaxPool2D):
        return None
    if layer.stride < layer.kh or layer.stride < layer.kw:
        return None
    return (type(layer).__name__, layer.kh, layer.kw, layer.stride, layer.pad)


class CSEPass(RewritePass):
    """Merge duplicated subexpressions (same op, same inputs).

    Exactness restrictions (all enforced):

    * only ops whose backward is exactly linear (``_CSE_EXACT_KINDS``);
    * keeper and duplicate each have exactly **one** forward consumer, so
      after the merge the keeper's output gradient is a 2-term sum —
      bitwise the same value as the two 1-term contributions the
      duplicates fed (IEEE addition of two terms is commutative);
    * every shared input's forward consumers are exactly the pair, so the
      input's gradient accumulation stays a 2-term sum in both graphs.

    Under those conditions merging changes only the *order* of a two-term
    gradient addition, never its operands, so training is bit-preserved.
    """

    name = "cse"

    def run(self, graph: Graph) -> Tuple[Graph, int]:
        groups: Dict[tuple, List[OpNode]] = {}
        for node in graph.nodes:
            if node.node_id in (graph.input_id, graph.output_id):
                continue
            if node.inplace:
                continue
            sig = _cse_signature(node)
            if sig is None:
                continue
            if len(graph.consumers(node.node_id)) != 1:
                continue
            groups.setdefault((sig, tuple(node.inputs)), []).append(node)

        merges: List[Tuple[OpNode, OpNode]] = []
        touched: set = set()
        for (_, inputs), members in sorted(
            groups.items(), key=lambda kv: kv[1][0].node_id
        ):
            if len(members) != 2:
                continue
            keeper, dup = sorted(members, key=lambda n: n.node_id)
            if {keeper.node_id, dup.node_id} & touched:
                continue
            # Each shared input must feed exactly this pair (one edge each)
            # so its backward accumulation stays two-term.
            ok = True
            for src in set(inputs):
                consumer_ids = sorted(
                    c.node_id for c in graph.consumers(src)
                )
                if consumer_ids != sorted((keeper.node_id, dup.node_id)):
                    ok = False
                    break
            if not ok:
                continue
            merges.append((keeper, dup))
            touched.update(
                (keeper.node_id, dup.node_id) + tuple(inputs)
            )
        if not merges:
            return graph, 0

        nodes = {n.node_id: clone_node(n) for n in graph.nodes}
        remap = {dup.node_id: keeper.node_id for keeper, dup in merges}
        for _, dup in merges:
            del nodes[dup.node_id]
        for node in nodes.values():
            node.inputs = [remap.get(i, i) for i in node.inputs]
        return rebuild(graph, nodes, graph.output_id), len(merges)


class DeadStashEliminationPass(RewritePass):
    """Remove ops whose output never reaches the loss.

    The training schedule gives *every* node a backward op, so a dead
    branch's feature maps are classified as stashed and priced by the
    planner even though no gradient ever flows to them (the executor's
    backward skips nodes with no incoming gradient).  Deleting the branch
    removes those phantom stashes.  Exactness: dead nodes cannot influence
    the loss by definition, and their parameters receive no gradient in
    either graph.
    """

    name = "dead-stash"

    def run(self, graph: Graph) -> Tuple[Graph, int]:
        reachable = set()
        stack = [graph.output_id]
        while stack:
            nid = stack.pop()
            if nid in reachable:
                continue
            reachable.add(nid)
            stack.extend(graph.node(nid).inputs)
        reachable.add(graph.input_id)  # the minibatch source always stays
        dead = [n for n in graph.nodes if n.node_id not in reachable]
        if not dead:
            return graph, 0
        nodes = {
            n.node_id: clone_node(n)
            for n in graph.nodes
            if n.node_id in reachable
        }
        return rebuild(graph, nodes, graph.output_id), len(dead)


class InplacePass(RewritePass):
    """Mark immediately-consumed maps for in-buffer execution (paper §III-C).

    Promotes the inplace optimisation from a memory-plan *classification*
    (``GistConfig.inplace``, which merges the pair's allocations in the
    plan) to an *executed* transform: eligible consumers get
    ``OpNode.inplace`` set and the executor routes them through
    :meth:`~repro.layers.base.Layer.forward_inplace`, overwriting the
    producer's buffer.

    Eligibility is recomputed from scratch each run via
    :func:`~repro.encodings.inplace.inplace_eligible_edges` — the same
    analysis the planner prices — and stale marks from earlier rounds are
    cleared, so the pass is idempotent and self-correcting after other
    passes change the graph.  Exactness: the eligibility conditions
    guarantee no backward op and no stash ever reads the overwritten
    buffer, and every ``forward_inplace`` computes the same values as its
    out-of-place twin.
    """

    name = "inplace"

    def run(self, graph: Graph) -> Tuple[Graph, int]:
        from repro.encodings.inplace import inplace_eligible_edges

        eligible = {c for (_, c) in inplace_eligible_edges(graph)}
        changes = sum(
            1 for n in graph.nodes if n.inplace != (n.node_id in eligible)
        )
        if not changes:
            return graph, 0
        nodes = {}
        for n in graph.nodes:
            clone = clone_node(n)
            clone.inplace = n.node_id in eligible
            nodes[n.node_id] = clone
        return rebuild(graph, nodes, graph.output_id), changes
