"""Training-service daemon: declarative job specs, a durable queue and
a content-addressed plan/result cache in front of the orchestrate pool."""

from repro.serve.cache import CACHE_FORMAT, ContentCache, content_address, value_digest
from repro.serve.jobs import build_plan_policy, compile_job, plan_cache_probe, run_serve_job
from repro.serve.service import QUEUE_FORMAT, JobRecord, JobService, ServeReport
from repro.serve.spec import (
    JOB_KINDS,
    SPEC_FORMAT,
    JobSpec,
    JobSpecError,
    job_fingerprint,
    load_job_specs,
    validate_job_spec,
)

__all__ = [
    "CACHE_FORMAT",
    "ContentCache",
    "JOB_KINDS",
    "JobRecord",
    "JobService",
    "JobSpec",
    "JobSpecError",
    "QUEUE_FORMAT",
    "SPEC_FORMAT",
    "ServeReport",
    "build_plan_policy",
    "compile_job",
    "content_address",
    "job_fingerprint",
    "load_job_specs",
    "plan_cache_probe",
    "run_serve_job",
    "validate_job_spec",
    "value_digest",
]
