"""Content-addressed on-disk cache with integrity checking.

Entries are addressed by the SHA-256 of their canonical-JSON key, so a
cache lookup is a pure function of *what was asked* — the serve layer
keys plans by ``(graph-fingerprint, strategy, budget)`` and results by
the job fingerprint, and repeated queries (the millions-of-users traffic
pattern) are served from disk instead of re-planned/re-run.

Durability contract:

* writes go through :func:`repro.ioutil.atomic_write_json`, so a crash
  mid-``put`` never leaves a torn entry — readers see the old entry or
  the new one;
* every entry stores its key (guarding against address collisions and
  misfiled entries) and a SHA-256 over its canonical value; ``get``
  re-verifies both, and a poisoned/corrupt/truncated entry is deleted
  and reported as a miss, so the caller transparently recomputes;
* values round-trip through canonical JSON on ``put``, so a value
  served warm from the cache is byte-identical to the one the cold run
  returned.

Hit/miss/corrupt counters are kept per instance and surfaced through
:meth:`ContentCache.stats` (the serve report prints them).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Optional

from repro.ioutil import atomic_write_json
from repro.orchestrate.units import canonical_json, normalise_json

#: Stamped into every entry; bump on layout changes (old entries miss).
CACHE_FORMAT = 1


def content_address(key) -> str:
    """SHA-256 hex address of a JSON-serialisable cache key."""
    return hashlib.sha256(canonical_json(key).encode("utf-8")).hexdigest()


def value_digest(value) -> str:
    """SHA-256 over a value's canonical JSON (the integrity stamp)."""
    return hashlib.sha256(canonical_json(value).encode("utf-8")).hexdigest()


class ContentCache:
    """Directory-backed content-addressed key/value store."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.puts = 0

    # ------------------------------------------------------------------
    def _path(self, key) -> Path:
        address = content_address(key)
        # Two-level fanout keeps directories small under heavy traffic.
        return self.root / address[:2] / f"{address}.json"

    def get(self, key) -> Optional[object]:
        """Cached value for ``key``, or ``None`` (miss).

        A corrupt entry — unparsable JSON, wrong format, a key that does
        not match (misfiled), or a value whose integrity digest fails —
        is deleted and counted in ``corrupt``; the call reports a miss
        so the caller recomputes and overwrites it.
        """
        path = self._path(key)
        try:
            entry = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            entry = None
        if (
            not isinstance(entry, dict)
            or entry.get("format") != CACHE_FORMAT
            or entry.get("key") != normalise_json(key)
            or entry.get("value_sha256") != value_digest(entry.get("value"))
        ):
            self.corrupt += 1
            self.misses += 1
            try:
                path.unlink()
            except OSError:  # pragma: no cover - racing cleaner
                pass
            return None
        self.hits += 1
        return entry["value"]

    def put(self, key, value):
        """Store ``value`` under ``key``; returns the canonical value.

        The returned (round-tripped) form is what a later ``get`` will
        serve, so callers that keep using the return value are
        bit-identical to callers served warm from the cache.
        """
        canonical = normalise_json(value)
        atomic_write_json(self._path(key), {
            "format": CACHE_FORMAT,
            "key": normalise_json(key),
            "value": canonical,
            "value_sha256": value_digest(canonical),
        })
        self.puts += 1
        return canonical

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def stats(self) -> Dict[str, int]:
        """Counters plus the current on-disk entry count."""
        return {
            "entries": len(self),
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "puts": self.puts,
        }
