"""Job execution: compile validated specs onto the work-unit registry.

Every job compiles to exactly one payload-complete ``serve-job`` work
unit (:func:`compile_job`) whose executor, :func:`run_serve_job`,
dispatches on the job kind and drives the existing subsystem serially
inside the worker process — the pool supplies the concurrency, crash
isolation and journal durability, so nested pools are never needed
(pool workers are daemonic and cannot fork grandchildren).

Each runner is a pure function of the job's canonical params, which is
what makes results content-addressable: same fingerprint, same bits.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.orchestrate.units import WorkUnit
from repro.serve.spec import SPEC_FORMAT, JobSpec, JobSpecError


def compile_job(spec: JobSpec) -> WorkUnit:
    """The single work unit executing ``spec`` (kind ``serve-job``)."""
    return WorkUnit("serve-job", f"job:{spec.fingerprint()[:16]}",
                    spec.payload())


def build_plan_policy(params: dict):
    """The :class:`~repro.core.policy.HybridPolicy` a plan job prices."""
    from repro.core.policy import GistConfig, HybridPolicy

    config = params["config"]
    gist = (GistConfig.lossless() if config == "lossless"
            else GistConfig.for_network(params["model"])
            if config == "network" else GistConfig.full(config))
    return HybridPolicy(strategy=params["strategy"],
                        cost_budget_frac=params["budget"], gist=gist)


def plan_job_graph(params: dict):
    """Build (and optionally rewrite) the graph a plan job analyses."""
    from repro.models import build_model

    graph = build_model(params["model"], batch_size=params["batch_size"])
    if params["rewrite"]:
        from repro.rewrite import apply_passes

        graph = apply_passes(graph).graph
    return graph


def _run_plan(params: dict) -> dict:
    from repro.graph.fingerprint import graph_fingerprint
    from repro.memory.hybrid import build_hybrid_plan

    graph = plan_job_graph(params)
    policy = build_plan_policy(params)
    return {
        "model": params["model"],
        "batch_size": params["batch_size"],
        "rewrite": params["rewrite"],
        "graph_fingerprint": graph_fingerprint(graph),
        "plan": build_hybrid_plan(graph, policy).summary_json(),
    }


def _run_train(params: dict) -> dict:
    from repro.distributed import DistConfig, train_distributed

    config = DistConfig(
        model=params["model"],
        batch_size=params["batch_size"],
        num_shards=params["shards"],
        replicas=1,  # inside a pool worker: shards run inline, in order
        steps=params["steps"],
        wire_codec=params["wire_codec"],
        policy=params["policy"],
        seed=params["seed"],
        num_samples=params["num_samples"],
    )
    result = train_distributed(config)
    return {
        "model": params["model"],
        "digest": result.digest(),
        "losses": result.losses,
        "total_wire_bytes": result.total_wire_bytes,
        "wire_reduction": result.wire_reduction,
    }


def _run_fuzz(params: dict) -> dict:
    from repro.verify import run_fuzz

    report = run_fuzz(
        params["seeds"],
        start_seed=params["start_seed"],
        max_ops=params["max_ops"],
        strict=params["strict"],
        rewrite_shapes=params["rewrite_shapes"],
    )
    return report.to_json()


def _run_sweep(params: dict) -> dict:
    from repro.experiments import run_sweep

    return run_sweep(
        params["drivers"],
        models=params["models"],
        batch_size=params["batch_size"],
    )


_RUNNERS = {
    "plan": _run_plan,
    "train": _run_train,
    "fuzz": _run_fuzz,
    "sweep": _run_sweep,
}


def run_serve_job(payload: dict) -> dict:
    """Work-unit executor for kind ``serve-job`` (runs in any process)."""
    if payload.get("format") != SPEC_FORMAT:
        raise JobSpecError(
            f"serve-job payload format {payload.get('format')!r} "
            f"!= {SPEC_FORMAT}"
        )
    try:
        runner = _RUNNERS[payload["kind"]]
    except KeyError:
        raise JobSpecError(
            f"unknown serve-job kind {payload.get('kind')!r}; "
            f"known: {sorted(_RUNNERS)}"
        ) from None
    return runner(payload["params"])


def plan_cache_probe(spec: JobSpec) -> Optional[Tuple[dict, object]]:
    """``(plan_cache_key, graph)`` for a plan job, else ``None``.

    The service uses this to consult the content-addressed plan cache
    *before* scheduling any pool work: the key is a pure function of
    the (rewritten) graph's fingerprint plus strategy/budget/gist, so
    isomorphic graphs requested under the same policy share one slot
    regardless of which job spec asked.
    """
    if spec.kind != "plan":
        return None
    from repro.memory.hybrid import plan_cache_key

    graph = plan_job_graph(spec.params)
    return plan_cache_key(graph, build_plan_policy(spec.params)), graph
