"""The training-service daemon: a durable, cache-fronted job queue.

:class:`JobService` owns one state directory:

* ``queue.jsonl`` — submitted jobs, appended atomically
  (:func:`repro.ioutil.append_jsonl_line`); a submission survives any
  crash that happens after ``submit`` returns;
* ``journal.jsonl`` — the :class:`~repro.orchestrate.journal.RunJournal`
  the pool streams unit outcomes to; killing the daemon mid-run loses at
  most the in-flight units, and the next pass resumes by fingerprint
  replay with bit-identical results.  The serve loop compacts it each
  pass so a long-lived daemon never replays an unbounded file;
* ``cache/`` — the content-addressed :class:`~repro.serve.cache.ContentCache`
  holding ``(job-fingerprint) -> result`` and
  ``(graph-fingerprint, strategy, budget) -> plan`` entries.

A scheduling pass (:meth:`JobService.run_pending`) drains the queue:
duplicate submissions collapse onto one job, jobs whose result is
already cached are answered without scheduling any pool work, plan jobs
consult the plan cache next, and only the remainder is executed on the
process pool.  Every fresh result is written back to the cache, so the
heavy repeated-traffic pattern is served from disk after the first hit.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.ioutil import append_jsonl_line, atomic_write_text, read_jsonl
from repro.orchestrate import RunJournal, run_units
from repro.serve.cache import ContentCache, value_digest
from repro.serve.jobs import compile_job, plan_cache_probe
from repro.serve.spec import JobSpec, JobSpecError, validate_job_spec

#: Stamped into queue records; bump on layout changes.
QUEUE_FORMAT = 1


def _result_cache_key(fingerprint: str) -> dict:
    return {"kind": "job-result", "fingerprint": fingerprint}


@dataclass
class JobRecord:
    """Outcome of one (deduplicated) job in a scheduling pass."""

    fingerprint: str
    kind: str
    name: str
    status: str = "pending"  # "pending" | "ok" | "failed" | "invalid"
    #: Where the result came from: "result-cache" / "plan-cache" /
    #: "computed" (pool work was scheduled); None for failures.
    source: Optional[str] = None
    result: Optional[object] = None
    #: SHA-256 over the canonical result JSON — the bit-identity handle
    #: the durability tests pin across kill/resume and cache hits.
    digest: Optional[str] = None
    error: Optional[dict] = None
    #: Queue entries that collapsed onto this job this pass.
    submissions: int = 1

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_json(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "kind": self.kind,
            "name": self.name,
            "status": self.status,
            "source": self.source,
            "digest": self.digest,
            "error": self.error,
            "submissions": self.submissions,
        }


@dataclass
class ServeReport:
    """Everything one scheduling pass did, JSON-serialisable."""

    jobs: List[JobRecord] = field(default_factory=list)
    #: Work units actually handed to the pool (0 on a fully warm pass).
    scheduled: int = 0
    result_cache_hits: int = 0
    plan_cache_hits: int = 0
    cache_stats: Dict[str, int] = field(default_factory=dict)
    #: ``(kept, dropped)`` from this pass's journal compaction.
    compaction: Tuple[int, int] = (0, 0)

    @property
    def ok(self) -> bool:
        return all(job.ok for job in self.jobs)

    def to_json(self) -> dict:
        return {
            "jobs": [job.to_json() for job in self.jobs],
            "scheduled": self.scheduled,
            "result_cache_hits": self.result_cache_hits,
            "plan_cache_hits": self.plan_cache_hits,
            "cache": dict(self.cache_stats),
            "journal_compaction": {"kept": self.compaction[0],
                                   "dropped": self.compaction[1]},
            "ok": self.ok,
        }

    def summary(self) -> str:
        """Human-readable pass report (the serve CLI prints this)."""
        lines = []
        for job in self.jobs:
            label = f" name={job.name}" if job.name else ""
            if job.ok:
                extra = f"source={job.source} digest={job.digest[:16]}"
            else:
                error = job.error or {}
                extra = (f"{error.get('type', 'Error')}: "
                         f"{error.get('message', '')}")
            dupes = (f" (x{job.submissions} submissions)"
                     if job.submissions > 1 else "")
            lines.append(f"job {job.fingerprint[:16]} kind={job.kind}"
                         f"{label} status={job.status} {extra}{dupes}")
        failed = sum(1 for job in self.jobs if not job.ok)
        lines.append(
            f"jobs: {len(self.jobs) - failed} ok, {failed} failed | "
            f"result-cache hits: {self.result_cache_hits} | "
            f"plan-cache hits: {self.plan_cache_hits} | "
            f"scheduled: {self.scheduled}"
        )
        stats = self.cache_stats
        if stats:
            lines.append(
                f"cache: entries={stats.get('entries', 0)} "
                f"hits={stats.get('hits', 0)} "
                f"misses={stats.get('misses', 0)} "
                f"corrupt={stats.get('corrupt', 0)}"
            )
        kept, dropped = self.compaction
        lines.append(f"journal: {kept} record(s) after compaction "
                     f"({dropped} dropped)")
        return "\n".join(lines)


class JobService:
    """Durable job queue + cache + pool front end over one state dir."""

    def __init__(self, state_dir, workers: int = 1,
                 timeout_s: Optional[float] = None, retries: int = 1) -> None:
        self.state_dir = Path(state_dir)
        self.workers = workers
        self.timeout_s = timeout_s
        self.retries = retries
        self.queue_path = self.state_dir / "queue.jsonl"
        self.journal = RunJournal(self.state_dir / "journal.jsonl")
        self.cache = ContentCache(self.state_dir / "cache")

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, spec) -> str:
        """Enqueue a job (spec mapping or :class:`JobSpec`); returns its
        fingerprint.  The append is atomic and durable — a submission
        that returned survives any later crash of the daemon."""
        if not isinstance(spec, JobSpec):
            spec = validate_job_spec(spec)
        fingerprint = spec.fingerprint()
        append_jsonl_line(self.queue_path, {
            "format": QUEUE_FORMAT,
            "fingerprint": fingerprint,
            "name": spec.name,
            "job": spec.payload(),
        })
        return fingerprint

    def queued(self) -> List[dict]:
        """Raw queue entries still awaiting a scheduling pass."""
        return [record for record in read_jsonl(self.queue_path)
                if record.get("format") == QUEUE_FORMAT]

    def _drop_from_queue(self, fingerprints) -> None:
        """Atomically rewrite the queue without the processed jobs."""
        import json

        remaining = [json.dumps(record, sort_keys=True)
                     for record in read_jsonl(self.queue_path)
                     if record.get("fingerprint") not in fingerprints]
        atomic_write_text(self.queue_path,
                          "".join(line + "\n" for line in remaining))

    # ------------------------------------------------------------------
    # Scheduling pass
    # ------------------------------------------------------------------
    def run_pending(self) -> ServeReport:
        """Drain the queue once: dedupe, serve from cache, run the rest.

        Crash-safe at every point: submissions stay queued until their
        job reaches a terminal record, unit outcomes stream to the run
        journal as they finalise, and results enter the content cache
        before their queue entries are dropped.  Re-invoking after a
        SIGKILL therefore resumes exactly where the pass stopped, with
        results bit-identical to an uninterrupted run.
        """
        report = ServeReport(compaction=self.journal.compact())

        # Dedupe submissions: same fingerprint == same job, whatever the
        # label; later duplicates only bump the submission count.
        jobs: Dict[str, JobRecord] = {}
        specs: Dict[str, JobSpec] = {}
        for entry in self.queued():
            fingerprint = entry.get("fingerprint")
            if fingerprint in jobs:
                jobs[fingerprint].submissions += 1
                continue
            payload = entry.get("job") or {}
            try:
                spec = validate_job_spec({
                    "kind": payload.get("kind"),
                    "name": entry.get("name", ""),
                    **payload.get("params", {}),
                })
            except JobSpecError as exc:
                jobs[fingerprint] = JobRecord(
                    fingerprint=str(fingerprint),
                    kind=str(payload.get("kind")),
                    name=str(entry.get("name", "")),
                    status="invalid",
                    error={"type": "JobSpecError", "message": str(exc)},
                )
                continue
            specs[fingerprint] = spec
            jobs[fingerprint] = JobRecord(fingerprint=fingerprint,
                                          kind=spec.kind, name=spec.name)

        # Cache consultation: results first, then plans (plan jobs only).
        to_run: List[str] = []
        plan_keys: Dict[str, dict] = {}
        for fingerprint, spec in specs.items():
            record = jobs[fingerprint]
            cached = self.cache.get(_result_cache_key(fingerprint))
            if cached is not None:
                record.status, record.source = "ok", "result-cache"
                record.result = cached
                record.digest = value_digest(cached)
                report.result_cache_hits += 1
                continue
            probe = plan_cache_probe(spec)
            if probe is not None:
                key, _graph = probe
                plan_keys[fingerprint] = key
                summary = self.cache.get(key)
                if summary is not None:
                    result = {
                        "model": spec.params["model"],
                        "batch_size": spec.params["batch_size"],
                        "rewrite": spec.params["rewrite"],
                        "graph_fingerprint": key["graph_fingerprint"],
                        "plan": summary,
                    }
                    result = self.cache.put(_result_cache_key(fingerprint),
                                            result)
                    record.status, record.source = "ok", "plan-cache"
                    record.result = result
                    record.digest = value_digest(result)
                    report.plan_cache_hits += 1
                    continue
            to_run.append(fingerprint)

        # Pool execution of the cache misses, journaled for resume.
        units = [compile_job(specs[fingerprint]) for fingerprint in to_run]
        report.scheduled = len(units)
        results = run_units(units, workers=self.workers,
                            timeout_s=self.timeout_s, retries=self.retries,
                            journal=self.journal) if units else {}
        for fingerprint, unit in zip(to_run, units):
            record = jobs[fingerprint]
            outcome = results[unit.key]
            if not outcome.ok:
                record.status, record.error = "failed", outcome.error
                continue
            result = self.cache.put(_result_cache_key(fingerprint),
                                    outcome.value)
            key = plan_keys.get(fingerprint)
            if key is not None and isinstance(result, dict):
                self.cache.put(key, result["plan"])
            record.status, record.source = "ok", "computed"
            record.result = result
            record.digest = value_digest(result)

        self._drop_from_queue(set(jobs))
        report.jobs = list(jobs.values())
        report.cache_stats = self.cache.stats()
        return report

    # ------------------------------------------------------------------
    def serve_forever(
        self,
        poll_s: float = 1.0,
        max_polls: Optional[int] = None,
        on_report: Optional[Callable[[ServeReport], None]] = None,
    ) -> int:
        """Daemon loop: drain the queue every ``poll_s`` seconds.

        ``max_polls`` bounds the loop (tests and one-shot smoke runs);
        ``on_report`` receives every pass that processed at least one
        job.  Returns the count of failed jobs observed (0 == clean).
        """
        failures = 0
        polls = 0
        while max_polls is None or polls < max_polls:
            polls += 1
            report = self.run_pending()
            if report.jobs:
                failures += sum(1 for job in report.jobs if not job.ok)
                if on_report is not None:
                    on_report(report)
            if max_polls is None or polls < max_polls:
                time.sleep(poll_s)
        return failures
