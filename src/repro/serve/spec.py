"""Declarative job specs: validation, canonicalisation, fingerprints.

A job spec is a small YAML/JSON mapping — *what* to run, never how —
that the serve layer compiles onto the existing work-unit machinery:

.. code-block:: yaml

    kind: train          # train | plan | fuzz | sweep
    name: nightly-tiny   # optional label (not part of the identity)
    model: tiny_cnn
    steps: 2
    seed: 0

Validation fills in every default *before* the spec is fingerprinted,
so two spellings of the same job — one terse, one fully spelled out —
produce the same :func:`job_fingerprint` and therefore share one
result-cache entry.  The ``name`` label is deliberately excluded from
the identity: resubmitting a job under a new label is still the same
job (this is what collapses duplicate submissions onto one cache
entry).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List

from repro.orchestrate.units import canonical_json, normalise_json

#: Job kinds the serve layer can compile; each maps onto an existing
#: subsystem (distributed trainer, hybrid planner, fuzzer, sweep driver).
JOB_KINDS = ("train", "plan", "fuzz", "sweep")

#: Bumped when a job's semantics change incompatibly; part of the
#: fingerprint so stale cached results can never be served.
SPEC_FORMAT = 1


class JobSpecError(ValueError):
    """Raised for malformed or unknown job specs."""


@dataclass(frozen=True)
class JobSpec:
    """A validated, canonicalised job description."""

    kind: str
    params: dict = field(default_factory=dict)
    name: str = ""

    def payload(self) -> dict:
        """The payload-complete dict a ``serve-job`` work unit carries."""
        return {"format": SPEC_FORMAT, "kind": self.kind,
                "params": dict(self.params)}

    def fingerprint(self) -> str:
        """Content address of this job (label-independent)."""
        blob = canonical_json(self.payload())
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def job_fingerprint(spec: JobSpec) -> str:
    """Alias for :meth:`JobSpec.fingerprint` (module-level spelling)."""
    return spec.fingerprint()


# ----------------------------------------------------------------------
# Per-kind parameter schemas: name -> (default, checker).  Checkers
# raise JobSpecError with the offending field named.
# ----------------------------------------------------------------------
def _require(condition: bool, message: str) -> None:
    if not condition:
        raise JobSpecError(message)


def _check_model(name) -> str:
    from repro.models import available_models

    _require(isinstance(name, str) and name in available_models(),
             f"unknown model {name!r}; known: {available_models()}")
    return name


def _check_positive_int(label: str):
    def check(value):
        _require(isinstance(value, int) and not isinstance(value, bool)
                 and value > 0, f"{label} must be a positive int, "
                                f"got {value!r}")
        return value
    return check


def _check_non_negative_int(label: str):
    def check(value):
        _require(isinstance(value, int) and not isinstance(value, bool)
                 and value >= 0, f"{label} must be a non-negative int, "
                                 f"got {value!r}")
        return value
    return check


def _check_bool(label: str):
    def check(value):
        _require(isinstance(value, bool), f"{label} must be a bool, "
                                          f"got {value!r}")
        return value
    return check


def _check_choice(label: str, choices):
    def check(value):
        _require(value in choices,
                 f"{label} must be one of {sorted(choices)}, got {value!r}")
        return value
    return check


def _check_budget(value):
    _require(isinstance(value, (int, float)) and not isinstance(value, bool)
             and value >= 0, f"budget must be a fraction >= 0, got {value!r}")
    return float(value)


_CONFIG_ARMS = ("lossless", "network", "fp16", "fp10", "fp8")


def _schema(kind: str) -> Dict[str, tuple]:
    if kind == "train":
        from repro.distributed.wire import WIRE_CODECS

        return {
            "model": ("tiny_cnn", _check_model),
            "batch_size": (16, _check_positive_int("batch_size")),
            "shards": (2, _check_positive_int("shards")),
            "steps": (2, _check_positive_int("steps")),
            "seed": (0, _check_non_negative_int("seed")),
            "wire_codec": ("auto", _check_choice("wire_codec", WIRE_CODECS)),
            "policy": ("baseline",
                       _check_choice("policy", ("baseline", "gist"))),
            "num_samples": (64, _check_positive_int("num_samples")),
        }
    if kind == "plan":
        from repro.core.policy import HYBRID_STRATEGIES

        return {
            "model": ("tiny_cnn", _check_model),
            "batch_size": (8, _check_positive_int("batch_size")),
            "strategy": ("hybrid",
                         _check_choice("strategy", HYBRID_STRATEGIES)),
            "budget": (0.15, _check_budget),
            "config": ("lossless", _check_choice("config", _CONFIG_ARMS)),
            "rewrite": (False, _check_bool("rewrite")),
        }
    if kind == "fuzz":
        from repro.verify.fuzzer import DEFAULT_MAX_OPS

        return {
            "seeds": (5, _check_positive_int("seeds")),
            "start_seed": (0, _check_non_negative_int("start_seed")),
            "max_ops": (DEFAULT_MAX_OPS, _check_positive_int("max_ops")),
            "strict": (False, _check_bool("strict")),
            "rewrite_shapes": (False, _check_bool("rewrite_shapes")),
        }
    if kind == "sweep":
        from repro.experiments import DEFAULT_SWEEP_DRIVERS, SWEEP_DRIVERS

        def check_drivers(value):
            _require(isinstance(value, list) and value
                     and all(d in SWEEP_DRIVERS for d in value),
                     f"drivers must be a non-empty list from "
                     f"{sorted(SWEEP_DRIVERS)}, got {value!r}")
            return value

        def check_models(value):
            if value is None:
                return None
            _require(isinstance(value, list) and value,
                     f"models must be null or a non-empty list, "
                     f"got {value!r}")
            for name in value:
                _check_model(name)
            return value

        return {
            "drivers": (list(DEFAULT_SWEEP_DRIVERS), check_drivers),
            "models": (None, check_models),
            "batch_size": (32, _check_positive_int("batch_size")),
        }
    raise JobSpecError(f"unknown job kind {kind!r}; known: {JOB_KINDS}")


def validate_job_spec(raw: dict) -> JobSpec:
    """Validate ``raw`` and return the canonical :class:`JobSpec`.

    Unknown keys are rejected (a typoed field must not silently become
    a default), every known field is checked, and defaults are filled
    in so the spec's fingerprint no longer depends on which fields the
    author spelled out.
    """
    _require(isinstance(raw, dict), f"job spec must be a mapping, "
                                    f"got {type(raw).__name__}")
    raw = normalise_json(raw)
    kind = raw.get("kind")
    _require(kind in JOB_KINDS,
             f"job kind must be one of {list(JOB_KINDS)}, got {kind!r}")
    name = raw.get("name", "")
    _require(isinstance(name, str), f"name must be a string, got {name!r}")
    schema = _schema(kind)
    unknown = sorted(set(raw) - set(schema) - {"kind", "name"})
    _require(not unknown,
             f"unknown field(s) {unknown} for job kind {kind!r}; "
             f"known: {sorted(schema)}")
    params = {}
    for key, (default, check) in sorted(schema.items()):
        params[key] = check(raw[key]) if key in raw else default
    return JobSpec(kind=kind, params=params, name=name)


# ----------------------------------------------------------------------
# Loading specs from disk
# ----------------------------------------------------------------------
def _parse_spec_text(text: str, source: str) -> object:
    stripped = text.lstrip()
    if stripped.startswith(("{", "[")):
        try:
            return json.loads(text)
        except json.JSONDecodeError as exc:
            raise JobSpecError(f"{source}: invalid JSON: {exc}") from None
    try:
        import yaml
    except ImportError:  # pragma: no cover - yaml is in the test image
        raise JobSpecError(
            f"{source}: not JSON and PyYAML is unavailable; "
            f"write the spec as JSON"
        ) from None
    try:
        return yaml.safe_load(text)
    except yaml.YAMLError as exc:
        raise JobSpecError(f"{source}: invalid YAML: {exc}") from None


def load_job_specs(path) -> List[JobSpec]:
    """Parse one spec file (YAML or JSON) into validated job specs.

    Accepts a single job mapping, a list of job mappings, or a mapping
    with a ``jobs`` list.  Every spec is validated; the first invalid
    one raises :class:`JobSpecError` naming the file.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise JobSpecError(f"cannot read job spec {path}: {exc}") from None
    data = _parse_spec_text(text, str(path))
    if isinstance(data, dict) and "jobs" in data:
        data = data["jobs"]
    if isinstance(data, dict):
        data = [data]
    if not isinstance(data, list) or not data:
        raise JobSpecError(
            f"{path}: expected a job mapping, a list of jobs or "
            f"{{'jobs': [...]}}, got {type(data).__name__}"
        )
    specs = []
    for index, raw in enumerate(data):
        try:
            specs.append(validate_job_spec(raw))
        except JobSpecError as exc:
            raise JobSpecError(f"{path} (job {index}): {exc}") from None
    return specs
