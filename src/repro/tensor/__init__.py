"""Tensor metadata substrate: shape/category/dtype descriptors.

The static analysis side of this library (memory planning, liveness, the
Gist schedule builder) never materialises real arrays — it reasons about
:class:`~repro.tensor.spec.TensorSpec` objects, which carry exactly the
information the CNTK allocator would have used: a shape, a storage dtype and
a data-structure category.
"""

from repro.tensor.categories import TensorCategory
from repro.tensor.spec import TensorSpec

__all__ = ["TensorCategory", "TensorSpec"]
