"""Data-structure categories used for memory breakdown analysis.

These mirror the classes in Figure 1 of the paper.  ``FEATURE_MAP`` is
later refined by liveness analysis into *stashed* (also read in the
backward pass) versus *immediately consumed* (dead after its forward use);
that refinement lives in :mod:`repro.memory.planner`, not here, because it
is a property of the schedule, not of the tensor itself.
"""

from __future__ import annotations

import enum


class TensorCategory(enum.Enum):
    """Coarse data-structure class for a tensor in the training timeline."""

    WEIGHT = "weight"
    WEIGHT_GRAD = "weight_grad"
    FEATURE_MAP = "feature_map"
    GRADIENT_MAP = "gradient_map"
    WORKSPACE = "workspace"
    #: Compact stashed representation produced by a Gist encoding
    #: (bit-packed Binarize mask, CSR arrays, packed DPR words, argmax map).
    ENCODED = "encoded"
    #: Small per-layer saved state (e.g. batch-norm statistics, dropout
    #: masks) that must survive until the backward pass but is not a
    #: feature map.
    SAVED_STATE = "saved_state"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value
