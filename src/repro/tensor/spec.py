"""Shape/dtype/category descriptor for a tensor in the execution graph."""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Tuple

from repro.dtypes import FP32, DType
from repro.tensor.categories import TensorCategory


@dataclass(frozen=True)
class TensorSpec:
    """Immutable description of one tensor (no data, just metadata).

    Attributes:
        name: Unique, human-readable identifier (e.g. ``"conv1_1.out"``).
        shape: Logical shape.  Feature maps use NCHW; weights use layer
            conventions; 1-D shapes are fine for packed encodings.
        dtype: Storage format — see :mod:`repro.dtypes`.
        category: Data-structure class for breakdown reporting.
    """

    name: str
    shape: Tuple[int, ...]
    dtype: DType = FP32
    category: TensorCategory = TensorCategory.FEATURE_MAP

    def __post_init__(self) -> None:
        if not self.shape:
            raise ValueError(f"tensor {self.name!r} must have a non-empty shape")
        if any(d <= 0 for d in self.shape):
            raise ValueError(f"tensor {self.name!r} has non-positive dim: {self.shape}")

    @property
    def num_elements(self) -> int:
        """Total number of logical elements."""
        return math.prod(self.shape)

    @property
    def size_bytes(self) -> int:
        """Bytes this tensor occupies in its storage format."""
        return self.dtype.size_bytes(self.num_elements)

    def with_dtype(self, dtype: DType, suffix: str = "") -> "TensorSpec":
        """A copy of this spec in a different storage format.

        Args:
            dtype: New storage format.
            suffix: Appended to the name to keep specs distinguishable,
                e.g. ``".enc"``.
        """
        return replace(self, dtype=dtype, name=self.name + suffix)

    def with_category(self, category: TensorCategory) -> "TensorSpec":
        """A copy of this spec in a different breakdown category."""
        return replace(self, category=category)

    def __str__(self) -> str:
        dims = "x".join(str(d) for d in self.shape)
        return f"{self.name}[{dims}:{self.dtype.name}]"
