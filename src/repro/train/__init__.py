"""NumPy training runtime: executor, stash policies, trainer, datasets."""

from repro.train.data import (
    Dataset,
    make_synthetic,
    make_synthetic_for,
    make_synthetic_sequences,
    minibatches,
)
from repro.train.executor import GraphExecutor
from repro.train.metrics import accuracy, accuracy_loss
from repro.train.optimizer import SGD
from repro.train.stash import (
    AllFP16Policy,
    GradientOnlyReductionPolicy,
    BaselinePolicy,
    GistPolicy,
    HybridExecutionPolicy,
    StashPolicy,
    UniformReductionPolicy,
)
from repro.train.trainer import (
    SparsitySample,
    Trainer,
    TrainResult,
    feature_map_elements,
)

__all__ = [
    "AllFP16Policy",
    "BaselinePolicy",
    "Dataset",
    "GistPolicy",
    "GradientOnlyReductionPolicy",
    "GraphExecutor",
    "HybridExecutionPolicy",
    "SGD",
    "SparsitySample",
    "StashPolicy",
    "UniformReductionPolicy",
    "TrainResult",
    "Trainer",
    "accuracy",
    "accuracy_loss",
    "feature_map_elements",
    "make_synthetic",
    "make_synthetic_for",
    "make_synthetic_sequences",
    "minibatches",
]
