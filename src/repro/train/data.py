"""Synthetic classification datasets (images and sequences).

Substitution record (DESIGN.md §2): the paper trains on ImageNet; NumPy on
CPU cannot.  The accuracy phenomena Figure 12 demonstrates — forward-pass
quantisation error compounding across layers versus backward-only DPR
error being absorbed by SGD — depend on backprop through deep conv stacks,
not on the dataset.  We use a deterministic synthetic task: each class is
a smooth random template; samples are the template plus noise.  It is
learnable (baseline reaches high accuracy in a few epochs) yet non-trivial
(noise forces real feature learning), and fully reproducible from a seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class Dataset:
    """Inputs (N, C, H, W) images or (N, T, F) sequences, float32, plus
    integer labels (N,).

    ``num_classes`` is stored explicitly: inferring it from
    ``labels.max() + 1`` underreports whenever a split happens to miss
    the top class (easy with small random test splits).  When omitted it
    falls back to the inferred value for hand-built datasets.
    """

    images: np.ndarray
    labels: np.ndarray
    num_classes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.images.shape[0] != self.labels.shape[0]:
            raise ValueError(
                f"{self.images.shape[0]} images but {self.labels.shape[0]} labels"
            )
        if self.num_classes is None:
            inferred = int(self.labels.max()) + 1 if self.labels.size else 0
            object.__setattr__(self, "num_classes", inferred)
        elif self.labels.size and int(self.labels.max()) >= self.num_classes:
            raise ValueError(
                f"label {int(self.labels.max())} out of range for "
                f"{self.num_classes} classes"
            )

    @property
    def num_samples(self) -> int:
        return self.images.shape[0]


def _smooth_template(
    rng: np.random.Generator, channels: int, size: int, grid: int = 4
) -> np.ndarray:
    """A smooth random pattern: coarse noise upsampled bilinearly."""
    coarse = rng.normal(0.0, 1.0, (channels, grid, grid))
    # Bilinear upsample by separable linear interpolation.
    src = np.linspace(0, grid - 1, size)
    i0 = np.floor(src).astype(int)
    i1 = np.minimum(i0 + 1, grid - 1)
    w = (src - i0)[None, :]
    rows = coarse[:, i0, :] * (1 - w.T[None, :, :]) + coarse[:, i1, :] * w.T[None, :, :]
    out = rows[:, :, i0] * (1 - w[None, :, :]) + rows[:, :, i1] * w[None, :, :]
    return out.astype(np.float32)


def make_synthetic(
    num_samples: int = 512,
    num_classes: int = 4,
    image_size: int = 32,
    channels: int = 3,
    noise: float = 0.6,
    seed: int = 0,
) -> Tuple[Dataset, Dataset]:
    """Build (train, test) splits of the synthetic classification task.

    Args:
        num_samples: Training set size; the test split is a quarter of it.
        num_classes: Number of template classes.
        image_size: Square image side.
        channels: Image channels.
        noise: Per-pixel Gaussian noise sigma added to the class template.
        seed: Master seed — everything is deterministic given it.
    """
    if num_samples < num_classes:
        raise ValueError("need at least one sample per class")
    # Independent child streams for templates/train/test: drawing the
    # test split from the tail of one shared stream made the test data a
    # function of num_samples, so "same seed, bigger training set"
    # silently changed the evaluation data.
    template_seq, train_seq, test_seq = np.random.SeedSequence(seed).spawn(3)
    template_rng = np.random.default_rng(template_seq)
    templates = [
        _smooth_template(template_rng, channels, image_size)
        for _ in range(num_classes)
    ]

    def sample_split(n: int, rng: np.random.Generator) -> Dataset:
        # Every class appears at least once (a permutation of all
        # classes, then uniform draws, shuffled together), so the split
        # is usable for num_classes-way evaluation at any size >= classes.
        labels = np.concatenate([
            rng.permutation(num_classes),
            rng.integers(0, num_classes, n - num_classes),
        ])
        labels = rng.permutation(labels)
        images = np.stack([templates[c] for c in labels])
        images += rng.normal(0.0, noise, images.shape).astype(np.float32)
        return Dataset(images.astype(np.float32), labels.astype(np.int64),
                       num_classes=num_classes)

    return (
        sample_split(num_samples, np.random.default_rng(train_seq)),
        sample_split(max(num_samples // 4, num_classes),
                     np.random.default_rng(test_seq)),
    )


def _smooth_sequence_template(
    rng: np.random.Generator, seq_len: int, input_size: int, grid: int = 4
) -> np.ndarray:
    """A smooth random (T, F) pattern: coarse noise upsampled along time."""
    coarse = rng.normal(0.0, 1.0, (grid, input_size))
    src = np.linspace(0, grid - 1, seq_len)
    i0 = np.floor(src).astype(int)
    i1 = np.minimum(i0 + 1, grid - 1)
    w = (src - i0)[:, None]
    return (coarse[i0] * (1 - w) + coarse[i1] * w).astype(np.float32)


def make_synthetic_sequences(
    num_samples: int = 512,
    num_classes: int = 4,
    seq_len: int = 12,
    input_size: int = 32,
    noise: float = 0.6,
    seed: int = 0,
) -> Tuple[Dataset, Dataset]:
    """Build (train, test) splits of a synthetic sequence task.

    The recurrent analogue of :func:`make_synthetic`: each class is a
    smooth random (T, F) template (coarse noise linearly upsampled along
    time, so class identity is spread across the *whole* sequence and a
    recurrent model must integrate over timesteps), and samples are
    template plus per-element Gaussian noise.  Same child-stream
    discipline: templates/train/test draw from independent streams, so
    the test data does not depend on ``num_samples``.
    """
    if num_samples < num_classes:
        raise ValueError("need at least one sample per class")
    template_seq, train_seq, test_seq = np.random.SeedSequence(seed).spawn(3)
    template_rng = np.random.default_rng(template_seq)
    templates = [
        _smooth_sequence_template(template_rng, seq_len, input_size)
        for _ in range(num_classes)
    ]

    def sample_split(n: int, rng: np.random.Generator) -> Dataset:
        labels = np.concatenate([
            rng.permutation(num_classes),
            rng.integers(0, num_classes, n - num_classes),
        ])
        labels = rng.permutation(labels)
        sequences = np.stack([templates[c] for c in labels])
        sequences += rng.normal(0.0, noise, sequences.shape).astype(np.float32)
        return Dataset(sequences.astype(np.float32), labels.astype(np.int64),
                       num_classes=num_classes)

    return (
        sample_split(num_samples, np.random.default_rng(train_seq)),
        sample_split(max(num_samples // 4, num_classes),
                     np.random.default_rng(test_seq)),
    )


def make_synthetic_for(
    input_shape: Tuple[int, ...],
    num_samples: int = 512,
    num_classes: int = 4,
    noise: float = 0.6,
    seed: int = 0,
) -> Tuple[Dataset, Dataset]:
    """Dispatch on a graph input shape: images for rank 4, sequences for
    rank 3.

    Passes identical arguments through, so rank-4 shapes produce
    byte-identical data to calling :func:`make_synthetic` directly (the
    invariant that keeps pre-existing golden digests stable).
    """
    if len(input_shape) == 4:
        _, channels, size, size_w = input_shape
        if size != size_w:
            raise ValueError(f"non-square image input {input_shape}")
        return make_synthetic(num_samples=num_samples,
                              num_classes=num_classes, image_size=size,
                              channels=channels, noise=noise, seed=seed)
    if len(input_shape) == 3:
        _, seq_len, input_size = input_shape
        return make_synthetic_sequences(num_samples=num_samples,
                                        num_classes=num_classes,
                                        seq_len=seq_len,
                                        input_size=input_size,
                                        noise=noise, seed=seed)
    raise ValueError(f"no synthetic task for rank-{len(input_shape)} "
                     f"input {input_shape}")


def minibatches(
    dataset: Dataset,
    batch_size: int,
    rng: np.random.Generator,
    drop_last: bool = True,
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Shuffled minibatch iterator over one epoch."""
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    order = rng.permutation(dataset.num_samples)
    for start in range(0, dataset.num_samples, batch_size):
        idx = order[start : start + batch_size]
        if drop_last and idx.size < batch_size:
            return
        yield dataset.images[idx], dataset.labels[idx]
