"""NumPy training executor with encoding-aware stashing.

Runs a training graph forward and backward, routing every stashed feature
map through the active :class:`~repro.train.stash.StashPolicy`.  With the
baseline policy this computes exact FP32 gradients (verified by the
numerical gradient-check tests); with a Gist policy the backward pass
reads decoded representations — bit-identical for Binarize/SSDC, rounded
for DPR — exactly as the paper's modified CNTK does.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.encodings.base import Encoding
from repro.graph.graph import Graph
from repro.graph.node import OpNode

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.diagnostics.invariants import InvariantSuite
    from repro.diagnostics.tracer import StepTracer
from repro.kernels import WorkspaceArena, plans_enabled
from repro.layers.base import OpContext
from repro.layers.loss import SoftmaxCrossEntropy
from repro.train.stash import BaselinePolicy, StashPolicy

#: Node kinds whose outputs are sparsity-tracked each forward pass.
_SPARSITY_KINDS = {"relu", "maxpool", "conv_relu"}


class _Context(OpContext):
    """Per-node bridge wired to the executor's stash store."""

    def __init__(self, executor: "GraphExecutor", node: OpNode):
        self._executor = executor
        self._node = node
        self._state: Dict[str, np.ndarray] = {}

    def save_state(self, key: str, value: np.ndarray) -> None:
        self._state[key] = value

    def get_state(self, key: str) -> np.ndarray:
        try:
            return self._state[key]
        except KeyError:
            raise KeyError(
                f"{self._node.name}: no saved state {key!r}; was forward run?"
            ) from None

    def stashed_input(self, index: int = 0) -> np.ndarray:
        return self._executor.stashed_value(self._node.inputs[index])

    def stashed_output(self) -> np.ndarray:
        return self._executor.stashed_value(self._node.node_id)

    def stashed_input_lossless(self, index: int = 0) -> bool:
        entry = self._executor._stash.get(self._node.inputs[index])
        return entry is not None and entry[0].lossless

    @property
    def kernels_enabled(self) -> bool:
        """Whether this executor runs the shape-static kernel plans."""
        return self._executor.kernels_enabled

    @property
    def arena(self) -> WorkspaceArena:
        """The executor's per-instance workspace arena."""
        return self._executor.arena

    @property
    def kernel_backend(self) -> Optional[str]:
        """Per-executor backend override (wins over env and autotuner)."""
        return self._executor.kernel_backend


class GraphExecutor:
    """Forward/backward engine over a training graph.

    Args:
        graph: The execution graph (must end in a loss node).
        policy: Stash policy (defaults to the FP32 baseline).
        seed: Parameter-initialisation seed.
        use_kernel_plans: Run the shape-static plan-cache + arena kernels
            (``None`` defers to the global ``REPRO_KERNEL_PLANS`` switch).
            Disabling restores the original per-call kernels for A/B runs.
        arena: Workspace arena to rent scratch buffers from.  Each
            executor owns one by default; it is reset at the start of
            every forward pass, so arrays returned by ``backward`` (input
            gradients) are only valid until the next step begins.
        tracer: Optional :class:`~repro.diagnostics.tracer.StepTracer`
            observing this executor.  Every hook site is guarded by a
            single ``is not None`` check, so a detached tracer (the
            default) leaves the hot path untouched.
        kernel_backend: Force a registered kernel backend by name for
            every op this executor dispatches (e.g. ``"reference"`` or
            ``"blas-fat"``).  Wins over ``REPRO_KERNEL_BACKEND`` and the
            measured autotuner; ops that do not register the name fall
            back to their normal selection.
    """

    def __init__(self, graph: Graph, policy: Optional[StashPolicy] = None,
                 seed: int = 0, use_kernel_plans: Optional[bool] = None,
                 arena: Optional[WorkspaceArena] = None,
                 tracer: Optional["StepTracer"] = None,
                 kernel_backend: Optional[str] = None):
        self.graph = graph
        self.policy = policy or BaselinePolicy()
        self.tracer = tracer
        self._invariants = None
        self.kernels_enabled = (
            plans_enabled() if use_kernel_plans is None
            else bool(use_kernel_plans)
        )
        self.kernel_backend = kernel_backend
        self.arena = (
            arena if arena is not None
            else WorkspaceArena(enabled=self.kernels_enabled)
        )
        rng = np.random.default_rng(seed)
        self.params: Dict[int, Dict[str, np.ndarray]] = {}
        for node in graph.nodes:
            self.params[node.node_id] = node.layer.init_params(
                node.input_shapes(graph), rng
            )
        self._loss_node = graph.node(graph.output_id)
        if not isinstance(self._loss_node.layer, SoftmaxCrossEntropy):
            raise ValueError(
                f"graph output must be a SoftmaxCrossEntropy loss, "
                f"got {self._loss_node.kind!r}"
            )
        self._stash: Dict[int, Tuple[Encoding, object]] = {}
        self._decoded: Dict[int, np.ndarray] = {}
        self._ctx: Dict[int, _Context] = {}
        self.last_logits: Optional[np.ndarray] = None
        self.last_sparsity: Dict[str, float] = {}
        # Layers carry mutable state (Dropout's mask RNG) that outlives an
        # executor when graphs are reused.  Rewinding here makes a second
        # executor on the same graph byte-identical to the first, instead
        # of silently resuming the previous executor's streams.
        self.reset_layer_state()

    # ------------------------------------------------------------------
    def reset_layer_state(
        self, seed_sequence: Optional[np.random.SeedSequence] = None
    ) -> None:
        """Reset every layer's mutable state (RNG streams).

        With ``seed_sequence=None`` each stateful layer rewinds to its
        construction seed.  With a :class:`~numpy.random.SeedSequence`,
        one child is spawned per graph node (in graph order, so the split
        is independent of which layers happen to be stateful) and handed
        to that node's layer — this is how data-parallel replicas install
        per-(step, shard) mask streams.
        """
        children = (
            [None] * len(self.graph.nodes) if seed_sequence is None
            else seed_sequence.spawn(len(self.graph.nodes))
        )
        for node, child in zip(self.graph.nodes, children):
            rng = None if child is None else np.random.default_rng(child)
            node.layer.reset_state(rng)

    # ------------------------------------------------------------------
    def parameters(self) -> Dict[str, np.ndarray]:
        """Flat view of all learnable parameters, keyed ``node.param``."""
        flat: Dict[str, np.ndarray] = {}
        for node in self.graph.nodes:
            for pname, arr in self.params[node.node_id].items():
                flat[f"{node.name}.{pname}"] = arr
        return flat

    def _recompute_directive(self, node_id: int):
        # ``recompute_directive`` is an optional StashPolicy hook; external
        # policies duck-typed against the protocol (e.g. GroupQuantPolicy)
        # may not define it.
        hook = getattr(self.policy, "recompute_directive", None)
        return None if hook is None else hook(node_id)

    def _shared_concat_directive(self, node_id: int):
        # Optional StashPolicy hook, same protocol caveat as above.
        hook = getattr(self.policy, "shared_concat_directive", None)
        return None if hook is None else hook(node_id)

    def stashed_value(self, node_id: int) -> np.ndarray:
        """Decode (with caching) the stashed feature map of ``node_id``."""
        checks = self._invariants
        if checks is not None:
            checks.on_stash_read(node_id)
        if node_id in self._decoded:
            return self._decoded[node_id]
        try:
            encoding, encoded = self._stash[node_id]
        except KeyError:
            directive = self._recompute_directive(node_id)
            if directive is not None:
                return self._materialize_recompute(node_id, directive)
            shared = self._shared_concat_directive(node_id)
            if shared is not None:
                return self._materialize_shared_concat(node_id, shared)
            name = self.graph.node(node_id).name
            raise KeyError(f"feature map of {name!r} was not stashed") from None
        tracer = self.tracer
        if tracer is not None:
            t0 = perf_counter()
            value = encoding.decode(encoded)
            tracer.record_decode(self.graph.node(node_id).name, encoding.name,
                                 value.nbytes, perf_counter() - t0)
        else:
            value = encoding.decode(encoded)
        if checks is not None:
            checks.on_decoded(node_id, encoding, value)
        self._decoded[node_id] = value
        return value

    def stashed_node_ids(self) -> List[int]:
        """Node ids with a live stash entry (after a forward pass)."""
        return list(self._stash)

    def enable_invariants(self, round_trip: bool = True,
                          liveness: bool = True,
                          aliasing: bool = True) -> "InvariantSuite":
        """Attach runtime invariant checkers to this executor.

        Builds an :class:`~repro.diagnostics.invariants.InvariantSuite`
        bound to this executor (replacing any previous suite) and returns
        it.  Checkers raise
        :class:`~repro.diagnostics.invariants.InvariantViolation` at the
        faulty event; see the suite's docs for the three invariants.
        """
        from repro.diagnostics.invariants import InvariantSuite

        self._invariants = InvariantSuite(
            self, round_trip=round_trip, liveness=liveness, aliasing=aliasing
        )
        return self._invariants

    def stash_bytes(self) -> Dict[str, int]:
        """Measured stash footprint per node after a forward pass."""
        out: Dict[str, int] = {}
        for node_id, (encoding, encoded) in self._stash.items():
            out[self.graph.node(node_id).name] = encoding.measure_bytes(encoded)
        return out

    # ------------------------------------------------------------------
    def _runtime_needs_stash(self, node: OpNode) -> bool:
        if _runtime_needs_output(node):
            return True
        return any(
            _runtime_needs_input(c) for c in self.graph.consumers(node.node_id)
        )

    def forward(self, images: np.ndarray, labels: np.ndarray,
                train: bool = True) -> float:
        """Run the forward pass; returns the scalar loss."""
        expected = self.graph.node(self.graph.input_id).output_shape
        if tuple(images.shape) != tuple(expected):
            raise ValueError(
                f"input shape {images.shape} does not match graph input "
                f"{expected}"
            )
        self._stash.clear()
        self._decoded.clear()
        self._ctx.clear()
        tracer = self.tracer
        checks = self._invariants
        if checks is not None:
            # Clear stale stash regions/expectations before the arena makes
            # last step's buffers rentable again.
            checks.begin_step()
        # Step boundary: everything rented last step (gradients, encoded
        # stashes, scratch) is dead now, so the pool can recycle it.
        self.arena.reset()
        if tracer is not None:
            tracer.begin_step(self.arena)
        self.last_sparsity = {}
        self._loss_node.layer.set_labels(labels)

        values: Dict[int, np.ndarray] = {
            self.graph.input_id: images.astype(np.float32, copy=False)
        }
        if checks is not None:
            checks.on_forward(self.graph.node(self.graph.input_id))
        self._maybe_stash(self.graph.node(self.graph.input_id),
                          values[self.graph.input_id])
        loss = 0.0
        for node in self.graph.nodes:
            if node.node_id == self.graph.input_id:
                continue
            ctx = _Context(self, node)
            self._ctx[node.node_id] = ctx
            xs = [values[i] for i in node.inputs]
            if checks is not None:
                checks.on_forward(node)
            # Marked by the inplace rewrite pass: the sole consumer of an
            # unstashed map computes into the producer's buffer.  Only a
            # C-contiguous buffer qualifies at runtime: the out-of-place op
            # would return a fresh contiguous array, and numpy's pairwise
            # reductions (e.g. batch-norm statistics downstream) sum in a
            # layout-dependent order, so writing into a strided view (conv
            # kernels may return transposed einsum views) would break
            # bit-identity with the unrewritten graph.
            run_inplace = node.inplace and xs[0].flags["C_CONTIGUOUS"]
            if tracer is not None:
                t0 = perf_counter()
                if run_inplace:
                    y = node.layer.forward_inplace(
                        xs[0], self.params[node.node_id], ctx, train
                    )
                else:
                    y = node.layer.forward(xs, self.params[node.node_id],
                                           ctx, train)
                tracer.record_node(node.name, "forward",
                                   perf_counter() - t0)
            elif run_inplace:
                y = node.layer.forward_inplace(
                    xs[0], self.params[node.node_id], ctx, train
                )
            else:
                y = node.layer.forward(xs, self.params[node.node_id], ctx,
                                       train)
            y = self.policy.transform_forward(y, node)
            values[node.node_id] = y
            if node.kind in _SPARSITY_KINDS:
                # count_nonzero avoids materialising a boolean temporary.
                self.last_sparsity[node.name] = (
                    1.0 - np.count_nonzero(y) / y.size
                )
            if node.node_id == self.graph.output_id:
                loss = float(y[0])
            else:
                self._maybe_stash(node, y)
            if node.inputs == [self.graph.output_id]:
                raise AssertionError("loss output consumed by another op")
        # Keep the logits (the loss node's input) for accuracy metrics.
        self.last_logits = values[self._loss_node.inputs[0]]
        if tracer is not None:
            tracer.record_loss(loss)
        return loss

    def _materialize_recompute(self, node_id: int, directive) -> np.ndarray:
        """Rebuild a dropped stash by replaying its forward chain.

        Re-executes the directive's chain from the source's stashed value
        with throwaway per-node contexts (the original forward contexts —
        saved argmax maps, masks — stay untouched for the chain members'
        own backward ops).  Parameters have not changed since the forward
        pass, and chains exclude RNG/state-mutating layers, so the rebuilt
        value is bit-identical to the dropped one.  Cached in the decoded
        store, so each chain replays at most once per backward pass.
        """
        x = self.stashed_value(directive.source_id)
        tracer = self.tracer
        t0 = perf_counter() if tracer is not None else 0.0
        for chain_id in directive.chain:
            node = self.graph.node(chain_id)
            ctx = _Context(self, node)
            x = node.layer.forward([x], self.params[chain_id], ctx, True)
            x = self.policy.transform_forward(x, node)
        if tracer is not None:
            tracer.record_decode(self.graph.node(node_id).name, "recompute",
                                 x.nbytes, perf_counter() - t0)
        self._decoded[node_id] = x
        return x

    def _materialize_shared_concat(self, node_id: int,
                                   directive) -> np.ndarray:
        """Rebuild a dropped stash as a prefix of its concat terminal.

        ``np.concatenate`` copies its first argument to the front of the
        result, so along an ``inputs[0]``-linked concat chain the
        terminal's leading channels *are* the member's output, bit for
        bit.  The contiguous staging copy is what the member's consumers
        read in their backward ops; cached so the slice is cut at most
        once per backward pass.
        """
        base = self.stashed_value(directive.source_id)
        tracer = self.tracer
        t0 = perf_counter() if tracer is not None else 0.0
        value = np.ascontiguousarray(base[:, : directive.channels])
        if tracer is not None:
            tracer.record_decode(self.graph.node(node_id).name,
                                 "shared-concat", value.nbytes,
                                 perf_counter() - t0)
        self._decoded[node_id] = value
        return value

    def _maybe_stash(self, node: OpNode, y: np.ndarray) -> None:
        if not self._runtime_needs_stash(node):
            return
        if self._recompute_directive(node.node_id) is not None:
            # A hybrid recompute decision: the map is dropped after its
            # last forward use and rebuilt on demand in the backward pass.
            return
        if self._shared_concat_directive(node.node_id) is not None:
            # A shared-concat decision: the map is a prefix of its chain
            # terminal's kept stash and is re-sliced on demand.
            return
        encoding = self.policy.encoding_for(self.graph, node.node_id)
        encoding.bind_arena(self.arena if self.kernels_enabled else None)
        tracer = self.tracer
        if tracer is not None:
            t0 = perf_counter()
            encoded = encoding.encode(y)
            tracer.record_encode(node.name, encoding.name, y.nbytes,
                                 encoding.measure_bytes(encoded),
                                 perf_counter() - t0)
        else:
            encoded = encoding.encode(y)
        if self._invariants is not None:
            self._invariants.on_stash_encoded(node, y, encoding, encoded)
        self._stash[node.node_id] = (encoding, encoded)

    def backward(self) -> Dict[str, np.ndarray]:
        """Run the backward pass; returns flat parameter gradients."""
        if self.last_logits is None:
            raise RuntimeError("backward() called before forward()")
        grads_out: Dict[int, np.ndarray] = {
            self.graph.output_id: np.ones(1, dtype=np.float32)
        }
        # Node ids whose grads_out entry is an executor-owned accumulation
        # buffer, safe to add into in place.  Layer-returned gradients may
        # be views (or shared between fan-out edges), so the first fan-in
        # join copies into an owned buffer and later joins reuse it.
        owned: set = set()
        param_grads: Dict[str, np.ndarray] = {}
        self._decoded.clear()
        tracer = self.tracer
        checks = self._invariants
        for node in reversed(self.graph.nodes):
            if node.node_id == self.graph.input_id:
                continue
            dy = grads_out.pop(node.node_id, None)
            if dy is None:
                # Node not on the loss path (cannot happen for our models,
                # but a disconnected diagnostics op would land here).
                continue
            if checks is not None:
                checks.on_backward(node)
            if tracer is not None:
                t0 = perf_counter()
                dxs, dparams = node.layer.backward(
                    dy, self.params[node.node_id], self._ctx[node.node_id]
                )
                tracer.record_node(node.name, "backward",
                                   perf_counter() - t0)
            else:
                dxs, dparams = node.layer.backward(
                    dy, self.params[node.node_id], self._ctx[node.node_id]
                )
            if len(dxs) != len(node.inputs):
                raise RuntimeError(
                    f"{node.name}: backward returned {len(dxs)} gradients "
                    f"for {len(node.inputs)} inputs"
                )
            for input_id, dx in zip(node.inputs, dxs):
                dx = self.policy.transform_gradient(dx, node)
                prev = grads_out.get(input_id)
                if prev is None:
                    grads_out[input_id] = dx
                elif input_id in owned:
                    np.add(prev, dx, out=prev)
                else:
                    acc = self.arena.rent(
                        prev.shape, np.result_type(prev.dtype, dx.dtype)
                    )
                    np.add(prev, dx, out=acc)
                    grads_out[input_id] = acc
                    owned.add(input_id)
            for pname, grad in dparams.items():
                param_grads[f"{node.name}.{pname}"] = grad
        self.input_gradient = grads_out.get(self.graph.input_id)
        if checks is not None:
            checks.end_step()
        if tracer is not None:
            tracer.end_step(self.arena)
        return param_grads

    # ------------------------------------------------------------------
    def predict(self, images: np.ndarray) -> np.ndarray:
        """Inference logits for a batch matching the graph's input shape."""
        dummy = np.zeros(images.shape[0], dtype=np.int64)
        self.forward(images, dummy, train=False)
        assert self.last_logits is not None
        return self.last_logits


def _runtime_needs_input(node: OpNode) -> bool:
    override = getattr(node.layer, "runtime_backward_needs_input", None)
    if override is not None:
        return override
    return node.layer.backward_needs_input


def _runtime_needs_output(node: OpNode) -> bool:
    override = getattr(node.layer, "runtime_backward_needs_output", None)
    if override is not None:
        return override
    return node.layer.backward_needs_output
