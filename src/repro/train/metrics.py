"""Training metrics."""

from __future__ import annotations

import math

import numpy as np


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy of logits (N, classes) against integer labels (N,)."""
    if logits.shape[0] != labels.shape[0]:
        raise ValueError(
            f"batch mismatch: {logits.shape[0]} logits, {labels.shape[0]} labels"
        )
    return float((logits.argmax(axis=1) == labels).mean())


def accuracy_loss(acc: float) -> float:
    """The paper's Figure 12 y-axis: ``100% - accuracy`` as a fraction.

    Values within one ulp outside [0, 1] — exact-arithmetic artifacts such
    as ``mean()`` of per-batch accuracies returning 1.0000000000000002 —
    are clamped to the boundary; anything further out is still rejected.
    """
    ulp = math.ulp(1.0)
    if 1.0 < acc <= 1.0 + ulp:
        acc = 1.0
    elif -ulp <= acc < 0.0:
        acc = 0.0
    if not 0.0 <= acc <= 1.0:
        raise ValueError(f"accuracy must be in [0, 1], got {acc}")
    return 1.0 - acc
