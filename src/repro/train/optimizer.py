"""Optimisers for the NumPy training runtime."""

from __future__ import annotations

from typing import Dict

import numpy as np


class SGD:
    """Stochastic gradient descent with momentum and weight decay.

    Updates parameters *in place* so that long-lived references (e.g.
    batch-norm running-statistics keys) remain valid across steps.
    """

    def __init__(self, lr: float = 0.05, momentum: float = 0.9,
                 weight_decay: float = 0.0):
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[str, np.ndarray] = {}

    def step(self, params: Dict[str, np.ndarray],
             grads: Dict[str, np.ndarray]) -> None:
        """Apply one update; ``grads`` keys must match ``params`` keys."""
        for name, grad in grads.items():
            if name not in params:
                raise KeyError(f"gradient for unknown parameter {name!r}")
            p = params[name]
            g = grad
            if self.weight_decay:
                g = g + self.weight_decay * p
            if self.momentum:
                v = self._velocity.get(name)
                if v is None:
                    v = np.zeros_like(p)
                    self._velocity[name] = v
                v *= self.momentum
                v += g
                g = v
            p -= self.lr * g

    def set_lr(self, lr: float) -> None:
        """Adjust the learning rate (step-decay schedules)."""
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        self.lr = lr
