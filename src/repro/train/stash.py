"""Runtime stash policies: what actually gets stored between passes.

The executor routes every stashed feature map through a policy:

* :class:`BaselinePolicy` — FP32 references, no transformation (the CNTK
  baseline, and the exact-gradient path used by the gradient-check tests).
* :class:`GistPolicy` — per-edge encodings chosen by the same classifier
  the Schedule Builder uses: Binarize for ReLU-Pool maps, SSDC for
  ReLU-Conv maps, DPR for the rest.  Lossless edges reconstruct exactly;
  DPR edges inject precisely the quantisation error the paper's Figure 12
  accuracy study measures.
* :class:`AllFP16Policy` — the prior-work baseline: quantise every layer
  output *in the forward pass*, so error propagates through subsequent
  layers (the curve that diverges in Figure 12).
* :class:`HybridExecutionPolicy` — executes a hybrid planner decision
  table (:class:`~repro.memory.hybrid.HybridPlan`): gist choices get
  their codec, swap choices a host-buffer copy, recompute choices a
  directive the executor replays in the backward pass.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional, TYPE_CHECKING

import numpy as np

from repro.core.analysis import (
    STASH_RELU_CONV,
    STASH_RELU_POOL,
    classify_all_stashes,
)
from repro.core.policy import GistConfig
from repro.dtypes import DPR_FORMATS, FP16
from repro.encodings.base import Encoding, HostSwapEncoding, IdentityEncoding
from repro.encodings.binarize import BinarizeEncoding
from repro.encodings.dpr import DPREncoding
from repro.encodings.floatsim import quantize
from repro.encodings.ssdc import SSDCEncoding
from repro.graph.graph import Graph
from repro.graph.node import OpNode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.memory.hybrid import (
        HybridPlan,
        RecomputeDirective,
        SharedConcatDirective,
    )


class StashPolicy(abc.ABC):
    """Chooses the stash encoding per feature-map edge."""

    @abc.abstractmethod
    def encoding_for(self, graph: Graph, node_id: int) -> Encoding:
        """Encoding for the feature map produced by ``node_id``."""

    def describe(self) -> str:
        """Short policy label used in traces, digests and reports."""
        return type(self).__name__.lower()

    def transform_forward(self, y: np.ndarray, node: OpNode) -> np.ndarray:
        """Hook applied to every layer output before consumers see it."""
        return y

    def transform_gradient(self, dx: np.ndarray, node: OpNode) -> np.ndarray:
        """Hook applied to every gradient map a backward op produces."""
        return dx

    def recompute_directive(
        self, node_id: int
    ) -> "Optional[RecomputeDirective]":
        """Rebuild instruction for ``node_id``'s stash, or ``None``.

        When set, the executor skips stashing the node's output in the
        forward pass and re-executes the directive's chain on the first
        backward read instead.  Only :class:`HybridExecutionPolicy`
        returns directives.
        """
        return None

    def shared_concat_directive(
        self, node_id: int
    ) -> "Optional[SharedConcatDirective]":
        """Prefix-read instruction for ``node_id``'s stash, or ``None``.

        When set, the executor skips stashing the node's output and
        instead re-slices the leading channels of the directive's concat
        terminal on the first backward read (the DenseNet shared-buffer
        trick — bit-exact because ``np.concatenate`` copies its first
        argument to the front).  Only :class:`HybridExecutionPolicy`
        returns directives.
        """
        return None

    #: If set, the trainer re-quantises every weight to this format after
    #: each optimiser step (uniform-reduction baselines store weights in
    #: the reduced format too).
    param_dtype = None


class BaselinePolicy(StashPolicy):
    """FP32 stashes everywhere — the exact-arithmetic baseline."""

    def __init__(self):
        self._identity = IdentityEncoding()

    def encoding_for(self, graph: Graph, node_id: int) -> Encoding:
        return self._identity

    def describe(self) -> str:
        """Label: ``"baseline"``."""
        return "baseline"


class GistPolicy(StashPolicy):
    """Layer-pair-aware encodings, mirroring the Schedule Builder."""

    def __init__(self, graph: Graph, config: Optional[GistConfig] = None):
        self.config = config or GistConfig()
        cfg = self.config
        dpr_dtype = DPR_FORMATS[cfg.dpr_format]
        self._identity = IdentityEncoding()
        self._binarize = BinarizeEncoding()
        self._ssdc = SSDCEncoding(
            cols=cfg.ssdc_cols,
            value_dtype=dpr_dtype if (cfg.dpr and cfg.dpr_over_ssdc) else None,
        )
        self._dpr = DPREncoding(dpr_dtype, cfg.rounding)
        self._table: Dict[int, Encoding] = {}
        for node_id, info in classify_all_stashes(graph).items():
            if info.stash_class == STASH_RELU_POOL and cfg.binarize:
                self._table[node_id] = self._binarize
            elif info.stash_class == STASH_RELU_CONV and cfg.ssdc:
                self._table[node_id] = self._ssdc
            elif cfg.dpr:
                self._table[node_id] = self._dpr

    def encoding_for(self, graph: Graph, node_id: int) -> Encoding:
        return self._table.get(node_id, self._identity)

    def describe(self) -> str:
        """Label: ``"gist-lossless"`` or ``"gist-<dpr format>"``."""
        if not self.config.dpr:
            return "gist-lossless"
        return f"gist-{self.config.dpr_format}"


class UniformReductionPolicy(StashPolicy):
    """Prior-work uniform reduction: quantise outputs in the forward pass.

    Every layer's output is rounded to the reduced format immediately after
    computation, so the next layer consumes the error — the design choice
    the paper identifies as the cause of severe accuracy loss.  Comparing
    this policy at a given width against :class:`GistPolicy` with DPR at
    the *same* width isolates exactly the paper's delayed-reduction claim.
    """

    def __init__(self, dtype=FP16, quantize_gradients: bool = True,
                 quantize_params: bool = True):
        self.dtype = dtype
        self._identity = IdentityEncoding()
        self.quantize_gradients = quantize_gradients
        self.param_dtype = dtype if quantize_params else None

    def encoding_for(self, graph: Graph, node_id: int) -> Encoding:
        return self._identity  # the stash is already quantised

    def transform_forward(self, y: np.ndarray, node: OpNode) -> np.ndarray:
        if node.kind in ("loss", "input"):
            return y
        return quantize(y, self.dtype)

    def transform_gradient(self, dx: np.ndarray, node: OpNode) -> np.ndarray:
        if not self.quantize_gradients:
            return dx
        return quantize(dx, self.dtype)

    def describe(self) -> str:
        """Label: ``"uniform-<format>"``."""
        return f"uniform-{self.dtype.name}"


class AllFP16Policy(UniformReductionPolicy):
    """The paper's "All-FP16" arm: uniform FP16 in the forward pass."""

    def __init__(self):
        super().__init__(FP16)


class GradientOnlyReductionPolicy(StashPolicy):
    """Reduce precision of *gradient maps only* (paper Section III-B).

    The paper's stepping-stone observation: restricting reduction to the
    backward gradient maps leaves training accuracy intact (unlike uniform
    reduction), which motivates pushing further — DPR extends the idea to
    the stashed feature maps themselves.
    """

    def __init__(self, dtype=FP16):
        self.dtype = dtype
        self._identity = IdentityEncoding()

    def encoding_for(self, graph: Graph, node_id: int) -> Encoding:
        return self._identity

    def transform_gradient(self, dx: np.ndarray, node: OpNode) -> np.ndarray:
        return quantize(dx, self.dtype)

    def describe(self) -> str:
        """Label: ``"grad-only-<format>"``."""
        return f"grad-only-{self.dtype.name}"


class HybridExecutionPolicy(StashPolicy):
    """Executes a hybrid planner decision table at the stash layer.

    Built from a :class:`~repro.memory.hybrid.HybridPlan`:

    * **gist** decisions stash through the decided codec (Binarize /
      SSDC / DPR, configured exactly as :class:`GistPolicy` would);
    * **swap** decisions stash through :class:`HostSwapEncoding` — a
      bit-exact host-buffer copy standing in for the PCIe offload;
    * **recompute** decisions are *not stashed at all*: the executor
      queries :meth:`recompute_directive` and replays the forward chain
      from the directive's source on the first backward read;
    * **shared_concat** decisions are not stashed either: the executor
      queries :meth:`shared_concat_directive` and re-slices the leading
      channels of the chain terminal's kept FP32 stash (bit-exact by the
      concat prefix-copy property);
    * undecided stashes keep the FP32 identity baseline.

    With a lossless plan (the default :class:`~repro.core.policy.
    HybridPolicy` uses ``GistConfig.lossless()``) every path reproduces
    the baseline's backward inputs bit for bit, so losses and gradients
    are bit-identical to :class:`BaselinePolicy` — the property the
    hybrid-execution tests pin with golden digests.
    """

    def __init__(self, plan: "HybridPlan"):
        from repro.core.schedule_builder import ENC_BINARIZE, ENC_SSDC
        from repro.memory.hybrid import CHOICE_GIST, CHOICE_SWAP

        self.plan = plan
        cfg = plan.policy.gist
        dpr_dtype = DPR_FORMATS[cfg.dpr_format]
        self._identity = IdentityEncoding()
        self._swap = HostSwapEncoding()
        self._binarize = BinarizeEncoding()
        self._ssdc = SSDCEncoding(
            cols=cfg.ssdc_cols,
            value_dtype=dpr_dtype if (cfg.dpr and cfg.dpr_over_ssdc) else None,
        )
        self._dpr = DPREncoding(dpr_dtype, cfg.rounding)
        self._directives = plan.recompute_directives()
        self._shared = plan.shared_concat_directives()
        self._table: Dict[int, Encoding] = {}
        for node_id, decision in plan.decisions.items():
            if decision.choice == CHOICE_SWAP:
                self._table[node_id] = self._swap
            elif decision.choice == CHOICE_GIST:
                if decision.encoding == ENC_BINARIZE:
                    self._table[node_id] = self._binarize
                elif decision.encoding == ENC_SSDC:
                    self._table[node_id] = self._ssdc
                else:
                    self._table[node_id] = self._dpr

    def encoding_for(self, graph: Graph, node_id: int) -> Encoding:
        return self._table.get(node_id, self._identity)

    def recompute_directive(self, node_id: int):
        return self._directives.get(node_id)

    def shared_concat_directive(self, node_id: int):
        return self._shared.get(node_id)

    def describe(self) -> str:
        """Label: the plan policy's (``"hybrid"`` / ``"hybrid-<arm>"``)."""
        return self.plan.policy.describe()
