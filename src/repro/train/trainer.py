"""Training loop with accuracy and sparsity instrumentation.

Drives the Figure 12 accuracy study (per-epoch accuracy-loss curves under
different stash policies) and the Figure 14 sensitivity study (per-layer
SSDC compression ratio sampled over training time).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.encodings.ssdc import csr_bytes
from repro.graph.graph import Graph
from repro.train.data import Dataset, minibatches
from repro.train.executor import GraphExecutor
from repro.train.metrics import accuracy
from repro.train.optimizer import SGD
from repro.train.stash import StashPolicy


@dataclass
class SparsitySample:
    """Per-layer sparsity measured at one point in training."""

    minibatch_index: int
    sparsity: Dict[str, float]

    def compression_ratios(self, elements: Dict[str, int]) -> Dict[str, float]:
        """SSDC MFR per layer: dense bytes / narrow-CSR bytes."""
        out = {}
        for name, s in self.sparsity.items():
            n = elements[name]
            out[name] = (4 * n) / csr_bytes(n, s)
        return out


@dataclass
class TrainResult:
    """Everything a Figure 12 / 14 bench needs from one training run."""

    label: str
    epoch_losses: List[float] = field(default_factory=list)
    test_accuracy: List[float] = field(default_factory=list)
    sparsity_samples: List[SparsitySample] = field(default_factory=list)

    @property
    def accuracy_loss_curve(self) -> List[float]:
        """Figure 12 y-axis: 1 - accuracy, per epoch."""
        return [1.0 - a for a in self.test_accuracy]

    @property
    def final_accuracy(self) -> float:
        """Test accuracy after the last epoch."""
        if not self.test_accuracy:
            raise ValueError("run has no recorded epochs")
        return self.test_accuracy[-1]


class Trainer:
    """SGD training of a graph under a stash policy.

    Args:
        graph: Training graph (fixed minibatch size baked into its input).
        policy: Stash policy; ``None`` selects the FP32 baseline.
        optimizer: Defaults to SGD(lr=0.05, momentum=0.9).
        seed: Controls parameter init and minibatch shuffling.
        tracer: Optional :class:`~repro.diagnostics.tracer.StepTracer`
            attached to the executor; records one step record per
            training minibatch (and per evaluation forward).
    """

    def __init__(
        self,
        graph: Graph,
        policy: Optional[StashPolicy] = None,
        optimizer: Optional[SGD] = None,
        seed: int = 0,
        tracer=None,
    ):
        self.graph = graph
        self.executor = GraphExecutor(graph, policy, seed=seed, tracer=tracer)
        self.optimizer = optimizer or SGD(lr=0.05, momentum=0.9)
        self._shuffle_rng = np.random.default_rng(seed + 1)
        self.batch_size = graph.node(graph.input_id).output_shape[0]

    # ------------------------------------------------------------------
    def evaluate(self, dataset: Dataset) -> float:
        """Top-1 accuracy over whole minibatches of ``dataset``."""
        correct = 0
        seen = 0
        n = dataset.num_samples - dataset.num_samples % self.batch_size
        for start in range(0, n, self.batch_size):
            images = dataset.images[start : start + self.batch_size]
            labels = dataset.labels[start : start + self.batch_size]
            logits = self.executor.predict(images)
            correct += int(accuracy(logits, labels) * self.batch_size)
            seen += self.batch_size
        if seen == 0:
            raise ValueError("dataset smaller than one minibatch")
        return correct / seen

    def train(
        self,
        train_set: Dataset,
        test_set: Dataset,
        epochs: int = 5,
        label: str = "",
        sparsity_every: int = 0,
    ) -> TrainResult:
        """Train for ``epochs`` and record per-epoch metrics.

        Args:
            train_set: Training split.
            test_set: Evaluation split (whole minibatches only).
            epochs: Number of passes over ``train_set``.
            label: Name recorded in the result (e.g. ``"gist-fp8"``).
            sparsity_every: If > 0, record per-layer sparsity every N
                minibatches (the Figure 14 instrumentation).
        """
        result = TrainResult(label or self.graph.name)
        step = 0
        params = self.executor.parameters()
        for _ in range(epochs):
            losses = []
            for images, labels in minibatches(
                train_set, self.batch_size, self._shuffle_rng
            ):
                loss = self.executor.forward(images, labels, train=True)
                if not np.isfinite(loss):
                    # Divergence (e.g. FP8 on a precision-hungry network):
                    # record and halt, as the paper does when "the network
                    # stops training".
                    losses.append(float("inf"))
                    result.epoch_losses.append(float(np.mean(losses)))
                    result.test_accuracy.append(self.evaluate(test_set))
                    return result
                grads = self.executor.backward()
                self.optimizer.step(params, grads)
                param_dtype = getattr(self.executor.policy, "param_dtype", None)
                if param_dtype is not None:
                    from repro.encodings.floatsim import quantize

                    for p in params.values():
                        p[...] = quantize(p, param_dtype)
                losses.append(loss)
                if sparsity_every and step % sparsity_every == 0:
                    result.sparsity_samples.append(
                        SparsitySample(step, dict(self.executor.last_sparsity))
                    )
                step += 1
            result.epoch_losses.append(float(np.mean(losses)))
            result.test_accuracy.append(self.evaluate(test_set))
        return result


def feature_map_elements(graph: Graph) -> Dict[str, int]:
    """Output element count per node name (for compression-ratio math)."""
    out = {}
    for node in graph.nodes:
        n = 1
        for d in node.output_shape:
            n *= d
        out[node.name] = n
    return out
