"""Differential fuzzing and oracle subsystem (the standing correctness
gate).

Gist's correctness claim is structural — shortened lifetimes shared by an
allocator that never aliases two live tensors — and this package checks
that claim on graphs nobody hand-wrote.  See
:mod:`repro.verify.runner` for the oracle table and the ``repro fuzz``
CLI for the command-line entry point.
"""

from repro.verify.differential import (
    ORACLE_BACKEND_DIFFERENTIAL,
    check_backend_agreement,
    verify_backends,
)
from repro.verify.fuzzer import DEFAULT_MAX_OPS, GraphFuzzer, fuzz_graphs
from repro.verify.oracles import (
    ORACLE_ALLOCATOR_SAFETY,
    ORACLE_DECISION_BYTES,
    ORACLE_HYBRID,
    ORACLE_PLAN_SAFETY,
    ORACLE_POLICY_BOUNDS,
    ORACLE_RECURRENT,
    ORACLE_ROUNDTRIP,
    ORACLE_SHARED_CONCAT,
    Violation,
    check_allocator_safety,
    check_decision_bytes,
    check_hybrid_plan,
    check_measured_bytes,
    check_plan_safety,
    check_policy_bounds,
    check_recurrent_unroll,
    check_roundtrip,
    check_shared_concat,
    interval_clique_bound,
)
from repro.verify.distributed import ORACLE_DISTRIBUTED, check_distributed
from repro.verify.runner import (
    FuzzReport,
    fuzz_work_units,
    merge_fuzz_results,
    minimize,
    run_fuzz,
    run_fuzz_unit,
    verify_encodings,
    verify_graph,
    verify_seed,
)

__all__ = [
    "DEFAULT_MAX_OPS",
    "FuzzReport",
    "GraphFuzzer",
    "ORACLE_ALLOCATOR_SAFETY",
    "ORACLE_BACKEND_DIFFERENTIAL",
    "ORACLE_DECISION_BYTES",
    "ORACLE_DISTRIBUTED",
    "ORACLE_HYBRID",
    "ORACLE_PLAN_SAFETY",
    "ORACLE_POLICY_BOUNDS",
    "ORACLE_RECURRENT",
    "ORACLE_ROUNDTRIP",
    "ORACLE_SHARED_CONCAT",
    "Violation",
    "check_allocator_safety",
    "check_backend_agreement",
    "check_decision_bytes",
    "check_distributed",
    "check_hybrid_plan",
    "check_measured_bytes",
    "check_plan_safety",
    "check_policy_bounds",
    "check_recurrent_unroll",
    "check_roundtrip",
    "check_shared_concat",
    "fuzz_graphs",
    "fuzz_work_units",
    "interval_clique_bound",
    "merge_fuzz_results",
    "minimize",
    "run_fuzz",
    "run_fuzz_unit",
    "verify_backends",
    "verify_encodings",
    "verify_graph",
    "verify_seed",
]
