"""Backend-agreement differential oracle (dual-executor style).

Every op in the kernel registry carries several interchangeable arms
(:mod:`repro.kernels.backends`).  This oracle is the contract enforcer:
for each op family it draws shared random inputs, runs **every**
registered arm end-to-end (forward and backward for the layer ops) and
compares each arm's outputs against the family's ground-truth arm —

* an ``exact=True`` arm must match bit-for-bit (``np.array_equal``,
  shape and dtype included);
* an ``exact=False`` arm must stay within the tolerance it declared at
  registration, and its integer outputs (argmax maps, CSR meta arrays)
  must still match exactly — tolerances only ever cover float
  accumulation order.

The oracle is part of the tier-1 fuzz battery (:func:`verify_seed` calls
:func:`verify_backends` per seed), so a new arm cannot land without
holding its own contract under randomized shapes, strides, padding, ties
and empty inputs.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.kernels.backends import OpFamily, backends_for, op_families
from repro.verify.oracles import Violation

ORACLE_BACKEND_DIFFERENTIAL = "backend-differential"

#: Shared-input trials per op family per seed (shapes re-randomized each
#: trial, so a 25-seed smoke batch covers ~50 signatures per family).
DEFAULT_TRIALS = 2


def _max_abs(arr: np.ndarray) -> float:
    if arr.size == 0:
        return 0.0
    return float(np.max(np.abs(arr.astype(np.float64, copy=False))))


def _compare_outputs(
    family: OpFamily,
    backend,
    ref_out: dict,
    got_out: dict,
) -> List[Violation]:
    """One arm's outputs vs the reference arm's, under the arm's contract."""
    violations: List[Violation] = []
    subject = f"{family.op}:{backend.name}"
    if set(ref_out) != set(got_out):
        return [Violation(
            ORACLE_BACKEND_DIFFERENTIAL,
            f"output keys {sorted(got_out)} != reference "
            f"{sorted(ref_out)}", subject=subject,
        )]
    for key in sorted(ref_out):
        ref = np.asarray(ref_out[key])
        got = np.asarray(got_out[key])
        if got.shape != ref.shape or got.dtype != ref.dtype:
            violations.append(Violation(
                ORACLE_BACKEND_DIFFERENTIAL,
                f"{key}: shape/dtype {got.shape}/{got.dtype} != reference "
                f"{ref.shape}/{ref.dtype}", subject=subject,
            ))
            continue
        must_be_exact = (
            backend.exact or not np.issubdtype(ref.dtype, np.inexact)
        )
        if must_be_exact:
            if not np.array_equal(ref, got):
                n_bad = int(np.sum(ref != got))
                err = _max_abs(ref.astype(np.float64)
                               - got.astype(np.float64))
                contract = ("exact" if backend.exact
                            else "tolerance-only-for-floats")
                violations.append(Violation(
                    ORACLE_BACKEND_DIFFERENTIAL,
                    f"{key}: {n_bad} element(s) differ from the "
                    f"{family.reference!r} arm under the {contract} "
                    f"contract (max |err| {err:.3e})", subject=subject,
                ))
            continue
        bound = backend.tolerance * max(1.0, _max_abs(ref))
        err = _max_abs(ref.astype(np.float64) - got.astype(np.float64))
        if err > bound:
            violations.append(Violation(
                ORACLE_BACKEND_DIFFERENTIAL,
                f"{key}: max |err| {err:.3e} exceeds the declared "
                f"tolerance bound {bound:.3e} "
                f"(tolerance={backend.tolerance:g})", subject=subject,
            ))
    return violations


def check_backend_agreement(
    family: OpFamily,
    rng: np.random.Generator,
    trials: int = DEFAULT_TRIALS,
) -> List[Violation]:
    """Run every arm of one family on shared inputs; compare vs reference."""
    violations: List[Violation] = []
    arms = backends_for(family.op)
    reference = next(
        (b for b in arms if b.name == family.reference), None
    )
    if reference is None:
        return [Violation(
            ORACLE_BACKEND_DIFFERENTIAL,
            f"ground-truth arm {family.reference!r} is not registered",
            subject=family.op,
        )]
    for _ in range(max(1, trials)):
        inputs = family.make_inputs(rng)
        try:
            ref_out = family.run(reference, inputs)
        except Exception as exc:  # noqa: BLE001 — a crash IS the finding
            violations.append(Violation(
                ORACLE_BACKEND_DIFFERENTIAL,
                f"reference arm crashed: {type(exc).__name__}: {exc}",
                subject=f"{family.op}:{reference.name}",
            ))
            continue
        for backend in arms:
            if backend.name == reference.name:
                continue
            try:
                got_out = family.run(backend, inputs)
            except Exception as exc:  # noqa: BLE001
                violations.append(Violation(
                    ORACLE_BACKEND_DIFFERENTIAL,
                    f"arm crashed: {type(exc).__name__}: {exc}",
                    subject=f"{family.op}:{backend.name}",
                ))
                continue
            violations += _compare_outputs(family, backend, ref_out,
                                           got_out)
    return violations


def verify_backends(
    seed: int, trials: int = DEFAULT_TRIALS,
    ops: Optional[List[str]] = None,
) -> List[Violation]:
    """Backend-agreement oracle over every op family, seed-deterministic.

    Args:
        seed: Drives the shared-input generator; the same seed always
            exercises the same shapes (the fuzz determinism contract).
        trials: Shared-input draws per family.
        ops: Optional op-name filter (used by the CLI).
    """
    rng = np.random.default_rng(seed + 0xBAC7E57)
    violations: List[Violation] = []
    for family in op_families():
        if ops is not None and family.op not in ops:
            continue
        violations += check_backend_agreement(family, rng, trials=trials)
    return [Violation(v.oracle, v.detail, seed, v.subject)
            for v in violations]
