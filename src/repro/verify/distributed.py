"""Replicas-N ≡ serial differential oracle.

Checks the distributed layer's determinism contract on small live runs,
entirely in-process (the fuzz loop budgets milliseconds per seed; the
full multi-process equivalence runs in the tier-1 tests and the
``bench_distributed`` gate):

* **shard-concat** — concatenating the replica shards reproduces the
  serial batch byte-for-byte;
* **merge-order** — the pairwise-tree merge gives the same bits when
  shard results arrive in an adversarially shuffled order;
* **wire-roundtrip** — every lossless wire codec round-trips live
  gradients bit-exactly (CSR modulo its documented signed-zero
  canonicalisation) and every lossy codec is deterministic;
* **pool-pipeline** — one full step through the work-unit pipeline
  (``run_units`` inline, including the JSON/base64 result
  normalisation a worker process or journal replay would apply) merges
  to bits identical to calling the unit executor directly.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.verify.oracles import Violation

ORACLE_DISTRIBUTED = "distributed-replica"

#: Wire codecs the oracle exercises against live gradients.
_ORACLE_CODECS = ("fp32", "rle", "csr", "auto", "dpr-fp8")


def _tiny_payload(seed: int, num_shards: int, codec: str) -> dict:
    """A minimal replica-step base payload (tiny graph, tiny batch)."""
    return {
        "model": "tiny_cnn",
        "model_kwargs": {"num_classes": 4, "image_size": 8, "channels": 8},
        "batch_size": 4,
        "num_shards": num_shards,
        "seed": seed,
        "wire_codec": codec,
        "policy": "baseline",
        "data": {"num_samples": 16, "noise": 0.6, "data_seed": seed},
    }


def check_distributed(seed: int) -> List[Violation]:
    """Run the distributed determinism battery for one seed."""
    from repro.distributed.allreduce import tree_reduce_gradients
    from repro.distributed.replica import (
        merge_replica_results,
        replica_work_units,
        run_replica_unit,
    )
    from repro.distributed.shard import split_batch
    from repro.distributed.wire import decode_wire, wire_codec
    from repro.models.registry import build_model
    from repro.train.executor import GraphExecutor

    rng = np.random.default_rng(seed + 0xD157)
    violations: List[Violation] = []

    # (1) shard-concat: byte-identical reassembly for every shard count.
    batch = int(rng.integers(3, 9))
    images = rng.normal(0, 1, (batch, 3, 4, 4)).astype(np.float32)
    labels = rng.integers(0, 4, batch).astype(np.int64)
    for shards in range(1, batch + 1):
        parts = split_batch(images, labels, shards)
        re_img = np.concatenate([p[0] for p in parts])
        re_lab = np.concatenate([p[1] for p in parts])
        if (re_img.tobytes() != images.tobytes()
                or re_lab.tobytes() != labels.tobytes()):
            violations.append(Violation(
                ORACLE_DISTRIBUTED,
                f"shard concat not byte-identical at {shards} shards",
                seed, "shard-concat",
            ))

    # Live gradients for the wire and merge checks.
    graph = build_model("tiny_cnn", batch_size=2, num_classes=4,
                        image_size=8, channels=8)
    executor = GraphExecutor(graph, seed=seed)
    x = rng.normal(0, 1, (2, 3, 8, 8)).astype(np.float32)
    y = rng.integers(0, 4, 2).astype(np.int64)
    executor.forward(x, y, train=True)
    grads = executor.backward()

    # (2) merge-order: tree over shard-indexed inputs is invariant to
    # arrival order.  Simulate out-of-order completion by filling a dict
    # in shuffled order, then merging in shard order, as every caller
    # must.
    fake = [
        {k: rng.normal(0, 1, g.shape).astype(np.float32)
         for k, g in grads.items()}
        for _ in range(4)
    ]
    sizes = [1, 2, 1, 2]
    in_order = tree_reduce_gradients(fake, sizes)
    arrival = {}
    for idx in rng.permutation(4):
        arrival[int(idx)] = fake[int(idx)]
    shuffled = tree_reduce_gradients(
        [arrival[i] for i in range(4)], sizes
    )
    for key in in_order:
        if in_order[key].tobytes() != shuffled[key].tobytes():
            violations.append(Violation(
                ORACLE_DISTRIBUTED,
                f"tree merge of {key!r} depends on arrival order",
                seed, "merge-order",
            ))
            break

    # (3) wire-roundtrip on the live gradients.
    for name in _ORACLE_CODECS:
        codec = wire_codec(name)
        for pname, g in grads.items():
            first = codec.encode(g)
            again = codec.encode(g)
            if first != again:
                violations.append(Violation(
                    ORACLE_DISTRIBUTED,
                    f"{name} encode of {pname!r} is nondeterministic",
                    seed, "wire-roundtrip",
                ))
                continue
            decoded = decode_wire(first)
            if codec.lossless:
                reference = g
                if first["codec"] == "csr":
                    # Documented canonicalisation: -0.0 -> +0.0.
                    reference = g + np.float32(0.0)
                if decoded.tobytes() != np.ascontiguousarray(
                        reference, dtype=np.float32).tobytes():
                    violations.append(Violation(
                        ORACLE_DISTRIBUTED,
                        f"{name} round trip of {pname!r} not bit-exact",
                        seed, "wire-roundtrip",
                    ))

    # (4) pool-pipeline: inline run_units (with its JSON round-trip)
    # must merge to the same bits as direct executor calls.
    from repro.orchestrate import run_units

    shards = int(rng.integers(2, 5))
    codec = str(rng.choice(["auto", "dpr-fp8"]))
    base = _tiny_payload(seed, shards, codec)
    master = GraphExecutor(
        build_model("tiny_cnn", batch_size=4, num_classes=4, image_size=8,
                    channels=8),
        seed=seed,
    ).parameters()
    units = replica_work_units(base, 0, master)
    results = run_units(units, workers=1)
    try:
        pool_loss, pool_merged, _ = merge_replica_results(units, results)
    except RuntimeError as exc:
        return violations + [Violation(
            ORACLE_DISTRIBUTED, f"pool pipeline failed: {exc}", seed,
            "pool-pipeline",
        )]
    direct = [run_replica_unit(unit.payload) for unit in units]
    from repro.distributed.allreduce import tree_reduce

    total = sum(d["shard_size"] for d in direct)
    direct_loss = float(tree_reduce([
        np.float32(d["shard_size"] / total) * np.float32(d["loss"])
        for d in direct
    ]))
    if pool_loss != direct_loss:
        violations.append(Violation(
            ORACLE_DISTRIBUTED,
            f"pool-pipeline loss {pool_loss!r} differs from direct "
            f"{direct_loss!r}",
            seed, "pool-pipeline",
        ))
    direct_merged = tree_reduce_gradients(
        [{k: decode_wire(m) for k, m in d["grads"].items()} for d in direct],
        [d["shard_size"] for d in direct],
    )
    for key in direct_merged:
        if pool_merged[key].tobytes() != direct_merged[key].tobytes():
            violations.append(Violation(
                ORACLE_DISTRIBUTED,
                f"pool-pipeline merge of {key!r} differs from direct "
                f"execution ({shards} shards, {codec} wire)",
                seed, "pool-pipeline",
            ))
            break
    return violations
