"""Seed-deterministic random training-graph generator.

The planner/allocator stack is only as trustworthy as the graphs it has
been exercised on, and every model in :mod:`repro.models` is hand-written.
:class:`GraphFuzzer` closes that gap: from a single integer seed it grows
a random — but always shape-valid — training graph mixing chains,
fan-out/fan-in merges (``Add`` residuals and ``Concat`` inception blocks)
and every layer kind in the library, over randomised batch sizes, channel
counts and image sizes.

Determinism contract: ``GraphFuzzer(seed).graph(max_ops=k)`` always builds
the same graph for the same ``(seed, k)`` — the property the ``repro
fuzz`` CLI and the violation minimizer rely on to reproduce and shrink a
failure from nothing but its seed.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.graph.builder import GraphBuilder, NodeRef
from repro.graph.graph import Graph
from repro.layers import (
    Add,
    AvgPool2D,
    BatchNorm2D,
    Concat,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool2D,
    LocalResponseNorm,
    LSTMCell,
    LSTMStep,
    MaxPool2D,
    ReLU,
    RNNCell,
    RNNStep,
    Sigmoid,
    SoftmaxCrossEntropy,
    StateSlice,
    Tanh,
    TimeSlice,
)

#: Default cap on generated op count (cheap enough for smoke batches).
DEFAULT_MAX_OPS = 24

_MIN_SPATIAL_FOR_POOL = 2


class GraphFuzzer:
    """Grows random valid training graphs from an integer seed.

    Args:
        seed: Master seed; fully determines every generated graph.
    """

    def __init__(self, seed: int):
        self.seed = int(seed)

    # ------------------------------------------------------------------
    def graph(
        self,
        max_ops: int = DEFAULT_MAX_OPS,
        rewrite_shapes: bool = False,
        recurrent_shapes: bool = False,
    ) -> Graph:
        """Generate one graph with at most ``max_ops`` ops before the head.

        Shrinking ``max_ops`` with the seed fixed yields a *prefix* of the
        same random decision stream, which is what lets the minimizer
        shrink a failing graph without changing the layers it kept.

        ``rewrite_shapes`` mixes in motifs the rewrite passes trigger on
        (conv→relu chains, duplicated subexpressions, dead branches,
        immediately-consumed maps).  The flag draws from the RNG only
        inside its own branch, so the default decision stream — and every
        pinned default-mode seed — is byte-identical with it off.

        ``recurrent_shapes`` switches to the sequence genre: a rank-3
        input feeding an unrolled LSTM or RNN column (weight-tied steps,
        time slices, a state slice) under a dense head.  The genre has
        its own decision stream; the default genre never draws through
        this branch, so default-mode seeds stay pinned.
        """
        rng = np.random.default_rng(self.seed)
        if recurrent_shapes:
            return self._recurrent_graph(rng, max_ops)
        batch = int(rng.choice([1, 2, 4, 8]))
        channels = int(rng.integers(1, 7))
        side = int(rng.choice([4, 6, 8, 12, 16]))
        classes = int(rng.integers(2, 9))

        b = GraphBuilder(f"fuzz_{self.seed}", (batch, channels, side, side))
        x = b.input
        budget = max(1, int(max_ops))
        while budget > 0:
            if (
                rewrite_shapes
                and budget >= 4
                and len(b.shape_of(x)) == 4
                and rng.random() < 0.5
            ):
                x, used = self._rewrite_motif(b, x, rng)
                budget -= used
                continue
            roll = rng.random()
            if roll < 0.22 and budget >= 4 and len(b.shape_of(x)) == 4:
                x, used = self._merge_block(b, x, rng, budget)
            else:
                x, used = self._single_op(b, x, rng)
            budget -= used
        x = self._head(b, x, rng, classes)
        b.mark_output(x)
        return b.build()

    # ------------------------------------------------------------------
    def _recurrent_graph(self, rng, max_ops: int) -> Graph:
        """The sequence genre: an unrolled recurrent column plus head.

        Every unrolled step costs 2 ops (time slice + step), so the
        sequence length shrinks with ``max_ops`` — preserving the
        minimizer's shrink-by-budget contract within the genre.
        """
        batch = int(rng.choice([1, 2, 4, 8]))
        seq_len = int(rng.integers(2, 6))
        input_size = int(rng.integers(2, 9))
        hidden = int(rng.integers(3, 13))
        classes = int(rng.integers(2, 9))
        use_lstm = rng.random() < 0.5
        seq_len = max(2, min(seq_len, max(1, int(max_ops)) // 2))

        b = GraphBuilder(
            f"fuzz_{self.seed}_seq", (batch, seq_len, input_size)
        )
        if use_lstm:
            cell = LSTMCell(input_size, hidden)
            step_of = lambda t: LSTMStep(cell, t)  # noqa: E731
        else:
            cell = RNNCell(input_size, hidden)
            step_of = lambda t: RNNStep(cell, t)  # noqa: E731
        state = None
        for t in range(seq_len):
            x_t = b.add(TimeSlice(t, seq_len), b.input, name=f"x{t}")
            inputs = [x_t] if state is None else [x_t, state]
            state = b.add(step_of(t), inputs, name=f"step{t}")
        x = state
        if use_lstm:
            x = b.add(StateSlice(hidden, part="h"), x, name="hT")
        if rng.random() < 0.4:
            x = b.add(Tanh() if rng.random() < 0.5 else ReLU(), x)
        if rng.random() < 0.3:
            x = b.add(Dropout(p=0.3, seed=int(rng.integers(0, 1 << 16))), x)
        x = b.add(Dense(classes), x)
        x = b.add(SoftmaxCrossEntropy(), x)
        b.mark_output(x)
        return b.build()

    # ------------------------------------------------------------------
    def _spatial(self, b: GraphBuilder, ref: NodeRef) -> int:
        shape = b.shape_of(ref)
        return shape[2] if len(shape) == 4 else 0

    def _single_op(self, b: GraphBuilder, x: NodeRef, rng) -> tuple:
        """Append one random shape-valid op; returns (ref, ops used)."""
        side = self._spatial(b, x)
        if side == 0:  # already flattened: only rank-agnostic ops remain
            roll = rng.random()
            if roll < 0.5:
                return b.add(Dense(int(rng.integers(2, 17))), x), 1
            if roll < 0.75:
                return b.add(ReLU(), x), 1
            return b.add(
                Dropout(p=0.3, seed=int(rng.integers(0, 1 << 16))), x), 1
        choices = ["conv", "relu", "act", "bn", "lrn", "dropout", "conv_stride"]
        if side >= _MIN_SPATIAL_FOR_POOL:
            choices += ["maxpool", "avgpool"]
        if side <= 4:
            choices += ["gavg", "flatten"]
        kind = rng.choice(choices)
        if kind == "conv":
            k = int(rng.choice([1, 3]))
            out_c = int(rng.integers(1, 9))
            return b.add(Conv2D(out_c, k, pad=k // 2), x), 1
        if kind == "conv_stride":
            out_c = int(rng.integers(1, 9))
            if side >= 3:
                return b.add(Conv2D(out_c, 3, stride=2, pad=1), x), 1
            return b.add(Conv2D(out_c, 1), x), 1
        if kind == "relu":
            return b.add(ReLU(), x), 1
        if kind == "act":
            layer = Sigmoid() if rng.random() < 0.5 else Tanh()
            return b.add(layer, x), 1
        if kind == "bn":
            return b.add(BatchNorm2D(), x), 1
        if kind == "lrn":
            return b.add(LocalResponseNorm(size=3), x), 1
        if kind == "dropout":
            return b.add(Dropout(p=0.3, seed=int(rng.integers(0, 1 << 16))), x), 1
        if kind == "maxpool":
            return b.add(MaxPool2D(2, 2), x), 1
        if kind == "avgpool":
            return b.add(AvgPool2D(2, 2), x), 1
        if kind == "gavg":
            return b.add(GlobalAvgPool2D(), x), 1
        return b.add(Flatten(), x), 1

    def _merge_block(self, b: GraphBuilder, x: NodeRef, rng, budget: int):
        """Fan-out into 2-3 branches and merge with Add or Concat."""
        n_branches = int(rng.integers(2, 4))
        use_add = rng.random() < 0.5
        in_c = b.shape_of(x)[1]
        branches: List[NodeRef] = []
        used = 1  # the merge op itself
        per_branch = max(1, (budget - 1) // n_branches)
        for _ in range(n_branches):
            ref = x
            for _ in range(int(rng.integers(1, per_branch + 1))):
                ref = self._preserving_op(b, ref, rng,
                                          in_c if use_add else None)
                used += 1
            if use_add and b.shape_of(ref)[1] != in_c:
                ref = b.add(Conv2D(in_c, 1), ref)
                used += 1
            branches.append(ref)
        merge = Add() if use_add else Concat()
        return b.add(merge, branches), used

    def _preserving_op(self, b: GraphBuilder, x: NodeRef, rng,
                       keep_channels: Optional[int]):
        """A spatially-preserving op (branch bodies must stay mergeable)."""
        roll = rng.random()
        if roll < 0.35:
            out_c = keep_channels or int(rng.integers(1, 9))
            k = int(rng.choice([1, 3]))
            return b.add(Conv2D(out_c, k, pad=k // 2), x)
        if roll < 0.55:
            return b.add(ReLU(), x)
        if roll < 0.7:
            return b.add(BatchNorm2D(), x)
        if roll < 0.85:
            return b.add(Sigmoid() if rng.random() < 0.5 else Tanh(), x)
        return b.add(Dropout(p=0.2, seed=int(rng.integers(0, 1 << 16))), x)

    def _rewrite_motif(self, b: GraphBuilder, x: NodeRef, rng) -> tuple:
        """One motif a rewrite pass fires on; returns (ref, ops used).

        The four motifs map one-to-one onto the passes: conv→relu chains
        (fusion + inplace), duplicated single-consumer subexpressions
        (CSE), dangling branches (dead-stash elimination) and
        immediately-consumed maps (inplace), with max-pools sprinkled in
        for the pool-argmax pass.
        """
        motif = int(rng.integers(0, 4))
        side = self._spatial(b, x)
        if motif == 0:
            # conv -> relu (fusion), optionally capped by a pool so the
            # pool-argmax pass and the relu-pool classifier both fire.
            out_c = int(rng.integers(1, 9))
            k = int(rng.choice([1, 3]))
            x = b.add(Conv2D(out_c, k, pad=k // 2), x)
            x = b.add(ReLU(), x)
            if side >= _MIN_SPATIAL_FOR_POOL and rng.random() < 0.5:
                return b.add(MaxPool2D(2, 2), x), 3
            return x, 2
        if motif == 1:
            # Duplicated subexpression: two identical single-consumer ops
            # over the same input, joined by one Add — exactly the shape
            # the CSE pass's two-term-sum restrictions admit.
            dup = rng.random() < 0.5
            if dup and side >= _MIN_SPATIAL_FOR_POOL:
                y1 = b.add(MaxPool2D(2, 2), x)
                y2 = b.add(MaxPool2D(2, 2), x)
            else:
                y1 = b.add(ReLU(), x)
                y2 = b.add(ReLU(), x)
            return b.add(Add(), [y1, y2]), 3
        if motif == 2:
            # Dead branch: ops whose outputs never reach the loss, but
            # which the schedule still prices as stashed feature maps.
            dead = b.add(Conv2D(int(rng.integers(1, 5)), 1), x)
            b.add(ReLU(), dead)
            return x, 2
        # Immediately-consumed map: conv -> dropout is inplace-eligible
        # (conv's backward never reads its output, dropout's never reads
        # its input) without being a fusion candidate.
        out_c = int(rng.integers(1, 9))
        x = b.add(Conv2D(out_c, 1), x)
        x = b.add(Dropout(p=0.3, seed=int(rng.integers(0, 1 << 16))), x)
        return x, 2

    def _head(self, b: GraphBuilder, x: NodeRef, rng, classes: int) -> NodeRef:
        """Classifier head: optional ReLU, Dense(classes), softmax loss."""
        if len(b.shape_of(x)) == 4 and rng.random() < 0.3:
            x = b.add(GlobalAvgPool2D(), x)
        if rng.random() < 0.5:
            x = b.add(ReLU(), x)
        x = b.add(Dense(classes), x)
        return b.add(SoftmaxCrossEntropy(), x)


def fuzz_graphs(seeds, max_ops: int = DEFAULT_MAX_OPS):
    """Yield ``(seed, graph)`` for every seed in ``seeds``."""
    for seed in seeds:
        yield seed, GraphFuzzer(seed).graph(max_ops=max_ops)
