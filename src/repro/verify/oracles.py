"""Differential oracles for plans, allocators and encodings.

Each oracle is a pure function from finished artifacts (an
:class:`~repro.memory.allocator.AllocationResult`, a
:class:`~repro.core.schedule_builder.GistPlan`, a codec plus input) to a
list of :class:`Violation`.  Keeping them artifact-level rather than
end-to-end is what makes the fault-injection tests possible: a test can
corrupt one group/death/codec and assert the matching oracle — and only
it — fires.

The checks are *differential* where it matters: plan deaths are compared
against an independent reimplementation of the last-use computation (not
against the Schedule Builder's own helpers), allocator totals across
policies are compared against each other, and static totals are compared
against the dynamic simulator and an interval max-clique lower bound that
is recomputed here from raw ``[birth, death]`` intervals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.schedule_builder import (
    ENC_BINARIZE,
    ENC_DPR,
    ENC_SSDC,
    GistPlan,
)
from repro.dtypes import DPR_FORMATS
from repro.encodings.base import Encoding
from repro.encodings.binarize import BinarizeEncoding
from repro.encodings.dpr import DPREncoding
from repro.encodings.floatsim import max_relative_error
from repro.encodings.groupquant import GroupQuantEncoding, GroupQuantTensor
from repro.encodings.runlength import RunLengthEncoding, rle_stats
from repro.encodings.ssdc import SSDCEncoding, csr_bytes
from repro.graph.liveness import (
    LiveTensor,
    ROLE_DECODED,
    ROLE_ENCODED,
    ROLE_FEATURE_MAP,
)
from repro.memory.allocator import AllocationResult

# Oracle identifiers (stable strings used in reports and tests).
ORACLE_ALLOCATOR_SAFETY = "allocator-safety"
ORACLE_POLICY_BOUNDS = "policy-bounds"
ORACLE_PLAN_SAFETY = "plan-safety"
ORACLE_DECISION_BYTES = "decision-bytes"
ORACLE_ROUNDTRIP = "encoding-roundtrip"
ORACLE_HYBRID = "hybrid-plan"
ORACLE_REWRITE = "rewrite-equivalence"
ORACLE_SHARED_CONCAT = "shared-concat"
ORACLE_RECURRENT = "recurrent-unroll"


@dataclass(frozen=True)
class Violation:
    """One oracle failure, with enough context to reproduce it."""

    oracle: str
    detail: str
    seed: Optional[int] = None
    subject: str = ""

    def __str__(self) -> str:
        where = f" [{self.subject}]" if self.subject else ""
        seed = f" (seed {self.seed})" if self.seed is not None else ""
        return f"{self.oracle}{where}{seed}: {self.detail}"


# ----------------------------------------------------------------------
# (a) Allocator safety
# ----------------------------------------------------------------------
def check_allocator_safety(
    result: AllocationResult, tensors: Sequence[LiveTensor]
) -> List[Violation]:
    """No two live-overlapping tensors may share an AllocationGroup.

    Also checks coverage (every input tensor landed in exactly one group)
    and that non-shareable tensors received dedicated groups.  Groups
    marked ``aliased`` are exempt from the overlap check — their members
    are declared views of one buffer — but every member must then carry
    the group's single ``alias_group`` label, so a stray tensor can never
    ride along.
    """
    violations: List[Violation] = []
    seen: Dict[str, int] = {}
    for gi, group in enumerate(result.groups):
        if getattr(group, "aliased", False):
            labels = {t.alias_group for t in group.members}
            if len(labels) != 1 or None in labels:
                violations.append(Violation(
                    ORACLE_ALLOCATOR_SAFETY,
                    f"aliased group {gi} ({result.policy}) mixes alias "
                    f"labels {sorted(map(str, labels))}",
                ))
            for t in group.members:
                seen[t.spec.name] = seen.get(t.spec.name, 0) + 1
            continue
        members = sorted(group.members, key=lambda t: (t.birth, t.death))
        for prev, cur in zip(members, members[1:]):
            if cur.birth <= prev.death:  # intervals are inclusive
                violations.append(Violation(
                    ORACLE_ALLOCATOR_SAFETY,
                    f"group {gi} ({result.policy}) aliases live tensors "
                    f"{prev.spec.name!r} [{prev.birth},{prev.death}] and "
                    f"{cur.spec.name!r} [{cur.birth},{cur.death}]",
                ))
        for t in group.members:
            if t.alias_group is not None and len(group.members) > 1:
                violations.append(Violation(
                    ORACLE_ALLOCATOR_SAFETY,
                    f"alias-labelled tensor {t.spec.name!r} placed in "
                    f"ordinary shared group {gi}",
                ))
            if not t.shareable and len(group.members) > 1:
                violations.append(Violation(
                    ORACLE_ALLOCATOR_SAFETY,
                    f"non-shareable tensor {t.spec.name!r} placed in "
                    f"group {gi} with {len(group.members) - 1} other(s)",
                ))
            seen[t.spec.name] = seen.get(t.spec.name, 0) + 1
    for t in tensors:
        count = seen.get(t.spec.name, 0)
        if count != 1:
            violations.append(Violation(
                ORACLE_ALLOCATOR_SAFETY,
                f"tensor {t.spec.name!r} appears in {count} groups "
                f"(expected exactly 1)",
            ))
    return violations


# ----------------------------------------------------------------------
# (b) Cross-model bounds
# ----------------------------------------------------------------------
def interval_clique_bound(tensors: Sequence[LiveTensor]) -> int:
    """Max-clique lower bound: peak sum of co-live sizes.

    For interval graphs the max clique is attained at some interval's
    birth point, so scanning births is exact — and independent of the
    sweep implementation in :mod:`repro.memory.dynamic`.
    """
    best = 0
    for t in tensors:
        at = t.birth
        total = sum(
            o.size_bytes for o in tensors if o.birth <= at <= o.death
        )
        best = max(best, total)
    return best


def check_policy_bounds(
    totals_by_policy: Dict[str, int],
    static_total: int,
    dynamic_peak: int,
    clique_bound: int,
    strict: bool = False,
) -> List[Violation]:
    """Orderings a correct allocator stack must satisfy.

    Hard legs (theorems — a violation is always a bug):

    * every sharing policy ``<= none`` on total bytes (a group's region is
      its largest member, never the sum);
    * ``static total >= dynamic peak >= max-clique bound`` (a static
      assignment can never beat the peak of live bytes, which in turn is
      an interval max clique).

    Strict leg (``strict=True``): ``greedy-size <= first-fit``.  This is
    NOT a theorem — a finding of this very fuzzer: on ~10% of fan-out
    graphs the insertion-order first-fit (close to the optimal left-edge
    packing, since the liveness table is roughly birth-sorted) beats the
    CNTK size-sorted heuristic by 1-10%.  On the paper's chain-dominated
    models greedy always wins, which is why hand-written tests never saw
    it.  ``tests/verify/test_fuzzer.py`` pins a counterexample seed.
    """
    violations: List[Violation] = []
    greedy = totals_by_policy.get("greedy-size")
    first_fit = totals_by_policy.get("first-fit")
    none = totals_by_policy.get("none")
    if (strict and greedy is not None and first_fit is not None
            and greedy > first_fit):
        violations.append(Violation(
            ORACLE_POLICY_BOUNDS,
            f"greedy-size total {greedy} > first-fit total {first_fit}",
        ))
    for policy in ("greedy-size", "first-fit"):
        total = totals_by_policy.get(policy)
        if total is not None and none is not None and total > none:
            violations.append(Violation(
                ORACLE_POLICY_BOUNDS,
                f"{policy} total {total} > no-sharing total {none}",
            ))
    if static_total < dynamic_peak:
        violations.append(Violation(
            ORACLE_POLICY_BOUNDS,
            f"static total {static_total} < dynamic peak {dynamic_peak}",
        ))
    if dynamic_peak < clique_bound:
        violations.append(Violation(
            ORACLE_POLICY_BOUNDS,
            f"dynamic peak {dynamic_peak} < interval clique bound "
            f"{clique_bound}",
        ))
    return violations


# ----------------------------------------------------------------------
# (c) Plan safety
# ----------------------------------------------------------------------
def _independent_uses(graph, schedule, node_id: int, pools_rewritten: bool):
    """(last_fwd, first_bwd, last_bwd) recomputed from first principles.

    Deliberately *not* shared with the Schedule Builder: this is the
    differential half of the plan oracle, derived directly from the
    schedule clock and each layer's backward-dependence flags (with the
    argmax rewrite wiping a max-pool's X/Y needs when Binarize is on).
    """
    node = graph.node(node_id)
    last_fwd = schedule.forward_time(node_id)
    bwd: List[int] = []
    for consumer in graph.consumers(node_id):
        last_fwd = max(last_fwd, schedule.forward_time(consumer.node_id))
        needs_in = consumer.layer.backward_needs_input
        if pools_rewritten and getattr(consumer.layer, "supports_argmax_map",
                                       False):
            needs_in = False
        if needs_in and schedule.has_backward(consumer.node_id):
            bwd.append(schedule.backward_time(consumer.node_id))
    needs_out = node.layer.backward_needs_output
    if pools_rewritten and getattr(node.layer, "supports_argmax_map", False):
        needs_out = False
    if needs_out and schedule.has_backward(node_id):
        bwd.append(schedule.backward_time(node_id))
    if node_id == graph.output_id and schedule.has_backward(node_id):
        bwd.append(schedule.backward_time(node_id))
    if not bwd:
        return last_fwd, None, None
    return last_fwd, min(bwd), max(bwd)


def check_plan_safety(
    gist_plan: GistPlan, baseline_allocated: Optional[int] = None,
    gist_allocated: Optional[int] = None,
) -> List[Violation]:
    """The Schedule Builder must never kill a buffer before its last use.

    For every node: the FP32 feature map must survive to its last forward
    use; if the stash was *not* encoded, it must additionally survive to
    its last backward use; if it *was* encoded, the encoded tensor must
    span ``[<= last_fwd, >= last_bwd]`` and any decoded staging buffer
    must cover ``[<= first_bwd, >= last_bwd]``.  Optionally also checks
    that lossless Gist never *increases* the allocated footprint over the
    baseline (pass both totals).
    """
    graph, schedule = gist_plan.graph, gist_plan.schedule
    pools_rewritten = gist_plan.config.binarize
    violations: List[Violation] = []

    fm: Dict[int, LiveTensor] = {}
    enc: Dict[int, LiveTensor] = {}
    dec: Dict[int, LiveTensor] = {}
    for t in gist_plan.plan.tensors:
        if t.role == ROLE_FEATURE_MAP and not t.spec.name.endswith(".dec"):
            fm[t.node_id] = t
        elif t.role == ROLE_ENCODED and t.spec.name.endswith(".enc"):
            enc[t.node_id] = t
        elif t.role == ROLE_DECODED:
            dec[t.node_id] = t

    merged_away = {
        n.node_id for n in graph.nodes if n.node_id not in fm
    }
    for node in graph.nodes:
        nid = node.node_id
        last_fwd, first_bwd, last_bwd = _independent_uses(
            graph, schedule, nid, pools_rewritten
        )
        decision = gist_plan.decisions.get(nid)
        t = fm.get(nid)
        if t is None:
            # Inplace-merged into a consumer: the consumer's buffer must
            # cover this node's forward production point instead.
            if nid in merged_away and gist_plan.config.inplace:
                continue
            violations.append(Violation(
                ORACLE_PLAN_SAFETY,
                f"feature map of node {node.name!r} missing from plan",
            ))
            continue
        if t.death < last_fwd:
            violations.append(Violation(
                ORACLE_PLAN_SAFETY,
                f"{t.spec.name!r} dies at {t.death} before its last "
                f"forward use at {last_fwd}",
            ))
        if decision is None and last_bwd is not None and t.death < last_bwd:
            violations.append(Violation(
                ORACLE_PLAN_SAFETY,
                f"unencoded stash {t.spec.name!r} dies at {t.death} before "
                f"its last backward use at {last_bwd}",
            ))
        if decision is not None:
            e = enc.get(nid)
            if e is None:
                violations.append(Violation(
                    ORACLE_PLAN_SAFETY,
                    f"decision for {node.name!r} has no encoded tensor",
                ))
            else:
                if e.birth > last_fwd:
                    violations.append(Violation(
                        ORACLE_PLAN_SAFETY,
                        f"{e.spec.name!r} born at {e.birth}, after the FP32 "
                        f"map's last forward use at {last_fwd}",
                    ))
                if last_bwd is not None and e.death < last_bwd:
                    violations.append(Violation(
                        ORACLE_PLAN_SAFETY,
                        f"{e.spec.name!r} dies at {e.death} before the last "
                        f"backward use at {last_bwd}",
                    ))
            d = dec.get(nid)
            if decision.decoded_bytes and d is None:
                violations.append(Violation(
                    ORACLE_PLAN_SAFETY,
                    f"decision for {node.name!r} prices a decoded buffer "
                    f"but the plan carries none",
                ))
            if d is not None and last_bwd is not None:
                if d.birth > first_bwd or d.death < last_bwd:
                    violations.append(Violation(
                        ORACLE_PLAN_SAFETY,
                        f"{d.spec.name!r} [{d.birth},{d.death}] does not "
                        f"cover backward uses [{first_bwd},{last_bwd}]",
                    ))
    for decision in gist_plan.decisions.values():
        # A per-decision theorem of the Schedule Builder: it never encodes
        # a stash into *more* bytes than the FP32 map (SSDC falls back at
        # its breakeven, Binarize is 1 bit, DPR is sub-32-bit).
        if decision.encoded_bytes > decision.fp32_bytes:
            violations.append(Violation(
                ORACLE_PLAN_SAFETY,
                f"{decision.node_name}: encoded stash "
                f"({decision.encoded_bytes} B, {decision.encoding}) larger "
                f"than the FP32 map it replaces ({decision.fp32_bytes} B)",
            ))
    if (baseline_allocated is not None and gist_allocated is not None
            and not gist_plan.config.dpr):
        # Lossless Gist must not inflate the shared footprint beyond the
        # bytes of the structures it *adds* (encoded stashes, argmax maps,
        # decoded staging).  The allocator is a greedy heuristic, so a few
        # added tensors can legally perturb grouping by up to their own
        # size; anything past that means a lifetime was rewritten wrong.
        added = sum(
            t.size_bytes for t in gist_plan.plan.tensors
            if t.role in (ROLE_ENCODED, ROLE_DECODED)
        )
        # Inplace pair merging *removes* the producer's buffer and extends
        # the consumer's lifetime across both ops — the mirror image of an
        # added tensor, with the same bounded grouping perturbation: up to
        # the merged buffer's size.
        if gist_plan.config.inplace:
            for node in graph.nodes:
                if node.node_id not in merged_away:
                    continue
                elements = 1
                for d in node.output_shape:
                    elements *= d
                added += 4 * elements
        if gist_allocated > baseline_allocated + added:
            violations.append(Violation(
                ORACLE_PLAN_SAFETY,
                f"lossless Gist allocated {gist_allocated} bytes > baseline "
                f"{baseline_allocated} + added structures {added}",
            ))
    return violations


def check_decision_bytes(gist_plan: GistPlan, rng=None) -> List[Violation]:
    """Every priced ``encoded_bytes`` must match a measured ``encode()``.

    Synthesises realistic data per decision (normal activations; for SSDC,
    with exactly the nonzero count the sparsity model priced) and compares
    the static size against ``measure_bytes`` of a real encode.
    """
    rng = rng or np.random.default_rng(0)
    config = gist_plan.config
    dpr_dtype = DPR_FORMATS[config.dpr_format]
    violations: List[Violation] = []
    for decision in gist_plan.decisions.values():
        node = gist_plan.graph.node(decision.node_id)
        n = 1
        for dim in node.output_shape:
            n *= dim
        if decision.encoding == ENC_BINARIZE:
            codec: Encoding = BinarizeEncoding()
            x = rng.normal(0, 1, n).astype(np.float32)
        elif decision.encoding == ENC_DPR:
            codec = DPREncoding(dpr_dtype, config.rounding)
            x = rng.normal(0, 1, n).astype(np.float32)
        elif decision.encoding == ENC_SSDC:
            value_dtype = (
                dpr_dtype if (config.dpr and config.dpr_over_ssdc) else None
            )
            codec = SSDCEncoding(cols=config.ssdc_cols,
                                 value_dtype=value_dtype)
            nnz = round(n * (1.0 - decision.sparsity))
            x = np.zeros(n, dtype=np.float32)
            if nnz:
                idx = rng.choice(n, size=nnz, replace=False)
                x[idx] = np.abs(rng.normal(1, 1, nnz)).astype(np.float32) + 0.1
        else:
            continue
        measured = codec.measure_bytes(codec.encode(x))
        if measured != decision.encoded_bytes:
            violations.append(Violation(
                ORACLE_DECISION_BYTES,
                f"{decision.node_name}: plan prices {decision.encoded_bytes} "
                f"bytes for {decision.encoding}, measured encode is "
                f"{measured}",
            ))
    return violations


# ----------------------------------------------------------------------
# (d) Encoding round-trips
# ----------------------------------------------------------------------
def check_roundtrip(codec: Encoding, x: np.ndarray) -> List[Violation]:
    """Lossless codecs must be bit-exact; lossy ones within declared bounds.

    * lossless: ``decode(encode(x))`` equals ``expected_decode(x)``
      bit-for-bit;
    * DPR (plain or composed over SSDC values): elementwise error within
      half-ULP of the format for in-range normals, with flush-to-zero
      below ``min_normal`` and clamping at ``max_finite``;
    * group quantisation: per-group max error within half a grid step of
      the group's *real-value* span (the padding-skew regression bound).
    """
    violations: List[Violation] = []
    try:
        encoded = codec.encode(x)
        decoded = codec.decode(encoded)
    except Exception as exc:  # noqa: BLE001 — a crash IS the finding
        return [Violation(
            ORACLE_ROUNDTRIP,
            f"{codec.name} crashed on shape {x.shape}: "
            f"{type(exc).__name__}: {exc}",
        )]
    if codec.lossless:
        expected = codec.expected_decode(x)
        if decoded.shape != expected.shape or not np.array_equal(
            np.asarray(decoded), np.asarray(expected)
        ):
            violations.append(Violation(
                ORACLE_ROUNDTRIP,
                f"{codec.name} round-trip not bit-exact on shape {x.shape} "
                f"(max |err| "
                f"{_max_abs_err(decoded, expected)})",
            ))
        return violations
    if decoded.shape != x.shape:
        return [Violation(
            ORACLE_ROUNDTRIP,
            f"{codec.name} decode shape {decoded.shape} != input {x.shape}",
        )]
    if isinstance(codec, DPREncoding):
        violations += _check_dpr_bound(codec.name, codec.dtype, x, decoded)
    elif isinstance(codec, SSDCEncoding) and codec.value_dtype is not None:
        # Dense zeros must stay exactly zero (the meta arrays are never
        # lossy); stored nonzeros obey the DPR value bound, which itself
        # allows flush-to-zero below the format's min_normal.
        spurious = int(np.sum(np.asarray(decoded)[np.asarray(x) == 0] != 0))
        if spurious:
            violations.append(Violation(
                ORACLE_ROUNDTRIP,
                f"{codec.name} decoded {spurious} nonzero value(s) at "
                f"dense-zero position(s)",
            ))
        nz = x != 0
        violations += _check_dpr_bound(codec.name, codec.value_dtype,
                                       x[nz], np.asarray(decoded)[nz])
    elif isinstance(codec, GroupQuantEncoding):
        violations += _check_groupquant_bound(codec, x, encoded, decoded)
    return violations


def _max_abs_err(a, b) -> float:
    a, b = np.asarray(a), np.asarray(b)
    if a.shape != b.shape or a.size == 0:
        return float("nan")
    return float(np.max(np.abs(a.astype(np.float64) - b.astype(np.float64))))


def _check_dpr_bound(name, dtype, x, decoded) -> List[Violation]:
    if x.size == 0:
        return []
    x64 = np.asarray(x, dtype=np.float64).ravel()
    d64 = np.asarray(decoded, dtype=np.float64).ravel()
    clipped = np.clip(x64, -dtype.max_finite, dtype.max_finite)
    rel = max_relative_error(dtype)
    # In-range normals: half-ULP relative.  Below min_normal: flushed to
    # zero, so the error can reach the value itself.  The 1.0001 fudge
    # absorbs float32 arithmetic in the encoder itself.
    bound = np.maximum(np.abs(clipped) * rel * 1.0001, dtype.min_normal)
    err = np.abs(d64 - clipped)
    bad = err > bound
    if np.any(bad):
        i = int(np.argmax(err - bound))
        return [Violation(
            ORACLE_ROUNDTRIP,
            f"{name} error {err[i]:.3e} exceeds bound {bound[i]:.3e} at "
            f"flat index {i} (x={x64[i]:.6e}, decoded={d64[i]:.6e})",
        )]
    return []


def _check_groupquant_bound(codec: GroupQuantEncoding, x, encoded,
                            decoded) -> List[Violation]:
    if x.size == 0:
        return []
    flat = np.asarray(x, dtype=np.float64).ravel()
    dflat = np.asarray(decoded, dtype=np.float64).ravel()
    levels = (1 << codec.bits) - 1
    gs = codec.group_size
    violations: List[Violation] = []
    for g in range(int(np.ceil(flat.size / gs))):
        lo_i, hi_i = g * gs, min((g + 1) * gs, flat.size)
        real = flat[lo_i:hi_i]
        span = real.max() - real.min()
        # Half a grid step over the group's REAL values (padding must not
        # widen the grid), plus float32 slack on scale arithmetic.
        bound = span / levels * 0.51 + 1e-6 + 1e-5 * max(
            abs(real.max()), abs(real.min())
        )
        err = np.abs(dflat[lo_i:hi_i] - real).max()
        if err > bound:
            violations.append(Violation(
                ORACLE_ROUNDTRIP,
                f"{codec.name} group {g} error {err:.6f} exceeds "
                f"span/levels bound {bound:.6f} (span {span:.6f}) — "
                f"padding-skewed grid?",
            ))
    if isinstance(encoded, GroupQuantTensor):
        expect_groups = int(np.ceil(flat.size / gs))
        if encoded.scales.size != expect_groups:
            violations.append(Violation(
                ORACLE_ROUNDTRIP,
                f"{codec.name} stored {encoded.scales.size} groups for "
                f"{flat.size} values (expected {expect_groups})",
            ))
    return violations


# ----------------------------------------------------------------------
# (e) Hybrid plan safety
# ----------------------------------------------------------------------
def check_hybrid_plan(hybrid_plan) -> List[Violation]:
    """Safety of a hybrid (encode x recompute x swap) memory plan.

    Checks, on a :class:`~repro.memory.hybrid.HybridPlan`:

    * **budget** — total selected cost within the policy's step-time
      budget;
    * **dominance** — the hybrid arm's allocated footprint is <= every
      pure arm's under the same budget (the planner's argmin fallback
      makes this structural; a violation means the fallback broke);
    * **chain validity** — every recompute chain ends at its target, each
      link is the sole input of the next (which also makes it acyclic: a
      repeated node would need two distinct successors), and no member is
      an RNG/state-mutating kind the executor cannot replay;
    * **lossy-ancestor regression** — a recompute source carries no
      value-destroying decision (gist Binarize/DPR) and is not itself
      recomputed, so replays always read exact forward values;
    * **liveness** — against independently recomputed uses: every FP32
      map survives its last forward use, undecided stashes survive their
      last backward use, and each decision's replacement tensor (encoded
      stash / prefetch buffer / rebuilt map) covers the backward reads —
      with a swapped recompute-source's prefetch additionally covering
      the *target's* first backward read, where the replay happens.
    """
    from repro.memory.hybrid import (
        CHOICE_GIST,
        CHOICE_RECOMPUTE,
        CHOICE_SWAP,
        NON_RECOMPUTABLE_KINDS,
    )

    graph, schedule = hybrid_plan.graph, hybrid_plan.schedule
    pools_rewritten = hybrid_plan.policy.gist.binarize
    violations: List[Violation] = []

    if hybrid_plan.total_cost_s > hybrid_plan.budget_s * (1 + 1e-9) + 1e-12:
        violations.append(Violation(
            ORACLE_HYBRID,
            f"selected cost {hybrid_plan.total_cost_s:.3e}s exceeds budget "
            f"{hybrid_plan.budget_s:.3e}s",
        ))
    for strategy, footprint in sorted(hybrid_plan.pure_footprints.items()):
        if hybrid_plan.allocated_bytes > footprint:
            violations.append(Violation(
                ORACLE_HYBRID,
                f"hybrid allocated {hybrid_plan.allocated_bytes} bytes > "
                f"pure-{strategy} {footprint} under the same budget",
            ))

    fm: Dict[int, LiveTensor] = {}
    replacement: Dict[int, LiveTensor] = {}
    for t in hybrid_plan.plan.tensors:
        name = t.spec.name
        if t.role == ROLE_FEATURE_MAP and name.endswith(".out"):
            fm[t.node_id] = t
        elif name.endswith((".out.enc", ".out.prefetch", ".out.recomp",
                            ".out.shared")):
            replacement[t.node_id] = t

    for node in graph.nodes:
        nid = node.node_id
        last_fwd, first_bwd, last_bwd = _independent_uses(
            graph, schedule, nid, pools_rewritten
        )
        decision = hybrid_plan.decisions.get(nid)
        t = fm.get(nid)
        if t is None:
            violations.append(Violation(
                ORACLE_HYBRID,
                f"feature map of node {node.name!r} missing from plan",
            ))
            continue
        if t.death < last_fwd:
            violations.append(Violation(
                ORACLE_HYBRID,
                f"{t.spec.name!r} dies at {t.death} before its last "
                f"forward use at {last_fwd}",
            ))
        if decision is None:
            if last_bwd is not None and t.death < last_bwd:
                violations.append(Violation(
                    ORACLE_HYBRID,
                    f"undecided stash {t.spec.name!r} dies at {t.death} "
                    f"before its last backward use at {last_bwd}",
                ))
            continue
        r = replacement.get(nid)
        if r is None:
            violations.append(Violation(
                ORACLE_HYBRID,
                f"{decision.choice} decision for {node.name!r} has no "
                f"replacement tensor in the plan",
            ))
            continue
        if decision.choice == CHOICE_GIST:
            if r.birth > last_fwd:
                violations.append(Violation(
                    ORACLE_HYBRID,
                    f"{r.spec.name!r} born at {r.birth}, after the FP32 "
                    f"map's last forward use at {last_fwd}",
                ))
        elif first_bwd is not None and r.birth > first_bwd:
            violations.append(Violation(
                ORACLE_HYBRID,
                f"{r.spec.name!r} born at {r.birth}, after the first "
                f"backward use at {first_bwd}",
            ))
        if last_bwd is not None and r.death < last_bwd:
            violations.append(Violation(
                ORACLE_HYBRID,
                f"{r.spec.name!r} dies at {r.death} before the last "
                f"backward use at {last_bwd}",
            ))
        if decision.choice == CHOICE_GIST and r.size_bytes != \
                decision.resident_bytes:
            violations.append(Violation(
                ORACLE_HYBRID,
                f"{decision.node_name}: decision prices "
                f"{decision.resident_bytes} resident bytes, plan carries "
                f"{r.size_bytes}",
            ))

    for decision in hybrid_plan.decisions.values():
        if decision.choice != CHOICE_RECOMPUTE:
            continue
        name = decision.node_name
        chain = decision.chain
        if not chain or chain[-1] != decision.node_id:
            violations.append(Violation(
                ORACLE_HYBRID,
                f"{name}: recompute chain {chain} does not end at the "
                f"target node {decision.node_id}",
            ))
            continue
        prev = decision.source_id
        valid = True
        for chain_id in chain:
            chain_node = graph.node(chain_id)
            if chain_node.kind in NON_RECOMPUTABLE_KINDS:
                violations.append(Violation(
                    ORACLE_HYBRID,
                    f"{name}: chain member {chain_node.name!r} is a "
                    f"non-replayable {chain_node.kind!r} op",
                ))
                valid = False
            if list(chain_node.inputs) != [prev]:
                violations.append(Violation(
                    ORACLE_HYBRID,
                    f"{name}: chain member {chain_node.name!r} has inputs "
                    f"{list(chain_node.inputs)}, expected [{prev}]",
                ))
                valid = False
                break
            prev = chain_id
        source = hybrid_plan.decisions.get(decision.source_id)
        if source is not None and source.choice not in (CHOICE_SWAP,):
            violations.append(Violation(
                ORACLE_HYBRID,
                f"{name}: recompute source {source.node_name!r} carries a "
                f"{source.choice}"
                + (f"/{source.encoding}" if source.encoding else "")
                + " decision — replays would read inexact or missing values",
            ))
        if not valid:
            continue
        # The source's surviving representation must be live at the
        # target's first backward read, where the replay happens.
        _, target_first_bwd, _ = _independent_uses(
            graph, schedule, decision.node_id, pools_rewritten
        )
        if target_first_bwd is None:
            continue
        if source is not None and source.choice == CHOICE_SWAP:
            live = replacement.get(decision.source_id)
        else:
            live = fm.get(decision.source_id)
        if live is not None and not (
            live.birth <= target_first_bwd <= live.death
        ):
            violations.append(Violation(
                ORACLE_HYBRID,
                f"{name}: source tensor {live.spec.name!r} "
                f"[{live.birth},{live.death}] is not live at the target's "
                f"first backward read {target_first_bwd}",
            ))
    return violations


# ----------------------------------------------------------------------
# (f) Shared-concat chains
# ----------------------------------------------------------------------
def check_shared_concat(hybrid_plan) -> List[Violation]:
    """Structural safety of shared-concat decisions in a hybrid plan.

    The runtime read is ``terminal_stash[:, :channels]``, so each
    decision is sound iff, per decision:

    * the recorded chain runs from the member to its terminal over
      axis-1 concats, each linked through the next concat's **first**
      input (the ``np.concatenate`` prefix-copy condition) with strictly
      growing channel counts and identical non-channel dims;
    * the terminal carries **no** decision of its own (its FP32 stash is
      kept untouched — the buffer every member re-slices);
    * the terminal's feature map is live through the member's last
      backward read, and both maps carry the chain's alias-group label
      (what makes the allocator price the chain as one region).
    """
    from repro.memory.hybrid import CHOICE_SHARED_CONCAT

    graph, schedule = hybrid_plan.graph, hybrid_plan.schedule
    pools_rewritten = hybrid_plan.policy.gist.binarize
    violations: List[Violation] = []
    fm: Dict[int, LiveTensor] = {
        t.node_id: t for t in hybrid_plan.plan.tensors
        if t.role == ROLE_FEATURE_MAP and t.spec.name.endswith(".out")
    }

    for decision in hybrid_plan.decisions.values():
        if decision.choice != CHOICE_SHARED_CONCAT:
            continue
        name = decision.node_name
        chain = decision.chain
        if (not chain or chain[0] != decision.node_id
                or chain[-1] != decision.source_id):
            violations.append(Violation(
                ORACLE_SHARED_CONCAT,
                f"{name}: chain {chain} does not run from the member "
                f"{decision.node_id} to the terminal {decision.source_id}",
            ))
            continue
        ok = True
        for prev_id, cur_id in zip(chain, chain[1:]):
            prev, cur = graph.node(prev_id), graph.node(cur_id)
            for link in (prev, cur):
                if link.kind != "concat":
                    violations.append(Violation(
                        ORACLE_SHARED_CONCAT,
                        f"{name}: chain member {link.name!r} is a "
                        f"{link.kind!r} op, not a concat",
                    ))
                    ok = False
            if not ok:
                break
            if cur.inputs[0] != prev_id:
                violations.append(Violation(
                    ORACLE_SHARED_CONCAT,
                    f"{name}: {cur.name!r} extends {prev.name!r} at input "
                    f"position {list(cur.inputs).index(prev_id) if prev_id in cur.inputs else '?'}, "
                    f"not position 0 — the prefix-copy property does not hold",
                ))
                ok = False
                break
            if cur.output_shape[1] <= prev.output_shape[1]:
                violations.append(Violation(
                    ORACLE_SHARED_CONCAT,
                    f"{name}: channels do not grow along the chain "
                    f"({prev.name!r} {prev.output_shape[1]} -> "
                    f"{cur.name!r} {cur.output_shape[1]})",
                ))
                ok = False
                break
            if (prev.output_shape[:1] + prev.output_shape[2:]
                    != cur.output_shape[:1] + cur.output_shape[2:]):
                violations.append(Violation(
                    ORACLE_SHARED_CONCAT,
                    f"{name}: non-channel dims differ along the chain "
                    f"({prev.output_shape} vs {cur.output_shape})",
                ))
                ok = False
                break
        if not ok:
            continue
        terminal = hybrid_plan.decisions.get(decision.source_id)
        if terminal is not None:
            violations.append(Violation(
                ORACLE_SHARED_CONCAT,
                f"{name}: terminal {terminal.node_name!r} carries a "
                f"{terminal.choice} decision — the shared buffer must be "
                f"an untouched FP32 keep",
            ))
        _, _, member_last_bwd = _independent_uses(
            graph, schedule, decision.node_id, pools_rewritten
        )
        terminal_fm = fm.get(decision.source_id)
        member_fm = fm.get(decision.node_id)
        if terminal_fm is None or member_fm is None:
            violations.append(Violation(
                ORACLE_SHARED_CONCAT,
                f"{name}: member or terminal feature map missing from plan",
            ))
            continue
        if member_last_bwd is not None and terminal_fm.death < member_last_bwd:
            violations.append(Violation(
                ORACLE_SHARED_CONCAT,
                f"{name}: terminal stash {terminal_fm.spec.name!r} dies at "
                f"{terminal_fm.death}, before the member's last backward "
                f"read at {member_last_bwd}",
            ))
        label = f"concat:{decision.source_id}"
        for t in (member_fm, terminal_fm):
            if t.alias_group != label:
                violations.append(Violation(
                    ORACLE_SHARED_CONCAT,
                    f"{name}: {t.spec.name!r} carries alias label "
                    f"{t.alias_group!r}, expected {label!r}",
                ))
    return violations


# ----------------------------------------------------------------------
# (g) Recurrent unrolling / weight tying
# ----------------------------------------------------------------------
def check_recurrent_unroll(graph, executor=None) -> List[Violation]:
    """Weight-tying and unrolling invariants of recurrent step columns.

    Step nodes sharing one cell object must form a well-ordered unrolled
    column: exactly one parameter owner at ``t == 0``, unique timesteps,
    every ``t > 0`` step chained (via its state input) to the same cell's
    ``t - 1`` step, and cell dimensions consistent across the column.
    With an ``executor``, additionally verifies the tie is *physical*:
    each step's runtime parameter arrays must be the owner's very ndarray
    objects, not equal copies (copies would silently untie the weights
    after the first optimiser update).
    """
    violations: List[Violation] = []
    columns: Dict[int, List] = {}
    for node in graph.nodes:
        if node.kind not in ("lstm_step", "rnn_step"):
            continue
        columns.setdefault(id(node.layer.cell), []).append(node)

    for nodes in sorted(columns.values(), key=lambda ns: ns[0].node_id):
        cell = nodes[0].layer.cell
        label = f"cell of {nodes[0].name!r}"
        owners = [n for n in nodes if n.layer.owns_params]
        if len(owners) != 1:
            violations.append(Violation(
                ORACLE_RECURRENT,
                f"{label}: {len(owners)} parameter owners (expected "
                f"exactly one t=0 step)",
            ))
        steps = {}
        for n in nodes:
            t = n.layer.t
            if t in steps:
                violations.append(Violation(
                    ORACLE_RECURRENT,
                    f"{label}: duplicate timestep t={t} "
                    f"({steps[t].name!r} and {n.name!r})",
                ))
            steps[t] = n
            if (n.layer.input_size != cell.input_size
                    or n.layer.hidden_size != cell.hidden_size):
                violations.append(Violation(
                    ORACLE_RECURRENT,
                    f"{n.name!r}: step dims ({n.layer.input_size}, "
                    f"{n.layer.hidden_size}) disagree with the shared "
                    f"cell ({cell.input_size}, {cell.hidden_size})",
                ))
            if n.layer.t == 0:
                if len(n.inputs) != 1:
                    violations.append(Violation(
                        ORACLE_RECURRENT,
                        f"{n.name!r}: t=0 step has {len(n.inputs)} inputs "
                        f"(expected 1: the initial state is implicit zero)",
                    ))
                continue
            if len(n.inputs) != 2:
                violations.append(Violation(
                    ORACLE_RECURRENT,
                    f"{n.name!r}: t={n.layer.t} step has {len(n.inputs)} "
                    f"inputs (expected [x_t, state])",
                ))
                continue
            state_producer = graph.node(n.inputs[1])
            prev_layer = state_producer.layer
            if (state_producer.kind not in ("lstm_step", "rnn_step")
                    or prev_layer.cell is not cell
                    or prev_layer.t != n.layer.t - 1):
                violations.append(Violation(
                    ORACLE_RECURRENT,
                    f"{n.name!r}: state input comes from "
                    f"{state_producer.name!r}, not the same cell's "
                    f"t={n.layer.t - 1} step",
                ))
        if executor is None or not owners:
            continue
        owner = owners[0]
        owner_params = executor.params[owner.node_id]
        for n in nodes:
            if n is owner:
                continue
            for pname, arr in executor.params[n.node_id].items():
                tied = owner_params.get(pname)
                if tied is None or arr is not tied:
                    violations.append(Violation(
                        ORACLE_RECURRENT,
                        f"{n.name!r}: parameter {pname!r} is not the "
                        f"owner's array object — the weights are untied",
                    ))
    return violations


def check_measured_bytes(codec: Encoding, x: np.ndarray) -> List[Violation]:
    """The static size model must match the measured runtime encode."""
    ctx = {}
    if isinstance(codec, SSDCEncoding):
        ctx["sparsity"] = (
            float(np.mean(np.asarray(x) == 0)) if x.size else 1.0
        )
    elif isinstance(codec, RunLengthEncoding):
        # The exact-model context: run structure is not a function of
        # sparsity alone, so the oracle hands the codec its own stats.
        ctx["nnz"], ctx["num_runs"] = rle_stats(np.asarray(x))
    try:
        measured = codec.measure_bytes(codec.encode(x))
    except Exception as exc:  # noqa: BLE001
        return [Violation(
            ORACLE_ROUNDTRIP,
            f"{codec.name} measure crashed on shape {x.shape}: "
            f"{type(exc).__name__}: {exc}",
        )]
    model = codec.encoded_bytes(int(np.asarray(x).size), **ctx)
    if measured != model:
        return [Violation(
            ORACLE_ROUNDTRIP,
            f"{codec.name} static model says {model} bytes, measured "
            f"encode is {measured} (shape {x.shape})",
        )]
    return []
