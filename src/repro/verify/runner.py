"""Differential fuzzing runner: seeds -> graphs -> oracles -> report.

One :func:`verify_seed` call runs the full oracle battery against the
graph a seed generates:

=====================  ==============================================
oracle                 property checked
=====================  ==============================================
allocator-safety       no two live-overlapping tensors share a group,
                       for all three policies, on baseline AND every
                       Gist-rewritten plan
policy-bounds          greedy-size <= first-fit <= none;
                       static total >= dynamic peak >= clique bound
plan-safety            no buffer's death precedes its true last use
                       (differential vs an independent last-use walk);
                       lossless Gist never allocates more than baseline
decision-bytes         every EncodingDecision.encoded_bytes matches a
                       measured encode() on realistic data
encoding-roundtrip     lossless codecs bit-exact, lossy codecs within
                       declared bounds, on adversarial inputs
hybrid-plan            hybrid planner budget/dominance/chain/liveness
                       safety; hybrid footprint <= every pure arm
shared-concat          every shared-concat decision re-slices a kept
                       concat terminal along a prefix-linked chain
                       that stays live and alias-labelled
recurrent-unroll       weight-tied step columns are well-ordered (one
                       t=0 owner, chained states, physically shared
                       parameter arrays)
rewrite-equivalence    the rewrite passes (fusion / pool-argmax / CSE /
                       dead-stash / inplace) leave per-step losses and
                       every surviving gradient bit-identical under the
                       lossless policies
backend-differential   every kernel-registry arm agrees with its op's
                       ground-truth arm on shared inputs: exact arms
                       bit-for-bit, tolerance arms within their
                       registered bound (integer outputs always exact)
distributed-replica    replica shards reassemble the serial batch
                       byte-identically; the pairwise-tree gradient
                       merge is arrival-order invariant; wire codecs
                       round-trip live gradients (lossless bit-exact,
                       lossy deterministic); a step through the pool
                       pipeline merges to the same bits as direct
                       execution
=====================  ==============================================

Violations carry the seed, so ``repro fuzz --seeds 1 --start-seed S``
replays any failure; :func:`minimize` then shrinks the graph by replaying
the same seed at smaller ``max_ops``.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.policy import GistConfig
from repro.core.schedule_builder import build_gist_plan
from repro.dtypes import FP8, FP16
from repro.encodings.base import IdentityEncoding
from repro.encodings.binarize import BinarizeEncoding
from repro.encodings.dpr import dpr_encoding
from repro.encodings.groupquant import GroupQuantEncoding
from repro.encodings.runlength import RunLengthEncoding
from repro.encodings.ssdc import SSDCEncoding
from repro.graph.graph import Graph
from repro.graph.schedule import TrainingSchedule
from repro.memory.allocator import (
    POLICY_FIRST_FIT,
    POLICY_GREEDY_SIZE,
    POLICY_NO_SHARING,
    StaticAllocator,
)
from repro.memory.dynamic import simulate_dynamic
from repro.memory.planner import build_memory_plan
from repro.verify.differential import verify_backends
from repro.verify.fuzzer import DEFAULT_MAX_OPS, GraphFuzzer
from repro.verify.oracles import (
    Violation,
    check_allocator_safety,
    check_decision_bytes,
    check_hybrid_plan,
    check_measured_bytes,
    check_plan_safety,
    check_policy_bounds,
    check_recurrent_unroll,
    check_roundtrip,
    check_shared_concat,
    interval_clique_bound,
)

_ALL_POLICIES = (POLICY_GREEDY_SIZE, POLICY_FIRST_FIT, POLICY_NO_SHARING)

#: Gist configurations each fuzzed graph is planned under.
_PLAN_CONFIGS = (
    ("lossless", GistConfig.lossless()),
    ("full-fp16", GistConfig()),
    ("full-fp8", GistConfig.full("fp8")),
)


@dataclass
class FuzzReport:
    """Outcome of a fuzzing batch."""

    seeds_run: int = 0
    graphs_verified: int = 0
    violations: List[Violation] = field(default_factory=list)
    #: Work units that could not be verified at all (worker exception,
    #: crash or timeout), each carrying its payload for replay.
    failed_units: List[dict] = field(default_factory=list)
    #: Smallest failing graph found by the minimizer, if any seed failed.
    minimized: Optional[Graph] = None

    @property
    def ok(self) -> bool:
        return not self.violations and not self.failed_units

    def to_json(self) -> dict:
        """Stable JSON form; byte-identical for equivalent batches.

        ``json.dumps(report.to_json(), sort_keys=True)`` is the
        determinism oracle used by the orchestration gate: the bytes
        must not depend on worker count or completion order.
        """
        return {
            "seeds_run": self.seeds_run,
            "graphs_verified": self.graphs_verified,
            "violations": [asdict(v) for v in self.violations],
            "failed_units": self.failed_units,
            "minimized_summary": (self.minimized.summary()
                                  if self.minimized is not None else None),
            "ok": self.ok,
        }


def _codec_battery(rng):
    """The codecs the round-trip oracle exercises (fresh instances)."""
    return [
        IdentityEncoding(),
        BinarizeEncoding(),
        SSDCEncoding(),
        SSDCEncoding(value_dtype=FP16),
        SSDCEncoding(value_dtype=FP8),
        RunLengthEncoding(),
        dpr_encoding("fp16"),
        dpr_encoding("fp10"),
        dpr_encoding("fp8"),
        GroupQuantEncoding(bits=int(rng.choice([1, 2, 4, 8])),
                           group_size=int(rng.choice([7, 32, 256]))),
        GroupQuantEncoding(bits=4, group_size=256),
    ]


def _adversarial_inputs(rng):
    """Inputs picked to break codecs: the paper's data never looks like
    this, which is exactly why hand-written tests missed the padding skew.
    """
    n_unaligned = int(rng.integers(1, 700))
    return [
        np.zeros((0,), np.float32),                       # empty
        np.zeros((int(rng.integers(1, 600)),), np.float32),   # all-zero
        np.full((int(rng.integers(1, 300)),), 1e-41, np.float32),  # denormal
        rng.normal(0, 1, n_unaligned).astype(np.float32),  # unaligned size
        np.linspace(5, 6, 300, dtype=np.float32),          # padding-skew repro
        np.full((65,), -3.75, np.float32),                 # constant negative
        rng.normal(0, 1e30, 50).astype(np.float32),        # clamp range
        np.where(rng.random(257) < 0.8, 0.0,
                 rng.normal(0, 2, 257)).astype(np.float32),  # sparse
    ]


def verify_encodings(seed: int) -> List[Violation]:
    """Round-trip + size-model oracle over the codec battery."""
    rng = np.random.default_rng(seed + 0xE4C0DE)
    violations: List[Violation] = []
    inputs = _adversarial_inputs(rng)
    for codec in _codec_battery(rng):
        for x in inputs:
            violations += check_roundtrip(codec, x)
            violations += check_measured_bytes(codec, x)
    return [Violation(v.oracle, v.detail, seed, v.subject or "encodings")
            for v in violations]


def verify_graph(
    graph: Graph, seed: Optional[int] = None, strict: bool = False
) -> List[Violation]:
    """Run the allocator/bounds/plan oracles against one graph.

    ``strict`` additionally enforces the non-theorem ``greedy-size <=
    first-fit`` leg (see :func:`repro.verify.oracles.check_policy_bounds`).
    """
    violations: List[Violation] = []
    schedule = TrainingSchedule(graph)
    baseline = build_memory_plan(graph, schedule)

    # (a) allocator safety + (b) cross-model bounds on the baseline table.
    totals = {}
    for policy in _ALL_POLICIES:
        result = StaticAllocator(policy).allocate(baseline.tensors)
        totals[policy] = result.total_bytes
        violations += check_allocator_safety(result, baseline.tensors)
    dynamic_peak = simulate_dynamic(baseline.tensors,
                                    schedule.num_steps).peak_bytes
    clique = interval_clique_bound(baseline.tensors)
    violations += check_policy_bounds(
        totals, totals[POLICY_GREEDY_SIZE], dynamic_peak, clique,
        strict=strict,
    )

    # (c) plan safety for every Gist configuration, and allocator safety
    # again on the *rewritten* liveness tables (shorter, denser intervals
    # are where a grouping bug would hide).
    baseline_alloc = totals[POLICY_GREEDY_SIZE]
    rng = np.random.default_rng((seed or 0) + 0x91A7)
    for label, config in _PLAN_CONFIGS:
        plan = build_gist_plan(graph, config, schedule=schedule)
        gist_alloc = StaticAllocator().allocate(plan.plan.tensors).total_bytes
        violations += [
            Violation(v.oracle, v.detail, seed, label)
            for v in check_plan_safety(
                plan,
                baseline_allocated=baseline_alloc,
                gist_allocated=gist_alloc,
            )
        ]
        violations += [
            Violation(v.oracle, v.detail, seed, label)
            for v in check_decision_bytes(plan, rng)
        ]
        for policy in _ALL_POLICIES:
            result = StaticAllocator(policy).allocate(plan.plan.tensors)
            violations += [
                Violation(v.oracle, v.detail, seed, label)
                for v in check_allocator_safety(result, plan.plan.tensors)
            ]

    # (e) hybrid planner: budget/dominance/chain/liveness safety, plus
    # allocator safety on the hybrid-rewritten liveness table.
    from repro.memory.hybrid import build_hybrid_plan

    hybrid = build_hybrid_plan(graph, schedule=schedule)
    violations += [
        Violation(v.oracle, v.detail, seed, "hybrid")
        for v in check_hybrid_plan(hybrid)
    ]
    violations += [
        Violation(v.oracle, v.detail, seed, "hybrid")
        for v in check_shared_concat(hybrid)
    ]
    hybrid_result = StaticAllocator().allocate(hybrid.plan.tensors)
    violations += [
        Violation(v.oracle, v.detail, seed, "hybrid")
        for v in check_allocator_safety(hybrid_result, hybrid.plan.tensors)
    ]

    # (e') pure shared-concat arm, when the graph has a concat chain at
    # all: the arm concentrates every chain decision in one plan, which
    # is where a prefix-linkage or alias-labelling bug would surface.
    from repro.core.policy import STRATEGY_SHARED_CONCAT, HybridPolicy
    from repro.memory.shared_concat import find_concat_chains

    if find_concat_chains(graph):
        arm = build_hybrid_plan(
            graph, HybridPolicy(strategy=STRATEGY_SHARED_CONCAT),
            schedule=schedule,
        )
        for checker in (check_hybrid_plan, check_shared_concat):
            violations += [
                Violation(v.oracle, v.detail, seed, "shared-concat-arm")
                for v in checker(arm)
            ]
        arm_result = StaticAllocator().allocate(arm.plan.tensors)
        violations += [
            Violation(v.oracle, v.detail, seed, "shared-concat-arm")
            for v in check_allocator_safety(arm_result, arm.plan.tensors)
        ]

    # (e'') recurrent unrolling: weight-tying structure, and — because a
    # tie that is merely value-equal would silently break on the first
    # optimiser step — the executor's physical parameter sharing.
    if any(n.kind in ("lstm_step", "rnn_step") for n in graph.nodes):
        from repro.train.executor import GraphExecutor

        executor = GraphExecutor(graph, seed=(seed or 0))
        violations += [
            Violation(v.oracle, v.detail, seed, "recurrent")
            for v in check_recurrent_unroll(graph, executor)
        ]

    # (f) rewrite equivalence: the rewrite passes applied to this graph
    # must train bit-identically under every lossless policy (no-op when
    # nothing rewrites).
    from repro.rewrite import check_rewrite_equivalence

    violations += check_rewrite_equivalence(graph, seed=seed or 0)
    return [Violation(v.oracle, v.detail, seed, v.subject)
            for v in violations]


def verify_seed(
    seed: int, max_ops: int = DEFAULT_MAX_OPS, strict: bool = False,
    rewrite_shapes: bool = False, recurrent_shapes: bool = False,
) -> List[Violation]:
    """Full oracle battery for one seed: fuzzed graph, codec round-trips
    and kernel-backend agreement on shared randomized inputs.

    ``rewrite_shapes`` generates graphs biased toward rewrite-pass
    triggers and additionally runs the whole plan/allocator battery on
    the *rewritten* graph (rewriting must not manufacture an unsafe
    plan), on top of the rewrite-equivalence oracle every graph gets.

    ``recurrent_shapes`` switches the fuzzer to its sequence genre
    (unrolled LSTM/RNN columns), which routes every seed through the
    recurrent-unroll oracle as well.
    """
    graph = GraphFuzzer(seed).graph(max_ops=max_ops,
                                    rewrite_shapes=rewrite_shapes,
                                    recurrent_shapes=recurrent_shapes)
    violations = verify_graph(graph, seed, strict=strict)
    if rewrite_shapes:
        from repro.rewrite import apply_passes

        result = apply_passes(graph)
        if result.changed:
            violations += verify_graph(result.graph, seed, strict=strict)
    from repro.verify.distributed import check_distributed

    return (violations
            + verify_encodings(seed)
            + verify_backends(seed)
            + check_distributed(seed))


def minimize(seed: int, max_ops: int = DEFAULT_MAX_OPS,
             strict: bool = False, rewrite_shapes: bool = False,
             recurrent_shapes: bool = False):
    """Smallest reproduction of a failing seed.

    Replays the same seed at growing ``max_ops`` (the fuzzer's decision
    stream makes each size a prefix of the next) and returns the first
    graph that still violates, with its violations.  Falls back to the
    full-size graph when only the encoding oracles (graph-independent)
    fired.
    """
    for k in range(1, max_ops + 1):
        graph = GraphFuzzer(seed).graph(max_ops=k,
                                        rewrite_shapes=rewrite_shapes,
                                        recurrent_shapes=recurrent_shapes)
        violations = verify_graph(graph, seed, strict=strict)
        if violations:
            return graph, violations
    graph = GraphFuzzer(seed).graph(max_ops=max_ops,
                                    rewrite_shapes=rewrite_shapes,
                                    recurrent_shapes=recurrent_shapes)
    return graph, verify_seed(seed, max_ops, strict=strict,
                              rewrite_shapes=rewrite_shapes,
                              recurrent_shapes=recurrent_shapes)


def fuzz_work_units(
    seed_list: Sequence[int],
    max_ops: int = DEFAULT_MAX_OPS,
    strict: bool = False,
    rewrite_shapes: bool = False,
    recurrent_shapes: bool = False,
) -> List["WorkUnit"]:
    """One payload-complete work unit per seed (kind ``fuzz-seed``)."""
    from repro.orchestrate import WorkUnit

    return [
        WorkUnit("fuzz-seed", f"seed:{seed}",
                 {"seed": int(seed), "max_ops": int(max_ops),
                  "strict": bool(strict),
                  "rewrite_shapes": bool(rewrite_shapes),
                  "recurrent_shapes": bool(recurrent_shapes)})
        for seed in seed_list
    ]


def run_fuzz_unit(payload: dict) -> dict:
    """Work-unit executor for kind ``fuzz-seed`` (runs in any process)."""
    violations = verify_seed(payload["seed"], payload["max_ops"],
                             strict=payload["strict"],
                             # .get: journals written before these genres
                             # existed replay as default-mode seeds.
                             rewrite_shapes=payload.get("rewrite_shapes",
                                                        False),
                             recurrent_shapes=payload.get("recurrent_shapes",
                                                          False))
    return {"seed": payload["seed"],
            "violations": [asdict(v) for v in violations]}


def merge_fuzz_results(
    units: Sequence["WorkUnit"],
    results: Dict[str, "UnitResult"],
    stop_on_first: bool = True,
) -> FuzzReport:
    """Deterministic, order-independent aggregation of per-seed results.

    Walks units in seed order and reproduces the serial runner's
    semantics exactly: with ``stop_on_first`` the report covers seeds up
    to and including the first one that violated (or failed to verify);
    results for any later seeds that a parallel run happened to complete
    are ignored.  The output is therefore a pure function of the per-seed
    results, independent of worker count and completion order.
    """
    report = FuzzReport()
    for unit in units:
        result = results.get(unit.key)
        if result is None:  # never scheduled (early stop upstream)
            break
        report.seeds_run += 1
        if not result.ok:
            report.failed_units.append({
                "key": unit.key,
                "payload": unit.payload,
                "error": {"type": result.error["type"],
                          "message": result.error["message"]},
                "attempts": result.attempts,
            })
            if stop_on_first:
                break
            continue
        violations = [Violation(**v) for v in result.value["violations"]]
        if violations:
            report.violations += violations
            if stop_on_first:
                break
        else:
            report.graphs_verified += 1
    return report


def run_fuzz(
    num_seeds: int,
    start_seed: int = 0,
    max_ops: int = DEFAULT_MAX_OPS,
    stop_on_first: bool = True,
    seeds: Optional[Sequence[int]] = None,
    strict: bool = False,
    workers: int = 1,
    journal: Union[None, str, "RunJournal"] = None,
    timeout_s: Optional[float] = None,
    retries: int = 1,
    rewrite_shapes: bool = False,
    recurrent_shapes: bool = False,
) -> FuzzReport:
    """Verify ``num_seeds`` consecutive seeds (or an explicit seed list).

    Seeds are sharded as work units across ``workers`` processes (see
    :mod:`repro.orchestrate`); the merged report is byte-identical for
    any worker count.  A worker exception, crash or timeout is recorded
    in ``report.failed_units`` with its payload — it never aborts the
    batch.  With ``journal`` set, completed seeds stream to a JSONL run
    journal and a re-invocation resumes from it.
    """
    from repro.orchestrate import run_units

    seed_list = (list(seeds) if seeds is not None
                 else list(range(start_seed, start_seed + num_seeds)))
    units = fuzz_work_units(seed_list, max_ops, strict, rewrite_shapes,
                            recurrent_shapes)
    stop_when = None
    if stop_on_first:
        stop_when = lambda r: (not r.ok) or bool(r.value["violations"])
    results = run_units(units, workers=workers, timeout_s=timeout_s,
                        retries=retries, journal=journal,
                        stop_when=stop_when)
    report = merge_fuzz_results(units, results, stop_on_first)
    if stop_on_first and report.violations:
        report.minimized, _ = minimize(report.violations[0].seed, max_ops,
                                       strict=strict,
                                       rewrite_shapes=rewrite_shapes,
                                       recurrent_shapes=recurrent_shapes)
    return report
