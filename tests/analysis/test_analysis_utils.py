"""Tests for sparsity models and table rendering."""

import pytest

from repro.analysis import (
    ConstantSparsity,
    DEFAULT_SPARSITY_MODEL,
    DepthSparsityModel,
    MeasuredSparsity,
    format_breakdown,
    format_series,
    format_table,
)
from repro.models import vgg16, tiny_cnn


class TestSparsityModels:
    def test_constant(self, tiny_graph):
        model = ConstantSparsity(0.7)
        relu1 = tiny_graph.node_by_name("relu1")
        assert model.sparsity(tiny_graph, relu1.node_id) == 0.7

    def test_constant_validation(self):
        with pytest.raises(ValueError):
            ConstantSparsity(1.2)

    def test_depth_model_increases_with_depth(self):
        g = vgg16(batch_size=1)
        model = DepthSparsityModel(base=0.5, gain=0.35)
        shallow = model.sparsity(g, g.node_by_name("relu1_1").node_id)
        deep = model.sparsity(g, g.node_by_name("relu5_3").node_id)
        assert deep > shallow
        assert 0.5 <= shallow <= deep <= 0.85

    def test_depth_model_pool_attenuation(self, tiny_graph):
        model = DepthSparsityModel(base=0.8, gain=0.0)
        relu1 = tiny_graph.node_by_name("relu1")
        pool1 = tiny_graph.node_by_name("pool1")
        s_relu = model.sparsity(tiny_graph, relu1.node_id)
        s_pool = model.sparsity(tiny_graph, pool1.node_id)
        assert s_pool == pytest.approx(s_relu**4)  # 2x2 window

    def test_depth_model_non_relu_is_dense(self, tiny_graph):
        model = DepthSparsityModel()
        conv1 = tiny_graph.node_by_name("conv1")
        assert model.sparsity(tiny_graph, conv1.node_id) == 0.0

    def test_depth_model_validation(self):
        with pytest.raises(ValueError):
            DepthSparsityModel(base=0.9, gain=0.3)  # sum > 1

    def test_measured_with_fallback(self, tiny_graph):
        model = MeasuredSparsity({"relu1": 0.9},
                                 fallback=ConstantSparsity(0.1))
        relu1 = tiny_graph.node_by_name("relu1")
        relu2 = tiny_graph.node_by_name("relu2")
        assert model.sparsity(tiny_graph, relu1.node_id) == 0.9
        assert model.sparsity(tiny_graph, relu2.node_id) == 0.1

    def test_default_model_in_paper_band(self):
        g = vgg16(batch_size=1)
        deep_conv = DEFAULT_SPARSITY_MODEL.sparsity(
            g, g.node_by_name("relu5_3").node_id
        )
        deepest = DEFAULT_SPARSITY_MODEL.sparsity(
            g, g.node_by_name("relu7").node_id
        )
        assert deep_conv > 0.75
        assert deepest > 0.8  # the paper's "going even over 80%"


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["name", "mfr"], [["alexnet", 2.0], ["vgg", 1.6]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "alexnet" in lines[2]
        assert "2.000" in lines[2]

    def test_format_table_rejects_ragged(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_format_series(self):
        text = format_series("acc", [0.5, 0.25])
        assert text.startswith("acc:")
        assert "0.500" in text

    def test_format_breakdown_percentages(self):
        text = format_breakdown("vgg16", {"stashed": 75, "other": 25})
        assert "75.0%" in text
        assert "total=100" in text


class TestExport:
    def test_collect_and_export(self, tmp_path):
        import json

        from repro.analysis import collect_headline_results, export_json

        data = collect_headline_results(batch_size=8, models=["alexnet"])
        assert set(data) == {"alexnet"}
        entry = data["alexnet"]
        assert entry["mfr_full"] > entry["mfr_lossless"] > 1.0
        assert 0 <= entry["vdnn_overhead_frac"] <= entry["naive_swap_overhead_frac"]

        path = export_json(tmp_path / "out.json", batch_size=8,
                           models=["alexnet"])
        loaded = json.loads(path.read_text())
        assert loaded["alexnet"]["batch_size"] == 8


class TestTimeline:
    def test_sparkline_peak_is_full_block(self):
        from repro.analysis import sparkline

        line = sparkline([0, 1, 2, 4])
        assert line[-1] == "█"
        assert len(line) == 4

    def test_sparkline_empty(self):
        from repro.analysis import sparkline

        assert sparkline([]) == ""

    def test_sparkline_buckets_long_series(self):
        from repro.analysis import sparkline

        line = sparkline(list(range(1000)), width=50)
        assert len(line) <= 50
        assert line[-1] == "█"  # the peak survives bucketing

    def test_sparkline_all_zero(self):
        from repro.analysis import sparkline

        assert set(sparkline([0, 0, 0])) == {" "}

    def test_memory_timeline(self, tiny_graph):
        from repro.analysis import memory_timeline
        from repro.memory import build_memory_plan

        text = memory_timeline(build_memory_plan(tiny_graph).tensors)
        assert "peak" in text
