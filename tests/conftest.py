"""Shared fixtures and the numerical gradient-check harness."""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np
import pytest

from repro.graph import Graph, GraphBuilder
from repro.layers import (
    Conv2D,
    Dense,
    MaxPool2D,
    ReLU,
    SoftmaxCrossEntropy,
)
from repro.layers.base import Layer, OpContext


class DictContext(OpContext):
    """Standalone OpContext for single-layer tests."""

    def __init__(self):
        self.state: Dict[str, np.ndarray] = {}
        self.input_value = None
        self.output_value = None

    def save_state(self, key, value):
        self.state[key] = value

    def get_state(self, key):
        return self.state[key]

    def stashed_input(self, index: int = 0):
        assert self.input_value is not None, "input was not recorded"
        return self.input_value

    def stashed_output(self):
        assert self.output_value is not None, "output was not recorded"
        return self.output_value


def run_layer(layer: Layer, xs: Sequence[np.ndarray], params=None, train=True):
    """Forward a layer through a fresh DictContext; returns (y, ctx)."""
    params = params or {}
    ctx = DictContext()
    ctx.input_value = xs[0]
    y = layer.forward(xs, params, ctx, train=train)
    ctx.output_value = y
    return y, ctx


def numerical_gradient(f, x: np.ndarray, eps: float = 1e-3) -> np.ndarray:
    """Central-difference gradient of scalar-valued ``f`` at ``x``."""
    grad = np.zeros_like(x, dtype=np.float64)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        fp = f()
        x[idx] = orig - eps
        fm = f()
        x[idx] = orig
        grad[idx] = (fp - fm) / (2 * eps)
        it.iternext()
    return grad


def check_layer_gradients(layer, xs, params=None, rtol=1e-2, atol=1e-4,
                          train=True):
    """Compare analytic layer gradients with central differences.

    Uses a fixed upstream gradient and the scalar objective
    ``sum(dy * forward(x))`` so both input and parameter gradients are
    exercised.
    """
    params = params or {}
    xs = [np.asarray(x, dtype=np.float64).astype(np.float32) for x in xs]
    y0, ctx = run_layer(layer, xs, params, train=train)
    rng = np.random.default_rng(42)
    dy = rng.normal(0, 1, y0.shape).astype(np.float32)

    dxs, dparams = layer.backward(dy, params, ctx)

    def objective():
        y, _ = run_layer(layer, xs, params, train=train)
        return float((y.astype(np.float64) * dy).sum())

    for i, x in enumerate(xs):
        num = numerical_gradient(objective, x)
        np.testing.assert_allclose(
            dxs[i], num, rtol=rtol, atol=atol,
            err_msg=f"input gradient {i} mismatch for {type(layer).__name__}",
        )
    for name, p in params.items():
        num = numerical_gradient(objective, p)
        np.testing.assert_allclose(
            dparams[name], num, rtol=rtol, atol=atol,
            err_msg=f"param gradient {name!r} mismatch for {type(layer).__name__}",
        )


@pytest.fixture
def rng():
    return np.random.default_rng(7)


@pytest.fixture
def tiny_graph() -> Graph:
    """conv-relu-pool-conv-relu-dense-loss graph at trivially small size."""
    b = GraphBuilder("fixture_tiny", (4, 3, 8, 8))
    x = b.add(Conv2D(4, 3, pad=1), b.input, name="conv1")
    x = b.add(ReLU(), x, name="relu1")
    x = b.add(MaxPool2D(2, 2), x, name="pool1")
    x = b.add(Conv2D(8, 3, pad=1), x, name="conv2")
    x = b.add(ReLU(), x, name="relu2")
    x = b.add(Dense(4), x, name="fc")
    x = b.add(SoftmaxCrossEntropy(), x, name="loss")
    b.mark_output(x)
    return b.build()
