"""Tests for stash classification (paper Figure 3 semantics)."""

from repro.core import (
    STASH_OTHER,
    STASH_RELU_CONV,
    STASH_RELU_POOL,
    classify_all_stashes,
    classify_stash,
    stash_bytes_by_class,
)
from repro.graph import GraphBuilder, TrainingSchedule
from repro.layers import (
    Add,
    AvgPool2D,
    BatchNorm2D,
    Concat,
    Conv2D,
    Dense,
    LocalResponseNorm,
    MaxPool2D,
    ReLU,
    SoftmaxCrossEntropy,
)


def classify_by_name(graph):
    infos = classify_all_stashes(graph)
    return {graph.node(nid).name: info.stash_class for nid, info in infos.items()}


class TestClassification:
    def test_relu_pool(self, tiny_graph):
        classes = classify_by_name(tiny_graph)
        assert classes["relu1"] == STASH_RELU_POOL

    def test_relu_conv_and_relu_dense(self, tiny_graph):
        classes = classify_by_name(tiny_graph)
        assert classes["relu2"] == STASH_RELU_CONV  # feeds Dense

    def test_pool_of_relu_feeding_conv_is_ssdc(self, tiny_graph):
        classes = classify_by_name(tiny_graph)
        assert classes["pool1"] == STASH_RELU_CONV

    def test_input_is_other(self, tiny_graph):
        classes = classify_by_name(tiny_graph)
        assert classes["input"] == STASH_OTHER  # conv1 stashes the images

    def test_immediate_maps_not_classified(self, tiny_graph):
        classes = classify_by_name(tiny_graph)
        assert "conv1" not in classes  # conv output dies in forward

    def test_relu_feeding_lrn_is_other(self):
        b = GraphBuilder("g", (2, 4, 8, 8))
        x = b.add(Conv2D(4, 3, pad=1), b.input, name="conv")
        x = b.add(ReLU(), x, name="relu")
        x = b.add(LocalResponseNorm(3), x, name="lrn")
        x = b.add(Dense(2), x, name="fc")
        x = b.add(SoftmaxCrossEntropy(), x, name="loss")
        b.mark_output(x)
        g = b.build()
        assert classify_by_name(g)["relu"] == STASH_OTHER

    def test_relu_feeding_concat_only_is_binarize_eligible(self):
        # Concat's backward needs nothing, so the ReLU output's only
        # backward user is ReLU itself — the 1-bit mask suffices.
        b = GraphBuilder("g", (2, 4, 8, 8))
        r1 = b.add(ReLU(), b.add(Conv2D(4, 3, pad=1), b.input, name="c1"),
                   name="r1")
        r2 = b.add(ReLU(), b.add(Conv2D(4, 3, pad=1), b.input, name="c2"),
                   name="r2")
        cat = b.add(Concat(), [r1, r2], name="cat")
        x = b.add(Dense(2), cat, name="fc")
        x = b.add(SoftmaxCrossEntropy(), x, name="loss")
        b.mark_output(x)
        g = b.build()
        classes = classify_by_name(g)
        assert classes["r1"] == STASH_RELU_POOL
        assert classes["cat"] == STASH_OTHER  # dense needs its values

    def test_relu_feeding_pool_and_conv_is_ssdc(self):
        # A value consumer (conv) disqualifies Binarize even when a pool is
        # also a consumer.
        b = GraphBuilder("g", (2, 4, 8, 8))
        r = b.add(ReLU(), b.add(Conv2D(4, 3, pad=1), b.input, name="c1"),
                  name="r")
        p = b.add(MaxPool2D(2, 2), r, name="pool")
        c2 = b.add(Conv2D(4, 3, pad=1), r, name="c2")
        p2 = b.add(MaxPool2D(2, 2), c2, name="pool2")
        m = b.add(Add(), [p, p2], name="add")
        x = b.add(Dense(2), m, name="fc")
        x = b.add(SoftmaxCrossEntropy(), x, name="loss")
        b.mark_output(x)
        g = b.build()
        assert classify_by_name(g)["r"] == STASH_RELU_CONV

    def test_resnet_block_relu_is_ssdc(self):
        from repro.models import resnet_cifar

        g = resnet_cifar(14, batch_size=2)
        classes = classify_by_name(g)
        assert classes["s1b0_relu"] == STASH_RELU_CONV

    def test_bn_input_is_other(self):
        from repro.models import resnet_cifar

        g = resnet_cifar(14, batch_size=2)
        classes = classify_by_name(g)
        # conv outputs feeding batch-norm are stashed for BN's backward.
        assert classes["conv1"] == STASH_OTHER

    def test_avgpool_input_not_stashed_by_pool(self):
        b = GraphBuilder("g", (2, 4, 8, 8))
        x = b.add(Conv2D(4, 3, pad=1), b.input, name="conv")
        x = b.add(ReLU(), x, name="relu")
        x = b.add(AvgPool2D(2, 2), x, name="avg")
        x = b.add(Dense(2), x, name="fc")
        x = b.add(SoftmaxCrossEntropy(), x, name="loss")
        b.mark_output(x)
        g = b.build()
        classes = classify_by_name(g)
        # relu's only backward user is itself -> mask-only -> binarize class.
        assert classes["relu"] == STASH_RELU_POOL

    def test_not_stashed_returns_none(self, tiny_graph):
        schedule = TrainingSchedule(tiny_graph)
        conv1 = tiny_graph.node_by_name("conv1")
        assert classify_stash(tiny_graph, schedule, conv1.node_id) is None


class TestStashBytesBreakdown:
    def test_vgg16_matches_paper_fractions(self):
        """Paper: VGG16 has ~40% ReLU-Pool and ~49% ReLU-Conv."""
        from repro.models import vgg16

        bb = stash_bytes_by_class(vgg16(batch_size=8))
        total = sum(bb.values())
        assert 0.35 < bb[STASH_RELU_POOL] / total < 0.45
        assert 0.45 < bb[STASH_RELU_CONV] / total < 0.65
        assert bb[STASH_OTHER] / total < 0.05

    def test_all_classes_keyed(self, tiny_graph):
        bb = stash_bytes_by_class(tiny_graph)
        assert set(bb) == {STASH_RELU_POOL, STASH_RELU_CONV, STASH_OTHER}

    def test_relu_dominates_convnets(self):
        from repro.models import overfeat

        bb = stash_bytes_by_class(overfeat(batch_size=4))
        total = sum(bb.values())
        relu_frac = (bb[STASH_RELU_POOL] + bb[STASH_RELU_CONV]) / total
        assert relu_frac > 0.7  # the paper's central Figure 3 observation
