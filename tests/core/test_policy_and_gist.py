"""Tests for GistConfig and the Gist facade."""

import pytest

from repro.core import (
    Gist,
    GistConfig,
    PAPER_DPR_FORMATS,
    class_mfr_breakdown,
    footprint_bytes,
)
from repro.models import scaled_vgg


class TestGistConfig:
    def test_defaults_enable_everything(self):
        cfg = GistConfig()
        assert cfg.binarize and cfg.ssdc and cfg.dpr and cfg.inplace
        assert cfg.any_encoding

    def test_lossless_preset(self):
        cfg = GistConfig.lossless()
        assert not cfg.dpr
        assert cfg.binarize and cfg.ssdc and cfg.inplace

    def test_isolation_presets(self):
        b = GistConfig.binarize_only()
        assert b.binarize and not (b.ssdc or b.dpr or b.inplace)
        s = GistConfig.ssdc_only()
        assert s.ssdc and not (s.binarize or s.dpr or s.inplace)
        d = GistConfig.dpr_only("fp10")
        assert d.dpr and d.dpr_format == "fp10"
        assert not (d.binarize or d.ssdc)

    def test_disabled(self):
        cfg = GistConfig.disabled()
        assert not cfg.any_encoding and not cfg.inplace

    def test_for_network_uses_paper_formats(self):
        assert GistConfig.for_network("alexnet").dpr_format == "fp8"
        assert GistConfig.for_network("vgg16").dpr_format == "fp16"
        assert GistConfig.for_network("inception").dpr_format == "fp10"
        # Unknown nets get the safe default.
        assert GistConfig.for_network("mystery").dpr_format == "fp16"

    def test_paper_format_table(self):
        assert PAPER_DPR_FORMATS["overfeat"] == "fp8"

    def test_validation(self):
        with pytest.raises(ValueError):
            GistConfig(dpr_format="fp12")
        with pytest.raises(ValueError):
            GistConfig(ssdc_cols=0)
        with pytest.raises(ValueError):
            GistConfig(rounding="stochastic")

    def test_with_override(self):
        cfg = GistConfig().with_(dpr=False)
        assert not cfg.dpr
        assert cfg.binarize  # others untouched


class TestGistFacade:
    def test_measure_mfr(self):
        g = scaled_vgg(batch_size=8)
        report = Gist(GistConfig.full("fp8")).measure_mfr(g)
        assert report.mfr > 1.2
        assert report.model == "scaled_vgg"
        assert "MFR" in str(report)

    def test_lossy_beats_lossless(self):
        g = scaled_vgg(batch_size=8)
        lossless = Gist(GistConfig.lossless()).measure_mfr(g).mfr
        lossy = Gist(GistConfig.full("fp8")).measure_mfr(g).mfr
        assert lossy > lossless

    def test_dynamic_vs_static(self):
        g = scaled_vgg(batch_size=8)
        gist = Gist(GistConfig.full("fp8"))
        static = gist.measure_mfr(g)
        dynamic = gist.measure_mfr(g, dynamic=True)
        assert dynamic.baseline_bytes <= static.baseline_bytes
        assert dynamic.gist_bytes <= static.gist_bytes

    def test_investigation_mode(self):
        g = scaled_vgg(batch_size=8)
        inv = Gist(GistConfig.full("fp8")).measure_mfr(g, investigation=True)
        assert inv.mfr > 1.0

    def test_footprint_bytes_baseline_equals_disabled(self):
        g = scaled_vgg(batch_size=8)
        assert footprint_bytes(g, None) == footprint_bytes(
            g, GistConfig.disabled()
        )

    def test_class_mfr_breakdown(self):
        g = scaled_vgg(batch_size=8)
        plan = Gist(GistConfig.full("fp8")).apply(g)
        breakdown = class_mfr_breakdown(plan)
        assert breakdown["relu_pool"] == pytest.approx(32.0)
        assert breakdown["relu_conv"] > 1.0
