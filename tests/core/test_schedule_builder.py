"""Tests for the Gist Schedule Builder's plan rewriting."""

import pytest

from repro.core import (
    ENC_BINARIZE,
    ENC_DPR,
    ENC_SSDC,
    GistConfig,
    build_gist_plan,
)
from repro.graph import ROLE_DECODED, ROLE_ENCODED, TrainingSchedule
from repro.memory import (
    CLASS_ENCODED,
    CLASS_STASHED,
    StaticAllocator,
    build_memory_plan,
)
from repro.analysis.sparsity import ConstantSparsity


def tensors_by_name(plan):
    return {t.spec.name: t for t in plan.tensors}


class TestLifetimeRewriting:
    def test_fp32_map_dies_at_last_forward_use(self, tiny_graph):
        gp = build_gist_plan(tiny_graph, GistConfig())
        s = gp.schedule
        ts = tensors_by_name(gp.plan)
        pool1 = tiny_graph.node_by_name("pool1")
        # relu1.out (Binarize class): FP32 copy dies when pool1's forward
        # op (its last forward consumer) runs.
        assert ts["relu1.out"].death == s.forward_time(pool1.node_id)

    def test_encoded_tensor_spans_the_gap(self, tiny_graph):
        gp = build_gist_plan(tiny_graph, GistConfig())
        s = gp.schedule
        ts = tensors_by_name(gp.plan)
        relu1 = tiny_graph.node_by_name("relu1")
        pool1 = tiny_graph.node_by_name("pool1")
        enc = ts["relu1.out.enc"]
        assert enc.role == ROLE_ENCODED
        assert enc.birth == s.forward_time(pool1.node_id)
        assert enc.death == s.backward_time(relu1.node_id)

    def test_binarize_has_no_decoded_buffer(self, tiny_graph):
        gp = build_gist_plan(tiny_graph, GistConfig())
        ts = tensors_by_name(gp.plan)
        assert "relu1.out.dec" not in ts

    def test_ssdc_and_dpr_have_decoded_buffers(self, tiny_graph):
        gp = build_gist_plan(tiny_graph, GistConfig())
        ts = tensors_by_name(gp.plan)
        assert "relu2.out.dec" in ts  # SSDC class
        assert ts["relu2.out.dec"].role == ROLE_DECODED

    def test_decoded_spans_backward_uses_only(self, tiny_graph):
        gp = build_gist_plan(tiny_graph, GistConfig())
        s = gp.schedule
        ts = tensors_by_name(gp.plan)
        relu2 = tiny_graph.node_by_name("relu2")
        fc = tiny_graph.node_by_name("fc")
        dec = ts["relu2.out.dec"]
        assert dec.birth == s.backward_time(fc.node_id)
        assert dec.death == s.backward_time(relu2.node_id)

    def test_optimized_software_drops_decoded(self, tiny_graph):
        gp = build_gist_plan(tiny_graph, GistConfig(optimized_software=True))
        assert not any(t.role == ROLE_DECODED for t in gp.plan.tensors)

    def test_pool_argmax_map_added(self, tiny_graph):
        gp = build_gist_plan(tiny_graph, GistConfig())
        ts = tensors_by_name(gp.plan)
        pool1 = tiny_graph.node_by_name("pool1")
        amap = ts["pool1.argmax"]
        assert amap.spec.dtype.name == "nibble4"
        assert amap.birth == gp.schedule.forward_time(pool1.node_id)
        assert amap.death == gp.schedule.backward_time(pool1.node_id)
        assert pool1.node_id in gp.rewritten_pools

    def test_no_argmax_map_without_binarize(self, tiny_graph):
        gp = build_gist_plan(tiny_graph, GistConfig(binarize=False))
        assert not any(t.spec.name.endswith(".argmax") for t in gp.plan.tensors)
        assert gp.rewritten_pools == ()

    def test_disabled_config_matches_baseline_footprint(self, tiny_graph):
        baseline = build_memory_plan(tiny_graph)
        gp = build_gist_plan(tiny_graph, GistConfig.disabled())
        alloc = StaticAllocator()
        assert (alloc.allocate(gp.plan.tensors).total_bytes
                == alloc.allocate(baseline.tensors).total_bytes)


class TestDecisions:
    def test_encodings_assigned_per_table1(self, tiny_graph):
        gp = build_gist_plan(tiny_graph, GistConfig())
        by_name = {d.node_name: d for d in gp.decisions.values()}
        assert by_name["relu1"].encoding == ENC_BINARIZE
        assert by_name["relu2"].encoding == ENC_SSDC
        assert by_name["input"].encoding == ENC_DPR

    def test_binarize_is_32x(self, tiny_graph):
        gp = build_gist_plan(tiny_graph, GistConfig())
        d = {d.node_name: d for d in gp.decisions.values()}["relu1"]
        assert d.fp32_bytes / d.encoded_bytes == 32.0
        assert d.decoded_bytes == 0

    def test_dpr_fp16_is_2x(self, tiny_graph):
        gp = build_gist_plan(tiny_graph, GistConfig(dpr_format="fp16"))
        d = {d.node_name: d for d in gp.decisions.values()}["input"]
        assert d.fp32_bytes / d.encoded_bytes == pytest.approx(2.0, rel=1e-3)

    def test_ssdc_uses_sparsity_model(self, tiny_graph):
        dense = build_gist_plan(tiny_graph, GistConfig(),
                                ConstantSparsity(0.0))
        sparse = build_gist_plan(tiny_graph, GistConfig(),
                                 ConstantSparsity(0.9))
        d_dense = {d.node_name: d for d in dense.decisions.values()}["relu2"]
        d_sparse = {d.node_name: d for d in sparse.decisions.values()}["relu2"]
        assert d_sparse.encoded_bytes < d_dense.encoded_bytes
        assert d_sparse.sparsity == 0.9

    def test_dpr_over_ssdc_shrinks_values(self, tiny_graph):
        with_dpr = build_gist_plan(
            tiny_graph, GistConfig(dpr_format="fp8"), ConstantSparsity(0.5)
        )
        without = build_gist_plan(
            tiny_graph, GistConfig(dpr_format="fp8", dpr_over_ssdc=False),
            ConstantSparsity(0.5),
        )
        d_with = {d.node_name: d for d in with_dpr.decisions.values()}["relu2"]
        d_without = {d.node_name: d for d in without.decisions.values()}["relu2"]
        assert d_with.encoded_bytes < d_without.encoded_bytes

    def test_region_bytes_cover_all_stash_regions(self, tiny_graph):
        gp = build_gist_plan(tiny_graph, GistConfig())
        regions = gp.raw_region_bytes()
        assert set(regions) == {"ssdc", "binarize", "other_stashed", "immediate"}
        assert regions["binarize"] > 0
        assert regions["ssdc"] > 0
        assert regions["immediate"] > 0


class TestInplace:
    def test_conv_output_merges_into_relu(self, tiny_graph):
        gp = build_gist_plan(tiny_graph, GistConfig())
        ts = tensors_by_name(gp.plan)
        assert "conv1.out" not in ts  # absorbed by relu1.out
        s = gp.schedule
        conv1 = tiny_graph.node_by_name("conv1")
        assert ts["relu1.out"].birth == s.forward_time(conv1.node_id)

    def test_inplace_off_keeps_both(self, tiny_graph):
        gp = build_gist_plan(tiny_graph, GistConfig(inplace=False))
        ts = tensors_by_name(gp.plan)
        assert "conv1.out" in ts

    def test_inplace_reduces_footprint(self, tiny_graph):
        alloc = StaticAllocator()
        without = build_gist_plan(tiny_graph, GistConfig.lossless(inplace=False))
        with_ip = build_gist_plan(tiny_graph, GistConfig.lossless())
        assert (alloc.allocate(with_ip.plan.tensors).total_bytes
                <= alloc.allocate(without.plan.tensors).total_bytes)


class TestInvestigationMode:
    def test_stashes_and_encoded_unshareable(self, tiny_graph):
        gp = build_gist_plan(tiny_graph, GistConfig(), investigation=True)
        for t in gp.plan.tensors:
            cls = gp.plan.classify(t)
            if cls in (CLASS_STASHED, CLASS_ENCODED):
                assert not t.shareable


class TestMonotonicity:
    def test_buffer_free_techniques_never_hurt_tiny_graphs(self, tiny_graph):
        # Binarize adds no decode buffer, so it helps even on a 7-op net.
        alloc = StaticAllocator()

        def footprint(config):
            return alloc.allocate(
                build_gist_plan(tiny_graph, config).plan.tensors
            ).total_bytes

        baseline = footprint(GistConfig.disabled())
        assert footprint(GistConfig.binarize_only()) < baseline
        assert footprint(GistConfig.dpr_only("fp8")) < baseline
        assert footprint(GistConfig.full("fp8")) < baseline

    def test_all_techniques_help_at_scale(self):
        # SSDC's decode staging buffer can outweigh its savings on toy
        # graphs (the paper's own Figure 10 shows SSDC alone is marginal on
        # AlexNet); at VGG-like scale every technique must win.
        from repro.models import scaled_vgg

        g = scaled_vgg(batch_size=8)
        alloc = StaticAllocator()

        def footprint(config):
            return alloc.allocate(
                build_gist_plan(g, config).plan.tensors
            ).total_bytes

        baseline = footprint(GistConfig.disabled())
        assert footprint(GistConfig.binarize_only()) < baseline
        assert footprint(GistConfig.ssdc_only()) < baseline
        assert footprint(GistConfig.dpr_only("fp8")) < baseline
        full = footprint(GistConfig.full("fp8"))
        assert full < footprint(GistConfig.lossless()) <= baseline
