"""Tests for the diagnostics layer: tracer, digests, goldens, invariants."""
