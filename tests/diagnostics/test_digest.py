"""Digest determinism and golden-trace save/compare round-trips."""

import numpy as np
import pytest

from repro.diagnostics import (
    StepTracer,
    TraceDigest,
    array_digest,
    load_golden,
    mapping_digest,
    run_traced,
    step_digest,
)


class TestArrayDigest:
    def test_bit_identical_arrays_digest_equal(self):
        a = np.arange(12, dtype=np.float32).reshape(3, 4)
        assert array_digest(a) == array_digest(a.copy())

    def test_single_bit_flip_changes_digest(self):
        a = np.arange(12, dtype=np.float32)
        b = a.copy()
        b.view(np.uint32)[5] ^= np.uint32(1)
        assert array_digest(a) != array_digest(b)

    def test_dtype_and_shape_are_part_of_identity(self):
        a = np.zeros(8, dtype=np.float32)
        assert array_digest(a) != array_digest(a.astype(np.float64))
        assert array_digest(a) != array_digest(a.reshape(2, 4))

    def test_non_contiguous_views_digest_by_value(self):
        a = np.arange(24, dtype=np.float32).reshape(4, 6)
        view = a[:, ::2]
        assert array_digest(view) == array_digest(np.ascontiguousarray(view))


class TestMappingDigest:
    def test_order_independent(self):
        arrays = {"a": np.ones(3), "b": np.zeros(2)}
        swapped = dict(reversed(list(arrays.items())))
        assert mapping_digest(arrays) == mapping_digest(swapped)

    def test_name_is_part_of_identity(self):
        x = np.ones(3)
        assert mapping_digest({"a": x}) != mapping_digest({"b": x})


class TestStepDigest:
    def test_equality_is_field_wise(self):
        grads = {"w": np.ones(2, np.float32)}
        stash = {"relu1": np.zeros(2, np.float32)}
        assert step_digest(0.5, grads, stash) == step_digest(0.5, grads, stash)
        assert step_digest(0.5, grads, stash) != step_digest(
            0.5, grads, {"relu1": np.ones(2, np.float32)}
        )


class TestGoldenRoundTrip:
    def test_save_load_compare(self, tmp_path):
        digest = run_traced("tiny_cnn", "gist-lossless", steps=2)
        path = digest.save_golden(tmp_path / "golden.json")
        loaded = load_golden(path)
        assert loaded == digest
        comparison = digest.compare_golden(path)
        assert comparison
        assert comparison.mismatches == ()

    def test_compare_reports_mismatched_arm(self, tmp_path):
        golden = run_traced("tiny_cnn", "gist-lossless", steps=2)
        path = golden.save_golden(tmp_path / "golden.json")
        other = run_traced("tiny_cnn", "baseline", steps=2)
        comparison = other.compare_golden(path)
        assert not comparison
        assert any("policy" in m for m in comparison.mismatches)
        # Baseline and Gist-lossless train bit-identically, but the stash
        # contents (raw FP32 vs decoded masks) legitimately differ.
        assert any("stash_hash" in m for m in comparison.mismatches)
        assert not any("loss_hash" in m for m in comparison.mismatches)

    def test_compare_reports_step_count_drift(self, tmp_path):
        golden = run_traced("tiny_cnn", "baseline", steps=2)
        path = golden.save_golden(tmp_path / "golden.json")
        longer = run_traced("tiny_cnn", "baseline", steps=3)
        comparison = longer.compare_golden(path)
        assert not comparison
        assert any("step count" in m for m in comparison.mismatches)

    def test_unknown_format_version_rejected(self, tmp_path):
        digest = run_traced("tiny_cnn", "baseline", steps=1)
        path = digest.save_golden(tmp_path / "golden.json")
        data = path.read_text().replace('"format": 1', '"format": 99')
        path.write_text(data)
        with pytest.raises(ValueError, match="golden format"):
            load_golden(path)


class TestDigestStability:
    def test_repeat_runs_digest_identically(self):
        first = run_traced("tiny_cnn", "gist-lossless", steps=3, seed=0)
        second = run_traced("tiny_cnn", "gist-lossless", steps=3, seed=0)
        assert first == second

    def test_seed_changes_digest(self):
        base = run_traced("tiny_cnn", "baseline", steps=1, seed=0)
        other = run_traced("tiny_cnn", "baseline", steps=1, seed=7)
        assert base.steps[0] != other.steps[0]

    def test_tracer_and_invariants_do_not_perturb_digest(self):
        plain = run_traced("tiny_cnn", "gist-lossless", steps=2)
        observed = run_traced(
            "tiny_cnn", "gist-lossless", steps=2,
            tracer=StepTracer(), check_invariants=True,
        )
        assert plain == observed
