"""Conformance against the checked-in golden traces.

The goldens under ``tests/diagnostics/goldens/`` pin the exact bits —
losses, parameter gradients, decoded stash tensors — of three training
steps for each model/policy arm.  Any numerical drift anywhere in the
stack (layers, kernels, encodings, executor) fails these tests; an
*intentional* change regenerates them with::

    python -m repro trace --model MODEL --policy POLICY \
        --save-golden tests/diagnostics/goldens/MODEL--POLICY.json
"""

from pathlib import Path

import pytest

from repro.diagnostics import (
    GOLDEN_MODELS,
    GOLDEN_POLICIES,
    golden_filename,
    load_golden,
    run_traced,
)

GOLDEN_DIR = Path(__file__).parent / "goldens"
PINNED_MODELS = ("tiny_cnn", "scaled_vgg")


@pytest.mark.conformance
@pytest.mark.parametrize("model", PINNED_MODELS)
@pytest.mark.parametrize("policy", GOLDEN_POLICIES)
class TestGoldenConformance:
    def test_run_matches_checked_in_golden(self, model, policy):
        path = GOLDEN_DIR / golden_filename(model, policy)
        assert path.exists(), f"golden missing: {path}"
        digest = run_traced(model, policy, steps=3)
        comparison = digest.compare_golden(path)
        assert comparison, "\n".join(comparison.mismatches)


@pytest.mark.conformance
class TestGoldenInventory:
    def test_goldens_are_well_formed(self):
        files = sorted(GOLDEN_DIR.glob("*.json"))
        assert len(files) >= len(PINNED_MODELS) * len(GOLDEN_POLICIES)
        for path in files:
            golden = load_golden(path)
            assert golden.model in GOLDEN_MODELS
            assert path.name == golden_filename(golden.model, golden.policy)
            assert len(golden.steps) == 3

    def test_lossless_gist_trains_bit_identically_to_baseline(self):
        # The paper's lossless claim, as pinned data: identical losses and
        # gradients in every step of the baseline vs gist-lossless goldens.
        for model in PINNED_MODELS:
            base = load_golden(GOLDEN_DIR / golden_filename(model, "baseline"))
            gist = load_golden(
                GOLDEN_DIR / golden_filename(model, "gist-lossless")
            )
            for b, g in zip(base.steps, gist.steps):
                assert b.loss_hash == g.loss_hash
                assert b.grads_hash == g.grads_hash
