"""Conformance against the checked-in golden traces.

The goldens under ``tests/diagnostics/goldens/`` pin the exact bits —
losses, parameter gradients, decoded stash tensors — of three training
steps for each model/policy arm.  Any numerical drift anywhere in the
stack (layers, kernels, encodings, executor) fails these tests; an
*intentional* change regenerates them with::

    python -m repro trace --model MODEL --policy POLICY \
        --save-golden tests/diagnostics/goldens/MODEL--POLICY.json
"""

from pathlib import Path

import pytest

from repro.diagnostics import (
    GOLDEN_MODELS,
    GOLDEN_POLICIES,
    golden_filename,
    load_golden,
    run_traced,
)

GOLDEN_DIR = Path(__file__).parent / "goldens"
PINNED_MODELS = ("tiny_cnn", "scaled_vgg", "lstm", "densenet")


@pytest.mark.conformance
@pytest.mark.parametrize("model", PINNED_MODELS)
@pytest.mark.parametrize("policy", GOLDEN_POLICIES)
class TestGoldenConformance:
    def test_run_matches_checked_in_golden(self, model, policy):
        path = GOLDEN_DIR / golden_filename(model, policy)
        assert path.exists(), f"golden missing: {path}"
        digest = run_traced(model, policy, steps=3)
        comparison = digest.compare_golden(path)
        assert comparison, "\n".join(comparison.mismatches)


@pytest.mark.conformance
@pytest.mark.parametrize("model", PINNED_MODELS)
@pytest.mark.parametrize("policy", GOLDEN_POLICIES)
class TestRewrittenGoldenConformance:
    def test_rewritten_run_matches_golden_numerics(self, model, policy):
        # The graph-rewrite passes must not move a single bit of the
        # training numerics: per-step losses and every parameter
        # gradient hash exactly as the checked-in goldens.  Only the
        # stash *inventory* may differ — a fused conv+ReLU no longer
        # stashes the ReLU output, an argmax pool stashes a map — so
        # stash_hash is deliberately exempt.
        golden = load_golden(GOLDEN_DIR / golden_filename(model, policy))
        digest = run_traced(model, policy, steps=3, rewrite=True)
        assert len(digest.steps) == len(golden.steps)
        for run, pin in zip(digest.steps, golden.steps):
            assert run.loss_hash == pin.loss_hash
            assert run.grads_hash == pin.grads_hash


@pytest.mark.conformance
class TestGoldenInventory:
    def test_goldens_are_well_formed(self):
        files = sorted(GOLDEN_DIR.glob("*.json"))
        assert len(files) >= len(PINNED_MODELS) * len(GOLDEN_POLICIES)
        for path in files:
            golden = load_golden(path)
            assert golden.model in GOLDEN_MODELS
            assert path.name == golden_filename(golden.model, golden.policy)
            assert len(golden.steps) == 3

    def test_lossless_gist_trains_bit_identically_to_baseline(self):
        # The paper's lossless claim, as pinned data: identical losses and
        # gradients in every step of the baseline vs gist-lossless goldens.
        for model in PINNED_MODELS:
            base = load_golden(GOLDEN_DIR / golden_filename(model, "baseline"))
            gist = load_golden(
                GOLDEN_DIR / golden_filename(model, "gist-lossless")
            )
            for b, g in zip(base.steps, gist.steps):
                assert b.loss_hash == g.loss_hash
                assert b.grads_hash == g.grads_hash
