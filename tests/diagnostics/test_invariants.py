"""Invariant checkers: clean runs pass, seeded faults are caught.

Each fault test injects exactly the bug class its checker polices —
a corrupted encoded stash, a stash read after its death point, an arena
buffer aliased with a live stash — and asserts the checker raises at the
faulty event, not later.
"""

import numpy as np
import pytest

from repro.diagnostics import (
    GOLDEN_MODELS,
    InvariantViolation,
    build_trace_policy,
    golden_batches,
    run_traced,
    verify_kernel_agreement,
)
from repro.encodings.binarize import BinarizedTensor
from repro.models import build_model
from repro.train.executor import GraphExecutor
from repro.train.stash import GistPolicy
from repro.core.policy import GistConfig


def _executor(policy="gist-lossless", model="tiny_cnn", **inv_kwargs):
    graph = build_model(model, **GOLDEN_MODELS[model])
    executor = GraphExecutor(graph, build_trace_policy(policy, graph), seed=0)
    executor.enable_invariants(**inv_kwargs)
    images, labels = golden_batches(model, 1)[0]
    return executor, images, labels


def _binarized_stash(executor):
    for nid, (_, encoded) in executor._stash.items():
        if isinstance(encoded, BinarizedTensor):
            return nid, encoded
    raise AssertionError("no binarized stash found")


class TestCleanRuns:
    @pytest.mark.parametrize("policy", ["baseline", "gist-lossless"])
    def test_invariants_pass_on_clean_training(self, policy):
        digest = run_traced("tiny_cnn", policy, steps=2,
                            check_invariants=True)
        assert len(digest.steps) == 2

    def test_invariants_pass_on_lossy_gist(self):
        # DPR stashes are lossy: the round-trip checker must skip them
        # rather than report false positives.
        digest = run_traced("tiny_cnn", "gist-fp8", steps=2,
                            check_invariants=True)
        assert len(digest.steps) == 2

    def test_multi_step_state_resets(self):
        executor, images, labels = _executor()
        for _ in range(3):
            executor.forward(images, labels)
            executor.backward()


class TestRoundTripChecker:
    def test_corrupted_encoded_stash_is_caught(self):
        executor, images, labels = _executor()
        executor.forward(images, labels)
        _, encoded = _binarized_stash(executor)
        encoded.words[0] ^= np.uint32(1)  # flip one stashed mask bit
        with pytest.raises(InvariantViolation, match="lossless-round-trip"):
            executor.backward()

    def test_corrupted_identity_stash_is_caught(self):
        executor, images, labels = _executor("baseline")
        executor.forward(images, labels)
        nid = executor.stashed_node_ids()[1]
        _, stash = executor._stash[nid]
        # Identity stashes can be non-contiguous kernel views; index-assign
        # so the write lands in the real storage rather than a flat copy.
        idx = (0,) * stash.ndim
        stash[idx] = stash[idx] + np.float32(1.0)
        with pytest.raises(InvariantViolation, match="lossless-round-trip"):
            executor.stashed_value(nid)

    def test_disabled_checker_lets_fault_pass(self):
        executor, images, labels = _executor(round_trip=False)
        executor.forward(images, labels)
        _, encoded = _binarized_stash(executor)
        encoded.words[0] ^= np.uint32(1)
        executor.backward()  # no round-trip checking: fault goes unnoticed


class TestLivenessChecker:
    def test_read_after_death_point_is_caught(self):
        executor, images, labels = _executor()
        executor.forward(images, labels)
        executor.backward()
        nid = executor.stashed_node_ids()[1]
        with pytest.raises(InvariantViolation, match="stash-liveness"):
            executor.stashed_value(nid)

    def test_cached_decodes_are_also_policed(self):
        # The liveness check must fire before the decode cache is
        # consulted, otherwise reads of already-decoded stashes escape it.
        executor, images, labels = _executor()
        executor.forward(images, labels)
        nid = executor.stashed_node_ids()[1]
        executor.stashed_value(nid)  # populate the decode cache in-window
        executor.backward()
        with pytest.raises(InvariantViolation, match="stash-liveness"):
            executor.stashed_value(nid)

    def test_disabled_checker_lets_read_pass(self):
        executor, images, labels = _executor(liveness=False)
        executor.forward(images, labels)
        executor.backward()
        nid = executor.stashed_node_ids()[1]
        executor.stashed_value(nid)  # stale read, nobody watching


class TestAliasChecker:
    def test_released_stash_buffer_rerent_is_caught(self):
        executor, images, labels = _executor()
        executor.forward(images, labels)
        _, encoded = _binarized_stash(executor)
        # pack_bits returns a uint32 view of the rented uint8 buffer, so
        # .base is the exact object the arena handed out.  Releasing it
        # while the stash is live is the bug class a buggy kernel-side
        # release would introduce; the next same-shape rent aliases.
        buf = encoded.words.base
        executor.arena.release(buf)
        with pytest.raises(InvariantViolation, match="arena-alias"):
            executor.arena.rent(buf.shape, buf.dtype)

    def test_observer_installed_and_disabled(self):
        executor, _, _ = _executor()
        assert executor.arena.observer is executor._invariants
        ex2, images, labels = _executor(aliasing=False)
        assert ex2.arena.observer is None
        images, labels  # unused; clean construction is the assertion


class TestKernelAgreement:
    def test_reference_and_plan_paths_agree(self):
        graph = build_model("tiny_cnn", **GOLDEN_MODELS["tiny_cnn"])
        steps = verify_kernel_agreement(
            graph, golden_batches("tiny_cnn", 2),
            policy_factory=lambda g: GistPolicy(g, GistConfig.lossless()),
        )
        assert steps == 2

    def test_agreement_default_baseline_policy(self):
        graph = build_model("tiny_cnn", **GOLDEN_MODELS["tiny_cnn"])
        assert verify_kernel_agreement(
            graph, golden_batches("tiny_cnn", 1)
        ) == 1
