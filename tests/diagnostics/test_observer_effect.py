"""No observer effect: diagnostics must never perturb training numerics."""

import numpy as np

from repro.diagnostics import StepTracer
from repro.models import tiny_cnn
from repro.train import SGD, Trainer, make_synthetic
from repro.train.stash import GistPolicy
from repro.core.policy import GistConfig


def _train(tracer=None):
    graph = tiny_cnn(batch_size=16, num_classes=4, image_size=8)
    policy = GistPolicy(graph, GistConfig.lossless())
    trainer = Trainer(graph, policy, SGD(lr=0.05, momentum=0.9), seed=0,
                      tracer=tracer)
    train, test = make_synthetic(96, 4, 8, seed=1)
    result = trainer.train(train, test, epochs=2)
    params = {
        name: arr.copy()
        for name, arr in trainer.executor.parameters().items()
    }
    return result, params


class TestNoObserverEffect:
    def test_traced_training_is_bit_identical(self):
        plain_result, plain_params = _train(tracer=None)
        traced_result, traced_params = _train(tracer=StepTracer())
        assert plain_result.epoch_losses == traced_result.epoch_losses
        assert plain_result.test_accuracy == traced_result.test_accuracy
        assert plain_params.keys() == traced_params.keys()
        for name in plain_params:
            np.testing.assert_array_equal(
                plain_params[name], traced_params[name]
            )
