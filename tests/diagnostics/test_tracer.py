"""StepTracer event streams, aggregates and reporting surfaces."""

import json

import numpy as np

from repro.diagnostics import (
    GOLDEN_MODELS,
    StepTracer,
    build_trace_policy,
    golden_batches,
)
from repro.models import build_model
from repro.train.executor import GraphExecutor
from repro.train.optimizer import SGD
from repro.train.trainer import Trainer
from repro.train import make_synthetic


def _traced_run(policy_name="gist-lossless", steps=2):
    graph = build_model("tiny_cnn", **GOLDEN_MODELS["tiny_cnn"])
    tracer = StepTracer()
    executor = GraphExecutor(
        graph, build_trace_policy(policy_name, graph), seed=0, tracer=tracer
    )
    for images, labels in golden_batches("tiny_cnn", steps):
        executor.forward(images, labels)
        executor.backward()
    return tracer


class TestStepRecords:
    def test_one_record_per_step_with_loss_and_times(self):
        tracer = _traced_run(steps=3)
        assert len(tracer.steps) == 3
        for i, rec in enumerate(tracer.steps):
            assert rec.index == i
            assert rec.loss is not None and np.isfinite(rec.loss)
            assert rec.forward_s > 0.0
            assert rec.backward_s > 0.0
            assert rec.step_s == rec.forward_s + rec.backward_s

    def test_gist_compression_bytes_by_encoding(self):
        tracer = _traced_run("gist-lossless", steps=1)
        rec = tracer.steps[0]
        # tiny_cnn has a ReLU-Pool pair (binarize) and a ReLU-Conv pair
        # (ssdc); identity covers the remaining stashes.
        assert "binarize" in rec.encoded_bytes
        assert "ssdc" in rec.encoded_bytes
        assert rec.total_encoded_bytes < rec.total_raw_bytes
        assert rec.compression_ratio > 1.0
        bin_raw = rec.raw_bytes["binarize"]
        assert rec.encoded_bytes["binarize"] <= bin_raw // 16

    def test_baseline_has_no_compression(self):
        rec = _traced_run("baseline", steps=1).steps[0]
        assert set(rec.encoded_bytes) == {"identity"}
        assert rec.compression_ratio == 1.0

    def test_arena_stats_snapshot(self):
        tracer = _traced_run(steps=2)
        first, second = tracer.steps
        assert first.arena_pooled_bytes > 0
        assert first.arena_misses > 0  # cold pool
        assert second.arena_misses == 0  # warm pool: every rent is a hit
        assert second.arena_hits > 0

    def test_events_cover_all_phases(self):
        tracer = _traced_run(steps=1)
        phases = {e.phase for e in tracer.events}
        assert phases == {"forward", "backward", "encode", "decode"}
        encodes = [e for e in tracer.events if e.phase == "encode"]
        assert all(e.raw_bytes > 0 and e.encoded_bytes > 0 for e in encodes)

    def test_keep_events_false_still_aggregates(self):
        graph = build_model("tiny_cnn", **GOLDEN_MODELS["tiny_cnn"])
        tracer = StepTracer(keep_events=False)
        executor = GraphExecutor(
            graph, build_trace_policy("gist-lossless", graph),
            seed=0, tracer=tracer,
        )
        images, labels = golden_batches("tiny_cnn", 1)[0]
        executor.forward(images, labels)
        executor.backward()
        assert tracer.events == []
        assert tracer.steps[0].total_encoded_bytes > 0


class TestReporting:
    def test_summary_table_lists_every_step(self):
        tracer = _traced_run(steps=2)
        summary = tracer.summary()
        assert "loss" in summary and "ratio" in summary
        assert len(summary.splitlines()) == 2 + 2  # header + rule + steps

    def test_to_json_is_serialisable(self):
        tracer = _traced_run(steps=2)
        payload = json.loads(json.dumps(tracer.to_json()))
        assert len(payload) == 2
        assert payload[0]["arena_pooled_bytes"] > 0

    def test_encoded_bytes_by_encoding_sums_steps(self):
        tracer = _traced_run("gist-lossless", steps=2)
        totals = tracer.encoded_bytes_by_encoding()
        per_step = tracer.steps[0].encoded_bytes
        assert totals["binarize"] == 2 * per_step["binarize"]


class TestTrainerIntegration:
    def test_trainer_accepts_tracer(self):
        graph = build_model("tiny_cnn", batch_size=16, num_classes=4,
                            image_size=8)
        train, test = make_synthetic(64, 4, 8, seed=1)
        tracer = StepTracer(keep_events=False)
        trainer = Trainer(graph, None, SGD(lr=0.01), seed=0, tracer=tracer)
        trainer.train(train, test, epochs=1)
        assert len(tracer.steps) == 64 // 16
