"""Pairwise-tree all-reduce: fixed schedule, exact weighting, validation."""

import numpy as np
import pytest

from repro.distributed import tree_reduce, tree_reduce_gradients


def _arrays(n, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.normal(0, 1, (5, 3)).astype(np.float32) for _ in range(n)]


def test_single_input_passes_through():
    (a,) = _arrays(1)
    assert tree_reduce([a]).tobytes() == a.tobytes()


def test_tree_matches_explicit_pairwise_schedule():
    a, b, c, d, e = _arrays(5)
    expected = ((a + b) + (c + d)) + e
    assert tree_reduce([a, b, c, d, e]).tobytes() == expected.tobytes()


def test_tree_is_bit_deterministic():
    arrays = _arrays(7, seed=1)
    first = tree_reduce(arrays)
    for _ in range(3):
        assert tree_reduce(arrays).tobytes() == first.tobytes()


def test_empty_input_rejected():
    with pytest.raises(ValueError):
        tree_reduce([])


def test_equal_shards_of_identical_grads_reduce_to_the_grads():
    # Power-of-two equal weights make w*g + w*g exact in float32, so four
    # identical shard gradients must merge to themselves bit-for-bit.
    grads = {"w": _arrays(1, seed=2)[0]}
    merged = tree_reduce_gradients([grads] * 4, [2, 2, 2, 2])
    assert merged["w"].tobytes() == grads["w"].tobytes()


def test_unequal_shards_weight_by_sample_count():
    g1 = {"w": np.float32(1.0) * np.ones(3, dtype=np.float32)}
    g2 = {"w": np.float32(5.0) * np.ones(3, dtype=np.float32)}
    merged = tree_reduce_gradients([g1, g2], [3, 1])
    expected = np.float32(0.75) * g1["w"] + np.float32(0.25) * g2["w"]
    assert merged["w"].tobytes() == expected.tobytes()


def test_key_disagreement_rejected():
    a = {"w": np.ones(2, dtype=np.float32)}
    b = {"v": np.ones(2, dtype=np.float32)}
    with pytest.raises(ValueError, match="keys differ"):
        tree_reduce_gradients([a, b], [1, 1])


def test_size_mismatch_and_empty_rejected():
    a = {"w": np.ones(2, dtype=np.float32)}
    with pytest.raises(ValueError):
        tree_reduce_gradients([a], [1, 2])
    with pytest.raises(ValueError):
        tree_reduce_gradients([], [])
    with pytest.raises(ValueError):
        tree_reduce_gradients([a, a], [0, 0])
