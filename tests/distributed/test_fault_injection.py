"""Fault injection: replica crashes, stragglers, and journal resume.

The pool's contract for replica units is at-least-once execution with
deterministic results, so none of these faults may change a single bit
of the merged run:

* a replica worker SIGKILLed mid-step is respawned and its shard
  retried;
* a straggling replica only delays arrival, which the fixed-order tree
  merge never observes;
* a run killed between steps resumes from its journal, re-running only
  shards without a terminal record.

Each test pins the result digest against the golden serial digest from
``test_trainer``.
"""

import json
import os
import signal
import time

import pytest

from repro.distributed import DistConfig, run_replica_unit, train_distributed
from repro.ioutil import read_jsonl
from repro.orchestrate import units as unit_registry
from repro.orchestrate.units import register_kind

from tests.distributed.test_trainer import _CONFIG, _GOLDEN


@pytest.fixture
def replica_kind():
    """Register a scoped unit kind; forked workers inherit the callable."""
    registered = []

    def _register(name, fn):
        register_kind(name, fn)
        registered.append(name)
        return name

    yield _register
    for name in registered:
        unit_registry._KINDS.pop(name, None)


def test_sigkilled_replica_is_retried_without_changing_bits(
        tmp_path, replica_kind):
    marker = tmp_path / "crashed-once"

    def crash_once(payload):
        if payload["step"] == 0 and payload["shard"] == 0 \
                and not marker.exists():
            marker.write_text("dying")
            os.kill(os.getpid(), signal.SIGKILL)  # no cleanup, no excuses
        return run_replica_unit(payload)

    kind = replica_kind("replica-crash-once", crash_once)
    result = train_distributed(
        DistConfig(replicas=2, unit_kind=kind, retries=1, **_CONFIG)
    )
    assert marker.exists(), "the fault was never injected"
    assert result.digest() == _GOLDEN


def test_straggling_replica_does_not_change_bits(replica_kind):
    def straggle(payload):
        if payload["shard"] == 0:
            time.sleep(0.2)  # shard 0 finishes last every step
        return run_replica_unit(payload)

    kind = replica_kind("replica-straggler", straggle)
    result = train_distributed(
        DistConfig(replicas=4, unit_kind=kind, **_CONFIG)
    )
    assert result.digest() == _GOLDEN


def test_journal_resume_reruns_only_missing_shards(tmp_path, replica_kind):
    journal = tmp_path / "dist.jsonl"
    executed = tmp_path / "executed.log"

    def logging_unit(payload):
        with open(executed, "a") as fh:
            fh.write(f"step:{payload['step']}/shard:{payload['shard']}\n")
        return run_replica_unit(payload)

    kind = replica_kind("replica-logged", logging_unit)
    config = DistConfig(replicas=2, unit_kind=kind, **_CONFIG)
    assert train_distributed(config, journal=str(journal)).digest() \
        == _GOLDEN
    complete = journal.read_text().splitlines()
    assert len(complete) == _CONFIG["steps"] * _CONFIG["num_shards"]

    # Simulate a driver killed mid-run: only the first three shard
    # records survive.  The resumed run must re-run exactly the missing
    # units and still land on the golden digest.
    journal.write_text("\n".join(complete[:3]) + "\n")
    executed.write_text("")
    resumed = train_distributed(config, journal=str(journal))
    assert resumed.digest() == _GOLDEN
    rerun = executed.read_text().splitlines()
    replayed = {record["key"] for record in read_jsonl(journal)}
    assert len(replayed) == len(complete)
    assert len(rerun) == len(complete) - 3
    surviving = {json.loads(line)["key"] for line in complete[:3]}
    assert surviving.isdisjoint(rerun)
