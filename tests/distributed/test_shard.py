"""Deterministic shard splitter: coverage, balance, byte-identity."""

import numpy as np
import pytest

from repro.distributed import shard_slices, split_batch


def test_slices_cover_batch_contiguously():
    for batch in range(1, 17):
        for shards in range(1, batch + 1):
            slices = shard_slices(batch, shards)
            assert len(slices) == shards
            assert slices[0][0] == 0
            assert slices[-1][1] == batch
            for (_, stop), (start, _) in zip(slices, slices[1:]):
                assert stop == start, "shards must tile the batch"


def test_slices_balance_within_one_sample():
    slices = shard_slices(10, 4)
    sizes = [stop - start for start, stop in slices]
    assert sizes == [3, 3, 2, 2]
    assert max(sizes) - min(sizes) <= 1


def test_invalid_splits_raise():
    with pytest.raises(ValueError):
        shard_slices(8, 0)
    with pytest.raises(ValueError):
        shard_slices(4, 5)  # would create an empty shard
    with pytest.raises(ValueError):
        shard_slices(0, 1)


def test_split_batch_concat_is_byte_identical():
    rng = np.random.default_rng(7)
    images = rng.normal(0, 1, (11, 3, 4, 4)).astype(np.float32)
    labels = rng.integers(0, 5, 11).astype(np.int64)
    for shards in (1, 2, 3, 5, 11):
        parts = split_batch(images, labels, shards)
        assert np.concatenate([p[0] for p in parts]).tobytes() \
            == images.tobytes()
        assert np.concatenate([p[1] for p in parts]).tobytes() \
            == labels.tobytes()


def test_split_batch_rejects_mismatched_lengths():
    images = np.zeros((4, 1, 2, 2), dtype=np.float32)
    labels = np.zeros(3, dtype=np.int64)
    with pytest.raises(ValueError):
        split_batch(images, labels, 2)
