"""End-to-end data-parallel runs: replica invariance, journal, config."""

import numpy as np
import pytest

from repro.distributed import DistConfig, train_distributed
from repro.ioutil import read_jsonl

#: Pinned digest of _CONFIG at one replica; guards the whole pipeline
#: (sharding, RNG derivation, wire codecs, tree merge, SGD) against
#: silent drift.
_GOLDEN = "1a96c34b8fa2e410ea6caaabde9f6881fc9f00c5f3094332fae9b2ff822fb1a0"

_CONFIG = dict(model="tiny_cnn", batch_size=8, num_shards=4, steps=2,
               wire_codec="auto", seed=0, num_samples=32)


def _run(replicas=1, journal=None, **overrides):
    return train_distributed(
        DistConfig(replicas=replicas, **{**_CONFIG, **overrides}),
        journal=journal,
    )


def test_serial_run_matches_pinned_golden_digest():
    assert _run(replicas=1).digest() == _GOLDEN


def test_four_worker_replicas_are_bit_identical_to_serial():
    assert _run(replicas=4).digest() == _GOLDEN


def test_elastic_replica_count_does_not_change_bits():
    # Three workers over four shards: one worker runs two shards.
    assert _run(replicas=3).digest() == _GOLDEN


def test_lossy_wire_codec_is_still_replica_invariant():
    serial = _run(replicas=1, wire_codec="dpr-fp8")
    parallel = _run(replicas=2, wire_codec="dpr-fp8")
    assert serial.digest() == parallel.digest()
    assert serial.digest() != _GOLDEN  # the rounding really happened


def test_loss_is_finite_and_wire_accounting_consistent():
    result = _run(replicas=1)
    assert all(np.isfinite(result.losses))
    assert result.total_wire_bytes > 0
    assert result.total_fp32_bytes >= result.total_wire_bytes
    assert result.wire_reduction >= 1.0
    for record in result.records:
        assert sum(record.shard_sizes) == _CONFIG["batch_size"]
        assert len(record.shard_losses) == _CONFIG["num_shards"]
        assert record.comm_s > 0.0


def test_result_serialises_to_json_summary():
    summary = _run(replicas=1).to_json()
    assert summary["digest"] == _GOLDEN
    assert len(summary["records"]) == _CONFIG["steps"]
    assert summary["total_fp32_bytes"] >= summary["total_wire_bytes"]


def test_journal_replay_reproduces_the_run(tmp_path):
    journal = tmp_path / "dist.jsonl"
    first = _run(replicas=2, journal=str(journal))
    assert first.digest() == _GOLDEN
    records = list(read_jsonl(journal))
    expected_units = _CONFIG["steps"] * _CONFIG["num_shards"]
    assert len(records) == expected_units

    # Same config, same journal: every unit replays, nothing re-runs,
    # and the result is still bit-identical.
    second = _run(replicas=2, journal=str(journal))
    assert second.digest() == _GOLDEN
    assert len(list(read_jsonl(journal))) == expected_units


def test_config_validation():
    with pytest.raises(ValueError, match="wire codec"):
        DistConfig(wire_codec="gzip")
    with pytest.raises(ValueError, match="steps"):
        DistConfig(steps=0)
    with pytest.raises(ValueError, match="replicas"):
        DistConfig(replicas=0)
    with pytest.raises(ValueError, match="shards"):
        DistConfig(batch_size=2, num_shards=4)
