"""Wire codecs: round-trip exactness, determinism, byte accounting."""

import json

import numpy as np
import pytest

from repro.distributed import WIRE_CODECS, decode_wire, wire_codec
from repro.distributed.wire import wire_bytes

LOSSLESS = [n for n in WIRE_CODECS if not n.startswith("dpr-")]
LOSSY = [n for n in WIRE_CODECS if n.startswith("dpr-")]


def _gradient_like(seed: int, sparsity: float = 0.6) -> np.ndarray:
    """A sparse-ish tensor shaped like a post-ReLU gradient."""
    rng = np.random.default_rng(seed)
    x = rng.normal(0, 0.1, (7, 33)).astype(np.float32)
    x[rng.random(x.shape) < sparsity] = 0.0
    return x


@pytest.mark.parametrize("name", LOSSLESS)
def test_lossless_roundtrip_is_bit_exact(name):
    x = _gradient_like(0)
    codec = wire_codec(name)
    message = codec.encode(x)
    reference = x + np.float32(0.0) if message["codec"] == "csr" else x
    assert decode_wire(message).tobytes() == reference.tobytes()


def test_rle_and_auto_preserve_negative_zero():
    x = _gradient_like(1)
    x[0, 0] = np.float32(-0.0)
    for name in ("rle", "auto", "fp32"):
        message = wire_codec(name).encode(x)
        decoded = decode_wire(message)
        assert decoded.tobytes() == x.tobytes(), name
        assert np.signbit(decoded[0, 0])


def test_auto_skips_csr_when_negative_zero_present():
    x = _gradient_like(2, sparsity=0.95)  # csr would win on size
    assert wire_codec("auto").encode(x)["codec"] == "csr"
    x[3, 3] = np.float32(-0.0)
    assert wire_codec("auto").encode(x)["codec"] != "csr"


def test_auto_picks_cheapest_representation():
    dense = np.full((16, 16), 1.5, dtype=np.float32)
    assert wire_codec("auto").encode(dense)["codec"] == "fp32"
    sparse = np.zeros((16, 16), dtype=np.float32)
    sparse[0, 0] = 1.0
    picked = wire_codec("auto").encode(sparse)
    assert picked["codec"] in ("rle", "csr")
    assert picked["wire_bytes"] < dense.nbytes


@pytest.mark.parametrize("name", LOSSY)
def test_lossy_codecs_are_deterministic(name):
    x = _gradient_like(3, sparsity=0.0)
    codec = wire_codec(name)
    assert codec.encode(x) == codec.encode(x)
    assert not codec.lossless
    first = decode_wire(codec.encode(x))
    assert first.tobytes() == decode_wire(codec.encode(x)).tobytes()


def test_dpr_fp8_moves_four_times_fewer_bytes():
    x = np.ones((16, 16), dtype=np.float32)  # size divisible by a word
    message = wire_codec("dpr-fp8").encode(x)
    assert message["wire_bytes"] * 4 == x.nbytes


def test_messages_survive_json_round_trip():
    x = _gradient_like(5)
    for name in WIRE_CODECS:
        message = wire_codec(name).encode(x)
        replayed = json.loads(json.dumps(message))
        assert decode_wire(replayed).tobytes() \
            == decode_wire(message).tobytes(), name


def test_wire_bytes_sums_messages():
    x = _gradient_like(6)
    messages = {"a": wire_codec("fp32").encode(x),
                "b": wire_codec("dpr-fp8").encode(x)}
    assert wire_bytes(messages) \
        == messages["a"]["wire_bytes"] + messages["b"]["wire_bytes"]


def test_unknown_codec_rejected():
    with pytest.raises(ValueError, match="unknown wire codec"):
        wire_codec("gzip")
    with pytest.raises(ValueError, match="unknown wire codec"):
        decode_wire({"codec": "gzip", "shape": [1]})
