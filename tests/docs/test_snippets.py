"""Docs must run: execute every fenced ``python`` block in the docs.

Extracts fenced code blocks tagged ``python`` from README.md and every
``docs/*.md`` file and executes them.  Blocks from the same file run
sequentially in one shared namespace (so a page can build on its own
earlier snippets) with stdout captured; any exception fails the test and
names the file and block.

Contract for doc authors:

* tag a block ``python`` only if it is runnable as-is from a clean
  interpreter (imports included) in a few seconds;
* use ``bash``/``text``/untagged fences for shell commands, pseudo-code
  and expected-output transcripts — those are not executed;
* keep examples on the small models (``tiny_cnn``, ``scaled_vgg``,
  batch sizes <= 8 beyond the one README headline snippet).
"""

import io
import re
from contextlib import redirect_stdout
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]
DOC_FILES = sorted(
    [REPO / "README.md"] + list((REPO / "docs").glob("*.md")),
    key=lambda p: p.name,
)

_FENCE = re.compile(
    r"^```python[^\n]*\n(.*?)^```\s*$", re.MULTILINE | re.DOTALL
)


def python_blocks(path: Path):
    """(start_line, source) for every fenced python block in ``path``."""
    text = path.read_text(encoding="utf-8")
    out = []
    for match in _FENCE.finditer(text):
        line = text[: match.start()].count("\n") + 1
        out.append((line, match.group(1)))
    return out


FILES_WITH_BLOCKS = [p for p in DOC_FILES if python_blocks(p)]


class TestSnippetHarness:
    def test_discovers_documented_files(self):
        names = {p.name for p in DOC_FILES}
        assert "README.md" in names
        assert "policy_reference.md" in names

    def test_readme_has_executable_snippets(self):
        assert python_blocks(REPO / "README.md")


@pytest.mark.parametrize(
    "doc", FILES_WITH_BLOCKS, ids=[p.name for p in FILES_WITH_BLOCKS]
)
def test_doc_snippets_execute(doc):
    namespace = {"__name__": f"docsnippet_{doc.stem}"}
    for line, source in python_blocks(doc):
        compiled = compile(source, f"{doc.name}:{line}", "exec")
        try:
            with redirect_stdout(io.StringIO()):
                exec(compiled, namespace)  # noqa: S102 - that's the point
        except Exception as exc:  # noqa: BLE001 - report and fail
            pytest.fail(
                f"{doc.name} snippet at line {line} raised "
                f"{type(exc).__name__}: {exc}"
            )
