"""Tests for Binarize and its bit/nibble packing."""

import numpy as np
import pytest

from repro.encodings.binarize import (
    BinarizeEncoding,
    argmax_map_bytes,
    pack_bits,
    pack_nibbles,
    unpack_bits,
    unpack_nibbles,
)


class TestBitPacking:
    def test_roundtrip_odd_length(self, rng):
        mask = rng.random(777) > 0.5
        np.testing.assert_array_equal(
            unpack_bits(pack_bits(mask), (777,)), mask
        )

    def test_roundtrip_2d(self, rng):
        mask = rng.random((13, 17)) > 0.3
        np.testing.assert_array_equal(
            unpack_bits(pack_bits(mask), (13, 17)), mask
        )

    def test_word_count(self):
        assert pack_bits(np.ones(32, bool)).size == 1
        assert pack_bits(np.ones(33, bool)).size == 2

    def test_all_true_all_false(self):
        for value in (True, False):
            mask = np.full(100, value)
            np.testing.assert_array_equal(
                unpack_bits(pack_bits(mask), (100,)), mask
            )


class TestNibblePacking:
    def test_roundtrip(self, rng):
        v = rng.integers(0, 16, 333).astype(np.uint8)
        np.testing.assert_array_equal(unpack_nibbles(pack_nibbles(v), (333,)), v)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            pack_nibbles(np.array([16], dtype=np.uint8))

    def test_eight_per_word(self):
        assert pack_nibbles(np.zeros(8, np.uint8)).size == 1
        assert pack_nibbles(np.zeros(9, np.uint8)).size == 2


class TestBinarizeEncoding:
    def test_mask_is_exact(self, rng):
        enc = BinarizeEncoding()
        y = np.maximum(rng.normal(0, 1, (4, 8, 6, 6)), 0).astype(np.float32)
        mask = enc.decode(enc.encode(y))
        np.testing.assert_array_equal(mask, y > 0)

    def test_mask_dtype_is_bool(self, rng):
        enc = BinarizeEncoding()
        y = rng.normal(0, 1, (3, 3)).astype(np.float32)
        assert enc.decode(enc.encode(y)).dtype == np.bool_

    def test_32x_compression(self):
        enc = BinarizeEncoding()
        n = 32 * 4096
        assert enc.encoded_bytes(n) * 32 == 4 * n

    def test_measure_matches_static(self, rng):
        enc = BinarizeEncoding()
        y = rng.normal(0, 1, 1000).astype(np.float32)
        assert enc.measure_bytes(enc.encode(y)) == enc.encoded_bytes(1000)

    def test_relu_gradient_identical_through_binarize(self, rng):
        """The end-to-end losslessness claim: dX computed from the mask is
        bit-identical to dX computed from the FP32 stash."""
        enc = BinarizeEncoding()
        y = np.maximum(rng.normal(0, 1, (128,)), 0).astype(np.float32)
        dy = rng.normal(0, 1, (128,)).astype(np.float32)
        dx_full = dy * (y > 0)
        dx_mask = dy * enc.decode(enc.encode(y))
        np.testing.assert_array_equal(dx_full, dx_mask)

    def test_argmax_map_bytes(self):
        # 8 nibbles per word.
        assert argmax_map_bytes(8) == 4
        assert argmax_map_bytes(9) == 8
        # ~8x smaller than FP32.
        assert 4 * 80000 / argmax_map_bytes(80000) == 8.0
