"""Tests for DPR packing and the DPR encoding."""

import numpy as np
import pytest

from repro.dtypes import FP8, FP10, FP16, FP32
from repro.encodings.dpr import (
    DPREncoding,
    dpr_encoding,
    pack_codes,
    unpack_codes,
)
from repro.encodings.floatsim import quantize


@pytest.mark.parametrize("dtype", [FP16, FP10, FP8], ids=lambda d: d.name)
class TestPacking:
    def test_roundtrip(self, dtype, rng):
        n = 101  # deliberately not a multiple of values_per_word
        codes = rng.integers(0, 1 << dtype.bits, n).astype(np.uint32)
        words = pack_codes(codes, dtype)
        np.testing.assert_array_equal(unpack_codes(words, n, dtype), codes)

    def test_word_count(self, dtype):
        n = 100
        words = pack_codes(np.zeros(n, np.uint32), dtype)
        expected = -(-n // dtype.values_per_word)
        assert words.size == expected

    def test_no_cross_lane_bleed(self, dtype):
        # All-ones codes in every lane must unpack to all-ones exactly.
        k = dtype.values_per_word
        codes = np.full(k, (1 << dtype.bits) - 1, np.uint32)
        words = pack_codes(codes, dtype)
        assert words.size == 1
        np.testing.assert_array_equal(unpack_codes(words, k, dtype), codes)


class TestDPREncoding:
    @pytest.mark.parametrize("name", ["fp16", "fp10", "fp8"])
    def test_decode_equals_quantize(self, name, rng):
        enc = dpr_encoding(name)
        x = rng.normal(0, 1, (8, 13)).astype(np.float32)
        out = enc.decode(enc.encode(x))
        np.testing.assert_array_equal(out, quantize(x, enc.dtype))

    def test_shape_restored(self, rng):
        enc = dpr_encoding("fp8")
        x = rng.normal(0, 1, (2, 3, 4, 5)).astype(np.float32)
        assert enc.decode(enc.encode(x)).shape == (2, 3, 4, 5)

    def test_static_size_matches_runtime(self, rng):
        for name in ("fp16", "fp10", "fp8"):
            enc = dpr_encoding(name)
            x = rng.normal(0, 1, 997).astype(np.float32)
            assert enc.measure_bytes(enc.encode(x)) == enc.encoded_bytes(997)

    def test_compression_ratios(self):
        # FP16 = 2x, FP10 ~ 3x (2 wasted bits), FP8 = 4x.
        n = 3 * 2 * 4 * 100
        assert dpr_encoding("fp16").encoded_bytes(n) * 2 == 4 * n
        assert dpr_encoding("fp8").encoded_bytes(n) * 4 == 4 * n
        fp10 = dpr_encoding("fp10").encoded_bytes(n)
        assert 4 * n / fp10 == pytest.approx(3.0)

    def test_lossless_flag(self):
        assert not dpr_encoding("fp16").lossless

    def test_rejects_fp32(self):
        with pytest.raises(ValueError):
            DPREncoding(FP32)

    def test_unknown_format(self):
        with pytest.raises(KeyError):
            dpr_encoding("fp12")

    def test_name(self):
        assert dpr_encoding("fp10").name == "dpr-fp10"
