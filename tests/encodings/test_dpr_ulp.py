"""Property tests for DPR's minifloat error bounds and fidelity ordering.

Two facts every Figure 12 claim leans on, checked over the whole float32
domain with Hypothesis:

* **ULP bound** — for values inside a format's normal range, quantisation
  error is at most half a unit in the last place, i.e. relative error
  ``<= 2 ** -(mantissa_bits + 1)``.
* **Monotone fidelity** — FP16 is pointwise at least as faithful as FP10,
  which is at least as faithful as FP8.  This holds because the three
  mantissa grids are nested (same exponent width for FP16/FP10; FP8's
  narrower exponent only flushes/clamps *more*), so dropping mantissa or
  exponent bits can only move a value further from its FP32 original.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dtypes import FP8, FP10, FP16
from repro.encodings.floatsim import max_relative_error, quantize

DPR_DTYPES = [FP16, FP10, FP8]

_F32_MAX = float(np.finfo(np.float32).max)
finite_f32 = st.floats(
    min_value=-_F32_MAX, max_value=_F32_MAX, width=32, allow_nan=False
)


def _q(x, dtype):
    """Scalar round-trip through ``dtype`` (quantize wants >= 1-d arrays)."""
    return float(quantize(np.array([x], dtype=np.float32), dtype)[0])


def _in_range(dtype):
    """Strategy for magnitudes in ``dtype``'s normal (non-flushed) range."""
    lo, hi = dtype.min_normal, dtype.max_finite
    mag = st.floats(min_value=lo, max_value=hi, width=32)
    return st.tuples(st.sampled_from([1.0, -1.0]), mag).map(
        lambda sm: np.float32(sm[0] * sm[1])
    )


class TestUlpBound:
    @pytest.mark.parametrize("dtype", DPR_DTYPES, ids=lambda d: d.name)
    def test_half_ulp_relative_error(self, dtype):
        @settings(max_examples=300)
        @given(_in_range(dtype))
        def check(x):
            q = _q(x, dtype)
            rel = abs(q - float(x)) / abs(float(x))
            # A hair of slack: the bound itself is exact only in real
            # arithmetic; the division above rounds once in float64.
            assert rel <= max_relative_error(dtype) * (1 + 1e-12)

        check()

    @pytest.mark.parametrize("dtype", DPR_DTYPES, ids=lambda d: d.name)
    def test_out_of_range_clamps_and_flushes(self, dtype):
        big = np.float32(dtype.max_finite * 4)
        assert _q(big, dtype) == dtype.max_finite
        assert _q(-big, dtype) == -dtype.max_finite
        tiny = np.float32(dtype.min_normal / 2)
        assert _q(tiny, dtype) == 0.0


class TestMonotoneFidelity:
    @given(finite_f32)
    @settings(max_examples=500)
    def test_error_nonincreasing_with_width(self, x):
        errs = [abs(_q(x, d) - float(np.float32(x))) for d in DPR_DTYPES]
        assert errs[0] <= errs[1] <= errs[2]  # FP16 <= FP10 <= FP8

    @given(finite_f32)
    @settings(max_examples=200)
    def test_idempotent(self, x):
        arr = np.array([x], dtype=np.float32)
        for dtype in DPR_DTYPES:
            once = quantize(arr, dtype)
            np.testing.assert_array_equal(once, quantize(once, dtype))

    @given(st.lists(finite_f32, min_size=1, max_size=64))
    @settings(max_examples=100)
    def test_elementwise_matches_scalar(self, values):
        arr = np.array(values, dtype=np.float32)
        for dtype in DPR_DTYPES:
            batch = quantize(arr, dtype)
            singles = np.array(
                [_q(v, dtype) for v in values], dtype=np.float32
            )
            np.testing.assert_array_equal(batch, singles)
