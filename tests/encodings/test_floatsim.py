"""Tests for the minifloat quantisation substrate."""

import numpy as np
import pytest

from repro.dtypes import BIT1, FP8, FP10, FP16
from repro.encodings.floatsim import (
    decode_minifloat,
    encode_minifloat,
    max_relative_error,
    quantize,
)


class TestFP16AgainstNumPy:
    """IEEE half precision is our cross-check oracle for the generic path."""

    def test_matches_numpy_half_on_normals(self, rng):
        x = rng.normal(0, 10, 5000).astype(np.float32)
        x = x[np.abs(x) >= 2.0**-14]  # normals only (we flush denormals)
        ours = quantize(x, FP16)
        ref = x.astype(np.float16).astype(np.float32)
        np.testing.assert_array_equal(ours, ref)

    def test_clamps_instead_of_inf(self):
        x = np.array([1e38, -1e38], dtype=np.float32)
        q = quantize(x, FP16)
        assert q[0] == pytest.approx(65504.0)
        assert q[1] == pytest.approx(-65504.0)

    def test_denormals_flush_to_zero(self):
        x = np.array([1e-8, -1e-8], dtype=np.float32)
        np.testing.assert_array_equal(quantize(x, FP16), [0.0, 0.0])


@pytest.mark.parametrize("dtype", [FP16, FP10, FP8], ids=lambda d: d.name)
class TestGenericMinifloat:
    def test_zero_is_exact(self, dtype):
        assert quantize(np.zeros(3, np.float32), dtype).tolist() == [0, 0, 0]

    def test_sign_preserved(self, dtype, rng):
        x = rng.normal(0, 1, 500).astype(np.float32)
        q = quantize(x, dtype)
        nz = q != 0
        assert (np.sign(q[nz]) == np.sign(x[nz])).all()

    def test_relative_error_bound(self, dtype, rng):
        x = rng.normal(0, 1, 4000).astype(np.float32)
        in_range = (np.abs(x) >= dtype.min_normal) & (
            np.abs(x) <= dtype.max_finite
        )
        x = x[in_range]
        q = quantize(x, dtype)
        rel = np.abs(q - x) / np.abs(x)
        assert rel.max() <= max_relative_error(dtype) * (1 + 1e-6)

    def test_idempotent(self, dtype, rng):
        x = rng.normal(0, 2, 1000).astype(np.float32)
        once = quantize(x, dtype)
        twice = quantize(once, dtype)
        np.testing.assert_array_equal(once, twice)

    def test_powers_of_two_exact(self, dtype):
        exps = np.arange(1 - dtype.exponent_bias, 4)
        x = (2.0**exps).astype(np.float32)
        np.testing.assert_array_equal(quantize(x, dtype), x)

    def test_monotonic(self, dtype):
        x = np.linspace(-5, 5, 2001, dtype=np.float32)
        q = quantize(x, dtype)
        assert (np.diff(q) >= 0).all()

    def test_clamp_at_max(self, dtype):
        over = np.array([dtype.max_finite * 4], np.float32)
        assert quantize(over, dtype)[0] == pytest.approx(dtype.max_finite,
                                                         rel=1e-6)

    def test_codes_fit_bit_width(self, dtype, rng):
        x = rng.normal(0, 100, 1000).astype(np.float32)
        codes = encode_minifloat(x, dtype)
        assert codes.max() < (1 << dtype.bits)

    def test_decode_encode_identity_on_codes(self, dtype, rng):
        x = rng.normal(0, 1, 300).astype(np.float32)
        codes = encode_minifloat(x, dtype)
        values = decode_minifloat(codes, dtype)
        codes2 = encode_minifloat(values, dtype)
        np.testing.assert_array_equal(codes, codes2)

    def test_nan_maps_to_zero(self, dtype):
        x = np.array([np.nan], dtype=np.float32)
        assert quantize(x, dtype)[0] == 0.0

    def test_truncate_rounds_toward_zero(self, dtype, rng):
        x = np.abs(rng.normal(0, 1, 1000).astype(np.float32)) + dtype.min_normal
        trunc = quantize(x, dtype, rounding="truncate")
        in_range = x <= dtype.max_finite
        assert (trunc[in_range] <= x[in_range] + 1e-12).all()


class TestValidation:
    def test_rejects_non_float_dtype(self):
        with pytest.raises(ValueError):
            encode_minifloat(np.ones(2, np.float32), BIT1)

    def test_rejects_unknown_rounding(self):
        with pytest.raises(ValueError):
            encode_minifloat(np.ones(2, np.float32), FP16, rounding="up")

    def test_shape_preserved(self, rng):
        x = rng.normal(0, 1, (3, 4, 5)).astype(np.float32)
        assert quantize(x, FP10).shape == (3, 4, 5)
